//! Campaign determinism: the worker pool must not change the science.
//!
//! A `CampaignReport` is a measurement artifact — if its content depended on
//! how many threads happened to run it, no table built on top of it could be
//! trusted.  This suite pins the contract: for a fixed spec and seed, the
//! per-cell results (cell axes, completed/blocked status and all scenario
//! metrics) are identical for 1 worker vs. N workers and across repeated
//! runs.  Only wall-clock fields may differ.

// Lint audit: indexes and slice bounds here are established by the
// surrounding length checks / loop invariants before use.
#![allow(clippy::indexing_slicing)]

use fpga_msa::dram::SanitizePolicy;
use fpga_msa::msa::campaign::{
    Adversary, CampaignReport, CampaignSpec, CellRecord, InputKind, StreamConfig,
};
use fpga_msa::msa::scenario::VictimSchedule;
use fpga_msa::msa::ScrapeMode;
use fpga_msa::petalinux::{BoardConfig, IsolationPolicy};
use fpga_msa::vitis::ModelKind;

/// A 288-cell matrix exercising every axis class: 3 models × 2 inputs ×
/// 3 sanitize × 2 isolation × 2 scrape × 4 schedules — including both
/// residue-lifetime schedules (revival and live traffic).
fn matrix_spec() -> CampaignSpec {
    CampaignSpec::new("tiny", BoardConfig::tiny_for_tests())
        .with_models(vec![
            ModelKind::SqueezeNet,
            ModelKind::MobileNetV2,
            ModelKind::EfficientNetLite,
        ])
        .with_inputs(vec![InputKind::SamplePhoto, InputKind::Corrupted])
        .with_sanitize_policies(vec![
            SanitizePolicy::None,
            SanitizePolicy::SelectiveScrub,
            SanitizePolicy::Background { delay_ticks: 1000 },
        ])
        .with_isolation_policies(vec![IsolationPolicy::Permissive, IsolationPolicy::Confined])
        .with_scrape_modes(vec![ScrapeMode::ContiguousRange, ScrapeMode::PerPage])
        .with_schedules(vec![
            VictimSchedule::Single,
            VictimSchedule::SequentialTraffic { predecessors: 1 },
            VictimSchedule::Revival {
                successors: 1,
                reuse_pid: true,
            },
            VictimSchedule::LiveTraffic {
                tenants: 1,
                churn_rate: 1,
            },
        ])
        .with_seed(0xFEED)
}

/// The reproducible projection of a report: everything except wall-clock.
fn deterministic_view(
    report: &CampaignReport,
) -> Vec<(
    &fpga_msa::msa::CampaignCell,
    &fpga_msa::msa::scenario::ScenarioResult,
    Option<&fpga_msa::msa::ScenarioMetrics>,
)> {
    report
        .cells()
        .iter()
        .map(CellRecord::deterministic_view)
        .collect()
}

#[test]
fn report_is_worker_count_independent_and_replayable() {
    let spec = matrix_spec();
    assert!(spec.cell_count() >= 200, "matrix must cover ≥ 200 cells");

    let serial = spec.run_with_workers(1).unwrap();
    let parallel = spec.run_with_workers(4).unwrap();
    let replay = spec.run_with_workers(4).unwrap();

    assert_eq!(serial.len(), spec.cell_count());
    assert_eq!(serial.workers(), 1);
    assert_eq!(parallel.workers(), 4);

    // 1 worker vs. N workers: identical content.
    assert_eq!(deterministic_view(&serial), deterministic_view(&parallel));
    // Same seed, repeated run: identical content.
    assert_eq!(deterministic_view(&parallel), deterministic_view(&replay));

    // The matrix is not degenerate: it contains completed, blocked,
    // identified and defeated cells, so the equality above is meaningful.
    assert!(serial.completed_count() > 0);
    assert!(serial.blocked_count() > 0);
    assert!(serial.identified_count() > 0);
    assert!(serial.identified_count() < serial.completed_count());

    // Records come back in expansion order regardless of scheduling.
    let expanded = spec.expand();
    for (ran, declared) in parallel.cells().iter().zip(&expanded) {
        assert_eq!(&ran.cell, declared);
    }

    // Aggregations are pure projections of the deterministic records.
    let groups = parallel.group_by(|r| r.cell.isolation.to_string());
    let confined = &groups["confined"];
    assert_eq!(confined.blocked, confined.cells);
    assert_eq!(parallel.blocked_count(), confined.blocked);
    assert_eq!(serial.mean_pixel_recovery(), parallel.mean_pixel_recovery());

    // The residue-lifetime schedules produced live (non-degenerate) data
    // inside the matrix, so the equalities above pin them too.
    let by_schedule = parallel.group_by(|r| r.cell.schedule.to_string());
    assert_eq!(by_schedule.len(), 4);
    let revival = &by_schedule["revival(1,reuse-pid)"];
    assert!(revival.revival_inherited_frames > 0);
    assert!(revival.mean_revival_inheritance > 0.0);
    let live = &by_schedule["live-traffic(1,churn=1)"];
    assert!(live.cells > 0);
    assert_eq!(live.revival_inherited_frames, 0);
}

/// The bank-striped scrape matrix: striping the scrape across DRAM banks is
/// a wall-clock knob, never a science knob.  For the same spec, (a) campaign
/// reports are byte-identical between 1 and 4 pool workers, (b) the metrics
/// of a `BankStriped { workers }` cell are identical at every fan-out, and
/// (c) they match the plain contiguous attacker cell for cell — across
/// models, sanitize policies and schedules.
#[test]
fn bank_striped_scrape_matrix_is_worker_count_independent() {
    let spec_with_mode = |mode: ScrapeMode| {
        CampaignSpec::new("tiny", BoardConfig::tiny_for_tests())
            .with_models(vec![ModelKind::SqueezeNet, ModelKind::MobileNetV2])
            .with_inputs(vec![InputKind::Corrupted])
            .with_sanitize_policies(vec![SanitizePolicy::None, SanitizePolicy::SelectiveScrub])
            .with_schedules(vec![
                VictimSchedule::Single,
                VictimSchedule::LiveTraffic {
                    tenants: 1,
                    churn_rate: 1,
                },
            ])
            .with_scrape_modes(vec![mode])
            .with_seed(0xBA2C)
    };

    // (a) Pool-worker independence of the bank-striped matrix itself.
    let striped = spec_with_mode(ScrapeMode::BankStriped { workers: 4 });
    let serial = striped.run_with_workers(1).unwrap();
    let pooled = striped.run_with_workers(4).unwrap();
    assert_eq!(serial.len(), 8);
    assert_eq!(deterministic_view(&serial), deterministic_view(&pooled));

    // (b) + (c) Scrape fan-out independence: 1-striped, 4-striped and plain
    // contiguous cells recover identical metrics, cell for cell.
    let contiguous = spec_with_mode(ScrapeMode::ContiguousRange)
        .run_with_workers(4)
        .unwrap();
    let one_striped = spec_with_mode(ScrapeMode::BankStriped { workers: 1 })
        .run_with_workers(4)
        .unwrap();
    for index in 0..contiguous.len() {
        let reference = &contiguous.cells()[index];
        for (label, report) in [("striped(4)", &pooled), ("striped(1)", &one_striped)] {
            let cell = &report.cells()[index];
            assert_eq!(cell.result, reference.result, "{label} cell {index}");
            assert_eq!(cell.metrics, reference.metrics, "{label} cell {index}");
        }
    }
    // The matrix is not degenerate: the unsanitized half leaks.
    assert!(pooled.identified_count() > 0);
    assert!(pooled.identified_count() < pooled.len());
}

/// The remanence decay axis is a science knob, but a deterministic one: a
/// swept matrix (decay models × sanitize × schedules, with the chunked
/// live-traffic scrape ticking the decay clock mid-read) is byte-identical
/// between 1 and 4 pool workers and across repeated runs, the perfect cells
/// flip zero bits, and the decaying cells flip a reproducible number.
#[test]
fn remanence_axis_is_worker_count_independent() {
    use fpga_msa::dram::RemanenceModel;
    let spec = CampaignSpec::new("tiny", BoardConfig::tiny_for_tests())
        .with_models(vec![ModelKind::SqueezeNet])
        .with_inputs(vec![InputKind::Corrupted])
        .with_sanitize_policies(vec![SanitizePolicy::None, SanitizePolicy::ZeroOnFree])
        .with_remanence_models(vec![
            RemanenceModel::Perfect,
            RemanenceModel::Exponential { half_life_ticks: 2 },
            RemanenceModel::BitFlip { rate_ppm: 200_000 },
        ])
        .with_schedules(vec![
            VictimSchedule::Single,
            VictimSchedule::Revival {
                successors: 1,
                reuse_pid: true,
            },
            VictimSchedule::LiveTraffic {
                tenants: 1,
                churn_rate: 1,
            },
        ])
        .with_seed(0xDECA);
    assert_eq!(spec.cell_count(), 18);

    let serial = spec.run_with_workers(1).unwrap();
    let parallel = spec.run_with_workers(4).unwrap();
    let replay = spec.run_with_workers(4).unwrap();
    assert_eq!(deterministic_view(&serial), deterministic_view(&parallel));
    assert_eq!(deterministic_view(&parallel), deterministic_view(&replay));

    // The matrix is not degenerate: perfect cells flip nothing, decaying
    // unsanitized cells flip real residue bits.
    let by_remanence = parallel.group_by(|r| r.cell.remanence.to_string());
    assert_eq!(by_remanence.len(), 3);
    assert_eq!(by_remanence["perfect"].residue_bits_flipped, 0);
    assert_eq!(by_remanence["perfect"].mean_decayed_recovery, 1.0);
    assert!(by_remanence["exponential(hl=2)"].residue_bits_flipped > 0);
    assert!(by_remanence["exponential(hl=2)"].mean_decayed_recovery < 1.0);
    assert!(by_remanence["bitflip(200000ppm)"].residue_bits_flipped > 0);

    // Zero-on-free leaves no residue, so there is nothing to decay: the
    // fidelity metrics collapse to "nothing lost" under every model.
    for record in parallel.cells() {
        if record.cell.sanitize == SanitizePolicy::ZeroOnFree {
            let lifetime = record.metrics.as_ref().unwrap().residue_lifetime;
            assert_eq!(lifetime.residue_bytes_raw, 0);
            assert_eq!(lifetime.residue_bits_flipped, 0);
            assert_eq!(lifetime.decayed_recovery_rate(), 1.0);
        }
    }
}

/// Live-traffic churn interleaving is pinned to the cell seed: replaying the
/// same spec reproduces the same churn sequence, loss counts and recovery —
/// across worker counts and repeated runs — while a different campaign seed
/// plays a different tenant rotation.  Nothing here depends on wall clock.
#[test]
fn live_traffic_churn_is_pinned_to_the_cell_seed() {
    let spec_at = |seed: u64| {
        CampaignSpec::new("tiny", BoardConfig::tiny_for_tests())
            .with_inputs(vec![InputKind::Corrupted])
            .with_schedules(vec![VictimSchedule::LiveTraffic {
                tenants: 2,
                churn_rate: 2,
            }])
            .with_seed(seed)
    };

    let spec = spec_at(41);
    let serial = spec.run_with_workers(1).unwrap();
    let parallel = spec.run_with_workers(4).unwrap();
    let replay = spec.run_with_workers(4).unwrap();
    assert_eq!(deterministic_view(&serial), deterministic_view(&parallel));
    assert_eq!(deterministic_view(&parallel), deterministic_view(&replay));

    // The pinned run is not degenerate: churn actually happened and cost the
    // attacker residue.
    let lifetime = serial.cells()[0].metrics.as_ref().unwrap().residue_lifetime;
    assert!(lifetime.churn_events > 0);
    assert!(lifetime.frames_lost_before_scrape > 0);
    assert!(lifetime.survival_rate() < 1.0);

    // A different campaign seed derives a different churn outcome — the
    // interleaving is seeded data, not an accident of scheduling.
    let reseeded = spec_at(7).run_with_workers(4).unwrap();
    let other = reseeded.cells()[0]
        .metrics
        .as_ref()
        .unwrap()
        .residue_lifetime;
    assert_ne!(
        lifetime.frames_lost_before_scrape,
        other.frames_lost_before_scrape
    );
}

/// Race-check builds only: stream the matrix through a multi-worker pool and
/// assert the shadow-state checker audited the block claims (and every
/// bank-parallel scrape underneath) with zero cross-worker overlaps.  This is
/// the "wired into the determinism suite" guarantee — the determinism
/// equalities above hold *and* the partitioning they rely on was verified,
/// not assumed.
#[cfg(feature = "race-check")]
#[test]
fn race_checker_audits_the_streaming_pool_with_zero_overlaps() {
    use fpga_msa::dram::racecheck;

    let before = racecheck::stats();
    let spec = matrix_spec().with_scrape_modes(vec![ScrapeMode::BankStriped { workers: 4 }]);
    let summary = spec
        .stream_cells(
            StreamConfig::default().with_workers(4).with_block_size(8),
            |_| Ok(()),
        )
        .unwrap();
    assert_eq!(summary.cells_total, spec.cell_count());
    let after = racecheck::stats();
    assert!(
        after.ops_checked > before.ops_checked,
        "the streamed pool must pass through the race checker ({before:?} -> {after:?})"
    );
    assert!(
        after.intervals_recorded
            >= before.intervals_recorded + spec.cell_count().div_ceil(8) as u64,
        "every claimed block must be recorded ({before:?} -> {after:?})"
    );
    assert_eq!(after.overlaps_found, 0, "no cross-worker overlap may exist");
}

/// The streaming engine is a pure reorganization of the batch pool: for the
/// same real matrix, the streamed summary is byte-identical (via
/// `deterministic_json`) to the summary folded from the batch report, and
/// the streaming visitor sees every record in expansion order with the same
/// deterministic content the batch report stores.
#[test]
fn streaming_summary_matches_batch_report_on_real_cells() {
    let spec = matrix_spec();
    let batch = spec.run_with_workers(2).unwrap();

    let mut visited = Vec::new();
    let summary = spec
        .stream_cells(StreamConfig::default().with_workers(2), |record| {
            visited.push(record);
            Ok(())
        })
        .unwrap();

    assert_eq!(
        summary.deterministic_json(),
        batch.summary().deterministic_json()
    );
    assert_eq!(visited.len(), batch.len());
    for (streamed, batched) in visited.iter().zip(batch.cells()) {
        assert_eq!(streamed.deterministic_view(), batched.deterministic_view());
    }
}

/// Engine determinism proper: for a fixed spec the deterministic summary is
/// byte-identical across worker counts {1, 2, 8} and across adversarial
/// completion orders (reverse and seeded-shuffle schedulers that hand
/// finished blocks to the collector in hostile order).  The synthetic
/// executor keeps the 288-cell matrix effectively free, so this pins the
/// scheduling/folding machinery itself, independent of scenario cost.
#[test]
fn streaming_summary_is_identical_across_workers_and_completion_orders() {
    let spec = matrix_spec();
    let run = |config: StreamConfig| {
        spec.stream_with_executor(
            config,
            |cell| Ok(cell.synthetic_record()),
            |_| Ok(()),
            |_| {},
        )
        .unwrap()
        .deterministic_json()
    };

    // Small blocks force many groups through the reorder buffer.
    let reference = run(StreamConfig::default().with_workers(1).with_block_size(4));
    for workers in [1, 2, 8] {
        for adversary in [
            None,
            Some(Adversary::ReverseCompletion),
            Some(Adversary::ShuffledCompletion { seed: 0xD15C }),
        ] {
            let mut config = StreamConfig::default()
                .with_workers(workers)
                .with_block_size(4);
            if let Some(adversary) = adversary {
                config = config.with_adversary(adversary);
            }
            assert_eq!(
                run(config),
                reference,
                "workers={workers}, adversary={adversary:?}"
            );
        }
    }
}
