//! Integration tests: the defense sweeps keep their expected shape.

use fpga_msa::dram::SanitizePolicy;
use fpga_msa::mmu::{AllocationOrder, AslrMode};
use fpga_msa::msa::attack::ScrapeMode;
use fpga_msa::msa::defense::{
    evaluate_isolation, evaluate_layout_randomization, evaluate_multi_tenant,
    evaluate_sanitize_policies,
};
use fpga_msa::msa::scenario::AttackScenario;
use fpga_msa::petalinux::{BoardConfig, IsolationPolicy};
use fpga_msa::vitis::ModelKind;

fn board() -> BoardConfig {
    BoardConfig::tiny_for_tests()
}

#[test]
fn sanitization_sweep_orders_policies_as_expected() {
    let rows = evaluate_sanitize_policies(board(), ModelKind::Resnet50Pt).unwrap();
    let get = |p: SanitizePolicy| rows.iter().find(|r| r.policy == p).unwrap();

    // Vulnerable default: full recovery at zero cost.
    assert!(get(SanitizePolicy::None).pixel_recovery > 0.99);
    assert_eq!(get(SanitizePolicy::None).scrub_cost_cycles, 0.0);

    // All eager policies defeat the attack.
    for policy in [
        SanitizePolicy::ZeroOnFree,
        SanitizePolicy::RowClone,
        SanitizePolicy::RowReset,
        SanitizePolicy::SelectiveScrub,
    ] {
        assert_eq!(get(policy).pixel_recovery, 0.0, "{policy}");
        assert!(!get(policy).model_identified, "{policy}");
    }

    // Cost ordering matches the literature: in-DRAM bulk initialization is
    // cheaper than CPU stores; RowReset (per bank) is cheapest per byte.
    let zero = get(SanitizePolicy::ZeroOnFree).scrub_cost_cycles;
    let rowclone = get(SanitizePolicy::RowClone).scrub_cost_cycles;
    assert!(rowclone < zero);

    // A slow background scrubber leaves the attack window open.
    let background = rows
        .iter()
        .find(|r| matches!(r.policy, SanitizePolicy::Background { .. }))
        .unwrap();
    assert!(background.pixel_recovery > 0.99);
}

#[test]
fn isolation_sweep_shows_the_confined_policy_closing_the_channel() {
    let rows = evaluate_isolation(board(), ModelKind::Resnet50Pt).unwrap();
    let permissive = rows
        .iter()
        .find(|r| r.isolation == IsolationPolicy::Permissive)
        .unwrap();
    let confined = rows
        .iter()
        .find(|r| r.isolation == IsolationPolicy::Confined)
        .unwrap();
    assert!(permissive.attack_completed && permissive.model_identified);
    assert!(!confined.attack_completed);
    assert!(confined.blocked_at.is_some());
}

#[test]
fn layout_randomization_defeats_contiguous_scraping_only() {
    let rows = evaluate_layout_randomization(board(), ModelKind::Resnet50Pt).unwrap();
    assert_eq!(rows.len(), 8);

    let randomized_contiguous = rows
        .iter()
        .find(|r| {
            matches!(r.allocation_order, AllocationOrder::Randomized { .. })
                && r.aslr == AslrMode::Disabled
                && r.scrape_mode == ScrapeMode::ContiguousRange
        })
        .unwrap();
    let randomized_per_page = rows
        .iter()
        .find(|r| {
            matches!(r.allocation_order, AllocationOrder::Randomized { .. })
                && r.aslr == AslrMode::Disabled
                && r.scrape_mode == ScrapeMode::PerPage
        })
        .unwrap();
    assert!(randomized_contiguous.pixel_recovery < 0.5);
    assert!(randomized_per_page.pixel_recovery > 0.99);

    // Virtual ASLR alone never helps (offsets are heap-relative).
    for row in rows.iter().filter(|r| {
        r.aslr != AslrMode::Disabled && r.allocation_order == AllocationOrder::Sequential
    }) {
        assert!(row.pixel_recovery > 0.99);
    }
}

#[test]
fn multi_tenant_sweep_separates_precise_from_bulk_sanitizers() {
    let rows =
        evaluate_multi_tenant(board(), ModelKind::SqueezeNet, ModelKind::MobileNetV2).unwrap();
    let get = |p: SanitizePolicy| rows.iter().find(|r| r.policy == p).unwrap();

    assert!(get(SanitizePolicy::None).victim_model_identified);
    assert!(get(SanitizePolicy::None).active_tenant_data_intact);

    for policy in [SanitizePolicy::ZeroOnFree, SanitizePolicy::SelectiveScrub] {
        let row = get(policy);
        assert!(!row.victim_model_identified);
        assert!(row.active_tenant_data_intact, "{policy}");
    }
    for policy in [SanitizePolicy::RowClone, SanitizePolicy::RowReset] {
        let row = get(policy);
        assert!(!row.victim_model_identified);
        assert!(!row.active_tenant_data_intact, "{policy}");
        assert!(row.active_tenant_bytes_clobbered > 0, "{policy}");
    }
}

#[test]
fn combining_scrubbing_and_confinement_is_strictly_stronger_than_either() {
    let hardened = board()
        .with_sanitize_policy(SanitizePolicy::SelectiveScrub)
        .with_isolation(IsolationPolicy::Confined)
        .with_allocation_order(AllocationOrder::Randomized { seed: 11 });
    let scenario = AttackScenario::new(hardened, ModelKind::Resnet50Pt).with_corrupted_input();
    let (result, outcome) = scenario.execute_allow_blocked().unwrap();
    // The channel is closed before the attack even reaches the residue.
    assert!(outcome.is_none());
    assert!(matches!(
        result,
        fpga_msa::msa::scenario::ScenarioResult::Blocked { .. }
    ));
}
