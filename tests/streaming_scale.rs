//! Fleet-scale streaming: a million-cell matrix must be bounded by the
//! worker pool, not by the matrix.
//!
//! The synthetic executor (microseconds per cell) drives the full
//! scheduling/folding machinery over a 1,000,000-cell spec (trimmed to
//! ~120k cells under debug assertions so `cargo test` stays fast), and the
//! suite pins the two contracts that make the engine fleet-safe: peak
//! resident cells stay within the pool's claim + reorder windows, and the
//! deterministic summary is byte-identical across worker counts.

// Lint audit: indexes and slice bounds here are established by the
// surrounding length checks / loop invariants before use.
#![allow(clippy::indexing_slicing)]

use fpga_msa::dram::{RemanenceModel, SanitizePolicy};
use fpga_msa::msa::campaign::{CampaignSpec, InputKind, StreamConfig};
use fpga_msa::msa::scenario::VictimSchedule;
use fpga_msa::msa::ScrapeMode;
use fpga_msa::petalinux::{BoardConfig, IsolationPolicy};
use fpga_msa::vitis::ModelKind;

/// A fleet matrix of `boards` × 8,000 cells: 8 models × 2 inputs × 5
/// sanitize policies × 2 isolation policies × 2 scrape modes × 5 remanence
/// models × 5 victim schedules per board.
fn fleet_spec(boards: usize) -> CampaignSpec {
    let board_axis = (0..boards)
        .map(|i| (format!("fleet-{i:03}"), BoardConfig::tiny_for_tests()))
        .collect();
    CampaignSpec::over_boards(board_axis)
        .with_models(ModelKind::all().to_vec())
        .with_inputs(vec![InputKind::SamplePhoto, InputKind::Corrupted])
        .with_sanitize_policies(vec![
            SanitizePolicy::None,
            SanitizePolicy::ZeroOnFree,
            SanitizePolicy::RowClone,
            SanitizePolicy::SelectiveScrub,
            SanitizePolicy::Background { delay_ticks: 1000 },
        ])
        .with_isolation_policies(vec![IsolationPolicy::Permissive, IsolationPolicy::Confined])
        .with_scrape_modes(vec![ScrapeMode::ContiguousRange, ScrapeMode::PerPage])
        .with_remanence_models(vec![
            RemanenceModel::Perfect,
            RemanenceModel::Exponential {
                half_life_ticks: 100,
            },
            RemanenceModel::Exponential {
                half_life_ticks: 10_000,
            },
            RemanenceModel::BitFlip { rate_ppm: 50 },
            RemanenceModel::BitFlip { rate_ppm: 5_000 },
        ])
        .with_schedules(vec![
            VictimSchedule::Single,
            VictimSchedule::SequentialTraffic { predecessors: 2 },
            VictimSchedule::Revival {
                successors: 1,
                reuse_pid: true,
            },
            VictimSchedule::Revival {
                successors: 2,
                reuse_pid: false,
            },
            VictimSchedule::LiveTraffic {
                tenants: 2,
                churn_rate: 1,
            },
        ])
        .with_seed(2024)
}

/// Boards for the scale matrix: the full million under `--release`, a
/// ~120k-cell slice when debug assertions make per-cell cost 10-30× higher.
fn scale_boards() -> usize {
    if cfg!(debug_assertions) {
        15
    } else {
        125
    }
}

#[test]
fn million_cell_stream_is_bounded_by_the_pool_and_worker_count_independent() {
    let spec = fleet_spec(scale_boards());
    let expected_cells = spec.cell_count();
    assert_eq!(expected_cells % 8000, 0);
    if !cfg!(debug_assertions) {
        assert_eq!(expected_cells, 1_000_000);
    }

    let mut summaries = Vec::new();
    for workers in [1usize, 8] {
        let summary = spec
            .stream_with_executor(
                StreamConfig::default().with_workers(workers),
                |cell| Ok(cell.synthetic_record()),
                |_| Ok(()),
                |_| {},
            )
            .unwrap();

        assert_eq!(summary.cells_total, expected_cells);
        assert_eq!(summary.workers, workers);

        // Residency bound: at most `workers` blocks claimed, the default
        // reorder window (`workers + 2` ready blocks) and one block being
        // folded — never the matrix.  This is the O(workers) guarantee that
        // lets a million-cell campaign run in constant memory.
        let bound = (2 * workers + 3) * summary.block_size;
        assert!(
            summary.peak_resident_cells <= bound,
            "peak {} cells exceeds pool bound {} (block size {})",
            summary.peak_resident_cells,
            bound,
            summary.block_size
        );
        assert!(summary.peak_resident_cells < expected_cells);

        summaries.push(summary);
    }

    // Byte-identical science across worker counts, at scale.
    assert_eq!(
        summaries[0].deterministic_json(),
        summaries[1].deterministic_json()
    );

    // The matrix is not degenerate: both outcomes occur, and the synthetic
    // blocked fraction (seed % 7 == 0) lands near one seventh.
    let totals = &summaries[0].totals;
    assert_eq!(totals.completed + totals.blocked, expected_cells);
    let blocked_fraction = totals.blocked as f64 / expected_cells as f64;
    assert!(
        (0.10..0.19).contains(&blocked_fraction),
        "blocked fraction {blocked_fraction} implausible for seed % 7 gating"
    );
}
