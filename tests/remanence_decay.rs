//! Remanence decay invariants, pinned as properties.
//!
//! The decay view ([`fpga_msa::dram::RemanenceModel`]) must never be able to
//! change the science except by *removing* information from terminated
//! residue:
//!
//! 1. **Monotone** — decay never creates residue bytes: a decayed read is a
//!    bitwise subset of the raw store, and reads at later logical ticks are
//!    bitwise subsets of earlier reads.
//! 2. **Scoped** — frames held by a live owner are returned raw at every
//!    tick, under every model.
//! 3. **Fan-out independent** — a decayed scrape is byte-identical between
//!    the sequential read path and `scrape_banks_parallel` at every worker
//!    count (per-shard decay is a pure per-cell function).
//! 4. **Fusion sound** — OR-fusing a multi-snapshot read sequence
//!    ([`fpga_msa::msa::analysis::reconstruct::fuse_snapshots`]) is a
//!    bitwise superset of every single snapshot and a bitwise subset of the
//!    raw residue: fusion can only undo decay, never invent bytes.
//!
//! These are the device-level guarantees the campaign determinism suite
//! builds on when it sweeps the remanence axis across pool workers.

// Lint audit: address arithmetic here is bounds-checked against the
// DRAM window before any narrowing cast or direct index; offsets are
// derived from validated window-relative coordinates.
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use fpga_msa::dram::{Dram, DramConfig, OwnerTag, RemanenceModel, PAGE_SIZE};
use fpga_msa::msa::analysis::reconstruct::fuse_snapshots;
use proptest::prelude::*;

const VICTIM: OwnerTag = OwnerTag::new(1391);
const LIVE: OwnerTag = OwnerTag::new(77);

/// The swept models, with parameters derived from a test-case byte.
fn model_from(selector: u8, parameter: u64) -> RemanenceModel {
    match selector % 3 {
        0 => RemanenceModel::Exponential {
            half_life_ticks: parameter % 32,
        },
        1 => RemanenceModel::BitFlip {
            rate_ppm: (parameter % 900_000).max(1_000),
        },
        _ => RemanenceModel::Perfect,
    }
}

/// A device with `frames` of victim residue, one live neighbour frame after
/// them, and the given decay model/seed active.
fn decaying_board(model: RemanenceModel, seed: u64, frames: u64) -> (Dram, u64) {
    let mut dram = Dram::new(DramConfig::tiny_for_tests());
    dram.set_remanence(model);
    dram.set_remanence_seed(seed);
    let base = dram.config().base();
    for i in 0..frames {
        let fill = 0x11u8.wrapping_mul(i as u8 + 1).max(1);
        dram.fill(base + i * PAGE_SIZE, PAGE_SIZE, fill, VICTIM)
            .unwrap();
    }
    dram.fill(base + frames * PAGE_SIZE, PAGE_SIZE, 0xAB, LIVE)
        .unwrap();
    dram.retire_owner(VICTIM);
    (dram, frames * PAGE_SIZE)
}

proptest! {
    /// Monotone over raw content and over time: every decayed read is a
    /// bitwise subset of the raw store, and later reads are subsets of
    /// earlier ones.
    #[test]
    fn decay_is_monotone_and_never_creates_residue(
        selector in any::<u8>(),
        parameter in any::<u64>(),
        seed in any::<u64>(),
        ticks in proptest::collection::vec(0u64..24, 1..6),
    ) {
        let model = model_from(selector, parameter);
        let (mut dram, residue_len) = decaying_board(model, seed, 3);
        let base = dram.config().base();

        let mut raw = vec![0u8; residue_len as usize];
        // At tick zero nothing has decayed: the read *is* the raw store.
        dram.read_bytes(base, &mut raw).unwrap();
        prop_assert!(raw.iter().all(|&b| b != 0));

        let mut previous = raw.clone();
        for t in ticks {
            dram.advance_remanence(t);
            let mut now = vec![0u8; residue_len as usize];
            dram.read_bytes(base, &mut now).unwrap();
            for (i, (n, p)) in now.iter().zip(&previous).enumerate() {
                // Subset of the previous read (monotone over time) — which
                // transitively makes it a subset of the raw bytes.
                prop_assert_eq!(n & p, *n, "byte {} regrew under {}", i, model);
            }
            previous = now;
        }

        // The raw store itself never mutated, whatever the view says.
        prop_assert_eq!(dram.residue_bytes(), residue_len);
        let decay = dram.residue_decay(Some(VICTIM));
        prop_assert_eq!(decay.raw_bytes, residue_len);
        prop_assert_eq!(
            decay.surviving_bytes as usize,
            previous.iter().filter(|&&b| b != 0).count()
        );
    }

    /// Live owners' frames never decay, under any model, at any tick.
    #[test]
    fn decay_never_touches_live_owners(
        selector in any::<u8>(),
        parameter in any::<u64>(),
        seed in any::<u64>(),
        ticks in 0u64..10_000,
    ) {
        let model = model_from(selector, parameter);
        let (mut dram, residue_len) = decaying_board(model, seed, 2);
        let base = dram.config().base();
        dram.advance_remanence(ticks);

        let mut live = vec![0u8; PAGE_SIZE as usize];
        dram.read_bytes(base + residue_len, &mut live).unwrap();
        prop_assert!(live.iter().all(|&b| b == 0xAB));
        prop_assert_eq!(dram.read_u8(base + residue_len).unwrap(), 0xAB);

        // A revived owner re-writing a residue frame makes it live again —
        // and immune to decay from that moment on.
        dram.fill(base, PAGE_SIZE, 0x3C, LIVE).unwrap();
        dram.advance_remanence(10_000);
        prop_assert_eq!(dram.read_u8(base).unwrap(), 0x3C);
    }

    /// Decayed scrapes are byte-identical between the sequential path and
    /// the bank-striped parallel path, across worker counts — including
    /// reads that start and end mid-frame and mid-stripe.
    #[test]
    fn decayed_scrapes_match_across_worker_counts(
        selector in any::<u8>(),
        parameter in any::<u64>(),
        seed in any::<u64>(),
        ticks in 1u64..40,
        offset in 0u64..4096,
        len in 1usize..(5 * PAGE_SIZE as usize),
    ) {
        let model = model_from(selector, parameter);
        let (mut dram, _) = decaying_board(model, seed, 5);
        dram.advance_remanence(ticks);
        let addr = dram.config().base() + offset;

        let mut sequential = vec![0u8; len];
        dram.read_bytes(addr, &mut sequential).unwrap();
        for workers in [1usize, 2, 3, 4, 8] {
            let mut striped = vec![0u8; len];
            dram.scrape_banks_parallel(addr, &mut striped, workers).unwrap();
            prop_assert_eq!(
                &sequential,
                &striped,
                "decayed scrape diverged: {} workers={}",
                model,
                workers
            );
        }
    }

    /// Fusing an N-snapshot read sequence is sound: every fused byte is a
    /// bitwise superset of each individual snapshot (fusion never loses a
    /// bit any read captured) and a bitwise subset of the raw residue
    /// (fusion never invents a bit the victim never wrote).  With monotone
    /// decay the fusion collapses to the earliest snapshot exactly — the
    /// fact that lets immutable scrape paths degenerate
    /// `ScrapeMode::MultiSnapshot` to a single read.
    #[test]
    fn snapshot_fusion_is_a_superset_of_reads_and_subset_of_raw(
        selector in any::<u8>(),
        parameter in any::<u64>(),
        seed in any::<u64>(),
        start_tick in 0u64..24,
        snapshots in 1usize..6,
    ) {
        let model = model_from(selector, parameter);
        let (mut dram, residue_len) = decaying_board(model, seed, 3);
        let base = dram.config().base();

        // Tick zero: the read *is* the raw residue.
        let mut raw = vec![0u8; residue_len as usize];
        dram.read_bytes(base, &mut raw).unwrap();

        dram.advance_remanence(start_tick);
        let mut reads = Vec::new();
        for i in 0..snapshots {
            if i > 0 {
                dram.advance_remanence(1);
            }
            let mut buf = vec![0u8; residue_len as usize];
            dram.read_bytes(base, &mut buf).unwrap();
            reads.push(buf);
        }

        let fused = fuse_snapshots(&reads);
        prop_assert_eq!(fused.len(), raw.len());
        for (i, read) in reads.iter().enumerate() {
            for (j, (f, r)) in fused.iter().zip(read).enumerate() {
                prop_assert_eq!(f & r, *r, "snapshot {} byte {} lost in fusion", i, j);
            }
        }
        for (j, (f, r)) in fused.iter().zip(&raw).enumerate() {
            prop_assert_eq!(f & r, *f, "fused byte {} exceeds the raw residue", j);
        }
        // Decay is monotone, so the OR of the sequence is its earliest read.
        prop_assert_eq!(&fused, &reads[0]);
    }

    /// A fused multi-snapshot scrape is byte-identical whether each
    /// snapshot was read sequentially or bank-striped, at every worker
    /// count — the device-level guarantee behind the campaign's
    /// `--jobs`-independent reconstruction golden.
    #[test]
    fn snapshot_fusion_is_deterministic_across_worker_counts(
        selector in any::<u8>(),
        parameter in any::<u64>(),
        seed in any::<u64>(),
        start_tick in 1u64..24,
    ) {
        let model = model_from(selector, parameter);
        let (mut dram, residue_len) = decaying_board(model, seed, 5);
        let len = residue_len as usize;
        let base = dram.config().base();
        dram.advance_remanence(start_tick);

        const WORKERS: [usize; 4] = [1, 2, 4, 8];
        let mut sequential = Vec::new();
        let mut striped: Vec<Vec<Vec<u8>>> = vec![Vec::new(); WORKERS.len()];
        for i in 0..3 {
            if i > 0 {
                dram.advance_remanence(1);
            }
            let mut buf = vec![0u8; len];
            dram.read_bytes(base, &mut buf).unwrap();
            sequential.push(buf);
            for (snapshots, workers) in striped.iter_mut().zip(WORKERS) {
                let mut buf = vec![0u8; len];
                dram.scrape_banks_parallel(base, &mut buf, workers).unwrap();
                snapshots.push(buf);
            }
        }

        let fused = fuse_snapshots(&sequential);
        for (snapshots, workers) in striped.iter().zip(WORKERS) {
            prop_assert_eq!(
                &fused,
                &fuse_snapshots(snapshots),
                "fused scrape diverged: {} workers={}",
                model,
                workers
            );
        }
    }

    /// The perfect model is bit-exact with a device that has no remanence
    /// configured at all, at every tick — the guarantee that keeps every
    /// pre-remanence golden file valid.
    #[test]
    fn perfect_model_is_indistinguishable_from_no_model(
        seed in any::<u64>(),
        ticks in 0u64..1_000,
    ) {
        let (mut with_model, residue_len) =
            decaying_board(RemanenceModel::Perfect, seed, 3);
        with_model.advance_remanence(ticks);
        let (baseline, _) = decaying_board(RemanenceModel::Perfect, 0, 3);

        let base = baseline.config().base();
        let len = (residue_len + PAGE_SIZE) as usize;
        let mut a = vec![0u8; len];
        let mut b = vec![0u8; len];
        with_model.read_bytes(base, &mut a).unwrap();
        baseline.read_bytes(base, &mut b).unwrap();
        prop_assert_eq!(a, b);
        prop_assert_eq!(with_model.residue_decay(None).bits_flipped, 0);
    }
}
