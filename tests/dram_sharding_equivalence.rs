//! Differential harness: the bank-sharded DRAM store is observationally
//! identical to the flat frame map it replaced.
//!
//! `FlatDram` below re-implements the pre-sharding store verbatim (one sparse
//! `HashMap` of page-sized frames, ownership tagged per frame, stats counted
//! per operation).  The harness then drives the *same seeded operation
//! sequences* — writes, fills, scrubs and scrapes deliberately crossing
//! frame, bank, bank-group and rank boundaries — against the flat reference,
//! the sharded store, and the sharded store with every scrub/scrape routed
//! through the bank-parallel paths, asserting byte-identical contents,
//! identical ownership transitions and identical `DramStats` counters
//! throughout.

// Lint audit: address arithmetic here is bounds-checked against the
// DRAM window before any narrowing cast or direct index; offsets are
// derived from validated window-relative coordinates.
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use std::collections::HashMap;

use fpga_msa::dram::config::DdrGeometry;
use fpga_msa::dram::{Dram, DramConfig, DramError, OwnerTag, PhysAddr, PAGE_SIZE};

/// splitmix64 — the workspace's standard deterministic sequence generator.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The pre-sharding store: a verbatim re-implementation of the old flat
/// `Dram` semantics, kept here as the reference model.
struct FlatDram {
    config: DramConfig,
    frames: HashMap<u64, Box<[u8]>>,
    ownership: HashMap<u64, (OwnerTag, bool)>,
    bytes_written: u64,
    bytes_scrubbed: u64,
    write_ops: u64,
    scrub_ops: u64,
}

impl FlatDram {
    fn new(config: DramConfig) -> Self {
        FlatDram {
            config,
            frames: HashMap::new(),
            ownership: HashMap::new(),
            bytes_written: 0,
            bytes_scrubbed: 0,
            write_ops: 0,
            scrub_ops: 0,
        }
    }

    fn frame_index(&self, addr: PhysAddr) -> u64 {
        addr.offset_from(self.config.base()) / PAGE_SIZE
    }

    fn check_range(&self, addr: PhysAddr, len: u64) -> Result<(), ()> {
        if len > 0 && addr.checked_add(len - 1).is_none() {
            return Err(());
        }
        if !self.config.contains_range(addr, len.max(1)) {
            return Err(());
        }
        Ok(())
    }

    fn frame_mut(&mut self, idx: u64) -> &mut Box<[u8]> {
        self.frames
            .entry(idx)
            .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice())
    }

    fn read_bytes(&self, addr: PhysAddr, buf: &mut [u8]) -> Result<(), ()> {
        self.check_range(addr, buf.len() as u64)?;
        let mut cursor = 0usize;
        while cursor < buf.len() {
            let a = addr + cursor as u64;
            let offset = a.page_offset() as usize;
            let chunk = (PAGE_SIZE as usize - offset).min(buf.len() - cursor);
            let dst = &mut buf[cursor..cursor + chunk];
            match self.frames.get(&self.frame_index(a)) {
                Some(frame) => dst.copy_from_slice(&frame[offset..offset + chunk]),
                None => dst.fill(0),
            }
            cursor += chunk;
        }
        Ok(())
    }

    fn write_bytes(&mut self, addr: PhysAddr, data: &[u8], owner: OwnerTag) -> Result<(), ()> {
        self.check_range(addr, data.len() as u64)?;
        let mut cursor = 0usize;
        while cursor < data.len() {
            let a = addr + cursor as u64;
            let idx = self.frame_index(a);
            let offset = a.page_offset() as usize;
            let chunk = (PAGE_SIZE as usize - offset).min(data.len() - cursor);
            self.frame_mut(idx)[offset..offset + chunk]
                .copy_from_slice(&data[cursor..cursor + chunk]);
            self.ownership.insert(idx, (owner, true));
            cursor += chunk;
        }
        self.bytes_written += data.len() as u64;
        self.write_ops += 1;
        Ok(())
    }

    fn fill(&mut self, addr: PhysAddr, len: u64, byte: u8, owner: OwnerTag) -> Result<(), ()> {
        if len == 0 {
            return Err(());
        }
        self.check_range(addr, len)?;
        let mut cursor = 0u64;
        while cursor < len {
            let a = addr + cursor;
            let idx = self.frame_index(a);
            let offset = a.page_offset() as usize;
            let chunk = (PAGE_SIZE - offset as u64).min(len - cursor) as usize;
            self.frame_mut(idx)[offset..offset + chunk].fill(byte);
            self.ownership.insert(idx, (owner, true));
            cursor += chunk as u64;
        }
        self.bytes_written += len;
        self.write_ops += 1;
        Ok(())
    }

    fn scrub_range(&mut self, addr: PhysAddr, len: u64) -> Result<(), ()> {
        if len == 0 {
            return Err(());
        }
        self.check_range(addr, len)?;
        let mut cursor = 0u64;
        while cursor < len {
            let a = addr + cursor;
            let idx = self.frame_index(a);
            let offset = a.page_offset() as usize;
            let chunk = (PAGE_SIZE - offset as u64).min(len - cursor) as usize;
            let empty = match self.frames.get_mut(&idx) {
                Some(frame) => {
                    frame[offset..offset + chunk].fill(0);
                    chunk == PAGE_SIZE as usize || frame.iter().all(|&b| b == 0)
                }
                None => true,
            };
            if empty {
                self.ownership.remove(&idx);
            }
            cursor += chunk as u64;
        }
        self.bytes_scrubbed += len;
        self.scrub_ops += 1;
        Ok(())
    }

    fn retire_owner(&mut self, owner: OwnerTag) -> usize {
        let mut count = 0;
        for record in self.ownership.values_mut() {
            if record.0 == owner && record.1 {
                record.1 = false;
                count += 1;
            }
        }
        count
    }

    fn residue_bytes(&self) -> u64 {
        self.ownership
            .iter()
            .filter(|(_, rec)| !rec.1)
            .map(|(idx, _)| {
                self.frames
                    .get(idx)
                    .map(|f| f.iter().filter(|&&b| b != 0).count() as u64)
                    .unwrap_or(0)
            })
            .sum()
    }
}

/// The geometries the harness sweeps: the paper boards' DDR4 interleaving
/// plus degenerate shapes (stripe == page, stripe > page, geometry smaller
/// than the window) that stress the splitting and masking paths.
fn harness_configs() -> Vec<(&'static str, DramConfig)> {
    let base = PhysAddr::new(0x6_0000_0000);
    vec![
        ("tiny-ddr4", DramConfig::tiny_for_tests()),
        (
            "small-rows-ranked",
            DramConfig::custom(
                base,
                4 * 1024 * 1024,
                DdrGeometry {
                    column_bits: 8,
                    bank_bits: 2,
                    bank_group_bits: 2,
                    row_bits: 9,
                    rank_bits: 1,
                },
            ),
        ),
        (
            "stripe-equals-page",
            DramConfig::custom(
                base,
                4 * 1024 * 1024,
                DdrGeometry {
                    column_bits: 12,
                    bank_bits: 1,
                    bank_group_bits: 1,
                    row_bits: 8,
                    rank_bits: 0,
                },
            ),
        ),
        (
            "stripe-larger-than-page",
            DramConfig::custom(
                base,
                4 * 1024 * 1024,
                DdrGeometry {
                    column_bits: 13,
                    bank_bits: 2,
                    bank_group_bits: 1,
                    row_bits: 6,
                    rank_bits: 0,
                },
            ),
        ),
        (
            "window-larger-than-geometry",
            // The geometry addresses 4 KiB; the 1 MiB window wraps its bank
            // bits many times over (the masking path).
            DramConfig::custom(
                base,
                1024 * 1024,
                DdrGeometry {
                    column_bits: 6,
                    bank_bits: 1,
                    bank_group_bits: 1,
                    row_bits: 4,
                    rank_bits: 0,
                },
            ),
        ),
    ]
}

/// One differential run: `ops` seeded operations applied in lockstep to the
/// flat reference, the sharded store, and the sharded store using the
/// bank-parallel scrub/scrape paths, with equivalence asserted after every
/// mutation.
fn run_differential(name: &str, config: DramConfig, seed: u64, ops: usize) {
    let mut rng = seed;
    let mut flat = FlatDram::new(config);
    let mut sharded = Dram::new(config);
    let mut parallel = Dram::new(config);

    let capacity = config.capacity();
    let base = config.base();
    let owners: [OwnerTag; 3] = [OwnerTag::new(10), OwnerTag::new(20), OwnerTag::new(30)];
    // Boundary-heavy span lengths: up to 4 stripes / pages plus change, so
    // requests regularly straddle frame, bank, bank-group and rank borders.
    let max_span = (4 * PAGE_SIZE)
        .max(4 * sharded.stripe_bytes())
        .min(capacity);

    for step in 0..ops {
        let op = splitmix64(&mut rng) % 6;
        let len = 1 + splitmix64(&mut rng) % max_span;
        let addr = base + splitmix64(&mut rng) % (capacity - len + 1);
        let owner = owners[(splitmix64(&mut rng) % owners.len() as u64) as usize];
        let ctx = format!("{name}: step {step} op {op} addr {addr} len {len}");

        match op {
            0 => {
                let byte = (splitmix64(&mut rng) & 0xFF) as u8;
                let data: Vec<u8> = (0..len).map(|i| byte ^ (i % 253) as u8).collect();
                flat.write_bytes(addr, &data, owner).unwrap();
                sharded.write_bytes(addr, &data, owner).unwrap();
                parallel.write_bytes(addr, &data, owner).unwrap();
            }
            1 => {
                let byte = (splitmix64(&mut rng) & 0xFF) as u8;
                flat.fill(addr, len, byte, owner).unwrap();
                sharded.fill(addr, len, byte, owner).unwrap();
                parallel.fill(addr, len, byte, owner).unwrap();
            }
            2 => {
                flat.scrub_range(addr, len).unwrap();
                sharded.scrub_range(addr, len).unwrap();
                // The third instance always scrubs through the bank-parallel
                // path, at a worker count that varies with the sequence.
                let workers = 1 + (splitmix64(&mut rng) % 8) as usize;
                parallel.scrub_banks_parallel(addr, len, workers).unwrap();
            }
            3 => {
                let value = (splitmix64(&mut rng) & 0xFF) as u8;
                flat.write_bytes(addr, &[value], owner).unwrap();
                sharded.write_u8(addr, value, owner).unwrap();
                parallel.write_u8(addr, value, owner).unwrap();
            }
            4 => {
                let retired_flat = flat.retire_owner(owner);
                let retired_sharded = sharded.retire_owner(owner);
                let retired_parallel = parallel.retire_owner(owner);
                assert_eq!(retired_flat, retired_sharded, "{ctx}");
                assert_eq!(retired_sharded, retired_parallel, "{ctx}");
            }
            _ => {
                // Read comparison: flat read vs sharded read vs parallel
                // scrape of the same range.
                let mut a = vec![0u8; len as usize];
                let mut b = vec![0u8; len as usize];
                let mut c = vec![0u8; len as usize];
                flat.read_bytes(addr, &mut a).unwrap();
                sharded.read_bytes(addr, &mut b).unwrap();
                let workers = 1 + (splitmix64(&mut rng) % 8) as usize;
                parallel
                    .scrape_banks_parallel(addr, &mut c, workers)
                    .unwrap();
                assert_eq!(a, b, "{ctx}");
                assert_eq!(b, c, "{ctx}");
            }
        }

        // Cheap invariant after every step; the byte-scan invariants
        // (residue accounting) run periodically, and the expensive
        // full-window sweep once at the end.
        assert_eq!(
            flat.frames.len(),
            sharded.materialized_frames(),
            "{ctx}: materialized frames"
        );
        assert_eq!(
            sharded.materialized_frames(),
            parallel.materialized_frames(),
            "{ctx}"
        );
        if step % 32 == 31 {
            assert_eq!(flat.residue_bytes(), sharded.residue_bytes(), "{ctx}");
            assert_eq!(sharded.residue_bytes(), parallel.residue_bytes(), "{ctx}");
        }
    }
    assert_eq!(flat.residue_bytes(), sharded.residue_bytes(), "{name}");
    assert_eq!(sharded.residue_bytes(), parallel.residue_bytes(), "{name}");

    // Full-window byte sweep: every byte of the window agrees.
    let mut flat_view = vec![0u8; capacity as usize];
    let mut sharded_view = vec![0u8; capacity as usize];
    let mut parallel_view = vec![0u8; capacity as usize];
    flat.read_bytes(base, &mut flat_view).unwrap();
    sharded.read_bytes(base, &mut sharded_view).unwrap();
    parallel
        .scrape_banks_parallel(base, &mut parallel_view, 4)
        .unwrap();
    assert_eq!(flat_view, sharded_view, "{name}: window contents");
    assert_eq!(
        sharded_view, parallel_view,
        "{name}: parallel window scrape"
    );

    // Ownership records agree frame by frame.
    for idx in 0..(capacity / PAGE_SIZE) {
        let frame = (base + idx * PAGE_SIZE).frame_number();
        let flat_rec = flat.ownership.get(&idx).copied();
        let sharded_rec = sharded.frame_ownership(frame).map(|r| (r.owner, r.live));
        assert_eq!(flat_rec, sharded_rec, "{name}: ownership of frame {idx}");
        assert_eq!(
            sharded.frame_ownership(frame),
            parallel.frame_ownership(frame),
            "{name}: parallel ownership of frame {idx}"
        );
    }

    // DramStats counters: the sharded store counts exactly like the flat one,
    // and the parallel paths count exactly like the sequential ones.
    let (written, scrubbed, write_ops, scrub_ops) = sharded.stats().deterministic_view();
    assert_eq!(written, flat.bytes_written, "{name}: bytes written");
    assert_eq!(scrubbed, flat.bytes_scrubbed, "{name}: bytes scrubbed");
    assert_eq!(write_ops, flat.write_ops, "{name}: write ops");
    assert_eq!(scrub_ops, flat.scrub_ops, "{name}: scrub ops");
    assert_eq!(
        parallel.stats().deterministic_view(),
        sharded.stats().deterministic_view(),
        "{name}: parallel stats"
    );
}

#[test]
fn seeded_sequences_are_byte_identical_across_stores() {
    for (name, config) in harness_configs() {
        run_differential(name, config, 0x5EED_0001, 400);
    }
}

#[test]
fn a_second_seed_hits_different_interleavings() {
    for (name, config) in harness_configs() {
        run_differential(name, config, 0xBA2C_CAFE_0002, 250);
    }
}

#[test]
fn sparse_windows_keep_arena_memory_proportional_to_touched_stripes() {
    // A small write cluster deep inside an otherwise untouched window: the
    // arena store must stay byte-identical to the flat reference while its
    // slab footprint tracks the touched stripes, not the window span.
    for (name, config) in harness_configs() {
        let mut flat = FlatDram::new(config);
        let mut arena = Dram::new(config);
        let owner = OwnerTag::new(42);
        let sb = config.geometry().row_bytes();
        let base = config.base();
        let capacity = config.capacity();

        // Two islands of two stripes each, a few stripes apart, at ~3/4 of
        // the window (nowhere near the slabs' natural starting point).
        let island = 2 * sb;
        let first = (3 * capacity / 4 / sb) * sb;
        let second = first + 8 * sb;
        assert!(second + island <= capacity, "{name}: window too small");
        let mut rng = 0xA12A_0007u64;
        for offset in [first, second] {
            let data: Vec<u8> = (0..island).map(|_| splitmix64(&mut rng) as u8).collect();
            flat.write_bytes(base + offset, &data, owner).unwrap();
            arena.write_bytes(base + offset, &data, owner).unwrap();
        }

        // Byte identity over the islands, their surroundings, and cold
        // regions far away at both ends of the window.
        let probe_len = (12 * sb).min(capacity) as usize;
        for probe in [0, first.saturating_sub(sb), capacity - probe_len as u64] {
            let mut a = vec![0u8; probe_len];
            let mut b = vec![0u8; probe_len];
            flat.read_bytes(base + probe, &mut a).unwrap();
            arena.read_bytes(base + probe, &mut b).unwrap();
            assert_eq!(a, b, "{name}: probe at +{probe:#x}");
        }

        // Footprint: exactly the touched stripes are materialized, the
        // slabs cover them, and the total arena extent stays a small
        // multiple of the touched cluster — far below the window capacity.
        let touched = 2 * island / sb;
        assert_eq!(arena.materialized_stripes() as u64, touched, "{name}");
        assert!(
            arena.arena_bytes() >= touched * sb,
            "{name}: slabs must cover the touched stripes"
        );
        assert!(
            arena.arena_bytes() <= capacity / 8,
            "{name}: arena {} bytes for {} touched stripes of {} bytes in a {} byte window",
            arena.arena_bytes(),
            touched,
            sb,
            capacity
        );
    }
}

/// Race-check builds only: the differential sequences drive the bank-parallel
/// scrub/scrape paths hundreds of times; this asserts the shadow-state
/// checker actually audited those runs and found zero cross-worker overlaps
/// (rather than the suite passing because the checker never engaged).
#[cfg(feature = "race-check")]
#[test]
fn race_checker_audits_the_parallel_paths_with_zero_overlaps() {
    use fpga_msa::dram::racecheck;

    let before = racecheck::stats();
    run_differential("tiny-ddr4", DramConfig::tiny_for_tests(), 0x7ACE_C4EC, 200);
    let after = racecheck::stats();
    assert!(
        after.ops_checked > before.ops_checked,
        "parallel ops must pass through the race checker ({before:?} -> {after:?})"
    );
    assert!(
        after.intervals_recorded > before.intervals_recorded,
        "worker intervals must be recorded ({before:?} -> {after:?})"
    );
    assert_eq!(after.overlaps_found, 0, "no cross-worker overlap may exist");
}

#[test]
fn rejected_operations_leave_all_stores_untouched() {
    let config = DramConfig::tiny_for_tests();
    let mut flat = FlatDram::new(config);
    let mut sharded = Dram::new(config);
    let base = config.base();
    let owner = OwnerTag::new(7);

    flat.fill(base, PAGE_SIZE, 0xEE, owner).unwrap();
    sharded.fill(base, PAGE_SIZE, 0xEE, owner).unwrap();

    // The same invalid requests fail on both stores...
    assert!(flat.fill(base, 0, 0, owner).is_err());
    assert!(matches!(
        sharded.fill(base, 0, 0, owner),
        Err(DramError::EmptyRange { .. })
    ));
    assert!(flat.scrub_range(base, u64::MAX).is_err());
    assert!(sharded.scrub_range(base, u64::MAX).is_err());
    assert!(flat.write_bytes(config.end(), &[1], owner).is_err());
    assert!(sharded.write_bytes(config.end(), &[1], owner).is_err());
    assert!(matches!(
        sharded.scrub_banks_parallel(base, PAGE_SIZE, 0),
        Err(DramError::ZeroWorkers)
    ));

    // ...and nothing moved: contents and counters still agree.
    let mut a = vec![0u8; PAGE_SIZE as usize];
    let mut b = vec![0u8; PAGE_SIZE as usize];
    flat.read_bytes(base, &mut a).unwrap();
    sharded.read_bytes(base, &mut b).unwrap();
    assert_eq!(a, b);
    assert_eq!(
        sharded.stats().deterministic_view(),
        (
            flat.bytes_written,
            flat.bytes_scrubbed,
            flat.write_ops,
            flat.scrub_ops
        )
    );
    assert_eq!(sharded.stats().parallel_scrub_ops(), 0);
}
