//! Integration tests: cross-crate invariants of the simulation substrates.

use fpga_msa::debugger::DebugSession;
use fpga_msa::dram::{SanitizePolicy, PAGE_SIZE};
use fpga_msa::petalinux::procfs;
use fpga_msa::petalinux::{BoardConfig, Kernel, Shell, UserId};
use fpga_msa::vitis::{DpuRunner, Image, ModelKind};

#[test]
fn procfs_views_agree_with_debugger_views() {
    let mut kernel = Kernel::boot(BoardConfig::tiny_for_tests());
    let run = DpuRunner::new(ModelKind::SqueezeNet)
        .launch(&mut kernel, UserId::new(0))
        .unwrap();
    let shell = Shell::new(UserId::new(1));
    let mut debugger = DebugSession::connect(UserId::new(1));

    // ps -ef and the debugger's process list agree.
    let listing = shell.ps_ef(&kernel);
    let via_ps = procfs::parse_pid_for_command(&listing, "squeezenet").unwrap();
    let via_dbg = debugger.find_pid(&kernel, "squeezenet").unwrap();
    assert_eq!(via_ps, via_dbg.as_u32());
    assert_eq!(via_dbg, run.pid());

    // The maps file and the pagemap agree on the heap's extent.
    let maps = shell.cat_maps(&kernel, run.pid()).unwrap();
    let (heap_start, heap_end) = procfs::parse_heap_range(&maps).unwrap();
    let pages = (heap_end.offset_from(heap_start) / PAGE_SIZE) as usize;
    let entries = debugger
        .read_pagemap(&kernel, run.pid(), heap_start, pages)
        .unwrap();
    assert!(entries.iter().all(|e| e.is_present()));

    // Every pagemap-derived physical address reads back the same bytes the
    // process sees through its own virtual mapping.
    for (i, entry) in entries.iter().enumerate().step_by(7) {
        let va = heap_start + (i as u64) * PAGE_SIZE;
        let pa = entry.frame_number().unwrap().base_address();
        let phys = debugger.read_phys_range(&kernel, pa, 64).unwrap();
        let mut virt = vec![0u8; 64];
        kernel
            .read_process_memory(run.pid(), va, &mut virt)
            .unwrap();
        assert_eq!(phys, virt, "mismatch at heap page {i}");
    }
}

#[test]
fn residue_accounting_matches_what_the_attacker_can_read() {
    let mut kernel = Kernel::boot(BoardConfig::tiny_for_tests());
    let run = DpuRunner::new(ModelKind::MobileNetV2)
        .with_input(Image::corrupted(224, 224))
        .run_to_completion(&mut kernel, UserId::new(0))
        .unwrap();

    // The kernel reports residue frames for exactly the victim's heap size.
    let expected_frames = (run.layout().heap_len / PAGE_SIZE) as usize;
    assert_eq!(kernel.residue_frame_count(), expected_frames);

    // And the DRAM's residue-byte accounting is non-trivial (the heap holds
    // the model, weights and image).
    assert!(kernel.dram().residue_bytes() > run.layout().heap_len / 2);
}

#[test]
fn background_scrub_window_closes_after_the_deadline() {
    let delay = 500;
    let mut kernel = Kernel::boot(
        BoardConfig::tiny_for_tests()
            .with_sanitize_policy(SanitizePolicy::Background { delay_ticks: delay }),
    );
    let run = DpuRunner::new(ModelKind::SqueezeNet)
        .with_input(Image::corrupted(224, 224))
        .run_to_completion(&mut kernel, UserId::new(0))
        .unwrap();
    assert_eq!(kernel.pending_scrubs(), 1);
    assert!(kernel.residue_frame_count() > 0);

    // Before the deadline the residue is there; after it, it is gone.
    kernel.tick(delay / 2);
    assert!(kernel.dram().residue_bytes() > 0);
    kernel.tick(delay);
    assert_eq!(kernel.pending_scrubs(), 0);
    assert_eq!(kernel.dram().residue_bytes(), 0);
    drop(run);
}

#[test]
fn sanitizing_boards_free_frames_for_reuse_without_leaking_data() {
    let mut kernel = Kernel::boot(
        BoardConfig::tiny_for_tests().with_sanitize_policy(SanitizePolicy::ZeroOnFree),
    );
    // Run the same model twice; the second run reuses the first run's frames.
    let first = DpuRunner::new(ModelKind::SqueezeNet)
        .with_input(Image::corrupted(224, 224))
        .run_to_completion(&mut kernel, UserId::new(0))
        .unwrap();
    let second = DpuRunner::new(ModelKind::SqueezeNet)
        .launch(&mut kernel, UserId::new(2))
        .unwrap();
    assert_eq!(first.model(), second.model());
    // The new process's heap (whose frames are reused from the first run by
    // the LIFO allocator) contains no corrupted-image residue beyond its own
    // (sample-photo) input.
    let heap_base = kernel.process(second.pid()).unwrap().heap_base();
    let mut probe = vec![0u8; 4096];
    kernel
        .read_process_memory(
            second.pid(),
            heap_base + second.layout().image_offset,
            &mut probe,
        )
        .unwrap();
    assert!(
        !probe.windows(16).any(|w| w.iter().all(|&b| b == 0xFF)),
        "previous tenant's corrupted image leaked into the new process"
    );
    assert_eq!(kernel.residue_frame_count(), 0);
}

#[test]
fn zcu104_and_zcu102_presets_differ_only_in_capacity_for_the_attack() {
    for board in [BoardConfig::zcu104(), BoardConfig::zcu102()] {
        let mut kernel = Kernel::boot(board);
        let run = DpuRunner::new(ModelKind::Resnet50Pt)
            .run_to_completion(&mut kernel, UserId::new(0))
            .unwrap();
        assert!(kernel.residue_frame_count() > 0);
        assert_eq!(run.model(), ModelKind::Resnet50Pt);
        // Physical frames live in the board's high DRAM window, as in the
        // paper's devmem addresses.
        let residue_frame = kernel.dram().residue_frames().next().unwrap().0;
        assert!(board.dram().contains_frame(residue_frame));
    }
}
