//! Guards the `examples/` directory against rot: asserts every example in
//! the manifest compiles, and that the set of example files on disk matches
//! what this test expects (so adding an example without coverage fails too).

use std::collections::BTreeSet;
use std::path::Path;
use std::process::Command;

/// Every example shipped with the facade crate. Update this list (and the
/// README) when adding an example.
const EXPECTED_EXAMPLES: &[&str] = &[
    "defense_evaluation",
    "full_attack",
    "model_fingerprinting",
    "multi_tenant",
    "quickstart",
    "streaming_campaign",
];

#[test]
fn examples_directory_matches_expected_set() {
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let examples_dir = Path::new(manifest_dir).join("examples");
    let on_disk: BTreeSet<String> = std::fs::read_dir(&examples_dir)
        .expect("examples/ directory exists")
        .filter_map(|entry| {
            let path = entry.expect("readable dir entry").path();
            if path.extension().is_some_and(|ext| ext == "rs") {
                Some(path.file_stem().unwrap().to_string_lossy().into_owned())
            } else {
                None
            }
        })
        .collect();
    let expected: BTreeSet<String> = EXPECTED_EXAMPLES.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        on_disk, expected,
        "examples/*.rs drifted from EXPECTED_EXAMPLES; update the smoke test and README"
    );
}

#[test]
fn all_examples_build() {
    let cargo = env!("CARGO");
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    // `cargo test` has already released the build lock by the time tests
    // run, so a nested build of the same workspace is safe (and mostly a
    // cache hit after `cargo test` itself built the examples).
    let output = Command::new(cargo)
        .args(["build", "--examples", "--quiet"])
        .current_dir(manifest_dir)
        .output()
        .expect("cargo is runnable from a test");
    assert!(
        output.status.success(),
        "`cargo build --examples` failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}
