//! Property suite: the streaming fold *is* the batch fold.
//!
//! Random axis matrices — 0 to 5 boards crossed with randomly sized model /
//! input / defense / scrape / schedule axes (optional axes randomly absent)
//! — are streamed through the synthetic executor and compared field for
//! field against a serial accumulation over `expand()`: campaign totals and
//! every per-axis `GroupStats`.  Zero-cell matrices must come back as the
//! typed `AttackError::EmptyCampaign` without ever spawning (or hanging)
//! the pool.

// Lint audit: indexes and slice bounds here are established by the
// surrounding length checks / loop invariants before use.
#![allow(clippy::indexing_slicing)]

use fpga_msa::dram::{RemanenceModel, SanitizePolicy};
use fpga_msa::msa::campaign::{CampaignAccumulator, CampaignSpec, InputKind, StreamConfig};
use fpga_msa::msa::scenario::VictimSchedule;
use fpga_msa::msa::{AttackError, ScrapeMode};
use fpga_msa::petalinux::{BoardConfig, IsolationPolicy};
use fpga_msa::vitis::ModelKind;
use proptest::prelude::*;

/// Builds a spec from sampled axis sizes.  `boards` may be zero (an empty
/// board axis is the one legal zero-cell spec); for the optional override
/// axes a zero count means "absent" (inherit the board's own setting),
/// which is how the builder API expresses an empty axis.
#[allow(clippy::too_many_arguments)]
fn spec_from(
    boards: usize,
    models: usize,
    inputs: usize,
    sanitize: usize,
    isolation: usize,
    remanence: usize,
    scrape: usize,
    schedules: usize,
    seed: u64,
) -> CampaignSpec {
    let board_axis = (0..boards)
        .map(|i| (format!("board-{i}"), BoardConfig::tiny_for_tests()))
        .collect();
    let mut spec = CampaignSpec::over_boards(board_axis).with_seed(seed);

    let model_pool = [
        ModelKind::SqueezeNet,
        ModelKind::MobileNetV2,
        ModelKind::EfficientNetLite,
    ];
    spec = spec.with_models(model_pool[..models].to_vec());

    let input_pool = [InputKind::SamplePhoto, InputKind::Corrupted];
    spec = spec.with_inputs(input_pool[..inputs].to_vec());

    let sanitize_pool = [
        SanitizePolicy::None,
        SanitizePolicy::ZeroOnFree,
        SanitizePolicy::SelectiveScrub,
    ];
    if sanitize > 0 {
        spec = spec.with_sanitize_policies(sanitize_pool[..sanitize].to_vec());
    }

    let isolation_pool = [IsolationPolicy::Permissive, IsolationPolicy::Confined];
    if isolation > 0 {
        spec = spec.with_isolation_policies(isolation_pool[..isolation].to_vec());
    }

    let remanence_pool = [
        RemanenceModel::Perfect,
        RemanenceModel::Exponential { half_life_ticks: 2 },
    ];
    if remanence > 0 {
        spec = spec.with_remanence_models(remanence_pool[..remanence].to_vec());
    }

    let scrape_pool = [ScrapeMode::ContiguousRange, ScrapeMode::PerPage];
    spec = spec.with_scrape_modes(scrape_pool[..scrape].to_vec());

    let schedule_pool = [
        VictimSchedule::Single,
        VictimSchedule::Revival {
            successors: 1,
            reuse_pid: true,
        },
        VictimSchedule::LiveTraffic {
            tenants: 1,
            churn_rate: 1,
        },
    ];
    spec = spec.with_schedules(schedule_pool[..schedules].to_vec());

    spec
}

proptest! {
    #[test]
    fn streaming_fold_matches_batch_accumulation(
        boards in 0usize..6,
        models in 1usize..4,
        inputs in 1usize..3,
        sanitize in 0usize..4,
        isolation in 0usize..3,
        remanence in 0usize..3,
        scrape in 1usize..3,
        schedules in 1usize..4,
        workers in 1usize..5,
        block in 1usize..8,
        seed in any::<u64>(),
    ) {
        let spec = spec_from(
            boards, models, inputs, sanitize, isolation, remanence, scrape,
            schedules, seed,
        );
        let config = StreamConfig::default()
            .with_workers(workers)
            .with_block_size(block);
        let streamed = spec.stream_with_executor(
            config,
            |cell| Ok(cell.synthetic_record()),
            |_| Ok(()),
            |_| {},
        );

        if spec.cell_count() == 0 {
            // The empty matrix is refused before the pool spawns, with the
            // typed error — never a hang, never a degenerate summary.
            prop_assert!(matches!(streamed, Err(AttackError::EmptyCampaign)));
            prop_assert!(spec.expand().is_empty());
            continue;
        }

        let summary = streamed.unwrap();

        // Serial reference: materialize the matrix and fold it in index
        // order through the same accumulator type the engine uses.
        let mut reference = CampaignAccumulator::new();
        for cell in spec.expand() {
            reference.absorb(&cell.synthetic_record());
        }

        // Every GroupStats field, campaign-wide and per axis group
        // (GroupStats is PartialEq over all of its fields, means and M2
        // included, so these are exact bitwise f64 comparisons).
        prop_assert_eq!(&summary.totals, reference.totals());
        prop_assert_eq!(&summary.axes, reference.axes());
        prop_assert_eq!(summary.cells_total, spec.cell_count());
    }
}

#[test]
fn empty_board_axis_is_a_typed_error_not_a_hang() {
    let spec = spec_from(0, 2, 1, 1, 0, 0, 1, 1, 7);
    assert_eq!(spec.cell_count(), 0);

    // Both engines refuse the empty matrix with the same typed error.
    assert!(matches!(
        spec.stream(StreamConfig::default().with_workers(8)),
        Err(AttackError::EmptyCampaign)
    ));
    assert!(matches!(spec.run(), Err(AttackError::EmptyCampaign)));
}
