//! Integration tests: the full attack across models, inputs and boards.

// Lint audit: narrowing casts here operate on values already clamped
// to their target range by the surrounding arithmetic.
#![allow(clippy::cast_possible_truncation)]

use fpga_msa::debugger::DebugSession;
use fpga_msa::msa::attack::{AttackConfig, AttackPipeline, ScrapeMode};
use fpga_msa::msa::profile::Profiler;
use fpga_msa::msa::scenario::AttackScenario;
use fpga_msa::petalinux::{BoardConfig, Kernel, UserId};
use fpga_msa::vitis::{DpuRunner, Image, ModelKind};

#[test]
fn paper_scenario_recovers_model_and_corrupted_image_on_zcu104() {
    let outcome = AttackScenario::new(BoardConfig::zcu104(), ModelKind::Resnet50Pt)
        .with_corrupted_input()
        .execute()
        .expect("attack completes on the stock board");

    assert_eq!(outcome.identified_model(), Some(ModelKind::Resnet50Pt));
    assert!(outcome.attack().identification_confidence() >= 0.5);
    assert!(outcome.pixel_recovery_rate() > 0.99);
    assert!(!outcome.attack().marker_runs.is_empty());
    assert!(outcome.residue_frames_after() > 0);
    assert_eq!(outcome.denied_operations(), 0);
}

#[test]
fn attack_generalizes_to_zcu102() {
    let outcome = AttackScenario::new(BoardConfig::zcu102(), ModelKind::Resnet50Pt)
        .with_corrupted_input()
        .execute()
        .expect("attack completes on the ZCU102 preset");
    assert!(outcome.model_identification_correct());
    assert!(outcome.pixel_recovery_rate() > 0.99);
}

#[test]
fn natural_photo_input_is_recovered_via_profiled_offset() {
    // Without a marker image, reconstruction must rely on offline profiling.
    let outcome = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::MobileNetV2)
        .execute()
        .expect("attack completes");
    assert!(outcome.model_identification_correct());
    assert!(outcome.attack().marker_runs.is_empty());
    assert!(outcome.pixel_recovery_rate() > 0.99);
}

#[test]
fn every_zoo_model_is_identified_correctly() {
    let board = BoardConfig::tiny_for_tests();
    let profiles = Profiler::new(board).profile_all();
    for model in ModelKind::all() {
        let outcome = AttackScenario::new(board, model)
            .with_profiles(profiles.clone())
            .execute()
            .unwrap_or_else(|e| panic!("attack on {model} failed: {e}"));
        assert_eq!(
            outcome.identified_model(),
            Some(model),
            "victim {model} misidentified"
        );
        assert!(
            outcome.pixel_recovery_rate() > 0.99,
            "victim {model} image not recovered"
        );
    }
}

#[test]
fn per_page_and_contiguous_scraping_agree_on_the_default_board() {
    let board = BoardConfig::tiny_for_tests();
    for mode in [ScrapeMode::ContiguousRange, ScrapeMode::PerPage] {
        let outcome = AttackScenario::new(board, ModelKind::SqueezeNet)
            .with_corrupted_input()
            .with_attack_config(AttackConfig {
                scrape_mode: mode,
                ..AttackConfig::default()
            })
            .execute()
            .expect("attack completes");
        assert!(outcome.model_identification_correct(), "{mode} failed");
        assert!(outcome.pixel_recovery_rate() > 0.99, "{mode} failed");
    }
}

#[test]
fn attack_steps_compose_manually_across_crates() {
    // Drive the pipeline step by step instead of through AttackScenario, so
    // the substrate crates are exercised exactly the way a downstream user
    // would chain them.
    let board = BoardConfig::tiny_for_tests();
    let profiles = Profiler::new(board).profile_all();
    let pipeline = AttackPipeline::new(AttackConfig::default()).with_profiles(profiles);

    let mut kernel = Kernel::boot(board);
    let input = Image::sample_photo(224, 224);
    let victim = DpuRunner::new(ModelKind::DenseNet161)
        .with_input(input.clone())
        .launch(&mut kernel, UserId::new(0))
        .expect("victim launches");

    let mut debugger = DebugSession::connect(UserId::new(1));
    let pid = pipeline
        .poll_for_victim(&mut debugger, &kernel)
        .expect("victim found");
    assert_eq!(pid, victim.pid());

    let observation = pipeline
        .observe_victim(&mut debugger, &kernel, pid)
        .expect("translation captured");
    assert!(observation.translation().completeness() > 0.99);

    // Scraping before termination is refused.
    assert!(pipeline
        .scrape_after_termination(&mut debugger, &kernel, &observation)
        .is_err());

    victim.terminate(&mut kernel).expect("victim terminates");
    let outcome = pipeline
        .execute(&mut debugger, &kernel, &observation)
        .expect("attack completes");

    assert_eq!(outcome.identified_model(), Some(ModelKind::DenseNet161));
    assert_eq!(outcome.image_recovery_rate(&input), 1.0);
    assert!(outcome.dump_coverage > 0.99);

    // The debugger audit trail shows the attack's signature: a maps read, a
    // pagemap read and a large physical read.
    assert!(debugger.audit().physical_bytes_read() as usize >= outcome.bytes_scraped);
    assert!(debugger.audit().inspections_of(pid) >= 2);
}

#[test]
fn weights_are_present_in_the_scraped_dump() {
    // Beyond the image, the residue contains the model's weight blob at the
    // profiled offset — checked here against the public weights the attacker
    // already has.
    let board = BoardConfig::tiny_for_tests();
    let profiler = Profiler::new(board);
    let profile = profiler.profile_model(ModelKind::SqueezeNet).unwrap();
    let weights_offset = profile.weights_offset.expect("weights located");

    let pipeline = AttackPipeline::new(AttackConfig::default());
    let mut kernel = Kernel::boot(board);
    let victim = DpuRunner::new(ModelKind::SqueezeNet)
        .launch(&mut kernel, UserId::new(0))
        .unwrap();
    let mut debugger = DebugSession::connect(UserId::new(1));
    let observation = pipeline.poll_and_observe(&mut debugger, &kernel).unwrap();
    victim.terminate(&mut kernel).unwrap();
    let dump = pipeline
        .scrape_after_termination(&mut debugger, &kernel, &observation)
        .unwrap();

    let expected = fpga_msa::vitis::weights::quantized_weights(ModelKind::SqueezeNet);
    let recovered = dump
        .slice(weights_offset, expected.len())
        .expect("dump covers the weight blob");
    assert_eq!(recovered, &expected[..], "weight blob mismatch");
}
