//! Integration tests: offline profiling transfers to the victim board.
//!
//! The attack's key enabler (paper §VI, third finding) is that PetaLinux's
//! deterministic layout lets offsets learned on the attacker's own board be
//! replayed against the victim.  These tests verify the transfer property and
//! its limits.

use fpga_msa::debugger::DebugSession;
use fpga_msa::msa::attack::{AttackConfig, AttackPipeline};
use fpga_msa::msa::profile::{ProfileDatabase, Profiler};
use fpga_msa::msa::scenario::AttackScenario;
use fpga_msa::petalinux::{BoardConfig, Kernel, UserId};
use fpga_msa::vitis::runner::heap_image;
use fpga_msa::vitis::{DpuRunner, Image, ModelKind};

#[test]
fn profiles_match_the_runtime_layout_for_every_model() {
    let profiler = Profiler::new(BoardConfig::tiny_for_tests());
    for model in ModelKind::all() {
        let profile = profiler.profile_model(model).unwrap();
        let (w, h) = model.input_dims();
        let (_, layout) = heap_image(model, &Image::profiling_sentinel(w, h));
        assert_eq!(profile.image_offset, layout.image_offset, "{model}");
        assert_eq!(profile.heap_len, layout.heap_len, "{model}");
    }
}

#[test]
fn profile_learned_on_a_separate_board_instance_transfers_to_the_victim() {
    // Profile on one kernel instance...
    let profiles = Profiler::new(BoardConfig::tiny_for_tests()).profile_all();

    // ...and attack a victim on a *different* kernel instance that has also
    // run other workloads first.  The prior workload fragments the physical
    // frame pool (freed frames are reused in LIFO order), so the attacker
    // uses the per-page scraping strategy; the *heap-relative* offsets from
    // the profile still transfer because the virtual layout is unchanged.
    let board = BoardConfig::tiny_for_tests();
    let mut kernel = Kernel::boot(board);
    let warmup = DpuRunner::new(ModelKind::SqueezeNet)
        .run_to_completion(&mut kernel, UserId::new(0))
        .unwrap();
    assert!(kernel.process(warmup.pid()).is_ok());

    let pipeline = AttackPipeline::new(AttackConfig {
        victim_pattern: Some("resnet50_pt".to_string()),
        scrape_mode: fpga_msa::msa::attack::ScrapeMode::PerPage,
        ..AttackConfig::default()
    })
    .with_profiles(profiles);

    let input = Image::sample_photo(224, 224);
    let victim = DpuRunner::new(ModelKind::Resnet50Pt)
        .with_input(input.clone())
        .launch(&mut kernel, UserId::new(0))
        .unwrap();
    let mut debugger = DebugSession::connect(UserId::new(1));
    let observation = pipeline.poll_and_observe(&mut debugger, &kernel).unwrap();
    victim.terminate(&mut kernel).unwrap();
    let outcome = pipeline
        .execute(&mut debugger, &kernel, &observation)
        .unwrap();

    assert_eq!(outcome.identified_model(), Some(ModelKind::Resnet50Pt));
    assert_eq!(outcome.image_recovery_rate(&input), 1.0);
}

#[test]
fn profiles_are_model_specific_and_wrong_profiles_hurt_reconstruction() {
    let board = BoardConfig::tiny_for_tests();
    let profiler = Profiler::new(board);
    let resnet = profiler.profile_model(ModelKind::Resnet50Pt).unwrap();
    let squeeze = profiler.profile_model(ModelKind::SqueezeNet).unwrap();
    assert_ne!(resnet.image_offset, squeeze.image_offset);

    // Build a database that deliberately stores squeezenet's offset under
    // resnet50's key: reconstruction then misses the image.
    let mut wrong = ProfileDatabase::new();
    wrong.insert(fpga_msa::msa::profile::ModelProfile {
        model: ModelKind::Resnet50Pt,
        image_offset: squeeze.image_offset,
        weights_offset: None,
        heap_len: resnet.heap_len,
    });
    let outcome = AttackScenario::new(board, ModelKind::Resnet50Pt)
        .with_profiles(wrong)
        .execute()
        .unwrap();
    // Model identification still works (strings), but the image does not
    // reconstruct from the wrong offset.
    assert!(outcome.model_identification_correct());
    assert!(outcome.pixel_recovery_rate() < 0.5);
}

#[test]
fn without_profiles_only_marker_images_can_be_reconstructed() {
    let board = BoardConfig::tiny_for_tests();

    // Marker (corrupted) input: the fallback finds it without any profile.
    let corrupted = AttackScenario::new(board, ModelKind::Resnet50Pt)
        .with_corrupted_input()
        .with_offline_profiling(false)
        .execute()
        .unwrap();
    assert!(corrupted.pixel_recovery_rate() > 0.99);

    // Natural photo input: no profile, no marker, no reconstruction — but the
    // model is still identified from strings.
    let photo = AttackScenario::new(board, ModelKind::Resnet50Pt)
        .with_offline_profiling(false)
        .execute()
        .unwrap();
    assert!(photo.model_identification_correct());
    assert!(!photo.attack().has_reconstructed_image());
    assert_eq!(photo.pixel_recovery_rate(), 0.0);
}
