//! Integration tests: the defender-side detector and the string-free
//! weight-fingerprint identification, exercised over real attack sessions.

use fpga_msa::debugger::DebugSession;
use fpga_msa::msa::analysis::weights::{identify_model_by_weights, match_weights};
use fpga_msa::msa::attack::{AttackConfig, AttackPipeline};
use fpga_msa::msa::detect::{DetectorConfig, ScrapingDetector, Severity};
use fpga_msa::petalinux::{BoardConfig, IsolationPolicy, Kernel, UserId};
use fpga_msa::vitis::{DpuRunner, Image, ModelKind};

#[test]
fn detector_flags_the_attack_and_ignores_the_victim_itself() {
    let mut kernel = Kernel::boot(BoardConfig::tiny_for_tests());
    let victim = DpuRunner::new(ModelKind::Resnet50Pt)
        .with_input(Image::corrupted(224, 224))
        .launch(&mut kernel, UserId::new(0))
        .unwrap();
    let victim_pid = victim.pid();

    // The victim's own (benign) debugger activity.
    let mut own_debugger = DebugSession::connect(UserId::new(0));
    own_debugger.read_maps(&kernel, victim_pid).unwrap();

    // The attacker's session.
    let pipeline = AttackPipeline::new(AttackConfig::default());
    let mut attacker = DebugSession::connect(UserId::new(1));
    let observation = pipeline.poll_and_observe(&mut attacker, &kernel).unwrap();
    victim.terminate(&mut kernel).unwrap();
    pipeline
        .execute(&mut attacker, &kernel, &observation)
        .unwrap();

    let detector = ScrapingDetector::new(DetectorConfig::default());
    let attacker_finding = detector
        .inspect(&kernel, attacker.user(), attacker.audit())
        .expect("attack session flagged");
    assert_eq!(attacker_finding.severity, Severity::Critical);
    assert_eq!(attacker_finding.target, Some(victim_pid));

    assert!(
        detector
            .inspect(&kernel, own_debugger.user(), own_debugger.audit())
            .is_none(),
        "the victim's own debugging must not be flagged"
    );
}

#[test]
fn confined_boards_leave_only_denied_operations_in_the_audit_log() {
    let mut kernel =
        Kernel::boot(BoardConfig::tiny_for_tests().with_isolation(IsolationPolicy::Confined));
    let victim = DpuRunner::new(ModelKind::SqueezeNet)
        .launch(&mut kernel, UserId::new(0))
        .unwrap();
    let pipeline = AttackPipeline::new(AttackConfig::default());
    let mut attacker = DebugSession::connect(UserId::new(1));
    assert!(pipeline.poll_and_observe(&mut attacker, &kernel).is_err());
    drop(victim);

    assert!(attacker.audit().denied_count() > 0);
    assert_eq!(attacker.audit().physical_bytes_read(), 0);
}

#[test]
fn weight_fingerprinting_agrees_with_string_identification_on_real_dumps() {
    let board = BoardConfig::tiny_for_tests();
    for model in [ModelKind::Resnet50Pt, ModelKind::YoloV3, ModelKind::Vgg16] {
        let pipeline = AttackPipeline::new(AttackConfig::default());
        let mut kernel = Kernel::boot(board);
        let victim = DpuRunner::new(model)
            .launch(&mut kernel, UserId::new(0))
            .unwrap();
        let mut debugger = DebugSession::connect(UserId::new(1));
        let observation = pipeline.poll_and_observe(&mut debugger, &kernel).unwrap();
        victim.terminate(&mut kernel).unwrap();
        let dump = pipeline
            .scrape_after_termination(&mut debugger, &kernel, &observation)
            .unwrap();

        let by_strings = pipeline.analyze(&dump).identified.map(|m| m.model);
        let by_weights = identify_model_by_weights(&dump).map(|m| m.model);
        assert_eq!(by_strings, Some(model));
        assert_eq!(by_weights, Some(model));

        // The weight match locates the blob where the profiler would.
        let matched = match_weights(&dump)
            .into_iter()
            .find(|m| m.model == model)
            .unwrap();
        assert!(matched.blob_match_fraction > 0.99);
    }
}
