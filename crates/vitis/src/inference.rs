//! A reduced but real forward pass.
//!
//! The attack does not depend on what the model computes, but the victim
//! workload should actually *use* the data placed in its heap (weights and
//! input image) so the simulated runtime exercises the same read/write
//! pattern a real accelerator run does: read image, read weights, write an
//! output tensor.  The network here is a small conv → ReLU → global-average
//! pool → fully-connected classifier over a downsampled input.

// Lint audit: address arithmetic here is bounds-checked against the
// DRAM window before any narrowing cast or direct index; offsets are
// derived from validated window-relative coordinates.
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use crate::image::Image;
use crate::model::ModelKind;
use crate::weights;

/// Side length of the downsampled working resolution.
const WORKING_DIM: usize = 32;
/// Number of convolution filters.
const CONV_FILTERS: usize = 8;
/// Convolution kernel size.
const KERNEL: usize = 3;

/// Runs the reduced forward pass of `model` over `input`, returning the
/// logits (one per output class).
///
/// The computation is deterministic: identical `(model, input)` pairs give
/// identical logits.
pub fn run_inference(model: ModelKind, input: &Image) -> Vec<f32> {
    let gray = downsample_grayscale(input, WORKING_DIM);
    let w = weights::float_weights(model);

    // Convolution weights come from the front of the weight blob, classifier
    // weights from the back; both regions exist for every zoo model because
    // the minimum simulated parameter count exceeds what is consumed here.
    let conv_needed = CONV_FILTERS * KERNEL * KERNEL;
    let conv_w = &w[..conv_needed.min(w.len())];

    let mut feature_maps = [0f32; CONV_FILTERS];
    let out_dim = WORKING_DIM - KERNEL + 1;
    for (f, map) in feature_maps.iter_mut().enumerate() {
        let mut accum = 0f32;
        for y in 0..out_dim {
            for x in 0..out_dim {
                let mut v = 0f32;
                for ky in 0..KERNEL {
                    for kx in 0..KERNEL {
                        let pixel = gray[(y + ky) * WORKING_DIM + (x + kx)];
                        let weight = conv_w
                            .get(f * KERNEL * KERNEL + ky * KERNEL + kx)
                            .copied()
                            .unwrap_or(0.0);
                        v += pixel * weight;
                    }
                }
                // ReLU then accumulate for global average pooling.
                accum += v.max(0.0);
            }
        }
        *map = accum / (out_dim * out_dim) as f32;
    }

    let classes = model.output_classes();
    let fc_region = &w[w.len().saturating_sub(classes * CONV_FILTERS)..];
    let mut logits = vec![0f32; classes];
    for (c, logit) in logits.iter_mut().enumerate() {
        let mut v = 0f32;
        for (f, feature) in feature_maps.iter().enumerate() {
            let weight = fc_region.get(c * CONV_FILTERS + f).copied().unwrap_or(
                // Wrap around deterministically when the scaled blob is
                // smaller than the classifier needs.
                w[(c * CONV_FILTERS + f) % w.len()],
            );
            v += feature * weight;
        }
        *logit = v;
    }
    logits
}

/// Index of the largest logit (the predicted class).
pub fn argmax(logits: &[f32]) -> Option<usize> {
    if logits.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, v) in logits.iter().enumerate() {
        if *v > logits[best] {
            best = i;
        }
    }
    Some(best)
}

fn downsample_grayscale(image: &Image, dim: usize) -> Vec<f32> {
    let mut out = vec![0f32; dim * dim];
    let (w, h) = (image.width().max(1), image.height().max(1));
    for (i, slot) in out.iter_mut().enumerate() {
        let y = (i / dim) as u32 * h / dim as u32;
        let x = (i % dim) as u32 * w / dim as u32;
        let [r, g, b] = image.pixel(x.min(w - 1), y.min(h - 1));
        *slot = (0.299 * r as f32 + 0.587 * g as f32 + 0.114 * b as f32) / 255.0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_deterministic() {
        let img = Image::sample_photo(64, 64);
        let a = run_inference(ModelKind::Resnet50Pt, &img);
        let b = run_inference(ModelKind::Resnet50Pt, &img);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1000);
    }

    #[test]
    fn different_inputs_give_different_logits() {
        let a = run_inference(ModelKind::Resnet50Pt, &Image::sample_photo(64, 64));
        let b = run_inference(ModelKind::Resnet50Pt, &Image::corrupted(64, 64));
        assert_ne!(a, b);
    }

    #[test]
    fn different_models_give_different_logits() {
        let img = Image::sample_photo(64, 64);
        let a = run_inference(ModelKind::Resnet50Pt, &img);
        let b = run_inference(ModelKind::DenseNet161, &img);
        assert_ne!(a, b);
    }

    #[test]
    fn output_length_matches_model_classes() {
        let img = Image::sample_photo(32, 32);
        for model in ModelKind::all() {
            let logits = run_inference(model, &img);
            assert_eq!(logits.len(), model.output_classes());
            assert!(logits.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn argmax_behaviour() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0]), Some(0));
        assert_eq!(argmax(&[0.5, 2.0, -1.0]), Some(1));
        // Ties resolve to the first maximum.
        assert_eq!(argmax(&[3.0, 3.0]), Some(0));
    }

    #[test]
    fn tiny_images_do_not_panic() {
        let img = Image::solid(1, 1, [10, 20, 30]);
        let logits = run_inference(ModelKind::SqueezeNet, &img);
        assert_eq!(logits.len(), 1000);
    }
}
