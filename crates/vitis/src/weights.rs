//! Deterministic synthetic model weights.
//!
//! The attack does not interpret weight values — it only needs a weight blob
//! of the right (relative) size sitting in the victim's heap.  Weights are
//! generated from a xorshift stream seeded by the model name, so every run of
//! a given model places bit-identical weights at the same heap offsets, which
//! is the determinism the paper's offline profiling exploits.

// Lint audit: address arithmetic here is bounds-checked against the
// DRAM window before any narrowing cast or direct index; offsets are
// derived from validated window-relative coordinates.
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use crate::model::ModelKind;

/// Quantized (int8) weights for `model`, `simulated_param_count()` bytes long.
pub fn quantized_weights(model: ModelKind) -> Vec<u8> {
    let mut state = seed_for(model);
    let count = model.simulated_param_count() as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        state = xorshift(state);
        out.push((state & 0xFF) as u8);
    }
    out
}

/// Floating-point weights for `model`, scaled to roughly unit variance.
pub fn float_weights(model: ModelKind) -> Vec<f32> {
    let mut state = seed_for(model);
    let count = model.simulated_param_count() as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        state = xorshift(state);
        // Map to [-1, 1).
        let unit = ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
        out.push(unit as f32);
    }
    out
}

/// Seed derived from the model's name (FNV-1a).
pub fn seed_for(model: ModelKind) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in model.name().bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    if hash == 0 {
        1
    } else {
        hash
    }
}

fn xorshift(mut x: u64) -> u64 {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_deterministic_per_model() {
        assert_eq!(
            quantized_weights(ModelKind::Resnet50Pt),
            quantized_weights(ModelKind::Resnet50Pt)
        );
        assert_eq!(
            float_weights(ModelKind::SqueezeNet),
            float_weights(ModelKind::SqueezeNet)
        );
    }

    #[test]
    fn different_models_have_different_weights_and_sizes() {
        let resnet = quantized_weights(ModelKind::Resnet50Pt);
        let squeeze = quantized_weights(ModelKind::SqueezeNet);
        assert_ne!(resnet.len(), squeeze.len());
        assert_ne!(&resnet[..64], &squeeze[..64]);
        assert_ne!(
            seed_for(ModelKind::Resnet50Pt),
            seed_for(ModelKind::SqueezeNet)
        );
    }

    #[test]
    fn sizes_match_simulated_param_counts() {
        for model in ModelKind::all() {
            assert_eq!(
                quantized_weights(model).len() as u64,
                model.simulated_param_count()
            );
            assert_eq!(
                float_weights(model).len() as u64,
                model.simulated_param_count()
            );
        }
    }

    #[test]
    fn float_weights_are_bounded_and_not_constant() {
        let w = float_weights(ModelKind::Resnet50Pt);
        assert!(w.iter().all(|v| (-1.0..1.0).contains(v)));
        assert!(w.iter().any(|v| *v != w[0]));
    }
}
