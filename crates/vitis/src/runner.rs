//! The DPU runner: the victim workload.
//!
//! [`DpuRunner`] plays the role of the Vitis AI runtime executing a model on
//! the board: it spawns a process on the simulated kernel, grows its heap,
//! copies the model container, the weights and the input image into that heap
//! at a **model-deterministic layout**, runs the reduced inference, writes the
//! output tensor back and finally terminates.  Everything the memory scraping
//! attack later recovers — model-name strings, the corrupted-image marker, the
//! image bytes at a profiled offset — is placed by this runner, the same way
//! the real runtime places it on the ZCU104.

// Lint audit: address arithmetic here is bounds-checked against the
// DRAM window before any narrowing cast or direct index; offsets are
// derived from validated window-relative coordinates.
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use std::error::Error;
use std::fmt;

use petalinux_sim::{Kernel, KernelError, Pid, UserId};
use serde::{Deserialize, Serialize};
use zynq_dram::PAGE_SIZE;

use crate::image::Image;
use crate::inference;
use crate::model::ModelKind;
use crate::xmodel::XModel;

/// Alignment applied to each section of the heap image.
const SECTION_ALIGN: u64 = 64;
/// Size of the runtime header that precedes the model data in the heap.
const HEADER_LEN: u64 = 0x100;

/// Errors returned by the runner.
#[derive(Debug)]
pub enum RunnerError {
    /// The underlying kernel operation failed.
    Kernel(KernelError),
}

impl fmt::Display for RunnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunnerError::Kernel(e) => write!(f, "kernel error while running model: {e}"),
        }
    }
}

impl Error for RunnerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunnerError::Kernel(e) => Some(e),
        }
    }
}

impl From<KernelError> for RunnerError {
    fn from(e: KernelError) -> Self {
        RunnerError::Kernel(e)
    }
}

/// Ground-truth byte offsets (relative to the heap base) at which the runner
/// placed each artifact.
///
/// Experiments use this as the oracle to score what the attacker recovered;
/// the attacker itself never sees it — it learns the image offset by offline
/// profiling instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeapLayout {
    /// Offset of the runtime header.
    pub header_offset: u64,
    /// Offset of the serialized xmodel container (strings + weights).
    pub xmodel_offset: u64,
    /// Offset of the weight blob inside the heap (within the container).
    pub weights_offset: u64,
    /// Offset of the raw RGB input image.
    pub image_offset: u64,
    /// Offset of the output (logits) tensor.
    pub output_offset: u64,
    /// Total bytes of heap the runner requested.
    pub heap_len: u64,
}

fn align_up(value: u64, align: u64) -> u64 {
    value.div_ceil(align) * align
}

/// Builds the byte image the runtime leaves in the victim's heap, plus the
/// layout describing it.
///
/// The layout depends only on the model (the image is stored at a fixed,
/// model-dependent offset), which is exactly the determinism the paper's
/// offline profiling exploits.
pub fn heap_image(model: ModelKind, input: &Image) -> (Vec<u8>, HeapLayout) {
    let container = XModel::build(model);
    let container_bytes = container.serialize();
    let image_bytes = input.as_bytes();

    let xmodel_offset = HEADER_LEN;
    // The weight blob is the tail of the serialized container.
    let weights_offset =
        xmodel_offset + container_bytes.len() as u64 - container.weights().len() as u64;
    let (w, h) = model.input_dims();
    let nominal_image_len = (w * h * 3) as u64;
    let image_offset = align_up(xmodel_offset + container_bytes.len() as u64, SECTION_ALIGN);
    let output_offset = align_up(image_offset + nominal_image_len, SECTION_ALIGN);
    let output_len = (model.output_classes() * 4) as u64;
    let heap_len = align_up(output_offset + output_len, PAGE_SIZE);

    let mut bytes = vec![0u8; heap_len as usize];

    // Runtime header: a few plausible allocator/pointer words, matching the
    // pointer-looking prefix visible at the top of the paper's Figure 12 dump.
    bytes[0..8].copy_from_slice(&(heap_len).to_le_bytes());
    bytes[8..16].copy_from_slice(&0x0000_aaaa_f171_0780u64.to_le_bytes());
    bytes[16..24].copy_from_slice(&0x0000_aaaa_f171_1270u64.to_le_bytes());
    bytes[24..32].copy_from_slice(&(container_bytes.len() as u64).to_le_bytes());

    bytes[xmodel_offset as usize..xmodel_offset as usize + container_bytes.len()]
        .copy_from_slice(&container_bytes);
    let copy_len = image_bytes.len().min(nominal_image_len as usize);
    bytes[image_offset as usize..image_offset as usize + copy_len]
        .copy_from_slice(&image_bytes[..copy_len]);

    (
        bytes,
        HeapLayout {
            header_offset: 0,
            xmodel_offset,
            weights_offset,
            image_offset,
            output_offset,
            heap_len,
        },
    )
}

/// A model execution that has been launched and is still running.
#[derive(Debug, Clone)]
pub struct LaunchedRun {
    pid: Pid,
    model: ModelKind,
    input: Image,
    layout: HeapLayout,
    logits: Vec<f32>,
}

impl LaunchedRun {
    /// The victim process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The model being executed.
    pub fn model(&self) -> ModelKind {
        self.model
    }

    /// The input image the run used.
    pub fn input_image(&self) -> &Image {
        &self.input
    }

    /// Ground-truth heap layout of the run.
    pub fn layout(&self) -> HeapLayout {
        self.layout
    }

    /// The logits produced by the inference.
    pub fn logits(&self) -> &[f32] {
        &self.logits
    }

    /// Terminates the victim process, producing a [`CompletedRun`].
    ///
    /// # Errors
    ///
    /// Propagates kernel termination errors.
    pub fn terminate(self, kernel: &mut Kernel) -> Result<CompletedRun, RunnerError> {
        kernel.terminate(self.pid)?;
        Ok(CompletedRun {
            pid: self.pid,
            model: self.model,
            input: self.input,
            layout: self.layout,
            logits: self.logits,
        })
    }
}

/// A model execution whose process has terminated (the state the attack
/// targets).
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedRun {
    pid: Pid,
    model: ModelKind,
    input: Image,
    layout: HeapLayout,
    logits: Vec<f32>,
}

impl CompletedRun {
    /// The (now terminated) victim process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The model that was executed.
    pub fn model(&self) -> ModelKind {
        self.model
    }

    /// The input image the victim used (ground truth for recovery scoring).
    pub fn input_image(&self) -> &Image {
        &self.input
    }

    /// Ground-truth heap layout of the run.
    pub fn layout(&self) -> HeapLayout {
        self.layout
    }

    /// The logits the victim computed.
    pub fn logits(&self) -> &[f32] {
        &self.logits
    }

    /// The class index the victim predicted.
    pub fn predicted_class(&self) -> Option<usize> {
        inference::argmax(&self.logits)
    }
}

/// Executes a zoo model on the simulated board as a victim process.
///
/// # Example
///
/// ```
/// use petalinux_sim::{BoardConfig, Kernel, UserId};
/// use vitis_ai_sim::{DpuRunner, Image, ModelKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut kernel = Kernel::boot(BoardConfig::tiny_for_tests());
/// let run = DpuRunner::new(ModelKind::Resnet50Pt)
///     .with_input(Image::corrupted(224, 224))
///     .run_to_completion(&mut kernel, UserId::new(0))?;
/// assert_eq!(run.model(), ModelKind::Resnet50Pt);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DpuRunner {
    model: ModelKind,
    input: Image,
    image_argument: String,
}

impl DpuRunner {
    /// Creates a runner for `model` using the Xilinx-style sample photo as
    /// input.
    pub fn new(model: ModelKind) -> Self {
        let (w, h) = model.input_dims();
        DpuRunner {
            model,
            input: Image::sample_photo(w, h),
            image_argument: "../images/001.jpg".to_string(),
        }
    }

    /// Replaces the input image (e.g. with the corrupted or sentinel image).
    pub fn with_input(mut self, input: Image) -> Self {
        self.input = input;
        self
    }

    /// Sets the image path shown on the victim's command line (cosmetic).
    pub fn with_image_argument(mut self, arg: impl Into<String>) -> Self {
        self.image_argument = arg.into();
        self
    }

    /// The model this runner executes.
    pub fn model(&self) -> ModelKind {
        self.model
    }

    /// The input image this runner will load.
    pub fn input_image(&self) -> &Image {
        &self.input
    }

    /// Spawns the victim process, loads the model and image into its heap,
    /// runs inference, writes the output tensor and leaves the process
    /// **running**.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (allocation failure, exhausted DRAM, …).
    pub fn launch(&self, kernel: &mut Kernel, user: UserId) -> Result<LaunchedRun, RunnerError> {
        let binary = format!("./{}", self.model.name());
        let xmodel_path = self.model.xmodel_path();
        let pid = kernel.spawn(
            user,
            &[
                binary.as_str(),
                xmodel_path.as_str(),
                self.image_argument.as_str(),
            ],
        )?;

        let (bytes, layout) = heap_image(self.model, &self.input);
        kernel.grow_heap(pid, layout.heap_len)?;
        let heap_base = kernel.process(pid)?.heap_base();
        kernel.write_process_memory(pid, heap_base, &bytes)?;

        // Run the reduced forward pass over the data as it sits in the
        // process's memory (read it back rather than trusting local copies).
        let (w, h) = self.model.input_dims();
        let mut image_back = vec![0u8; (w * h * 3) as usize];
        kernel.read_process_memory(pid, heap_base + layout.image_offset, &mut image_back)?;
        let image_in_memory = Image::reconstruct(w, h, &image_back)
            .expect("image buffer sized from model dimensions");
        let logits = inference::run_inference(self.model, &image_in_memory);

        let mut logit_bytes = Vec::with_capacity(logits.len() * 4);
        for logit in &logits {
            logit_bytes.extend_from_slice(&logit.to_le_bytes());
        }
        kernel.write_process_memory(pid, heap_base + layout.output_offset, &logit_bytes)?;

        Ok(LaunchedRun {
            pid,
            model: self.model,
            input: self.input.clone(),
            layout,
            logits,
        })
    }

    /// Launches the victim and immediately terminates it after inference —
    /// the end state the memory scraping attack targets.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn run_to_completion(
        &self,
        kernel: &mut Kernel,
        user: UserId,
    ) -> Result<CompletedRun, RunnerError> {
        self.launch(kernel, user)?.terminate(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use petalinux_sim::BoardConfig;

    fn kernel() -> Kernel {
        // The resnet50 heap image is a few hundred KiB; the tiny test window
        // (16 MiB) accommodates every zoo model.
        Kernel::boot(BoardConfig::tiny_for_tests())
    }

    #[test]
    fn heap_image_layout_is_deterministic_and_model_dependent() {
        let img = Image::corrupted(224, 224);
        let (bytes_a, layout_a) = heap_image(ModelKind::Resnet50Pt, &img);
        let (bytes_b, layout_b) = heap_image(ModelKind::Resnet50Pt, &img);
        assert_eq!(layout_a, layout_b);
        assert_eq!(bytes_a, bytes_b);

        let (_, layout_squeeze) = heap_image(ModelKind::SqueezeNet, &img);
        assert_ne!(layout_a.image_offset, layout_squeeze.image_offset);

        // Sections are ordered and non-overlapping.
        assert!(layout_a.xmodel_offset >= HEADER_LEN);
        assert!(layout_a.weights_offset > layout_a.xmodel_offset);
        assert!(layout_a.image_offset > layout_a.weights_offset);
        assert!(layout_a.output_offset > layout_a.image_offset);
        assert!(layout_a.heap_len > layout_a.output_offset);
        assert_eq!(layout_a.heap_len % PAGE_SIZE, 0);
    }

    #[test]
    fn heap_image_embeds_strings_image_and_weights() {
        let img = Image::corrupted(224, 224);
        let (bytes, layout) = heap_image(ModelKind::Resnet50Pt, &img);
        let as_str = String::from_utf8_lossy(&bytes);
        assert!(as_str.contains("resnet50_pt"));
        // The corrupted image sits at the recorded offset.
        let at_image = &bytes[layout.image_offset as usize..layout.image_offset as usize + 16];
        assert!(at_image.iter().all(|&b| b == 0xFF));
        // Weights sit at the recorded offset.
        let weights = crate::weights::quantized_weights(ModelKind::Resnet50Pt);
        let at_weights =
            &bytes[layout.weights_offset as usize..layout.weights_offset as usize + 16];
        assert_eq!(at_weights, &weights[..16]);
    }

    #[test]
    fn image_offset_does_not_depend_on_image_content() {
        let (_, a) = heap_image(ModelKind::Resnet50Pt, &Image::corrupted(224, 224));
        let (_, b) = heap_image(ModelKind::Resnet50Pt, &Image::profiling_sentinel(224, 224));
        let (_, c) = heap_image(ModelKind::Resnet50Pt, &Image::sample_photo(224, 224));
        assert_eq!(a.image_offset, b.image_offset);
        assert_eq!(a.image_offset, c.image_offset);
    }

    #[test]
    fn launch_places_data_in_process_heap_and_keeps_process_running() {
        let mut k = kernel();
        let run = DpuRunner::new(ModelKind::Resnet50Pt)
            .with_input(Image::corrupted(224, 224))
            .launch(&mut k, UserId::new(0))
            .unwrap();
        assert!(k.process(run.pid()).unwrap().is_running());
        assert_eq!(run.model(), ModelKind::Resnet50Pt);
        assert_eq!(run.logits().len(), 1000);
        assert_eq!(run.input_image().width(), 224);

        // The command line matches the paper's Figure 6 shape.
        let cmd = k.process(run.pid()).unwrap().command_string();
        assert!(cmd.starts_with("./resnet50_pt"));
        assert!(cmd.contains("/usr/share/vitis_ai_library/models/resnet50_pt/resnet50_pt.xmodel"));
        assert!(cmd.contains("../images/001.jpg"));

        // The heap actually contains the corrupted-image marker.
        let heap_base = k.process(run.pid()).unwrap().heap_base();
        let mut marker = [0u8; 8];
        k.read_process_memory(
            run.pid(),
            heap_base + run.layout().image_offset,
            &mut marker,
        )
        .unwrap();
        assert_eq!(marker, [0xFF; 8]);

        let completed = run.terminate(&mut k).unwrap();
        assert!(!k.process(completed.pid()).unwrap().is_running());
    }

    #[test]
    fn run_to_completion_leaves_residue_under_default_policy() {
        let mut k = kernel();
        let run = DpuRunner::new(ModelKind::SqueezeNet)
            .run_to_completion(&mut k, UserId::new(0))
            .unwrap();
        assert!(!k.process(run.pid()).unwrap().is_running());
        assert!(k.residue_frame_count() > 0);
        assert!(run.predicted_class().is_some());
        assert_eq!(run.logits().len(), 1000);
    }

    #[test]
    fn launches_of_same_model_reuse_identical_layout() {
        // Sequential frame reuse + fixed layout: the property profiling needs.
        let mut k = kernel();
        let first = DpuRunner::new(ModelKind::MobileNetV2)
            .run_to_completion(&mut k, UserId::new(1))
            .unwrap();
        let second = DpuRunner::new(ModelKind::MobileNetV2)
            .run_to_completion(&mut k, UserId::new(0))
            .unwrap();
        assert_eq!(first.layout(), second.layout());
    }

    #[test]
    fn builder_accessors() {
        let runner = DpuRunner::new(ModelKind::YoloV3)
            .with_input(Image::corrupted(416, 416))
            .with_image_argument("../images/dog.jpg");
        assert_eq!(runner.model(), ModelKind::YoloV3);
        assert_eq!(runner.input_image().width(), 416);
    }

    #[test]
    fn runner_error_display_and_source() {
        let err = RunnerError::from(KernelError::EmptyCommandLine);
        assert!(err.to_string().contains("kernel error"));
        assert!(err.source().is_some());
    }
}
