//! # vitis-ai-sim — a Vitis-AI-like model runtime (the victim workload)
//!
//! The paper's victim is `resnet50_pt` from the Vitis AI model library running
//! on the ZCU104's DPU.  This crate provides the equivalent workload for the
//! simulated board:
//!
//! - a [`ModelKind`] zoo mirroring the models the library ships
//!   (resnet50_pt, squeezenet, inception_v1, …),
//! - a synthetic [`xmodel::XModel`] container whose string table holds the
//!   library-path strings the attack greps for in the memory dump,
//! - deterministic synthetic [`weights`],
//! - an [`Image`] type including the paper's corrupted `0xFFFFFF` image and
//!   the `0x555555` profiling sentinel,
//! - a reduced but real [`inference`] forward pass, and
//! - the [`DpuRunner`], which spawns a victim process on a
//!   [`petalinux_sim::Kernel`], loads the model and input image into its heap
//!   with a model-deterministic layout, runs inference and (optionally)
//!   terminates — leaving exactly the residue the attack recovers.
//!
//! # Example
//!
//! ```
//! use petalinux_sim::{BoardConfig, Kernel, UserId};
//! use vitis_ai_sim::{DpuRunner, ModelKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut kernel = Kernel::boot(BoardConfig::tiny_for_tests());
//! let run = DpuRunner::new(ModelKind::Resnet50Pt)
//!     .run_to_completion(&mut kernel, UserId::new(0))?;
//! assert!(run.logits().len() > 0);
//! // The process has terminated, but its heap frames still hold data.
//! assert!(kernel.residue_frame_count() > 0);
//! # Ok(())
//! # }
//! ```

pub mod image;
pub mod inference;
pub mod model;
pub mod runner;
pub mod weights;
pub mod xmodel;

pub use image::Image;
pub use model::ModelKind;
pub use runner::{CompletedRun, DpuRunner, HeapLayout, LaunchedRun, RunnerError};
pub use xmodel::XModel;
