//! The model zoo.
//!
//! These are the models the Vitis AI library ships prebuilt for the ZCU104
//! DPU; the attack's model-identification step matches their names against
//! strings found in the scraped memory dump.  Parameter counts are the real
//! architectures' counts divided by a fixed simulation scale factor so that a
//! model's in-heap weight blob keeps the zoo's *relative* size ordering
//! without requiring gigabytes of simulated DRAM.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Divisor applied to real parameter counts to obtain the simulated weight
/// blob sizes.
pub const PARAM_SCALE: u64 = 1024;

/// A model from the (simulated) Vitis AI library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ModelKind {
    /// ResNet-50 exported from PyTorch (`resnet50_pt`) — the paper's victim.
    Resnet50Pt,
    /// SqueezeNet 1.1.
    SqueezeNet,
    /// Inception v1 (GoogLeNet).
    InceptionV1,
    /// MobileNet v2.
    MobileNetV2,
    /// YOLOv3 object detector.
    YoloV3,
    /// DenseNet-161.
    DenseNet161,
    /// EfficientNet-Lite0.
    EfficientNetLite,
    /// VGG-16.
    Vgg16,
}

impl ModelKind {
    /// Every model in the zoo, in a stable order.
    pub fn all() -> [ModelKind; 8] {
        [
            ModelKind::Resnet50Pt,
            ModelKind::SqueezeNet,
            ModelKind::InceptionV1,
            ModelKind::MobileNetV2,
            ModelKind::YoloV3,
            ModelKind::DenseNet161,
            ModelKind::EfficientNetLite,
            ModelKind::Vgg16,
        ]
    }

    /// The library name of the model (what appears in paths and in memory).
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Resnet50Pt => "resnet50_pt",
            ModelKind::SqueezeNet => "squeezenet",
            ModelKind::InceptionV1 => "inception_v1",
            ModelKind::MobileNetV2 => "mobilenet_v2",
            ModelKind::YoloV3 => "yolov3",
            ModelKind::DenseNet161 => "densenet161",
            ModelKind::EfficientNetLite => "efficientnet_lite",
            ModelKind::Vgg16 => "vgg16",
        }
    }

    /// Parses a model from its library name.
    pub fn from_name(name: &str) -> Option<ModelKind> {
        ModelKind::all().into_iter().find(|m| m.name() == name)
    }

    /// The on-board path of the compiled model container, matching the path
    /// the paper's Figure 6 shows on the victim's command line.
    pub fn xmodel_path(&self) -> String {
        format!(
            "/usr/share/vitis_ai_library/models/{name}/{name}.xmodel",
            name = self.name()
        )
    }

    /// Real parameter count of the architecture.
    pub fn real_param_count(&self) -> u64 {
        match self {
            ModelKind::Resnet50Pt => 25_557_032,
            ModelKind::SqueezeNet => 1_235_496,
            ModelKind::InceptionV1 => 6_624_904,
            ModelKind::MobileNetV2 => 3_504_872,
            ModelKind::YoloV3 => 61_949_149,
            ModelKind::DenseNet161 => 28_681_000,
            ModelKind::EfficientNetLite => 4_652_008,
            ModelKind::Vgg16 => 138_357_544,
        }
    }

    /// Number of weights materialized in the simulation
    /// (`real / PARAM_SCALE`, at least 256).
    pub fn simulated_param_count(&self) -> u64 {
        (self.real_param_count() / PARAM_SCALE).max(256)
    }

    /// Input image dimensions `(width, height)` the model expects.
    pub fn input_dims(&self) -> (u32, u32) {
        match self {
            ModelKind::YoloV3 => (416, 416),
            ModelKind::InceptionV1 => (224, 224),
            ModelKind::EfficientNetLite => (240, 240),
            _ => (224, 224),
        }
    }

    /// Number of output classes / logits.
    pub fn output_classes(&self) -> usize {
        match self {
            ModelKind::YoloV3 => 80,
            _ => 1000,
        }
    }

    /// Whether the model takes an image input (all zoo members do; the hook
    /// exists so the analysis code can reason about non-vision models).
    pub fn accepts_image_input(&self) -> bool {
        true
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_names_are_unique_and_roundtrip() {
        let mut names: Vec<_> = ModelKind::all().iter().map(|m| m.name()).collect();
        names.sort_unstable();
        let len_before = names.len();
        names.dedup();
        assert_eq!(names.len(), len_before);
        for model in ModelKind::all() {
            assert_eq!(ModelKind::from_name(model.name()), Some(model));
            assert_eq!(model.to_string(), model.name());
        }
        assert!(ModelKind::from_name("not_a_model").is_none());
    }

    #[test]
    fn resnet50_matches_the_paper() {
        let m = ModelKind::Resnet50Pt;
        assert_eq!(m.name(), "resnet50_pt");
        assert_eq!(
            m.xmodel_path(),
            "/usr/share/vitis_ai_library/models/resnet50_pt/resnet50_pt.xmodel"
        );
        assert_eq!(m.input_dims(), (224, 224));
        assert_eq!(m.output_classes(), 1000);
        assert!(m.accepts_image_input());
    }

    #[test]
    fn simulated_sizes_preserve_relative_ordering() {
        let small = ModelKind::SqueezeNet.simulated_param_count();
        let medium = ModelKind::Resnet50Pt.simulated_param_count();
        let large = ModelKind::Vgg16.simulated_param_count();
        assert!(small < medium);
        assert!(medium < large);
        for model in ModelKind::all() {
            assert!(model.simulated_param_count() >= 256);
            assert_eq!(
                model.simulated_param_count(),
                (model.real_param_count() / PARAM_SCALE).max(256)
            );
        }
    }
}
