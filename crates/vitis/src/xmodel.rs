//! The synthetic `.xmodel` container.
//!
//! Vitis AI ships compiled models as `.xmodel` files; when the runtime loads
//! one, its string table (library paths, layer names) and its weight blob end
//! up in the process heap.  Those strings are exactly what the paper's
//! Figure 11 greps out of the scraped dump (`ls/resnet50_pt/r`,
//! `hvision/resnet50`).  This module defines a compact container with the same
//! observable properties: a magic header, a string table containing the
//! model's identifying paths, tensor descriptors and a quantized weight blob,
//! with byte-exact serialize/parse.

// Lint audit: address arithmetic here is bounds-checked against the
// DRAM window before any narrowing cast or direct index; offsets are
// derived from validated window-relative coordinates.
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::model::ModelKind;
use crate::weights;

/// Magic bytes at the start of a serialized container.
pub const XMODEL_MAGIC: &[u8; 4] = b"XMOD";

/// Container format version emitted by [`XModel::serialize`].
pub const XMODEL_VERSION: u16 = 1;

/// Descriptor of one tensor stored in the container.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TensorDesc {
    /// Tensor name (e.g. `input`, `weights`, `fc1000`).
    pub name: String,
    /// Tensor shape.
    pub shape: Vec<u32>,
    /// Offset of the tensor's data within the runtime's heap image of the
    /// model (filled in by the DPU runner).
    pub offset: u64,
    /// Length of the tensor's data in bytes.
    pub len: u64,
}

/// Error returned when parsing a malformed container.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseXmodelError {
    /// The buffer is shorter than the structure it claims to contain.
    Truncated,
    /// The magic bytes are wrong.
    BadMagic,
    /// The container version is not supported.
    UnsupportedVersion(u16),
    /// The model name is not one of the zoo's models.
    UnknownModel(String),
    /// A length field or string is malformed.
    Malformed(&'static str),
}

impl fmt::Display for ParseXmodelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseXmodelError::Truncated => write!(f, "container is truncated"),
            ParseXmodelError::BadMagic => write!(f, "bad magic bytes"),
            ParseXmodelError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            ParseXmodelError::UnknownModel(name) => write!(f, "unknown model name {name:?}"),
            ParseXmodelError::Malformed(what) => write!(f, "malformed field: {what}"),
        }
    }
}

impl Error for ParseXmodelError {}

/// A compiled model container.
///
/// # Example
///
/// ```
/// use vitis_ai_sim::{ModelKind, XModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = XModel::build(ModelKind::Resnet50Pt);
/// let bytes = model.serialize();
/// let parsed = XModel::parse(&bytes)?;
/// assert_eq!(parsed.kind(), ModelKind::Resnet50Pt);
/// // The string table carries the path strings the attack greps for.
/// assert!(parsed.strings().iter().any(|s| s.contains("resnet50_pt")));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XModel {
    kind: ModelKind,
    strings: Vec<String>,
    tensors: Vec<TensorDesc>,
    weights: Vec<u8>,
}

impl XModel {
    /// Builds the container for a zoo model: identifying strings, the three
    /// canonical tensors and the deterministic quantized weights.
    pub fn build(kind: ModelKind) -> Self {
        let (w, h) = kind.input_dims();
        let weights = weights::quantized_weights(kind);
        let strings = vec![
            kind.xmodel_path(),
            format!("models/{}/{}", kind.name(), kind.name()),
            format!("torchvision/{}", kind.name()),
            format!("vitis_ai_library/lib{}_runner.so", kind.name()),
            "DPUCZDX8G".to_string(),
            "subgraph_conv1".to_string(),
            format!("meta: framework=pytorch model={}", kind.name()),
        ];
        let tensors = vec![
            TensorDesc {
                name: "input".to_string(),
                shape: vec![1, 3, h, w],
                offset: 0,
                len: (w * h * 3) as u64,
            },
            TensorDesc {
                name: "weights".to_string(),
                shape: vec![kind.simulated_param_count() as u32],
                offset: 0,
                len: weights.len() as u64,
            },
            TensorDesc {
                name: "logits".to_string(),
                shape: vec![1, kind.output_classes() as u32],
                offset: 0,
                len: (kind.output_classes() * 4) as u64,
            },
        ];
        XModel {
            kind,
            strings,
            tensors,
            weights,
        }
    }

    /// The model this container holds.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The string table.
    pub fn strings(&self) -> &[String] {
        &self.strings
    }

    /// The tensor descriptors.
    pub fn tensors(&self) -> &[TensorDesc] {
        &self.tensors
    }

    /// The quantized weight blob.
    pub fn weights(&self) -> &[u8] {
        &self.weights
    }

    /// Serializes the container to its on-disk / in-heap byte layout.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(XMODEL_MAGIC);
        out.extend_from_slice(&XMODEL_VERSION.to_le_bytes());
        let name = self.kind.name().as_bytes();
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&(self.strings.len() as u32).to_le_bytes());
        for s in &self.strings {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        out.extend_from_slice(&(self.tensors.len() as u32).to_le_bytes());
        for t in &self.tensors {
            out.extend_from_slice(&(t.name.len() as u32).to_le_bytes());
            out.extend_from_slice(t.name.as_bytes());
            out.extend_from_slice(&(t.shape.len() as u32).to_le_bytes());
            for dim in &t.shape {
                out.extend_from_slice(&dim.to_le_bytes());
            }
            out.extend_from_slice(&t.offset.to_le_bytes());
            out.extend_from_slice(&t.len.to_le_bytes());
        }
        out.extend_from_slice(&(self.weights.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.weights);
        out
    }

    /// Parses a serialized container.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseXmodelError`] describing the first malformed field.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseXmodelError> {
        let mut cursor = Cursor { bytes, pos: 0 };
        let magic = cursor.take(4)?;
        if magic != XMODEL_MAGIC {
            return Err(ParseXmodelError::BadMagic);
        }
        let version = cursor.u16()?;
        if version != XMODEL_VERSION {
            return Err(ParseXmodelError::UnsupportedVersion(version));
        }
        let name_len = cursor.u16()? as usize;
        let name = cursor.str(name_len)?;
        let kind = ModelKind::from_name(&name).ok_or(ParseXmodelError::UnknownModel(name))?;

        let string_count = cursor.u32()? as usize;
        let mut strings = Vec::with_capacity(string_count.min(1024));
        for _ in 0..string_count {
            let len = cursor.u32()? as usize;
            strings.push(cursor.str(len)?);
        }

        let tensor_count = cursor.u32()? as usize;
        let mut tensors = Vec::with_capacity(tensor_count.min(1024));
        for _ in 0..tensor_count {
            let name_len = cursor.u32()? as usize;
            let name = cursor.str(name_len)?;
            let dim_count = cursor.u32()? as usize;
            let mut shape = Vec::with_capacity(dim_count.min(16));
            for _ in 0..dim_count {
                shape.push(cursor.u32()?);
            }
            let offset = cursor.u64()?;
            let len = cursor.u64()?;
            tensors.push(TensorDesc {
                name,
                shape,
                offset,
                len,
            });
        }

        let weights_len = cursor.u64()? as usize;
        let weights = cursor.take(weights_len)?.to_vec();
        Ok(XModel {
            kind,
            strings,
            tensors,
            weights,
        })
    }

    /// Total serialized size in bytes.
    pub fn serialized_len(&self) -> usize {
        self.serialize().len()
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], ParseXmodelError> {
        let end = self
            .pos
            .checked_add(len)
            .ok_or(ParseXmodelError::Truncated)?;
        if end > self.bytes.len() {
            return Err(ParseXmodelError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u16(&mut self) -> Result<u16, ParseXmodelError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ParseXmodelError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ParseXmodelError> {
        let b = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }

    fn str(&mut self, len: usize) -> Result<String, ParseXmodelError> {
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ParseXmodelError::Malformed("string is not utf-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn build_contains_identifying_strings_and_tensors() {
        let model = XModel::build(ModelKind::Resnet50Pt);
        assert_eq!(model.kind(), ModelKind::Resnet50Pt);
        assert!(model
            .strings()
            .iter()
            .any(|s| s.contains("vitis_ai_library/models/resnet50_pt")));
        assert_eq!(model.tensors().len(), 3);
        assert_eq!(model.tensors()[0].name, "input");
        assert_eq!(
            model.weights().len() as u64,
            ModelKind::Resnet50Pt.simulated_param_count()
        );
    }

    #[test]
    fn serialize_parse_roundtrip_for_every_model() {
        for kind in ModelKind::all() {
            let model = XModel::build(kind);
            let bytes = model.serialize();
            assert_eq!(bytes.len(), model.serialized_len());
            let parsed = XModel::parse(&bytes).unwrap();
            assert_eq!(parsed, model);
        }
    }

    #[test]
    fn parse_rejects_bad_magic_and_version() {
        let mut bytes = XModel::build(ModelKind::SqueezeNet).serialize();
        bytes[0] = b'Y';
        assert_eq!(XModel::parse(&bytes), Err(ParseXmodelError::BadMagic));

        let mut bytes = XModel::build(ModelKind::SqueezeNet).serialize();
        bytes[4] = 99;
        assert_eq!(
            XModel::parse(&bytes),
            Err(ParseXmodelError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn parse_rejects_truncation_at_any_point() {
        let bytes = XModel::build(ModelKind::MobileNetV2).serialize();
        for cut in [0, 3, 5, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                XModel::parse(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn parse_rejects_unknown_model_name() {
        let model = XModel::build(ModelKind::YoloV3);
        let mut bytes = model.serialize();
        // Overwrite the model name bytes ("yolov3" at offset 8).
        bytes[8..14].copy_from_slice(b"nosuch");
        assert!(matches!(
            XModel::parse(&bytes),
            Err(ParseXmodelError::UnknownModel(_))
        ));
    }

    #[test]
    fn error_display() {
        assert!(ParseXmodelError::Truncated
            .to_string()
            .contains("truncated"));
        assert!(ParseXmodelError::BadMagic.to_string().contains("magic"));
        assert!(ParseXmodelError::UnsupportedVersion(2)
            .to_string()
            .contains("version"));
        assert!(ParseXmodelError::UnknownModel("x".into())
            .to_string()
            .contains("unknown model"));
        assert!(ParseXmodelError::Malformed("f")
            .to_string()
            .contains("malformed"));
    }

    proptest! {
        #[test]
        fn prop_parse_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = XModel::parse(&bytes);
        }

        #[test]
        fn prop_corrupting_one_byte_never_panics(idx in 0usize..1000, value in any::<u8>()) {
            let mut bytes = XModel::build(ModelKind::SqueezeNet).serialize();
            let idx = idx % bytes.len();
            bytes[idx] = value;
            let _ = XModel::parse(&bytes);
        }
    }
}
