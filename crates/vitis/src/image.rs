//! RGB images: the victim's input data.
//!
//! The paper's experiment corrupts the example input by setting every pixel to
//! `0xFFFFFF` so the scraped dump shows unmistakable `FFFF FFFF` runs
//! (Figure 12), and profiles offsets offline with a `0x555555` image.  Both
//! are provided as constructors here, next to a deterministic synthetic
//! "photo" used when a realistic-looking input is preferable.

// Lint audit: address arithmetic here is bounds-checked against the
// DRAM window before any narrowing cast or direct index; offsets are
// derived from validated window-relative coordinates.
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use std::fmt;

use serde::{Deserialize, Serialize};

/// The byte value of every channel of the corrupted image (`0xFFFFFF` pixels).
pub const CORRUPTED_CHANNEL: u8 = 0xFF;

/// The byte value of every channel of the profiling sentinel (`0x555555`
/// pixels).
pub const SENTINEL_CHANNEL: u8 = 0x55;

/// An 8-bit RGB image stored row-major, three bytes per pixel.
///
/// # Example
///
/// ```
/// use vitis_ai_sim::Image;
///
/// let img = Image::corrupted(4, 2);
/// assert_eq!(img.as_bytes().len(), 4 * 2 * 3);
/// assert!(img.as_bytes().iter().all(|&b| b == 0xFF));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Image {
    width: u32,
    height: u32,
    pixels: Vec<u8>,
}

impl Image {
    /// Creates an image from raw RGB bytes.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height * 3`.
    pub fn from_raw(width: u32, height: u32, pixels: Vec<u8>) -> Self {
        assert_eq!(
            pixels.len(),
            (width * height * 3) as usize,
            "pixel buffer must be width * height * 3 bytes"
        );
        Image {
            width,
            height,
            pixels,
        }
    }

    /// A solid-colour image.
    pub fn solid(width: u32, height: u32, rgb: [u8; 3]) -> Self {
        let mut pixels = Vec::with_capacity((width * height * 3) as usize);
        for _ in 0..(width * height) {
            pixels.extend_from_slice(&rgb);
        }
        Image {
            width,
            height,
            pixels,
        }
    }

    /// The corrupted image of the paper's Figure 4(b): every pixel `0xFFFFFF`.
    pub fn corrupted(width: u32, height: u32) -> Self {
        Image::solid(width, height, [CORRUPTED_CHANNEL; 3])
    }

    /// The offline-profiling sentinel image: every pixel `0x555555`.
    pub fn profiling_sentinel(width: u32, height: u32) -> Self {
        Image::solid(width, height, [SENTINEL_CHANNEL; 3])
    }

    /// A deterministic synthetic "photo" (smooth gradients plus a block
    /// pattern), standing in for the Xilinx-supplied example image.
    pub fn sample_photo(width: u32, height: u32) -> Self {
        let mut pixels = Vec::with_capacity((width * height * 3) as usize);
        for y in 0..height {
            for x in 0..width {
                let r = ((x * 255) / width.max(1)) as u8;
                let g = ((y * 255) / height.max(1)) as u8;
                let b = (((x / 8 + y / 8) % 2) * 200 + 20) as u8;
                pixels.extend_from_slice(&[r, g, b]);
            }
        }
        Image {
            width,
            height,
            pixels,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Raw RGB bytes, row-major.
    pub fn as_bytes(&self) -> &[u8] {
        &self.pixels
    }

    /// Consumes the image and returns its raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.pixels
    }

    /// The pixel at `(x, y)` as `[r, g, b]`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn pixel(&self, x: u32, y: u32) -> [u8; 3] {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let idx = ((y * self.width + x) * 3) as usize;
        [self.pixels[idx], self.pixels[idx + 1], self.pixels[idx + 2]]
    }

    /// Reconstructs an image of known dimensions from raw bytes (what the
    /// attacker does once it has located the image in the dump).
    ///
    /// Returns `None` if `bytes` is shorter than `width * height * 3`.
    pub fn reconstruct(width: u32, height: u32, bytes: &[u8]) -> Option<Self> {
        let needed = (width * height * 3) as usize;
        if bytes.len() < needed {
            return None;
        }
        Some(Image::from_raw(width, height, bytes[..needed].to_vec()))
    }

    /// Fraction of pixels (all three channels exact) that match `other`.
    ///
    /// Used as the image-recovery metric in the experiments.  Images of
    /// different dimensions score 0.
    pub fn pixel_recovery_rate(&self, other: &Image) -> f64 {
        if self.width != other.width || self.height != other.height {
            return 0.0;
        }
        let total = (self.width * self.height) as usize;
        if total == 0 {
            return 1.0;
        }
        let matching = self
            .pixels
            .chunks_exact(3)
            .zip(other.pixels.chunks_exact(3))
            .filter(|(a, b)| a == b)
            .count();
        matching as f64 / total as f64
    }

    /// Mean absolute per-channel error against `other` (0 = identical).
    ///
    /// Returns `None` if the dimensions differ.
    pub fn mean_absolute_error(&self, other: &Image) -> Option<f64> {
        if self.width != other.width || self.height != other.height {
            return None;
        }
        if self.pixels.is_empty() {
            return Some(0.0);
        }
        let sum: u64 = self
            .pixels
            .iter()
            .zip(other.pixels.iter())
            .map(|(a, b)| (*a as i64 - *b as i64).unsigned_abs())
            .sum();
        Some(sum as f64 / self.pixels.len() as f64)
    }

    /// Encodes the image as a binary PPM (`P6`) file.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend_from_slice(&self.pixels);
        out
    }

    /// Decodes a binary PPM (`P6`) file.
    ///
    /// Returns `None` on malformed input.
    pub fn from_ppm(data: &[u8]) -> Option<Self> {
        let header_end = data.windows(1).enumerate().filter(|(_, w)| w[0] == b'\n');
        // Find the end of the third header line.
        let mut newlines = header_end.map(|(i, _)| i);
        let _magic_end = newlines.next()?;
        let _dims_end = newlines.next()?;
        let maxval_end = newlines.next()?;
        let header = std::str::from_utf8(&data[..maxval_end]).ok()?;
        let mut lines = header.lines();
        if lines.next()? != "P6" {
            return None;
        }
        let mut dims = lines.next()?.split_whitespace();
        let width: u32 = dims.next()?.parse().ok()?;
        let height: u32 = dims.next()?.parse().ok()?;
        if lines.next()? != "255" {
            return None;
        }
        let pixels = data.get(maxval_end + 1..)?;
        Image::reconstruct(width, height, pixels)
    }
}

impl fmt::Display for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} rgb image", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_produce_expected_sizes_and_values() {
        let c = Image::corrupted(8, 4);
        assert_eq!(c.width(), 8);
        assert_eq!(c.height(), 4);
        assert_eq!(c.as_bytes().len(), 8 * 4 * 3);
        assert!(c.as_bytes().iter().all(|&b| b == CORRUPTED_CHANNEL));

        let s = Image::profiling_sentinel(8, 4);
        assert!(s.as_bytes().iter().all(|&b| b == SENTINEL_CHANNEL));

        let photo = Image::sample_photo(16, 16);
        // A photo is not a solid colour.
        assert!(photo.as_bytes().iter().any(|&b| b != photo.as_bytes()[0]));
        assert_eq!(photo.to_string(), "16x16 rgb image");
        assert_eq!(photo.pixel(0, 0).len(), 3);
    }

    #[test]
    #[should_panic(expected = "width * height * 3")]
    fn from_raw_rejects_wrong_length() {
        let _ = Image::from_raw(2, 2, vec![0u8; 5]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn pixel_out_of_bounds_panics() {
        let _ = Image::corrupted(2, 2).pixel(2, 0);
    }

    #[test]
    fn reconstruct_requires_enough_bytes() {
        let img = Image::sample_photo(4, 4);
        let exact = Image::reconstruct(4, 4, img.as_bytes()).unwrap();
        assert_eq!(exact, img);
        // Extra trailing bytes are ignored.
        let mut longer = img.as_bytes().to_vec();
        longer.extend_from_slice(&[1, 2, 3]);
        assert_eq!(Image::reconstruct(4, 4, &longer).unwrap(), img);
        // Too few bytes fail.
        assert!(Image::reconstruct(4, 4, &img.as_bytes()[..10]).is_none());
    }

    #[test]
    fn recovery_metrics() {
        let a = Image::sample_photo(8, 8);
        assert_eq!(a.pixel_recovery_rate(&a), 1.0);
        assert_eq!(a.mean_absolute_error(&a), Some(0.0));

        let b = Image::corrupted(8, 8);
        assert!(a.pixel_recovery_rate(&b) < 0.1);
        assert!(a.mean_absolute_error(&b).unwrap() > 0.0);

        // Dimension mismatch.
        let c = Image::corrupted(4, 4);
        assert_eq!(a.pixel_recovery_rate(&c), 0.0);
        assert!(a.mean_absolute_error(&c).is_none());
    }

    #[test]
    fn ppm_roundtrip() {
        let img = Image::sample_photo(7, 5);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n7 5\n255\n"));
        assert_eq!(Image::from_ppm(&ppm).unwrap(), img);
        assert!(Image::from_ppm(b"P5\n1 1\n255\n\0").is_none());
        assert!(Image::from_ppm(b"garbage").is_none());
    }

    #[test]
    fn into_bytes_returns_backing_buffer() {
        let img = Image::solid(2, 1, [1, 2, 3]);
        assert_eq!(img.clone().into_bytes(), vec![1, 2, 3, 1, 2, 3]);
    }

    proptest! {
        #[test]
        fn prop_solid_images_recover_perfectly(w in 1u32..32, h in 1u32..32, r in any::<u8>(), g in any::<u8>(), b in any::<u8>()) {
            let img = Image::solid(w, h, [r, g, b]);
            let rebuilt = Image::reconstruct(w, h, img.as_bytes()).unwrap();
            prop_assert_eq!(rebuilt.pixel_recovery_rate(&img), 1.0);
        }

        #[test]
        fn prop_ppm_roundtrip(w in 1u32..16, h in 1u32..16) {
            let img = Image::sample_photo(w, h);
            prop_assert_eq!(Image::from_ppm(&img.to_ppm()), Some(img));
        }
    }
}
