//! # xsdb — the Xilinx System Debugger analogue (the attack channel)
//!
//! The paper's first contribution is the observation that the Xilinx system
//! debugger can be invoked from a *second* user space and grants unrestricted
//! access to process ids, virtual address spaces, pagemaps and physical
//! memory, because the FPGA's local memory is not mediated by the host OS.
//!
//! [`DebugSession`] models that channel: it connects a user to the board and
//! exposes exactly the operations the attack chains together —
//! [`DebugSession::list_processes`], [`DebugSession::read_maps`],
//! [`DebugSession::read_pagemap`], [`DebugSession::translate`] and
//! [`DebugSession::read_phys_range`].  Whether a cross-user call succeeds is
//! decided by the board's [`petalinux_sim::IsolationPolicy`], so the
//! vulnerable default and a hardened configuration can both be exercised.
//! Every operation is appended to an [`audit::AuditLog`], which the
//! detection-surface discussion in the experiments uses.
//!
//! # Example
//!
//! ```
//! use petalinux_sim::{BoardConfig, Kernel, UserId};
//! use vitis_ai_sim::{DpuRunner, ModelKind};
//! use xsdb::DebugSession;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut kernel = Kernel::boot(BoardConfig::tiny_for_tests());
//! let victim_run = DpuRunner::new(ModelKind::Resnet50Pt)
//!     .launch(&mut kernel, UserId::new(0))?;
//!
//! // The attacker connects the debugger from a different user space.
//! let mut debugger = DebugSession::connect(UserId::new(1));
//! let pids = debugger.list_processes(&kernel);
//! assert!(pids.iter().any(|p| p.command.contains("resnet50_pt")));
//! let maps = debugger.read_maps(&kernel, victim_run.pid())?;
//! assert!(maps.contains("[heap]"));
//! # Ok(())
//! # }
//! ```

pub mod audit;
pub mod session;

pub use audit::{AuditLog, AuditRecord, DebugOp};
pub use session::{DebugSession, ProcessInfo};
