//! Debugger sessions.

// Lint audit: indexes and slice bounds here are established by the
// surrounding length checks / loop invariants before use.
#![allow(clippy::indexing_slicing)]

use petalinux_sim::{Kernel, KernelError, Pid, Shell, UserId};
use serde::{Deserialize, Serialize};
use zynq_dram::{PhysAddr, ScrapeView};
use zynq_mmu::{pagemap, PagemapEntry, VirtAddr};

use crate::audit::{AuditLog, DebugOp};

/// Summary of one running process as the debugger reports it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessInfo {
    /// The process id.
    pub pid: Pid,
    /// The owning user.
    pub user: UserId,
    /// The command line, joined with spaces.
    pub command: String,
}

/// A Xilinx-System-Debugger-style session bound to a user.
///
/// The session wraps the board [`Shell`] primitives and adds the pieces the
/// debugger provides on real hardware: structured process listings, pagemap
/// decoding, and virtual-to-physical translation built *only* from
/// debugger-visible data (never from kernel internals).
#[derive(Debug, Clone)]
pub struct DebugSession {
    user: UserId,
    shell: Shell,
    audit: AuditLog,
}

impl DebugSession {
    /// Connects a debugger session for `user`.
    pub fn connect(user: UserId) -> Self {
        DebugSession {
            user,
            shell: Shell::new(user),
            audit: AuditLog::new(),
        }
    }

    /// The user driving this session.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// The audit log of everything this session has done.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Lists every running process (pid, owner, command line).
    ///
    /// Process listing succeeds under both isolation policies, matching
    /// `ps -ef` behaviour.
    pub fn list_processes(&mut self, kernel: &Kernel) -> Vec<ProcessInfo> {
        self.audit.record(self.user, DebugOp::ListProcesses, true);
        kernel
            .running_processes()
            .map(|p| ProcessInfo {
                pid: p.pid(),
                user: p.user(),
                command: p.command_string(),
            })
            .collect()
    }

    /// Finds the pid of the first running process whose command line contains
    /// `needle`.
    pub fn find_pid(&mut self, kernel: &Kernel, needle: &str) -> Option<Pid> {
        self.list_processes(kernel)
            .into_iter()
            .find(|p| p.command.contains(needle))
            .map(|p| p.pid)
    }

    /// Returns `true` if `pid` is still running (used by the attack to wait
    /// for victim termination).
    pub fn is_running(&mut self, kernel: &Kernel, pid: Pid) -> bool {
        self.list_processes(kernel).iter().any(|p| p.pid == pid)
    }

    /// Reads `/proc/<pid>/maps` through the debugger.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::PermissionDenied`] if the isolation policy
    /// confines the debugger and `pid` belongs to another user.
    pub fn read_maps(&mut self, kernel: &Kernel, pid: Pid) -> Result<String, KernelError> {
        let result = self.shell.cat_maps(kernel, pid);
        self.audit
            .record(self.user, DebugOp::ReadMaps { pid }, result.is_ok());
        result
    }

    /// Reads and decodes `page_count` pagemap entries of `pid` starting at
    /// the page containing `start`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DebugSession::read_maps`].
    pub fn read_pagemap(
        &mut self,
        kernel: &Kernel,
        pid: Pid,
        start: VirtAddr,
        page_count: usize,
    ) -> Result<Vec<PagemapEntry>, KernelError> {
        let result = self.shell.read_pagemap(kernel, pid, start, page_count);
        self.audit.record(
            self.user,
            DebugOp::ReadPagemap {
                pid,
                pages: page_count,
            },
            result.is_ok(),
        );
        result.map(|bytes| pagemap::decode_entries(&bytes))
    }

    /// Translates a virtual address of `pid` to a physical address using only
    /// debugger-visible data (one pagemap entry), i.e. the same computation
    /// the paper's `virtual_to_physical` helper performs.
    ///
    /// Returns `Ok(None)` if the page is not present.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DebugSession::read_maps`].
    pub fn translate(
        &mut self,
        kernel: &Kernel,
        pid: Pid,
        va: VirtAddr,
    ) -> Result<Option<PhysAddr>, KernelError> {
        let entries = self.shell.read_pagemap(kernel, pid, va, 1);
        self.audit
            .record(self.user, DebugOp::Translate { pid }, entries.is_ok());
        let entries = entries.map(|bytes| pagemap::decode_entries(&bytes))?;
        Ok(entries.first().and_then(|entry| {
            entry
                .frame_number()
                .map(|frame| frame.base_address() + va.page_offset())
        }))
    }

    /// Reads one 32-bit word of physical memory (`devmem`).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::PermissionDenied`] for non-root users under the
    /// confined policy, or DRAM range/alignment errors.
    pub fn read_phys_u32(&mut self, kernel: &Kernel, addr: PhysAddr) -> Result<u32, KernelError> {
        let result = self.shell.devmem(kernel, addr);
        self.audit.record(
            self.user,
            DebugOp::ReadPhys { addr, len: 4 },
            result.is_ok(),
        );
        result
    }

    /// Reads `len` bytes of physical memory (the automated scraping read).
    ///
    /// # Errors
    ///
    /// Same conditions as [`DebugSession::read_phys_u32`].
    pub fn read_phys_range(
        &mut self,
        kernel: &Kernel,
        addr: PhysAddr,
        len: usize,
    ) -> Result<Vec<u8>, KernelError> {
        let result = self.shell.devmem_read_bytes(kernel, addr, len);
        self.audit.record(
            self.user,
            DebugOp::ReadPhys {
                addr,
                len: len as u64,
            },
            result.is_ok(),
        );
        result
    }

    /// Reads `len` bytes of physical memory with the read fanned across
    /// `workers` DRAM-bank workers (the bank-striped scraping strategy).
    ///
    /// The bytes — and the audit trail — are identical to
    /// [`DebugSession::read_phys_range`]; the stripes of each bank are simply
    /// pulled concurrently, the way an attacker runs one `devmem` loop per
    /// bank.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DebugSession::read_phys_range`].
    pub fn read_phys_range_banked(
        &mut self,
        kernel: &Kernel,
        addr: PhysAddr,
        len: usize,
        workers: usize,
    ) -> Result<Vec<u8>, KernelError> {
        let result = self
            .shell
            .devmem_read_bytes_banked(kernel, addr, len, workers);
        self.audit.record(
            self.user,
            DebugOp::ReadPhys {
                addr,
                len: len as u64,
            },
            result.is_ok(),
        );
        result
    }

    /// Borrows `len` bytes of physical memory as a zero-copy view over the
    /// DRAM bank arenas instead of copying them out.
    ///
    /// The audit trail is identical to [`DebugSession::read_phys_range`] —
    /// the defender's monitor sees the same `ReadPhys` access pattern either
    /// way.  `Ok(None)` means the board's remanence model forces an owned
    /// read; callers fall back to the copying form.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DebugSession::read_phys_range`].
    pub fn read_phys_view<'k>(
        &mut self,
        kernel: &'k Kernel,
        addr: PhysAddr,
        len: u64,
    ) -> Result<Option<ScrapeView<'k>>, KernelError> {
        let result = self.shell.devmem_read_view(kernel, addr, len);
        self.audit
            .record(self.user, DebugOp::ReadPhys { addr, len }, result.is_ok());
        result
    }

    /// Reads the same `len`-byte physical range `snapshots` times across
    /// successive decay ticks ([`Shell::devmem_read_snapshots`]).
    ///
    /// Each snapshot is a separate physical read, so the defender's monitor
    /// sees one `ReadPhys` audit entry per snapshot — repeated scraping of
    /// the same range is exactly the access pattern a remanence-accumulation
    /// attack leaves behind.  A failed batch records a single denied entry.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DebugSession::read_phys_range`], plus a rejection
    /// of zero snapshot counts.
    pub fn read_phys_snapshots(
        &mut self,
        kernel: &mut Kernel,
        addr: PhysAddr,
        len: usize,
        snapshots: usize,
    ) -> Result<Vec<Vec<u8>>, KernelError> {
        let result = self
            .shell
            .devmem_read_snapshots(kernel, addr, len, snapshots);
        let entries = result.as_ref().map_or(1, Vec::len).max(1);
        for _ in 0..entries {
            self.audit.record(
                self.user,
                DebugOp::ReadPhys {
                    addr,
                    len: len as u64,
                },
                result.is_ok(),
            );
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use petalinux_sim::{BoardConfig, IsolationPolicy};
    use vitis_ai_sim::{DpuRunner, Image, ModelKind};

    fn board(isolation: IsolationPolicy) -> (Kernel, vitis_ai_sim::LaunchedRun) {
        let mut kernel = Kernel::boot(BoardConfig::tiny_for_tests().with_isolation(isolation));
        let run = DpuRunner::new(ModelKind::Resnet50Pt)
            .with_input(Image::corrupted(224, 224))
            .launch(&mut kernel, UserId::new(0))
            .unwrap();
        (kernel, run)
    }

    #[test]
    fn cross_user_session_sees_victim_under_permissive_policy() {
        let (kernel, run) = board(IsolationPolicy::Permissive);
        let mut dbg = DebugSession::connect(UserId::new(1));
        assert_eq!(dbg.user(), UserId::new(1));

        let procs = dbg.list_processes(&kernel);
        assert!(procs.iter().any(|p| p.pid == run.pid()));
        assert_eq!(dbg.find_pid(&kernel, "resnet50_pt"), Some(run.pid()));
        assert!(dbg.is_running(&kernel, run.pid()));

        let maps = dbg.read_maps(&kernel, run.pid()).unwrap();
        assert!(maps.contains("[heap]"));

        let heap = kernel.process(run.pid()).unwrap().heap_base();
        let entries = dbg.read_pagemap(&kernel, run.pid(), heap, 3).unwrap();
        assert_eq!(entries.len(), 3);
        assert!(entries[0].is_present());

        // Debugger-side translation agrees with the kernel's own translation.
        let pa = dbg
            .translate(&kernel, run.pid(), heap + 0x730)
            .unwrap()
            .unwrap();
        let truth = kernel
            .process(run.pid())
            .unwrap()
            .address_space()
            .translate(heap + 0x730)
            .unwrap();
        assert_eq!(pa, truth);

        // And reading that physical address returns the victim's data.
        let word = dbg.read_phys_u32(&kernel, pa.align_down()).unwrap();
        let mut expected = [0u8; 4];
        kernel
            .read_process_memory(run.pid(), heap, &mut expected)
            .unwrap();
        assert_eq!(word.to_le_bytes(), expected);

        let range = dbg.read_phys_range(&kernel, pa.align_down(), 64).unwrap();
        assert_eq!(range.len(), 64);

        // Audit log captured the whole session.
        assert!(dbg.audit().len() >= 7);
        assert_eq!(dbg.audit().denied_count(), 0);
        assert_eq!(dbg.audit().physical_bytes_read(), 4 + 64);
        assert!(dbg.audit().inspections_of(run.pid()) >= 3);
    }

    #[test]
    fn translation_of_unmapped_address_is_none() {
        let (kernel, run) = board(IsolationPolicy::Permissive);
        let mut dbg = DebugSession::connect(UserId::new(1));
        let far = kernel.process(run.pid()).unwrap().heap_base() + 0x4000_0000;
        assert_eq!(dbg.translate(&kernel, run.pid(), far).unwrap(), None);
    }

    #[test]
    fn confined_policy_denies_and_audits_cross_user_operations() {
        let (kernel, run) = board(IsolationPolicy::Confined);
        let mut dbg = DebugSession::connect(UserId::new(1));

        assert!(dbg.read_maps(&kernel, run.pid()).is_err());
        assert!(dbg
            .read_pagemap(&kernel, run.pid(), VirtAddr::new(0), 1)
            .is_err());
        assert!(dbg.translate(&kernel, run.pid(), VirtAddr::new(0)).is_err());
        assert!(dbg
            .read_phys_u32(&kernel, kernel.config().dram().base())
            .is_err());
        assert!(dbg
            .read_phys_range(&kernel, kernel.config().dram().base(), 16)
            .is_err());
        assert_eq!(dbg.audit().denied_count(), 5);
        assert_eq!(dbg.audit().physical_bytes_read(), 0);

        // The victim's own debugger still works.
        let mut own = DebugSession::connect(UserId::new(0));
        assert!(own.read_maps(&kernel, run.pid()).is_ok());
    }

    #[test]
    fn is_running_reflects_termination() {
        let (mut kernel, run) = board(IsolationPolicy::Permissive);
        let mut dbg = DebugSession::connect(UserId::new(1));
        let pid = run.pid();
        assert!(dbg.is_running(&kernel, pid));
        run.terminate(&mut kernel).unwrap();
        assert!(!dbg.is_running(&kernel, pid));
        assert!(dbg.find_pid(&kernel, "resnet50_pt").is_none());
    }
}
