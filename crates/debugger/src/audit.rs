//! Audit log of debugger operations.
//!
//! The paper's defense discussion implies that a monitoring agent on the board
//! could in principle observe the debugger's unusual access pattern (a burst
//! of pagemap reads followed by thousands of physical reads).  The audit log
//! records every operation a [`DebugSession`](crate::DebugSession) performs so
//! that experiments can quantify this detection surface.

// Lint audit: indexes and slice bounds here are established by the
// surrounding length checks / loop invariants before use.
#![allow(clippy::indexing_slicing)]

use std::fmt;

use petalinux_sim::{Pid, UserId};
use serde::{Deserialize, Serialize};
use zynq_dram::PhysAddr;

/// The kind of operation a debugger session performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DebugOp {
    /// Listed the running processes.
    ListProcesses,
    /// Read a process's `maps` file.
    ReadMaps {
        /// The inspected process.
        pid: Pid,
    },
    /// Read a range of a process's `pagemap`.
    ReadPagemap {
        /// The inspected process.
        pid: Pid,
        /// Number of page entries read.
        pages: usize,
    },
    /// Translated a virtual address of a process.
    Translate {
        /// The inspected process.
        pid: Pid,
    },
    /// Read raw physical memory.
    ReadPhys {
        /// First address read.
        addr: PhysAddr,
        /// Number of bytes read.
        len: u64,
    },
}

impl fmt::Display for DebugOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DebugOp::ListProcesses => write!(f, "list-processes"),
            DebugOp::ReadMaps { pid } => write!(f, "read-maps pid={pid}"),
            DebugOp::ReadPagemap { pid, pages } => {
                write!(f, "read-pagemap pid={pid} pages={pages}")
            }
            DebugOp::Translate { pid } => write!(f, "translate pid={pid}"),
            DebugOp::ReadPhys { addr, len } => write!(f, "read-phys addr={addr} len={len}"),
        }
    }
}

/// One audit record: who did what, and whether the isolation policy allowed
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditRecord {
    /// The user driving the debugger.
    pub user: UserId,
    /// The operation performed.
    pub op: DebugOp,
    /// `true` if the operation was permitted.
    pub allowed: bool,
}

/// An append-only log of debugger operations.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditLog {
    records: Vec<AuditRecord>,
}

impl AuditLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        AuditLog::default()
    }

    /// Appends a record.
    pub fn record(&mut self, user: UserId, op: DebugOp, allowed: bool) {
        self.records.push(AuditRecord { user, op, allowed });
    }

    /// All records, oldest first.
    pub fn records(&self) -> &[AuditRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of denied operations.
    pub fn denied_count(&self) -> usize {
        self.records.iter().filter(|r| !r.allowed).count()
    }

    /// Total bytes of physical memory read through the log's `ReadPhys`
    /// operations (the attack's dominant signature).
    pub fn physical_bytes_read(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.allowed)
            .map(|r| match r.op {
                DebugOp::ReadPhys { len, .. } => len,
                _ => 0,
            })
            .sum()
    }

    /// Number of cross-referencing operations against `pid` (maps, pagemap,
    /// translate).
    pub fn inspections_of(&self, pid: Pid) -> usize {
        self.records
            .iter()
            .filter(|r| match r.op {
                DebugOp::ReadMaps { pid: p }
                | DebugOp::ReadPagemap { pid: p, .. }
                | DebugOp::Translate { pid: p } => p == pid,
                _ => false,
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_log() {
        let log = AuditLog::new();
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        assert_eq!(log.denied_count(), 0);
        assert_eq!(log.physical_bytes_read(), 0);
        assert_eq!(log, AuditLog::default());
    }

    #[test]
    fn records_accumulate_and_aggregate() {
        let mut log = AuditLog::new();
        let attacker = UserId::new(1);
        let victim = Pid::new(1391);
        log.record(attacker, DebugOp::ListProcesses, true);
        log.record(attacker, DebugOp::ReadMaps { pid: victim }, true);
        log.record(
            attacker,
            DebugOp::ReadPagemap {
                pid: victim,
                pages: 10,
            },
            true,
        );
        log.record(attacker, DebugOp::Translate { pid: victim }, true);
        log.record(
            attacker,
            DebugOp::ReadPhys {
                addr: PhysAddr::new(0x6_0000_0000),
                len: 4096,
            },
            true,
        );
        log.record(
            attacker,
            DebugOp::ReadPhys {
                addr: PhysAddr::new(0x6_0000_1000),
                len: 4096,
            },
            false,
        );

        assert_eq!(log.len(), 6);
        assert!(!log.is_empty());
        assert_eq!(log.denied_count(), 1);
        // Only allowed reads count toward the signature.
        assert_eq!(log.physical_bytes_read(), 4096);
        assert_eq!(log.inspections_of(victim), 3);
        assert_eq!(log.inspections_of(Pid::new(7)), 0);
        assert_eq!(log.records()[0].user, attacker);
    }

    #[test]
    fn op_display_is_informative() {
        assert_eq!(DebugOp::ListProcesses.to_string(), "list-processes");
        assert!(DebugOp::ReadMaps { pid: Pid::new(2) }
            .to_string()
            .contains("pid=2"));
        assert!(DebugOp::ReadPagemap {
            pid: Pid::new(2),
            pages: 5
        }
        .to_string()
        .contains("pages=5"));
        assert!(DebugOp::Translate { pid: Pid::new(3) }
            .to_string()
            .contains("translate"));
        assert!(DebugOp::ReadPhys {
            addr: PhysAddr::new(16),
            len: 4
        }
        .to_string()
        .contains("len=4"));
    }
}
