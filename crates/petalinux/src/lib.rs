//! # petalinux-sim — embedded-OS simulator for the MSA reproduction
//!
//! Stands in for the PetaLinux system running on the ZCU104's Cortex-A53
//! cluster.  It provides exactly the surfaces the memory scraping attack
//! interacts with:
//!
//! - a [`Kernel`] owning the board's local [`zynq_dram::Dram`], the physical
//!   [`zynq_mmu::FrameAllocator`] and a process table,
//! - process lifecycle (spawn → run → terminate) where termination applies a
//!   configurable [`zynq_dram::SanitizePolicy`] — the vulnerable default
//!   applies none, leaving residue,
//! - `/proc` emulation: textual `/proc/<pid>/maps` files and binary
//!   `/proc/<pid>/pagemap` regions in the exact formats the attack parses,
//! - a [`Shell`] bound to a user offering `ps -ef`, `devmem`, and the proc
//!   reads, gated by the board's [`IsolationPolicy`].
//!
//! # Example
//!
//! ```
//! use petalinux_sim::{BoardConfig, Kernel, Shell, UserId};
//!
//! # fn main() -> Result<(), petalinux_sim::KernelError> {
//! let mut kernel = Kernel::boot(BoardConfig::zcu104());
//! let victim = UserId::new(0);
//! let pid = kernel.spawn(victim, &["./resnet50_pt", "model.xmodel", "001.jpg"])?;
//! kernel.grow_heap(pid, 8 * 4096)?;
//! let heap_base = kernel.process(pid)?.heap_base();
//! kernel.write_process_memory(pid, heap_base, b"secret")?;
//!
//! // Another user's shell can still see the process (Figure 6 of the paper).
//! let attacker_shell = Shell::new(UserId::new(1));
//! let listing = attacker_shell.ps_ef(&kernel);
//! assert!(listing.contains("./resnet50_pt"));
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod error;
pub mod kernel;
pub mod process;
pub mod procfs;
pub mod shell;
pub mod user;

pub use config::{BoardConfig, IsolationPolicy};
pub use error::KernelError;
pub use kernel::Kernel;
pub use process::{Pid, Process, ProcessState};
pub use shell::Shell;
pub use user::UserId;
