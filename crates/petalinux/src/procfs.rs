//! `/proc` emulation: `maps` files, `pagemap` regions and `ps -ef` listings.
//!
//! The renderers in this module produce the exact textual / binary shapes the
//! paper's attack scripts parse:
//!
//! - [`maps_file`] renders lines like
//!   `aaaaee775000-aaaaefd8a000 rw-p 00000000 00:00 0      [heap]`
//!   (the paper's Figure 7),
//! - [`pagemap_bytes`] renders the packed little-endian 64-bit entries of
//!   `/proc/<pid>/pagemap`,
//! - [`ps_ef`] renders the `UID PID PPID C STIME TTY TIME CMD` rows of
//!   Figures 5, 6 and 9.

// Lint audit: indexes and slice bounds here are established by the
// surrounding length checks / loop invariants before use.
#![allow(clippy::indexing_slicing)]

use zynq_mmu::VirtAddr;

use crate::kernel::Kernel;
use crate::process::Process;

/// Renders a process's `/proc/<pid>/maps` file.
///
/// Each VMA becomes one line; anonymous private mappings show the `p` sharing
/// flag and a zero device/inode, exactly like the heap line the paper keys on.
pub fn maps_file(process: &Process) -> String {
    let mut out = String::new();
    for vma in process.address_space().vmas() {
        let line = format!(
            "{:x}-{:x} {}p {:08x} 00:00 0",
            vma.start.as_u64(),
            vma.end.as_u64(),
            vma.perms.to_maps_string(),
            0,
        );
        let label = vma.kind.maps_label();
        if label.is_empty() {
            out.push_str(&line);
        } else {
            // Real maps files pad the pathname column to byte 73.
            out.push_str(&format!("{line:<73}{label}"));
        }
        out.push('\n');
    }
    out
}

/// Extracts the `[heap]` line's address range from a rendered maps file, the
/// way the attacker does with `vim /proc/<pid>/maps` in the paper.
///
/// Returns `None` if the file has no heap line.
pub fn parse_heap_range(maps: &str) -> Option<(VirtAddr, VirtAddr)> {
    for line in maps.lines() {
        if !line.trim_end().ends_with("[heap]") {
            continue;
        }
        let range = line.split_whitespace().next()?;
        let (start, end) = range.split_once('-')?;
        let start = u64::from_str_radix(start, 16).ok()?;
        let end = u64::from_str_radix(end, 16).ok()?;
        return Some((VirtAddr::new(start), VirtAddr::new(end)));
    }
    None
}

/// Renders the binary contents of `/proc/<pid>/pagemap` for `page_count`
/// pages starting at the page containing `start`.
pub fn pagemap_bytes(process: &Process, start: VirtAddr, page_count: usize) -> Vec<u8> {
    let entries = process.address_space().pagemap_entries(start, page_count);
    zynq_mmu::pagemap::encode_entries(&entries)
}

/// Renders the `ps -ef` listing of the running processes (the paper's
/// Figures 5, 6 and 9).
pub fn ps_ef(kernel: &Kernel) -> String {
    let mut out = String::from("UID        PID  PPID  C STIME TTY          TIME CMD\n");
    for process in kernel.running_processes() {
        out.push_str(&format!(
            "{:<9}{:>5} {:>5}  0 {} pts/0    00:00:00 {}\n",
            if process.user().is_root() {
                "root".to_string()
            } else {
                format!("user{}", process.user().as_u32())
            },
            process.pid(),
            process.parent(),
            kernel.format_time(process.start_tick()),
            process.command_string(),
        ));
    }
    out
}

/// Parses the pid column out of a `ps -ef` listing for the first row whose
/// command contains `needle` (the attacker-side half of "polling for pid").
pub fn parse_pid_for_command(listing: &str, needle: &str) -> Option<u32> {
    for line in listing.lines().skip(1) {
        if !line.contains(needle) {
            continue;
        }
        let mut fields = line.split_whitespace();
        let _uid = fields.next()?;
        return fields.next()?.parse().ok();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BoardConfig;
    use crate::user::UserId;

    fn kernel_with_victim() -> (Kernel, crate::Pid) {
        let mut kernel = Kernel::boot(BoardConfig::tiny_for_tests());
        kernel.spawn(UserId::new(0), &["sh"]).unwrap();
        let victim = kernel
            .spawn(
                UserId::new(0),
                &[
                    "./resnet50_pt",
                    "/usr/share/vitis_ai_library/models/resnet50_pt/resnet50_pt.xmodel",
                    "../images/001.jpg",
                ],
            )
            .unwrap();
        kernel.grow_heap(victim, 5 * 4096).unwrap();
        (kernel, victim)
    }

    #[test]
    fn maps_file_contains_heap_line_in_expected_format() {
        let (kernel, victim) = kernel_with_victim();
        let process = kernel.process(victim).unwrap();
        let maps = maps_file(process);
        assert!(maps.contains("[heap]"), "maps output: {maps}");
        let heap_line = maps.lines().find(|l| l.contains("[heap]")).unwrap();
        assert!(heap_line.contains("rw-p"));
        assert!(heap_line.starts_with(&format!("{:x}-", process.heap_base().as_u64())));
    }

    #[test]
    fn heap_range_roundtrips_through_parse() {
        let (kernel, victim) = kernel_with_victim();
        let process = kernel.process(victim).unwrap();
        let maps = maps_file(process);
        let (start, end) = parse_heap_range(&maps).unwrap();
        assert_eq!(start, process.heap_base());
        assert_eq!(end, process.heap_end());
    }

    #[test]
    fn parse_heap_range_handles_missing_heap() {
        assert!(parse_heap_range("").is_none());
        assert!(parse_heap_range("ffff-1000 rw-p 0 00:00 0 [stack]\n").is_none());
        // Malformed heap lines are skipped rather than panicking.
        assert!(parse_heap_range("zzzz [heap]").is_none());
    }

    #[test]
    fn pagemap_bytes_have_eight_bytes_per_page() {
        let (kernel, victim) = kernel_with_victim();
        let process = kernel.process(victim).unwrap();
        let bytes = pagemap_bytes(process, process.heap_base(), 7);
        assert_eq!(bytes.len(), 7 * 8);
        let entries = zynq_mmu::pagemap::decode_entries(&bytes);
        // Five mapped heap pages, then absent entries.
        assert!(entries[..5].iter().all(|e| e.is_present()));
        assert!(entries[5..].iter().all(|e| !e.is_present()));
    }

    #[test]
    fn ps_ef_lists_running_and_hides_terminated() {
        let (mut kernel, victim) = kernel_with_victim();
        let listing = ps_ef(&kernel);
        assert!(listing.starts_with("UID"));
        assert!(listing.contains("./resnet50_pt"));
        assert_eq!(
            parse_pid_for_command(&listing, "resnet50"),
            Some(victim.as_u32())
        );

        kernel.terminate(victim).unwrap();
        let listing_after = ps_ef(&kernel);
        assert!(!listing_after.contains("./resnet50_pt"));
        assert!(parse_pid_for_command(&listing_after, "resnet50").is_none());
        // The shell process is still listed.
        assert!(listing_after.contains("sh"));
    }

    #[test]
    fn parse_pid_ignores_header_and_non_matching_rows() {
        let listing = "UID PID PPID C STIME TTY TIME CMD\nroot  77  1 0 03:51 ? 00:00:00 sh\n";
        assert_eq!(parse_pid_for_command(listing, "sh"), Some(77));
        assert!(parse_pid_for_command(listing, "resnet").is_none());
        assert!(parse_pid_for_command("", "x").is_none());
    }
}
