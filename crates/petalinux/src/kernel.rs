//! The simulated PetaLinux kernel: DRAM + frame allocator + process table.

// Lint audit: address arithmetic here is bounds-checked against the
// DRAM window before any narrowing cast or direct index; offsets are
// derived from validated window-relative coordinates.
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use std::collections::{BTreeMap, BTreeSet};

use zynq_dram::{
    sanitize, Dram, FrameNumber, PhysAddr, SanitizePolicy, ScrapeView, ScrubReport, PAGE_SIZE,
};
use zynq_mmu::{
    AddressSpace, AddressSpaceLayout, FrameAllocator, PagePermissions, VirtAddr, VmaKind,
};

use crate::config::BoardConfig;
use crate::error::KernelError;
use crate::process::{Pid, Process};
use crate::user::UserId;

/// The first pid handed out after boot; chosen so spawned pids land in the
/// same range as the paper's figures (victim pid 1391).
const FIRST_PID: u32 = 1389;

#[derive(Debug, Clone)]
struct DeferredScrub {
    due_tick: u64,
    frames: Vec<FrameNumber>,
}

/// The simulated kernel.
///
/// Owns the board's DRAM, the physical frame allocator and the process table.
/// Every mutation of process memory goes through the kernel so that DRAM
/// ownership tags stay accurate — that is what makes "residue of a terminated
/// process" a measurable quantity.
///
/// # Example
///
/// ```
/// use petalinux_sim::{BoardConfig, Kernel, UserId};
///
/// # fn main() -> Result<(), petalinux_sim::KernelError> {
/// let mut kernel = Kernel::boot(BoardConfig::tiny_for_tests());
/// let pid = kernel.spawn(UserId::new(0), &["./resnet50_pt"])?;
/// kernel.grow_heap(pid, 4096)?;
/// let heap = kernel.process(pid)?.heap_base();
/// kernel.write_process_memory(pid, heap, b"resnet50_pt weights...")?;
/// let report = kernel.terminate(pid)?;
/// // Default policy: nothing scrubbed, residue remains.
/// assert_eq!(report.bytes_scrubbed, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Kernel {
    config: BoardConfig,
    dram: Dram,
    allocator: FrameAllocator,
    processes: BTreeMap<Pid, Process>,
    next_pid: u32,
    clock: u64,
    deferred: Vec<DeferredScrub>,
    scrub_reports: Vec<ScrubReport>,
    /// Copy-on-write share counts: frame → number of live address spaces
    /// mapping it.  Entries exist only while a frame is genuinely shared
    /// (count ≥ 2); once a sole holder remains the frame behaves like any
    /// privately owned one.
    cow_shares: BTreeMap<FrameNumber, u32>,
}

/// Drops one holder's claim on a CoW-shared frame, dissolving the entry when
/// a single holder remains.
fn drop_cow_share(shares: &mut BTreeMap<FrameNumber, u32>, frame: FrameNumber) {
    if let Some(count) = shares.get_mut(&frame) {
        *count -= 1;
        if *count <= 1 {
            shares.remove(&frame);
        }
    }
}

impl Kernel {
    /// Boots a kernel with the given board configuration.
    pub fn boot(config: BoardConfig) -> Self {
        let mut dram = Dram::new(config.dram());
        dram.set_remanence(config.remanence());
        Kernel {
            config,
            dram,
            allocator: FrameAllocator::with_order(config.dram(), config.allocation_order()),
            processes: BTreeMap::new(),
            next_pid: FIRST_PID,
            clock: 0,
            deferred: Vec::new(),
            scrub_reports: Vec::new(),
            cow_shares: BTreeMap::new(),
        }
    }

    /// The board configuration this kernel was booted with.
    pub fn config(&self) -> &BoardConfig {
        &self.config
    }

    /// Read access to the board's DRAM.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Read access to the physical frame allocator.
    pub fn allocator(&self) -> &FrameAllocator {
        &self.allocator
    }

    /// The current kernel tick.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Seeds the DRAM remanence decay draws (scenarios pass their cell seed
    /// so decayed scrapes replay exactly).  A no-op observable only under a
    /// non-perfect [`zynq_dram::RemanenceModel`].
    pub fn set_remanence_seed(&mut self, seed: u64) {
        self.dram.set_remanence_seed(seed);
    }

    /// Advances the kernel's logical clock, keeping the DRAM remanence decay
    /// clock in lock-step: every scenario step that moves the kernel clock
    /// (spawns, writes, terminations, explicit [`Kernel::tick`]s) is one unit
    /// of decay time.  Never driven by wall clock.
    fn advance_clock(&mut self, ticks: u64) {
        self.clock += ticks;
        self.dram.advance_remanence(ticks);
    }

    /// Reports produced by every sanitization run so far (one per terminated
    /// process, plus one per completed background scrub).
    pub fn scrub_reports(&self) -> &[ScrubReport] {
        &self.scrub_reports
    }

    /// Advances the kernel clock by `ticks`, running any background scrubs
    /// whose deadline has passed.
    pub fn tick(&mut self, ticks: u64) {
        self.advance_clock(ticks);
        let clock = self.clock;
        let (due, pending): (Vec<_>, Vec<_>) = std::mem::take(&mut self.deferred)
            .into_iter()
            .partition(|d| d.due_tick <= clock);
        self.deferred = pending;
        for scrub in due {
            let report = sanitize::scrub_deferred(
                &mut self.dram,
                &scrub.frames,
                &self.config.sanitize_cost(),
            );
            self.scrub_reports.push(report);
        }
    }

    /// Number of background scrubs still pending.
    pub fn pending_scrubs(&self) -> usize {
        self.deferred.len()
    }

    /// Spawns a new process for `user` with the given command line.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::EmptyCommandLine`] if `cmdline` is empty.
    pub fn spawn(&mut self, user: UserId, cmdline: &[&str]) -> Result<Pid, KernelError> {
        if cmdline.is_empty() {
            return Err(KernelError::EmptyCommandLine);
        }
        let pid = Pid::new(self.next_pid);
        self.next_pid += 1;
        let parent = Pid::new(self.next_pid.saturating_sub(1000).max(1));
        self.insert_process(pid, parent, user, cmdline);
        Ok(pid)
    }

    /// Shared tail of [`Kernel::spawn`] and [`Kernel::spawn_reusing_pid`]:
    /// builds the process record with a fresh address space and advances the
    /// clock.
    fn insert_process(&mut self, pid: Pid, parent: Pid, user: UserId, cmdline: &[&str]) {
        let layout = AddressSpaceLayout::from_mode(self.config.aslr());
        let space = AddressSpace::new(layout);
        let process = Process::new(
            pid,
            parent,
            user,
            cmdline.iter().map(|s| s.to_string()).collect(),
            self.clock,
            space,
        );
        self.processes.insert(pid, process);
        self.advance_clock(1);
    }

    /// Spawns a new process that *reuses* the pid of a terminated one — the
    /// resurrection-style lifecycle in which private data can leak across a
    /// pid's lifetimes.
    ///
    /// On a real busy system the pid counter wraps and terminated pids are
    /// eventually handed out again; this entry point makes that reuse
    /// deterministic for experiments.  The terminated process's record is
    /// replaced by the new process; its DRAM residue (if the sanitize policy
    /// left any) stays in place and keeps its owner tag, which now also
    /// identifies the revived process.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchProcess`] if `pid` was never spawned,
    /// [`KernelError::PidInUse`] if it is still running, and
    /// [`KernelError::EmptyCommandLine`] if `cmdline` is empty.
    pub fn spawn_reusing_pid(
        &mut self,
        user: UserId,
        cmdline: &[&str],
        pid: Pid,
    ) -> Result<Pid, KernelError> {
        if cmdline.is_empty() {
            return Err(KernelError::EmptyCommandLine);
        }
        let previous = self
            .processes
            .get(&pid)
            .ok_or(KernelError::NoSuchProcess { pid })?;
        if previous.is_running() {
            return Err(KernelError::PidInUse { pid });
        }
        let parent = previous.parent();
        self.insert_process(pid, parent, user, cmdline);
        Ok(pid)
    }

    /// Forks a running process: the child gets a byte-identical copy of the
    /// parent's address space whose pages are shared **copy-on-write** — no
    /// frames are copied at fork time, only share counts go up.
    ///
    /// The CoW contract is the residue channel the ForkHeavy schedules
    /// exploit: terminating the parent leaves shared frames allocated (a live
    /// child still maps them), so they never reach the sanitizer's freed list
    /// — the parent's heap survives even a zero-on-free scrub, tagged as the
    /// parent's residue, until the child dies or writes over it.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchProcess`] or
    /// [`KernelError::ProcessTerminated`].
    pub fn fork(&mut self, pid: Pid) -> Result<Pid, KernelError> {
        let parent = self
            .processes
            .get(&pid)
            .ok_or(KernelError::NoSuchProcess { pid })?;
        if !parent.is_running() {
            return Err(KernelError::ProcessTerminated { pid });
        }
        let space = parent.space.clone();
        let user = parent.user();
        let cmdline = parent.cmdline().to_vec();
        let child_pid = Pid::new(self.next_pid);
        self.next_pid += 1;
        for frame in space.owned_frames() {
            // The entry springs to life at 2 (parent + first child) and grows
            // by one per additional holder.
            *self.cow_shares.entry(*frame).or_insert(1) += 1;
        }
        let child = Process::new(child_pid, pid, user, cmdline, self.clock, space);
        self.processes.insert(child_pid, child);
        self.advance_clock(1);
        Ok(child_pid)
    }

    /// Frames currently shared copy-on-write, each with the number of live
    /// address spaces mapping it (always ≥ 2 while listed).
    pub fn cow_shared_frames(&self) -> impl Iterator<Item = (FrameNumber, u32)> + '_ {
        self.cow_shares
            .iter()
            .map(|(frame, count)| (*frame, *count))
    }

    /// Number of CoW-shared frames mapped by `pid`'s address space (zero for
    /// unknown pids).
    pub fn cow_shared_frame_count(&self, pid: Pid) -> usize {
        self.processes.get(&pid).map_or(0, |p| {
            p.space
                .owned_frames()
                .iter()
                .filter(|f| self.cow_shares.contains_key(f))
                .count()
        })
    }

    /// Looks up a process (running or terminated).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchProcess`] if the pid was never spawned.
    pub fn process(&self, pid: Pid) -> Result<&Process, KernelError> {
        self.processes
            .get(&pid)
            .ok_or(KernelError::NoSuchProcess { pid })
    }

    fn running_process_mut(&mut self, pid: Pid) -> Result<&mut Process, KernelError> {
        let process = self
            .processes
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess { pid })?;
        if !process.is_running() {
            return Err(KernelError::ProcessTerminated { pid });
        }
        Ok(process)
    }

    /// Iterates over every process record, running and terminated.
    pub fn processes(&self) -> impl Iterator<Item = &Process> {
        self.processes.values()
    }

    /// Iterates over the running processes only (what `ps -ef` shows).
    pub fn running_processes(&self) -> impl Iterator<Item = &Process> {
        self.processes.values().filter(|p| p.is_running())
    }

    /// Finds the pid of the first *running* process whose command line
    /// contains `needle` (the attacker's "polling for pid" step).
    pub fn find_running_pid(&self, needle: &str) -> Option<Pid> {
        self.running_processes()
            .find(|p| p.command_string().contains(needle))
            .map(|p| p.pid())
    }

    /// Grows a running process's heap by `bytes`, returning the new break.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchProcess`], [`KernelError::ProcessTerminated`]
    /// or a wrapped [`zynq_mmu::MmuError`] on allocation failure.
    pub fn grow_heap(&mut self, pid: Pid, bytes: u64) -> Result<VirtAddr, KernelError> {
        let allocator = &mut self.allocator;
        let process = self
            .processes
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess { pid })?;
        if !process.is_running() {
            return Err(KernelError::ProcessTerminated { pid });
        }
        Ok(process.space.grow_heap(bytes, allocator)?)
    }

    /// Maps a fixed region in a running process's address space.
    ///
    /// # Errors
    ///
    /// Propagates process-lookup and virtual-memory errors.
    pub fn map_region(
        &mut self,
        pid: Pid,
        start: VirtAddr,
        len: u64,
        perms: PagePermissions,
        kind: VmaKind,
    ) -> Result<(), KernelError> {
        let allocator = &mut self.allocator;
        let process = self
            .processes
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess { pid })?;
        if !process.is_running() {
            return Err(KernelError::ProcessTerminated { pid });
        }
        process
            .space
            .map_region(start, len, perms, kind, allocator)?;
        Ok(())
    }

    /// Writes `data` into a running process's memory at virtual address `va`.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnmappedAddress`] if any touched page is not
    /// mapped.
    pub fn write_process_memory(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        data: &[u8],
    ) -> Result<(), KernelError> {
        let owner = pid.owner_tag();
        self.service_cow_faults(pid, va, data.len() as u64)?;
        // Translate page by page, then write through to DRAM.
        let process = self.running_process_mut(pid)?;
        let mut translations = Vec::new();
        let mut offset = 0u64;
        while offset < data.len() as u64 {
            let addr = va + offset;
            let pa = process
                .space
                .translate(addr)
                .ok_or(KernelError::UnmappedAddress { pid, addr })?;
            let page_remaining = zynq_dram::PAGE_SIZE - addr.page_offset();
            let chunk = page_remaining.min(data.len() as u64 - offset);
            translations.push((pa, offset as usize, chunk as usize));
            offset += chunk;
        }
        for (pa, start, len) in translations {
            self.dram
                .write_bytes(pa, &data[start..start + len], owner)?;
        }
        self.advance_clock(1);
        Ok(())
    }

    /// Copy-on-write fault service for an upcoming write of `len` bytes at
    /// `va`: every touched page whose backing frame is shared gets a private
    /// copy first, so the CoW peer keeps seeing the old bytes.
    ///
    /// The private copy is tagged as the *writer's* DRAM ownership; the
    /// displaced frame keeps its original tag and stays mapped by the
    /// remaining holders.
    fn service_cow_faults(&mut self, pid: Pid, va: VirtAddr, len: u64) -> Result<(), KernelError> {
        if self.cow_shares.is_empty() || len == 0 {
            return Ok(());
        }
        let owner = pid.owner_tag();
        let Kernel {
            processes,
            allocator,
            dram,
            cow_shares,
            ..
        } = self;
        let process = processes
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess { pid })?;
        if !process.is_running() {
            return Err(KernelError::ProcessTerminated { pid });
        }
        let mut offset = 0u64;
        while offset < len {
            let addr = va + offset;
            let pa = process
                .space
                .translate(addr)
                .ok_or(KernelError::UnmappedAddress { pid, addr })?;
            let frame = pa.frame_number();
            if cow_shares.contains_key(&frame) {
                let private = allocator.allocate()?;
                let mut page = vec![0u8; PAGE_SIZE as usize];
                dram.read_bytes(frame.base_address(), &mut page)?;
                dram.write_bytes(private.base_address(), &page, owner)?;
                process.space.remap_page(addr, private)?;
                drop_cow_share(cow_shares, frame);
            }
            let page_remaining = PAGE_SIZE - addr.page_offset();
            offset += page_remaining.min(len - offset);
        }
        Ok(())
    }

    /// Reads a running process's memory at virtual address `va` into `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnmappedAddress`] if any touched page is not
    /// mapped.
    pub fn read_process_memory(
        &self,
        pid: Pid,
        va: VirtAddr,
        buf: &mut [u8],
    ) -> Result<(), KernelError> {
        let process = self.process(pid)?;
        if !process.is_running() {
            return Err(KernelError::ProcessTerminated { pid });
        }
        let mut offset = 0u64;
        while offset < buf.len() as u64 {
            let addr = va + offset;
            let pa = process
                .space
                .translate(addr)
                .ok_or(KernelError::UnmappedAddress { pid, addr })?;
            let page_remaining = zynq_dram::PAGE_SIZE - addr.page_offset();
            let chunk = page_remaining.min(buf.len() as u64 - offset) as usize;
            self.dram
                .read_bytes(pa, &mut buf[offset as usize..offset as usize + chunk])?;
            offset += chunk as u64;
        }
        Ok(())
    }

    /// Terminates a running process, freeing its frames and applying the
    /// configured sanitization policy.
    ///
    /// Two residue substrates escape the frame-oriented path here.  Under
    /// memory pressure ([`BoardConfig::with_swap`]) the coldest heap pages are
    /// compressed into the swap store first, where frame scrubbing never
    /// reaches them.  And frames still CoW-shared with a live fork child are
    /// *retained* — not freed, not handed to the sanitizer — so the parent's
    /// bytes survive under the child until it dies or writes over them.
    ///
    /// Returns the sanitizer's report (which records zero scrubbed bytes under
    /// the vulnerable default policy).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchProcess`] or
    /// [`KernelError::ProcessTerminated`].
    pub fn terminate(&mut self, pid: Pid) -> Result<ScrubReport, KernelError> {
        if !self
            .processes
            .get(&pid)
            .ok_or(KernelError::NoSuchProcess { pid })?
            .is_running()
        {
            return Err(KernelError::ProcessTerminated { pid });
        }
        self.swap_out_cold_pages(pid)?;
        let clock = self.clock;
        let Kernel {
            processes,
            allocator,
            cow_shares,
            ..
        } = self;
        let process = processes.get_mut(&pid).expect("validated above");
        let shared: BTreeSet<FrameNumber> = process
            .space
            .owned_frames()
            .iter()
            .filter(|f| cow_shares.contains_key(f))
            .copied()
            .collect();
        let (freed, retained) = process.space.release_all_except(allocator, &shared);
        for frame in &retained {
            drop_cow_share(cow_shares, *frame);
        }
        process.mark_terminated(clock);
        let policy = self.config.sanitize_policy();
        let report = policy.apply(
            &mut self.dram,
            pid.owner_tag(),
            &freed,
            &self.config.sanitize_cost(),
        );
        if let SanitizePolicy::Background { delay_ticks } = policy {
            if !report.deferred_frames.is_empty() {
                self.deferred.push(DeferredScrub {
                    due_tick: self.clock + delay_ticks,
                    frames: report.deferred_frames.clone(),
                });
            }
        }
        self.scrub_reports.push(report.clone());
        self.advance_clock(1);
        Ok(report)
    }

    /// Swaps out the coldest fraction of `pid`'s heap (lowest addresses
    /// first) into the compressed swap store, per the board's memory-pressure
    /// knob.  Copy-only: the frames stay mapped and are freed/sanitized by
    /// the normal termination path — the compressed slots are a second
    /// substrate that frame scrubbing never touches.
    fn swap_out_cold_pages(&mut self, pid: Pid) -> Result<(), KernelError> {
        let pressure = u64::from(self.config.swap_pressure());
        if pressure == 0 {
            return Ok(());
        }
        let process = self.process(pid)?;
        let Some(heap) = process.address_space().heap_vma() else {
            return Ok(());
        };
        let heap_start = heap.start;
        let cold_pages = (heap.len() / PAGE_SIZE * pressure).div_ceil(100);
        let mut pages = Vec::new();
        for index in 0..cold_pages {
            let va = heap_start + index * PAGE_SIZE;
            if let Some(pa) = process.address_space().translate(va) {
                pages.push((index, pa));
            }
        }
        let owner = pid.owner_tag();
        for (index, pa) in pages {
            let mut buf = vec![0u8; PAGE_SIZE as usize];
            self.dram.read_bytes(pa, &mut buf)?;
            self.dram.swap_store_mut().swap_out(owner, index, &buf);
        }
        Ok(())
    }

    /// Reads a 32-bit word from physical memory (the kernel-side primitive
    /// behind `devmem`).  Permission checks live in [`crate::Shell`] and the
    /// debugger, not here.
    ///
    /// # Errors
    ///
    /// Propagates DRAM range/alignment errors.
    pub fn read_physical_u32(&self, addr: PhysAddr) -> Result<u32, KernelError> {
        Ok(self.dram.read_u32(addr)?)
    }

    /// Reads raw bytes from physical memory.
    ///
    /// # Errors
    ///
    /// Propagates DRAM range errors.
    pub fn read_physical_bytes(&self, addr: PhysAddr, buf: &mut [u8]) -> Result<(), KernelError> {
        Ok(self.dram.read_bytes(addr, buf)?)
    }

    /// `true` when [`Kernel::read_physical_view`] will hand out borrowed
    /// views (the DRAM remanence model needs no owned decay transform), so
    /// scrapers can pick the zero-copy path without a speculative read.
    pub fn zero_copy_reads_available(&self) -> bool {
        self.dram.supports_borrowed_reads()
    }

    /// Borrows a zero-copy view of physical memory straight out of the DRAM
    /// bank arenas ([`zynq_dram::Dram::scrape_view`]).
    ///
    /// Returns `Ok(None)` when the remanence model requires an owned decay
    /// transform; callers then fall back to [`Kernel::read_physical_bytes`].
    /// When a view is returned it is byte-identical to that owned read.
    ///
    /// # Errors
    ///
    /// Propagates DRAM range errors.
    pub fn read_physical_view(
        &self,
        addr: PhysAddr,
        len: u64,
    ) -> Result<Option<ScrapeView<'_>>, KernelError> {
        Ok(self.dram.scrape_view(addr, len)?)
    }

    /// Reads raw bytes from physical memory with the read fanned across
    /// `workers` bank-shard workers ([`zynq_dram::Dram::scrape_banks_parallel`]).
    ///
    /// The bytes returned are identical to [`Kernel::read_physical_bytes`];
    /// only the wall clock differs.
    ///
    /// # Errors
    ///
    /// Propagates DRAM range errors, and rejects a zero-sized worker pool.
    pub fn read_physical_bytes_parallel(
        &self,
        addr: PhysAddr,
        buf: &mut [u8],
        workers: usize,
    ) -> Result<(), KernelError> {
        Ok(self.dram.scrape_banks_parallel(addr, buf, workers)?)
    }

    /// Reads the same physical range `snapshots` times, advancing the decay
    /// clock one tick between reads (each snapshot therefore sees the residue
    /// one revival window later than the previous one).
    ///
    /// The first snapshot is taken at the current clock, so a single-snapshot
    /// read is byte-identical to [`Kernel::read_physical_bytes`].  Ticking the
    /// clock also runs any background scrubs that come due, exactly as
    /// [`Kernel::tick`] would.
    ///
    /// # Errors
    ///
    /// Propagates DRAM range errors, and rejects a zero snapshot count.
    pub fn read_physical_snapshots(
        &mut self,
        addr: PhysAddr,
        len: usize,
        snapshots: usize,
    ) -> Result<Vec<Vec<u8>>, KernelError> {
        if snapshots == 0 {
            return Err(zynq_dram::DramError::ZeroSnapshots.into());
        }
        let mut reads = Vec::with_capacity(snapshots);
        for snapshot in 0..snapshots {
            if snapshot > 0 {
                self.tick(1);
            }
            let mut buf = vec![0u8; len];
            self.read_physical_bytes(addr, &mut buf)?;
            reads.push(buf);
        }
        Ok(reads)
    }

    /// Formats a kernel tick as the `HH:MM` wall-clock string `ps -ef` prints
    /// in its `STIME` column (boot is pinned at 03:51, matching the paper's
    /// figures).
    pub fn format_time(&self, tick: u64) -> String {
        let minutes_since_boot = tick / 60;
        let total = 3 * 60 + 51 + minutes_since_boot;
        format!("{:02}:{:02}", (total / 60) % 24, total % 60)
    }

    /// Ground truth for experiments: number of residue (terminated, not
    /// scrubbed) frames currently in DRAM.
    pub fn residue_frame_count(&self) -> usize {
        self.dram.residue_frames().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::ProcessState;
    use zynq_dram::SanitizePolicy;

    fn kernel() -> Kernel {
        Kernel::boot(BoardConfig::tiny_for_tests())
    }

    #[test]
    fn boot_state_is_empty() {
        let k = kernel();
        assert_eq!(k.processes().count(), 0);
        assert_eq!(k.running_processes().count(), 0);
        assert_eq!(k.clock(), 0);
        assert_eq!(k.residue_frame_count(), 0);
        assert_eq!(k.pending_scrubs(), 0);
        assert!(k.scrub_reports().is_empty());
    }

    #[test]
    fn spawn_assigns_increasing_pids_in_paper_range() {
        let mut k = kernel();
        let a = k.spawn(UserId::new(0), &["ps", "-ef"]).unwrap();
        let b = k.spawn(UserId::new(0), &["./resnet50_pt"]).unwrap();
        assert_eq!(a.as_u32(), 1389);
        assert_eq!(b.as_u32(), 1390);
        assert!(k.process(a).unwrap().is_running());
        assert_eq!(k.process(b).unwrap().command_string(), "./resnet50_pt");
    }

    #[test]
    fn spawn_rejects_empty_command_line() {
        let mut k = kernel();
        assert!(matches!(
            k.spawn(UserId::new(0), &[]),
            Err(KernelError::EmptyCommandLine)
        ));
    }

    #[test]
    fn process_lookup_errors() {
        let mut k = kernel();
        assert!(matches!(
            k.process(Pid::new(9999)),
            Err(KernelError::NoSuchProcess { .. })
        ));
        let pid = k.spawn(UserId::new(0), &["a"]).unwrap();
        k.terminate(pid).unwrap();
        assert!(matches!(
            k.grow_heap(pid, 4096),
            Err(KernelError::ProcessTerminated { .. })
        ));
        assert!(matches!(
            k.terminate(pid),
            Err(KernelError::ProcessTerminated { .. })
        ));
    }

    #[test]
    fn memory_write_read_roundtrip_through_virtual_addresses() {
        let mut k = kernel();
        let pid = k.spawn(UserId::new(0), &["victim"]).unwrap();
        k.grow_heap(pid, 3 * 4096).unwrap();
        let heap = k.process(pid).unwrap().heap_base();
        let data: Vec<u8> = (0..6000u32).map(|i| (i % 251) as u8).collect();
        k.write_process_memory(pid, heap + 100, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        k.read_process_memory(pid, heap + 100, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn write_to_unmapped_address_is_rejected() {
        let mut k = kernel();
        let pid = k.spawn(UserId::new(0), &["victim"]).unwrap();
        let heap = k.process(pid).unwrap().heap_base();
        assert!(matches!(
            k.write_process_memory(pid, heap, b"x"),
            Err(KernelError::UnmappedAddress { .. })
        ));
        let mut buf = [0u8; 1];
        assert!(k.read_process_memory(pid, heap, &mut buf).is_err());
    }

    #[test]
    fn termination_with_default_policy_leaves_readable_residue() {
        let mut k = kernel();
        let pid = k.spawn(UserId::new(0), &["./resnet50_pt"]).unwrap();
        k.grow_heap(pid, 4096).unwrap();
        let heap = k.process(pid).unwrap().heap_base();
        k.write_process_memory(pid, heap, b"resnet50_pt").unwrap();
        // Remember the physical location before termination.
        let pa = k
            .process(pid)
            .unwrap()
            .address_space()
            .translate(heap)
            .unwrap();

        let report = k.terminate(pid).unwrap();
        assert_eq!(report.bytes_scrubbed, 0);
        assert!(report.leaves_residue());
        assert_eq!(k.process(pid).unwrap().state(), ProcessState::Terminated);
        assert_eq!(k.running_processes().count(), 0);
        assert!(k.residue_frame_count() > 0);

        // The residue is still readable through physical memory (the attack).
        let mut buf = vec![0u8; 11];
        k.read_physical_bytes(pa, &mut buf).unwrap();
        assert_eq!(&buf, b"resnet50_pt");
    }

    #[test]
    fn termination_with_zero_on_free_clears_residue() {
        let mut k = Kernel::boot(
            BoardConfig::tiny_for_tests().with_sanitize_policy(SanitizePolicy::ZeroOnFree),
        );
        let pid = k.spawn(UserId::new(0), &["victim"]).unwrap();
        k.grow_heap(pid, 4096).unwrap();
        let heap = k.process(pid).unwrap().heap_base();
        k.write_process_memory(pid, heap, b"secret").unwrap();
        let pa = k
            .process(pid)
            .unwrap()
            .address_space()
            .translate(heap)
            .unwrap();

        let report = k.terminate(pid).unwrap();
        assert!(report.bytes_scrubbed >= 4096);
        let mut buf = vec![0u8; 6];
        k.read_physical_bytes(pa, &mut buf).unwrap();
        assert_eq!(buf, vec![0u8; 6]);
        assert_eq!(k.residue_frame_count(), 0);
    }

    #[test]
    fn background_policy_scrubs_after_delay() {
        let mut k = Kernel::boot(
            BoardConfig::tiny_for_tests()
                .with_sanitize_policy(SanitizePolicy::Background { delay_ticks: 50 }),
        );
        let pid = k.spawn(UserId::new(0), &["victim"]).unwrap();
        k.grow_heap(pid, 4096).unwrap();
        let heap = k.process(pid).unwrap().heap_base();
        k.write_process_memory(pid, heap, b"secret").unwrap();
        let pa = k
            .process(pid)
            .unwrap()
            .address_space()
            .translate(heap)
            .unwrap();
        k.terminate(pid).unwrap();
        assert_eq!(k.pending_scrubs(), 1);

        // Within the window the residue is readable.
        let mut buf = vec![0u8; 6];
        k.read_physical_bytes(pa, &mut buf).unwrap();
        assert_eq!(&buf, b"secret");

        // After the window it is gone.
        k.tick(60);
        assert_eq!(k.pending_scrubs(), 0);
        k.read_physical_bytes(pa, &mut buf).unwrap();
        assert_eq!(buf, vec![0u8; 6]);
        // Two reports: the termination itself plus the deferred scrub.
        assert_eq!(k.scrub_reports().len(), 2);
    }

    #[test]
    fn spawn_reusing_pid_revives_a_terminated_pid() {
        let mut k = kernel();
        let victim = k.spawn(UserId::new(0), &["./resnet50_pt"]).unwrap();
        k.grow_heap(victim, 2 * 4096).unwrap();
        let heap = k.process(victim).unwrap().heap_base();
        k.write_process_memory(victim, heap, b"private victim data")
            .unwrap();

        // Reuse is refused while the pid is running.
        assert!(matches!(
            k.spawn_reusing_pid(UserId::new(1), &["revived"], victim),
            Err(KernelError::PidInUse { .. })
        ));
        k.terminate(victim).unwrap();

        // Unknown pids and empty command lines are still rejected.
        assert!(matches!(
            k.spawn_reusing_pid(UserId::new(1), &["x"], Pid::new(9999)),
            Err(KernelError::NoSuchProcess { .. })
        ));
        assert!(matches!(
            k.spawn_reusing_pid(UserId::new(1), &[], victim),
            Err(KernelError::EmptyCommandLine)
        ));

        let revived = k
            .spawn_reusing_pid(UserId::new(1), &["revived"], victim)
            .unwrap();
        assert_eq!(revived, victim);
        let p = k.process(revived).unwrap();
        assert!(p.is_running());
        assert_eq!(p.user(), UserId::new(1));
        assert_eq!(p.command_string(), "revived");
        // Fresh pids continue from where the counter was — reuse does not
        // disturb the deterministic sequence.
        let fresh = k.spawn(UserId::new(0), &["next"]).unwrap();
        assert_eq!(fresh.as_u32(), FIRST_PID + 1);
    }

    #[test]
    fn revived_process_inherits_victim_frames_and_residue() {
        // The lifecycle the Resurrection-style schedule exploits: the victim
        // terminates unsanitized, its frames go to the top of the reuse list,
        // and the next process's heap lands on them with the data intact.
        let mut k = kernel();
        let victim = k.spawn(UserId::new(0), &["victim"]).unwrap();
        k.grow_heap(victim, 3 * 4096).unwrap();
        let heap = k.process(victim).unwrap().heap_base();
        k.write_process_memory(victim, heap, b"secret weights")
            .unwrap();
        let victim_frames: Vec<_> = (0..3)
            .map(|i| {
                k.process(victim)
                    .unwrap()
                    .address_space()
                    .translate(heap + i * 4096)
                    .unwrap()
                    .frame_number()
            })
            .collect();
        k.terminate(victim).unwrap();

        // The freed frames sit on the allocator's reuse list.
        let free: Vec<_> = k.allocator().free_list_frames().collect();
        for f in &victim_frames {
            assert!(free.contains(f), "victim frame {f} must be reusable");
        }

        let revived = k
            .spawn_reusing_pid(UserId::new(1), &["revived"], victim)
            .unwrap();
        k.grow_heap(revived, 3 * 4096).unwrap();
        let new_heap = k.process(revived).unwrap().heap_base();
        let revived_frames: Vec<_> = (0..3)
            .map(|i| {
                k.process(revived)
                    .unwrap()
                    .address_space()
                    .translate(new_heap + i * 4096)
                    .unwrap()
                    .frame_number()
            })
            .collect();
        // Sequential policy: the revived heap is built from the victim's
        // frames (in LIFO order).
        for f in &revived_frames {
            assert!(victim_frames.contains(f));
        }
        // And the revived process can read the victim's residue through its
        // own, freshly mapped heap — the exploitable inheritance.
        let idx = revived_frames
            .iter()
            .position(|f| *f == victim_frames[0])
            .unwrap() as u64;
        let mut leaked = vec![0u8; 14];
        k.read_process_memory(revived, new_heap + idx * 4096, &mut leaked)
            .unwrap();
        assert_eq!(&leaked, b"secret weights");
    }

    #[test]
    fn find_running_pid_matches_command_substring() {
        let mut k = kernel();
        k.spawn(UserId::new(0), &["sh"]).unwrap();
        let victim = k
            .spawn(
                UserId::new(0),
                &["./resnet50_pt", "model.xmodel", "001.jpg"],
            )
            .unwrap();
        assert_eq!(k.find_running_pid("resnet50"), Some(victim));
        assert_eq!(k.find_running_pid("nonexistent"), None);
        k.terminate(victim).unwrap();
        assert_eq!(k.find_running_pid("resnet50"), None);
    }

    #[test]
    fn map_region_and_terminated_process_memory_access() {
        let mut k = kernel();
        let pid = k.spawn(UserId::new(0), &["victim"]).unwrap();
        let mmap_base = k.process(pid).unwrap().address_space().layout().mmap_base();
        k.map_region(
            pid,
            mmap_base,
            4096,
            PagePermissions::read_only(),
            VmaKind::Mapped {
                label: "/dev/dri/renderD128".to_string(),
            },
        )
        .unwrap();
        assert_eq!(k.process(pid).unwrap().address_space().vmas().len(), 1);
        k.terminate(pid).unwrap();
        let mut buf = [0u8; 4];
        assert!(matches!(
            k.read_process_memory(pid, mmap_base, &mut buf),
            Err(KernelError::ProcessTerminated { .. })
        ));
        assert!(matches!(
            k.map_region(
                pid,
                mmap_base,
                4096,
                PagePermissions::read_only(),
                VmaKind::Stack
            ),
            Err(KernelError::ProcessTerminated { .. })
        ));
    }

    #[test]
    fn remanence_board_knob_decays_residue_on_logical_ticks() {
        use zynq_dram::RemanenceModel;
        let mut k = Kernel::boot(
            BoardConfig::tiny_for_tests()
                .with_remanence(RemanenceModel::Exponential { half_life_ticks: 2 }),
        );
        k.set_remanence_seed(42);
        let pid = k.spawn(UserId::new(0), &["victim"]).unwrap();
        k.grow_heap(pid, 4096).unwrap();
        let heap = k.process(pid).unwrap().heap_base();
        k.write_process_memory(pid, heap, &[0xEE; 4096]).unwrap();
        let pa = k
            .process(pid)
            .unwrap()
            .address_space()
            .translate(heap)
            .unwrap();
        k.terminate(pid).unwrap();

        // One logical tick after termination: some bytes already decayed,
        // most survive.
        let mut soon = vec![0u8; 4096];
        k.read_physical_bytes(pa, &mut soon).unwrap();
        let survivors_soon = soon.iter().filter(|&&b| b != 0).count();
        assert!(survivors_soon > 2048, "{survivors_soon}");
        assert!(survivors_soon < 4096, "{survivors_soon}");

        // Many half-lives later the residue is effectively gone — and only
        // logical ticks moved it there, never wall clock.
        k.tick(64);
        let mut late = vec![0u8; 4096];
        k.read_physical_bytes(pa, &mut late).unwrap();
        assert!(late.iter().all(|&b| b == 0));

        // The raw store still tracks the frame as (undecayed) residue; decay
        // is a read view, not a scrub.
        assert_eq!(k.residue_frame_count(), 1);
        assert_eq!(k.dram().residue_bytes(), 4096);
        assert_eq!(k.dram().residue_decay(None).surviving_bytes, 0);
    }

    #[test]
    fn multi_snapshot_reads_tick_the_clock_and_only_lose_bits() {
        use zynq_dram::RemanenceModel;
        let mut k = Kernel::boot(
            BoardConfig::tiny_for_tests()
                .with_remanence(RemanenceModel::Exponential { half_life_ticks: 2 }),
        );
        k.set_remanence_seed(7);
        let pid = k.spawn(UserId::new(0), &["victim"]).unwrap();
        k.grow_heap(pid, 4096).unwrap();
        let heap = k.process(pid).unwrap().heap_base();
        k.write_process_memory(pid, heap, &[0xA5; 4096]).unwrap();
        let pa = k
            .process(pid)
            .unwrap()
            .address_space()
            .translate(heap)
            .unwrap();
        k.terminate(pid).unwrap();

        assert!(matches!(
            k.read_physical_snapshots(pa, 4096, 0),
            Err(KernelError::Dram(zynq_dram::DramError::ZeroSnapshots))
        ));

        let before = k.clock();
        let snaps = k.read_physical_snapshots(pa, 4096, 3).unwrap();
        assert_eq!(snaps.len(), 3);
        // Snapshots 2 and 3 are taken one and two ticks later.
        assert_eq!(k.clock(), before + 2);
        // Decay only clears bits, so each later snapshot is a bitwise subset
        // of the earlier ones.
        for pair in snaps.windows(2) {
            for (earlier, later) in pair[0].iter().zip(&pair[1]) {
                assert_eq!(later & !earlier, 0);
            }
        }
        // The first snapshot matches a plain read taken at the same tick: the
        // clock only advances *between* snapshots, never before the first.
        let mut replay = vec![0u8; 4096];
        let mut fresh = Kernel::boot(
            BoardConfig::tiny_for_tests()
                .with_remanence(RemanenceModel::Exponential { half_life_ticks: 2 }),
        );
        fresh.set_remanence_seed(7);
        let pid = fresh.spawn(UserId::new(0), &["victim"]).unwrap();
        fresh.grow_heap(pid, 4096).unwrap();
        let heap = fresh.process(pid).unwrap().heap_base();
        fresh
            .write_process_memory(pid, heap, &[0xA5; 4096])
            .unwrap();
        fresh.terminate(pid).unwrap();
        fresh.read_physical_bytes(pa, &mut replay).unwrap();
        assert_eq!(snaps[0], replay);
    }

    #[test]
    fn fork_shares_frames_copy_on_write() {
        let mut k = kernel();
        let parent = k.spawn(UserId::new(0), &["victim"]).unwrap();
        k.grow_heap(parent, 2 * 4096).unwrap();
        let heap = k.process(parent).unwrap().heap_base();
        k.write_process_memory(parent, heap, b"parent secret")
            .unwrap();

        let child = k.fork(parent).unwrap();
        assert_ne!(child, parent);
        let cp = k.process(child).unwrap();
        assert!(cp.is_running());
        assert_eq!(cp.parent(), parent);
        assert_eq!(cp.command_string(), "victim");
        // No frames copied: both map the same physical pages.
        assert_eq!(k.cow_shared_frame_count(parent), 2);
        assert_eq!(k.cow_shared_frame_count(child), 2);
        assert!(k.cow_shared_frames().all(|(_, count)| count == 2));
        let pa_parent = k
            .process(parent)
            .unwrap()
            .address_space()
            .translate(heap)
            .unwrap();
        let pa_child = k
            .process(child)
            .unwrap()
            .address_space()
            .translate(heap)
            .unwrap();
        assert_eq!(pa_parent, pa_child);
        // The child reads the parent's bytes through its own mapping.
        let mut leaked = vec![0u8; 13];
        k.read_process_memory(child, heap, &mut leaked).unwrap();
        assert_eq!(&leaked, b"parent secret");

        // A child write faults: the child gets a private copy, the parent
        // keeps the original bytes.
        k.write_process_memory(child, heap, b"child  rewrite")
            .unwrap();
        let pa_after = k
            .process(child)
            .unwrap()
            .address_space()
            .translate(heap)
            .unwrap();
        assert_ne!(pa_after, pa_parent);
        let mut parent_view = vec![0u8; 13];
        k.read_process_memory(parent, heap, &mut parent_view)
            .unwrap();
        assert_eq!(&parent_view, b"parent secret");
        // That page is no longer shared; the second one still is.
        assert_eq!(k.cow_shared_frame_count(parent), 1);
        assert!(k.fork(Pid::new(9999)).is_err());
    }

    #[test]
    fn cow_frames_survive_parent_termination_under_zero_on_free() {
        // The CoW residue channel: zero-on-free scrubs only the freed list,
        // and frames shared with a live child never reach it.
        let mut k = Kernel::boot(
            BoardConfig::tiny_for_tests().with_sanitize_policy(SanitizePolicy::ZeroOnFree),
        );
        let parent = k.spawn(UserId::new(0), &["victim"]).unwrap();
        k.grow_heap(parent, 2 * 4096).unwrap();
        let heap = k.process(parent).unwrap().heap_base();
        k.write_process_memory(parent, heap, b"inherited secret")
            .unwrap();
        let pa = k
            .process(parent)
            .unwrap()
            .address_space()
            .translate(heap)
            .unwrap();
        let child = k.fork(parent).unwrap();

        let report = k.terminate(parent).unwrap();
        // Nothing was freed, so nothing was scrubbed — the whole heap is
        // CoW-retained under the child.
        assert_eq!(report.bytes_scrubbed, 0);
        assert_eq!(k.cow_shared_frame_count(child), 0);
        assert_eq!(k.cow_shared_frames().count(), 0);
        assert!(k.allocator().is_allocated(pa.frame_number()));
        // The parent's bytes are intact, tagged as dead-owner residue.
        let mut buf = vec![0u8; 16];
        k.read_physical_bytes(pa, &mut buf).unwrap();
        assert_eq!(&buf, b"inherited secret");
        assert!(k.residue_frame_count() > 0);

        // When the child later dies, the frames finally reach the sanitizer
        // as part of *its* freed list.
        let report = k.terminate(child).unwrap();
        assert!(report.bytes_scrubbed >= 2 * 4096);
        k.read_physical_bytes(pa, &mut buf).unwrap();
        assert_eq!(buf, vec![0u8; 16]);
    }

    #[test]
    fn swap_pressure_copies_cold_pages_into_the_swap_store() {
        let mut k = Kernel::boot(
            BoardConfig::tiny_for_tests()
                .with_swap(50)
                .with_sanitize_policy(SanitizePolicy::ZeroOnFree),
        );
        let pid = k.spawn(UserId::new(0), &["victim"]).unwrap();
        k.grow_heap(pid, 4 * 4096).unwrap();
        let heap = k.process(pid).unwrap().heap_base();
        k.write_process_memory(pid, heap, b"cold page payload")
            .unwrap();
        let owner = pid.owner_tag();
        assert_eq!(k.dram().swap_store().slot_count(), 0);

        k.terminate(pid).unwrap();
        // 50% of 4 heap pages → the 2 lowest-addressed pages were swapped.
        let store = k.dram().swap_store();
        assert_eq!(store.slot_count(), 2);
        // Frame scrubbing zeroed DRAM but never touched the slots: the
        // payload is recoverable from swap.
        assert_eq!(k.dram().residue_bytes(), 0);
        assert!(store.residue_bytes(Some(owner)) > 0);
        let page = store.read_slot(0).unwrap();
        assert_eq!(&page[..17], b"cold page payload");
        assert_eq!(store.slot(0).unwrap().page_index(), 0);
    }

    #[test]
    fn scrub_reports_stay_monotone_across_pid_reuse() {
        // Reusing a pid must not resurrect (or reset) the sanitize report
        // history: reports are one-per-terminate, not per-pid state.
        let mut k = Kernel::boot(
            BoardConfig::tiny_for_tests().with_sanitize_policy(SanitizePolicy::ZeroOnFree),
        );
        let pid = k.spawn(UserId::new(0), &["victim"]).unwrap();
        k.grow_heap(pid, 4096).unwrap();
        k.terminate(pid).unwrap();
        assert_eq!(k.scrub_reports().len(), 1);

        let revived = k
            .spawn_reusing_pid(UserId::new(1), &["revived"], pid)
            .unwrap();
        // Spawning on a reused pid is not a terminate: count unchanged.
        assert_eq!(k.scrub_reports().len(), 1);
        k.grow_heap(revived, 4096).unwrap();
        k.terminate(revived).unwrap();
        assert_eq!(k.scrub_reports().len(), 2);

        // A second reuse cycle keeps counting up.
        k.spawn_reusing_pid(UserId::new(1), &["again"], pid)
            .unwrap();
        assert_eq!(k.scrub_reports().len(), 2);
        k.terminate(pid).unwrap();
        assert_eq!(k.scrub_reports().len(), 3);
    }

    #[test]
    fn cow_frames_never_enter_the_free_list_while_the_child_lives() {
        // Property test over seeded fork/terminate/write sequences: a frame
        // mapped by a live process must never sit on the allocator's reuse
        // list, no matter how the CoW shares were torn down.
        fn splitmix64(mut x: u64) -> u64 {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        for seed in 0..8u64 {
            let mut k = kernel();
            let root = k.spawn(UserId::new(0), &["victim"]).unwrap();
            k.grow_heap(root, 3 * 4096).unwrap();
            let heap = k.process(root).unwrap().heap_base();
            k.write_process_memory(root, heap, &[0xC0; 3 * 4096])
                .unwrap();
            let mut live = vec![root];
            let mut state = seed.wrapping_mul(0x5851_F42D_4C95_7F2D) + 1;
            for step in 0..24 {
                state = splitmix64(state);
                let target = live[(state % live.len() as u64) as usize];
                match state >> 32 & 3 {
                    0 if live.len() < 6 => {
                        live.push(k.fork(target).unwrap());
                    }
                    1 if live.len() > 1 => {
                        k.terminate(target).unwrap();
                        live.retain(|p| *p != target);
                    }
                    _ => {
                        let off = (state >> 8) % (2 * 4096);
                        k.write_process_memory(target, heap + off, &[step as u8; 64])
                            .unwrap();
                    }
                }
                // Invariant: no live process maps a frame on the free list.
                let free: BTreeSet<FrameNumber> = k.allocator().free_list_frames().collect();
                for pid in &live {
                    for frame in k.process(*pid).unwrap().address_space().owned_frames() {
                        assert!(
                            !free.contains(frame),
                            "seed {seed} step {step}: frame {frame} of live pid {pid} is on the free list"
                        );
                        assert!(k.allocator().is_allocated(*frame));
                    }
                }
            }
        }
    }

    #[test]
    fn time_formatting_matches_ps_style() {
        let k = kernel();
        assert_eq!(k.format_time(0), "03:51");
        assert_eq!(k.format_time(60), "03:52");
        assert_eq!(k.format_time(60 * 60 * 9), "12:51");
    }

    #[test]
    fn physical_reads_validate_addresses() {
        let k = kernel();
        assert!(k.read_physical_u32(PhysAddr::new(0x10)).is_err());
        assert_eq!(k.read_physical_u32(k.config().dram().base()).unwrap(), 0);
    }
}
