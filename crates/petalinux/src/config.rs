//! Board and security-policy configuration.

use serde::{Deserialize, Serialize};
use zynq_dram::{DramConfig, RemanenceModel, SanitizeCost, SanitizePolicy};
use zynq_mmu::{AllocationOrder, AslrMode};

/// Whether the board confines debugger-style access to a user's own
/// processes.
///
/// The paper's core observation is that the Xilinx tooling on PetaLinux is
/// *not* confined: a second user space can list any process, read any
/// process's `maps`/`pagemap`, and read physical memory with `devmem`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum IsolationPolicy {
    /// The vulnerable PetaLinux default: any user may inspect any process and
    /// read physical memory.
    #[default]
    Permissive,
    /// A hardened configuration: proc files are only readable by the owning
    /// user (or root) and `devmem` is root-only.
    Confined,
}

impl IsolationPolicy {
    /// Returns `true` if `accessor` may read process metadata (`maps`,
    /// `pagemap`) belonging to `owner`.
    pub fn allows_proc_access(self, accessor: crate::UserId, owner: crate::UserId) -> bool {
        match self {
            IsolationPolicy::Permissive => true,
            IsolationPolicy::Confined => accessor.is_root() || accessor == owner,
        }
    }

    /// Returns `true` if `accessor` may read raw physical memory (`devmem`).
    pub fn allows_devmem(self, accessor: crate::UserId) -> bool {
        match self {
            IsolationPolicy::Permissive => true,
            IsolationPolicy::Confined => accessor.is_root(),
        }
    }
}

impl std::fmt::Display for IsolationPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsolationPolicy::Permissive => write!(f, "permissive"),
            IsolationPolicy::Confined => write!(f, "confined"),
        }
    }
}

/// Full configuration of a simulated board.
///
/// The presets reproduce the paper's two targets; builder-style setters
/// toggle the security knobs the defense experiments sweep.
///
/// # Example
///
/// ```
/// use petalinux_sim::BoardConfig;
/// use zynq_dram::SanitizePolicy;
///
/// let hardened = BoardConfig::zcu104()
///     .with_sanitize_policy(SanitizePolicy::SelectiveScrub);
/// assert_eq!(hardened.sanitize_policy(), SanitizePolicy::SelectiveScrub);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoardConfig {
    dram: DramConfig,
    sanitize: SanitizePolicy,
    sanitize_cost: SanitizeCost,
    isolation: IsolationPolicy,
    allocation_order: AllocationOrder,
    aslr: AslrMode,
    remanence: RemanenceModel,
    swap_pressure: u8,
    hostname: &'static str,
}

impl BoardConfig {
    /// The ZCU104 running the stock PetaLinux image: no sanitization,
    /// permissive isolation, deterministic layout (the paper's target).
    pub fn zcu104() -> Self {
        BoardConfig {
            dram: DramConfig::zcu104(),
            sanitize: SanitizePolicy::None,
            sanitize_cost: SanitizeCost::default(),
            isolation: IsolationPolicy::Permissive,
            allocation_order: AllocationOrder::Sequential,
            aslr: AslrMode::Disabled,
            remanence: RemanenceModel::Perfect,
            swap_pressure: 0,
            hostname: "xilinx-zcu104-20222",
        }
    }

    /// The ZCU102 with the same stock configuration (the paper's
    /// generalizability target).
    pub fn zcu102() -> Self {
        BoardConfig {
            dram: DramConfig::zcu102(),
            hostname: "xilinx-zcu102-20222",
            ..BoardConfig::zcu104()
        }
    }

    /// A small-memory configuration for fast tests.
    pub fn tiny_for_tests() -> Self {
        BoardConfig {
            dram: DramConfig::tiny_for_tests(),
            ..BoardConfig::zcu104()
        }
    }

    /// Sets the end-of-process sanitization policy.
    pub fn with_sanitize_policy(mut self, policy: SanitizePolicy) -> Self {
        self.sanitize = policy;
        self
    }

    /// Sets the sanitization cost model.
    pub fn with_sanitize_cost(mut self, cost: SanitizeCost) -> Self {
        self.sanitize_cost = cost;
        self
    }

    /// Sets the debugger/proc isolation policy.
    pub fn with_isolation(mut self, isolation: IsolationPolicy) -> Self {
        self.isolation = isolation;
        self
    }

    /// Sets the physical frame allocation order.
    pub fn with_allocation_order(mut self, order: AllocationOrder) -> Self {
        self.allocation_order = order;
        self
    }

    /// Sets the virtual address-space randomization mode.
    pub fn with_aslr(mut self, aslr: AslrMode) -> Self {
        self.aslr = aslr;
        self
    }

    /// Sets the DRAM remanence decay model (default
    /// [`RemanenceModel::Perfect`], the all-or-nothing residue every earlier
    /// experiment ran on).
    pub fn with_remanence(mut self, remanence: RemanenceModel) -> Self {
        self.remanence = remanence;
        self
    }

    /// Sets the memory-pressure knob: the percentage (clamped to `0..=100`)
    /// of a victim's heap pages the kernel swaps out — compressed, zram-style
    /// — before termination. `0` (the default) disables the swap store.
    ///
    /// Swapped pages are a second residue substrate: frame-oriented sanitize
    /// policies never touch the compressed slots, so their plaintext survives
    /// even a zero-on-free scrub of DRAM.
    pub fn with_swap(mut self, pressure: u8) -> Self {
        self.swap_pressure = pressure.min(100);
        self
    }

    /// The DRAM window configuration.
    pub fn dram(&self) -> DramConfig {
        self.dram
    }

    /// The end-of-process sanitization policy.
    pub fn sanitize_policy(&self) -> SanitizePolicy {
        self.sanitize
    }

    /// The sanitization cost model.
    pub fn sanitize_cost(&self) -> SanitizeCost {
        self.sanitize_cost
    }

    /// The debugger/proc isolation policy.
    pub fn isolation(&self) -> IsolationPolicy {
        self.isolation
    }

    /// The physical frame allocation order.
    pub fn allocation_order(&self) -> AllocationOrder {
        self.allocation_order
    }

    /// The virtual address-space randomization mode.
    pub fn aslr(&self) -> AslrMode {
        self.aslr
    }

    /// The DRAM remanence decay model.
    pub fn remanence(&self) -> RemanenceModel {
        self.remanence
    }

    /// The swap memory-pressure knob: percentage of a victim's heap pages
    /// swapped out before termination (`0` = swap disabled).
    pub fn swap_pressure(&self) -> u8 {
        self.swap_pressure
    }

    /// The shell prompt hostname (cosmetic, used in rendered figures).
    pub fn hostname(&self) -> &'static str {
        self.hostname
    }
}

impl Default for BoardConfig {
    fn default() -> Self {
        BoardConfig::zcu104()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UserId;

    #[test]
    fn zcu104_default_is_the_vulnerable_configuration() {
        let cfg = BoardConfig::zcu104();
        assert_eq!(cfg.sanitize_policy(), SanitizePolicy::None);
        assert_eq!(cfg.isolation(), IsolationPolicy::Permissive);
        assert_eq!(cfg.allocation_order(), AllocationOrder::Sequential);
        assert_eq!(cfg.aslr(), AslrMode::Disabled);
        assert_eq!(cfg.remanence(), RemanenceModel::Perfect);
        assert_eq!(cfg.hostname(), "xilinx-zcu104-20222");
        assert_eq!(BoardConfig::default(), cfg);
    }

    #[test]
    fn zcu102_differs_only_in_dram_and_hostname() {
        let a = BoardConfig::zcu104();
        let b = BoardConfig::zcu102();
        assert_ne!(a.dram(), b.dram());
        assert_ne!(a.hostname(), b.hostname());
        assert_eq!(a.sanitize_policy(), b.sanitize_policy());
    }

    #[test]
    fn builders_set_each_knob() {
        let cfg = BoardConfig::tiny_for_tests()
            .with_sanitize_policy(SanitizePolicy::ZeroOnFree)
            .with_isolation(IsolationPolicy::Confined)
            .with_allocation_order(AllocationOrder::Randomized { seed: 3 })
            .with_aslr(AslrMode::Virtual { seed: 5 })
            .with_remanence(RemanenceModel::Exponential { half_life_ticks: 8 })
            .with_sanitize_cost(SanitizeCost::default())
            .with_swap(25);
        assert_eq!(cfg.sanitize_policy(), SanitizePolicy::ZeroOnFree);
        assert_eq!(cfg.isolation(), IsolationPolicy::Confined);
        assert_eq!(
            cfg.allocation_order(),
            AllocationOrder::Randomized { seed: 3 }
        );
        assert_eq!(cfg.aslr(), AslrMode::Virtual { seed: 5 });
        assert_eq!(
            cfg.remanence(),
            RemanenceModel::Exponential { half_life_ticks: 8 }
        );
        assert_eq!(cfg.swap_pressure(), 25);
        // Values above 100% clamp; the default stays off.
        assert_eq!(cfg.with_swap(250).swap_pressure(), 100);
        assert_eq!(BoardConfig::zcu104().swap_pressure(), 0);
    }

    #[test]
    fn permissive_isolation_allows_cross_user_access() {
        let policy = IsolationPolicy::Permissive;
        assert!(policy.allows_proc_access(UserId::new(1), UserId::new(0)));
        assert!(policy.allows_devmem(UserId::new(1)));
        assert_eq!(policy.to_string(), "permissive");
        assert_eq!(IsolationPolicy::default(), policy);
    }

    #[test]
    fn confined_isolation_blocks_cross_user_access() {
        let policy = IsolationPolicy::Confined;
        assert!(!policy.allows_proc_access(UserId::new(1), UserId::new(0)));
        assert!(policy.allows_proc_access(UserId::new(1), UserId::new(1)));
        assert!(policy.allows_proc_access(UserId::new(0), UserId::new(1)));
        assert!(!policy.allows_devmem(UserId::new(1)));
        assert!(policy.allows_devmem(UserId::new(0)));
        assert_eq!(policy.to_string(), "confined");
    }
}
