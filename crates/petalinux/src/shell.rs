//! A user shell on the board: `ps -ef`, `/proc` reads and `devmem`.
//!
//! The shell is where the board's [`IsolationPolicy`](crate::IsolationPolicy)
//! is enforced.  Under the vulnerable default every command succeeds for every
//! user, which is precisely the gap the paper exploits; under the confined
//! policy cross-user `/proc` reads and non-root `devmem` fail with
//! [`KernelError::PermissionDenied`].

use zynq_dram::{PhysAddr, ScrapeView};
use zynq_mmu::VirtAddr;

use crate::error::KernelError;
use crate::kernel::Kernel;
use crate::process::Pid;
use crate::procfs;
use crate::user::UserId;

/// A shell session bound to a user.
///
/// # Example
///
/// ```
/// use petalinux_sim::{BoardConfig, Kernel, Shell, UserId};
///
/// # fn main() -> Result<(), petalinux_sim::KernelError> {
/// let mut kernel = Kernel::boot(BoardConfig::tiny_for_tests());
/// let pid = kernel.spawn(UserId::new(0), &["./resnet50_pt"])?;
/// kernel.grow_heap(pid, 4096)?;
///
/// let attacker = Shell::new(UserId::new(1));
/// // Vulnerable default: the attacker can read the victim's maps file.
/// let maps = attacker.cat_maps(&kernel, pid)?;
/// assert!(maps.contains("[heap]"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shell {
    user: UserId,
}

impl Shell {
    /// Opens a shell for `user`.
    pub fn new(user: UserId) -> Self {
        Shell { user }
    }

    /// The user this shell belongs to.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Runs `ps -ef`: lists every running process on the board.
    ///
    /// Process listing is not confined even under the hardened policy,
    /// matching standard Linux behaviour.
    pub fn ps_ef(&self, kernel: &Kernel) -> String {
        procfs::ps_ef(kernel)
    }

    fn check_proc_access(&self, kernel: &Kernel, pid: Pid) -> Result<(), KernelError> {
        let owner = kernel.process(pid)?.user();
        if kernel
            .config()
            .isolation()
            .allows_proc_access(self.user, owner)
        {
            Ok(())
        } else {
            Err(KernelError::PermissionDenied {
                user: self.user,
                operation: "read /proc/<pid> of another user",
            })
        }
    }

    /// Reads `/proc/<pid>/maps`.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::PermissionDenied`] under the confined policy
    /// when `pid` belongs to another user, or [`KernelError::NoSuchProcess`].
    pub fn cat_maps(&self, kernel: &Kernel, pid: Pid) -> Result<String, KernelError> {
        self.check_proc_access(kernel, pid)?;
        Ok(procfs::maps_file(kernel.process(pid)?))
    }

    /// Reads `page_count` entries of `/proc/<pid>/pagemap` starting at the
    /// page containing `start`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Shell::cat_maps`].
    pub fn read_pagemap(
        &self,
        kernel: &Kernel,
        pid: Pid,
        start: VirtAddr,
        page_count: usize,
    ) -> Result<Vec<u8>, KernelError> {
        self.check_proc_access(kernel, pid)?;
        Ok(procfs::pagemap_bytes(
            kernel.process(pid)?,
            start,
            page_count,
        ))
    }

    fn check_devmem(&self, kernel: &Kernel) -> Result<(), KernelError> {
        if kernel.config().isolation().allows_devmem(self.user) {
            Ok(())
        } else {
            Err(KernelError::PermissionDenied {
                user: self.user,
                operation: "devmem physical memory access",
            })
        }
    }

    /// Runs `devmem <addr>`: reads one 32-bit word of physical memory.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::PermissionDenied`] under the confined policy for
    /// non-root users, or a DRAM range/alignment error.
    pub fn devmem(&self, kernel: &Kernel, addr: PhysAddr) -> Result<u32, KernelError> {
        self.check_devmem(kernel)?;
        kernel.read_physical_u32(addr)
    }

    /// Reads `len` bytes of physical memory (the automated form of looping
    /// `devmem` over a range, which is what the paper's scripts do).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Shell::devmem`].
    pub fn devmem_read_bytes(
        &self,
        kernel: &Kernel,
        addr: PhysAddr,
        len: usize,
    ) -> Result<Vec<u8>, KernelError> {
        self.check_devmem(kernel)?;
        let mut buf = vec![0u8; len];
        kernel.read_physical_bytes(addr, &mut buf)?;
        Ok(buf)
    }

    /// The bank-striped form of [`Shell::devmem_read_bytes`]: several
    /// `devmem` loops running concurrently, one per stripe-aligned slice of
    /// the range.  Same permission check, byte-identical result.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Shell::devmem_read_bytes`], plus a rejection of
    /// zero-sized worker pools.
    pub fn devmem_read_bytes_banked(
        &self,
        kernel: &Kernel,
        addr: PhysAddr,
        len: usize,
        workers: usize,
    ) -> Result<Vec<u8>, KernelError> {
        self.check_devmem(kernel)?;
        let mut buf = vec![0u8; len];
        kernel.read_physical_bytes_parallel(addr, &mut buf, workers)?;
        Ok(buf)
    }

    /// The zero-copy form of [`Shell::devmem_read_bytes`]: borrows the range
    /// straight out of the DRAM bank arenas instead of copying it.  Same
    /// permission check; `Ok(None)` when the remanence model forces an owned
    /// read (callers then fall back to the copying form).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Shell::devmem_read_bytes`].
    pub fn devmem_read_view<'k>(
        &self,
        kernel: &'k Kernel,
        addr: PhysAddr,
        len: u64,
    ) -> Result<Option<ScrapeView<'k>>, KernelError> {
        self.check_devmem(kernel)?;
        kernel.read_physical_view(addr, len)
    }

    /// The multi-snapshot form of [`Shell::devmem_read_bytes`]: re-runs the
    /// same `devmem` loop `snapshots` times with one decay tick between runs
    /// ([`Kernel::read_physical_snapshots`]).  Same permission check, applied
    /// once for the whole batch.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Shell::devmem_read_bytes`], plus a rejection of
    /// zero snapshot counts.
    pub fn devmem_read_snapshots(
        &self,
        kernel: &mut Kernel,
        addr: PhysAddr,
        len: usize,
        snapshots: usize,
    ) -> Result<Vec<Vec<u8>>, KernelError> {
        self.check_devmem(kernel)?;
        kernel.read_physical_snapshots(addr, len, snapshots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BoardConfig, IsolationPolicy};

    fn setup(isolation: IsolationPolicy) -> (Kernel, Pid) {
        let mut kernel = Kernel::boot(BoardConfig::tiny_for_tests().with_isolation(isolation));
        let pid = kernel
            .spawn(UserId::new(0), &["./resnet50_pt", "model.xmodel"])
            .unwrap();
        kernel.grow_heap(pid, 2 * 4096).unwrap();
        let heap = kernel.process(pid).unwrap().heap_base();
        kernel
            .write_process_memory(pid, heap, b"resnet50_pt secret bytes")
            .unwrap();
        (kernel, pid)
    }

    #[test]
    fn permissive_policy_allows_full_cross_user_visibility() {
        let (kernel, pid) = setup(IsolationPolicy::Permissive);
        let attacker = Shell::new(UserId::new(1));
        assert_eq!(attacker.user(), UserId::new(1));

        let listing = attacker.ps_ef(&kernel);
        assert!(listing.contains("resnet50_pt"));

        let maps = attacker.cat_maps(&kernel, pid).unwrap();
        assert!(maps.contains("[heap]"));

        let pagemap = attacker
            .read_pagemap(&kernel, pid, kernel.process(pid).unwrap().heap_base(), 2)
            .unwrap();
        assert_eq!(pagemap.len(), 16);

        let heap = kernel.process(pid).unwrap().heap_base();
        let pa = kernel
            .process(pid)
            .unwrap()
            .address_space()
            .translate(heap)
            .unwrap();
        let word = attacker.devmem(&kernel, pa).unwrap();
        assert_eq!(word.to_le_bytes(), *b"resn");
        let bytes = attacker.devmem_read_bytes(&kernel, pa, 11).unwrap();
        assert_eq!(&bytes, b"resnet50_pt");
    }

    #[test]
    fn confined_policy_blocks_cross_user_proc_and_devmem() {
        let (kernel, pid) = setup(IsolationPolicy::Confined);
        let attacker = Shell::new(UserId::new(1));

        // Process listing remains available...
        assert!(attacker.ps_ef(&kernel).contains("resnet50_pt"));
        // ...but maps, pagemap and devmem are denied.
        assert!(matches!(
            attacker.cat_maps(&kernel, pid),
            Err(KernelError::PermissionDenied { .. })
        ));
        assert!(matches!(
            attacker.read_pagemap(&kernel, pid, VirtAddr::new(0), 1),
            Err(KernelError::PermissionDenied { .. })
        ));
        assert!(matches!(
            attacker.devmem(&kernel, kernel.config().dram().base()),
            Err(KernelError::PermissionDenied { .. })
        ));
        assert!(matches!(
            attacker.devmem_read_bytes(&kernel, kernel.config().dram().base(), 4),
            Err(KernelError::PermissionDenied { .. })
        ));

        // The owner and root still succeed.
        let owner = Shell::new(UserId::new(0));
        assert!(owner.cat_maps(&kernel, pid).is_ok());
        assert!(owner.devmem(&kernel, kernel.config().dram().base()).is_ok());
    }

    #[test]
    fn shell_propagates_kernel_errors() {
        let (kernel, _) = setup(IsolationPolicy::Permissive);
        let shell = Shell::new(UserId::new(0));
        assert!(matches!(
            shell.cat_maps(&kernel, Pid::new(4242)),
            Err(KernelError::NoSuchProcess { .. })
        ));
        assert!(shell.devmem(&kernel, PhysAddr::new(0x10)).is_err());
    }
}
