//! Error type for kernel and shell operations.

use std::error::Error;
use std::fmt;

use zynq_dram::DramError;
use zynq_mmu::{MmuError, VirtAddr};

use crate::process::Pid;
use crate::user::UserId;

/// Errors returned by [`Kernel`](crate::Kernel) and [`Shell`](crate::Shell)
/// operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KernelError {
    /// No process with the given pid exists (it may never have existed, or
    /// its record may have been reaped).
    NoSuchProcess {
        /// The pid that was looked up.
        pid: Pid,
    },
    /// The operation targets a process that has already terminated.
    ProcessTerminated {
        /// The terminated process.
        pid: Pid,
    },
    /// The calling user is not allowed to perform the operation under the
    /// board's isolation policy.
    PermissionDenied {
        /// The user that attempted the operation.
        user: UserId,
        /// Human-readable description of the denied operation.
        operation: &'static str,
    },
    /// A virtual address was not mapped in the target process.
    UnmappedAddress {
        /// The pid whose address space was accessed.
        pid: Pid,
        /// The unmapped virtual address.
        addr: VirtAddr,
    },
    /// An empty command line was supplied to `spawn`.
    EmptyCommandLine,
    /// A pid requested for reuse still belongs to a running process.
    PidInUse {
        /// The still-running pid.
        pid: Pid,
    },
    /// An underlying virtual-memory error.
    Mmu(MmuError),
    /// An underlying DRAM access error.
    Dram(DramError),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::NoSuchProcess { pid } => write!(f, "no such process: {pid}"),
            KernelError::ProcessTerminated { pid } => {
                write!(f, "process {pid} has already terminated")
            }
            KernelError::PermissionDenied { user, operation } => {
                write!(f, "permission denied for {user}: {operation}")
            }
            KernelError::UnmappedAddress { pid, addr } => {
                write!(f, "address {addr:x} is not mapped in process {pid}")
            }
            KernelError::EmptyCommandLine => write!(f, "empty command line"),
            KernelError::PidInUse { pid } => {
                write!(f, "pid {pid} is still in use by a running process")
            }
            KernelError::Mmu(e) => write!(f, "virtual memory error: {e}"),
            KernelError::Dram(e) => write!(f, "dram error: {e}"),
        }
    }
}

impl Error for KernelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KernelError::Mmu(e) => Some(e),
            KernelError::Dram(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MmuError> for KernelError {
    fn from(e: MmuError) -> Self {
        KernelError::Mmu(e)
    }
}

impl From<DramError> for KernelError {
    fn from(e: DramError) -> Self {
        KernelError::Dram(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = KernelError::NoSuchProcess { pid: Pid::new(42) };
        assert!(e.to_string().contains("no such process"));
        assert!(e.source().is_none());

        let e = KernelError::from(MmuError::OutOfFrames);
        assert!(e.to_string().contains("virtual memory error"));
        assert!(e.source().is_some());

        let e = KernelError::from(DramError::OutOfRange {
            addr: zynq_dram::PhysAddr::new(0),
            len: 1,
        });
        assert!(e.to_string().contains("dram error"));
        assert!(e.source().is_some());

        let e = KernelError::PermissionDenied {
            user: UserId::new(2),
            operation: "devmem",
        };
        assert!(e.to_string().contains("permission denied"));

        assert!(KernelError::EmptyCommandLine.to_string().contains("empty"));
        assert!(KernelError::PidInUse { pid: Pid::new(3) }
            .to_string()
            .contains("still in use"));
        assert!(KernelError::ProcessTerminated { pid: Pid::new(1) }
            .to_string()
            .contains("terminated"));
        assert!(KernelError::UnmappedAddress {
            pid: Pid::new(1),
            addr: VirtAddr::new(0x1000)
        }
        .to_string()
        .contains("not mapped"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KernelError>();
    }
}
