//! Users / tenants of the simulated board.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A user (tenant) of the board.
///
/// The paper's attack involves two user spaces on one board: the victim runs
/// the ML workload, the attacker runs the debugger and the scraping scripts.
/// User 0 conventionally plays `root`/the first tenant.
///
/// # Example
///
/// ```
/// use petalinux_sim::UserId;
///
/// let victim = UserId::new(0);
/// let attacker = UserId::new(1);
/// assert_ne!(victim, attacker);
/// assert!(victim.is_root());
/// assert_eq!(attacker.to_string(), "uid:1");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct UserId(u32);

impl UserId {
    /// Creates a user id from its raw value.
    pub const fn new(raw: u32) -> Self {
        UserId(raw)
    }

    /// Returns the raw user id.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Returns `true` for uid 0.
    pub const fn is_root(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uid:{}", self.0)
    }
}

impl From<u32> for UserId {
    fn from(raw: u32) -> Self {
        UserId(raw)
    }
}

impl From<UserId> for u32 {
    fn from(uid: UserId) -> Self {
        uid.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_detection_and_display() {
        assert!(UserId::new(0).is_root());
        assert!(!UserId::new(1).is_root());
        assert_eq!(UserId::new(7).to_string(), "uid:7");
        assert_eq!(UserId::default(), UserId::new(0));
    }

    #[test]
    fn conversions() {
        assert_eq!(UserId::from(3u32).as_u32(), 3);
        assert_eq!(u32::from(UserId::new(4)), 4);
    }
}
