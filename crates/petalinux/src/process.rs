//! Processes and their identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};
use zynq_dram::OwnerTag;
use zynq_mmu::{AddressSpace, VirtAddr};

use crate::user::UserId;

/// A process identifier.
///
/// # Example
///
/// ```
/// use petalinux_sim::Pid;
///
/// let pid = Pid::new(1391);
/// assert_eq!(pid.to_string(), "1391");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pid(u32);

impl Pid {
    /// Creates a pid from its raw value.
    pub const fn new(raw: u32) -> Self {
        Pid(raw)
    }

    /// Returns the raw pid value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// The DRAM owner tag used to attribute this process's frames.
    pub const fn owner_tag(self) -> OwnerTag {
        OwnerTag::new(self.0)
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Pid {
    fn from(raw: u32) -> Self {
        Pid(raw)
    }
}

impl From<Pid> for u32 {
    fn from(pid: Pid) -> Self {
        pid.0
    }
}

/// Lifecycle state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessState {
    /// The process is running and appears in `ps -ef`.
    Running,
    /// The process has terminated; it no longer appears in `ps -ef`, but the
    /// kernel keeps its record for ground-truth queries in experiments.
    Terminated,
}

impl fmt::Display for ProcessState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessState::Running => write!(f, "running"),
            ProcessState::Terminated => write!(f, "terminated"),
        }
    }
}

/// A process on the simulated board.
#[derive(Debug, Clone)]
pub struct Process {
    pid: Pid,
    parent: Pid,
    user: UserId,
    cmdline: Vec<String>,
    state: ProcessState,
    start_tick: u64,
    terminate_tick: Option<u64>,
    pub(crate) space: AddressSpace,
}

impl Process {
    pub(crate) fn new(
        pid: Pid,
        parent: Pid,
        user: UserId,
        cmdline: Vec<String>,
        start_tick: u64,
        space: AddressSpace,
    ) -> Self {
        Process {
            pid,
            parent,
            user,
            cmdline,
            state: ProcessState::Running,
            start_tick,
            terminate_tick: None,
            space,
        }
    }

    /// The process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The parent process id.
    pub fn parent(&self) -> Pid {
        self.parent
    }

    /// The owning user.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// The command line, `argv[0]` first.
    pub fn cmdline(&self) -> &[String] {
        &self.cmdline
    }

    /// The command line joined with spaces, as `ps -ef` prints it.
    pub fn command_string(&self) -> String {
        self.cmdline.join(" ")
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ProcessState {
        self.state
    }

    /// Returns `true` while the process is running.
    pub fn is_running(&self) -> bool {
        self.state == ProcessState::Running
    }

    /// Kernel tick at which the process was spawned.
    pub fn start_tick(&self) -> u64 {
        self.start_tick
    }

    /// Kernel tick at which the process terminated, if it has.
    pub fn terminate_tick(&self) -> Option<u64> {
        self.terminate_tick
    }

    /// The process's address space.
    pub fn address_space(&self) -> &AddressSpace {
        &self.space
    }

    /// Lowest address of the heap region.
    pub fn heap_base(&self) -> VirtAddr {
        self.space.layout().heap_base()
    }

    /// Current heap break (one past the last heap byte).
    pub fn heap_end(&self) -> VirtAddr {
        self.space.brk()
    }

    pub(crate) fn mark_terminated(&mut self, tick: u64) {
        self.state = ProcessState::Terminated;
        self.terminate_tick = Some(tick);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zynq_mmu::AddressSpaceLayout;

    fn process() -> Process {
        Process::new(
            Pid::new(1391),
            Pid::new(2430),
            UserId::new(0),
            vec!["./resnet50_pt".to_string(), "model.xmodel".to_string()],
            5,
            AddressSpace::new(AddressSpaceLayout::petalinux_default()),
        )
    }

    #[test]
    fn pid_helpers() {
        let pid = Pid::new(1391);
        assert_eq!(pid.as_u32(), 1391);
        assert_eq!(pid.owner_tag().as_u32(), 1391);
        assert_eq!(pid.to_string(), "1391");
        assert_eq!(Pid::from(7u32), Pid::new(7));
        assert_eq!(u32::from(Pid::new(8)), 8);
    }

    #[test]
    fn new_process_is_running_with_expected_metadata() {
        let p = process();
        assert_eq!(p.pid(), Pid::new(1391));
        assert_eq!(p.parent(), Pid::new(2430));
        assert_eq!(p.user(), UserId::new(0));
        assert!(p.is_running());
        assert_eq!(p.state(), ProcessState::Running);
        assert_eq!(p.state().to_string(), "running");
        assert_eq!(p.start_tick(), 5);
        assert!(p.terminate_tick().is_none());
        assert_eq!(p.command_string(), "./resnet50_pt model.xmodel");
        assert_eq!(p.cmdline().len(), 2);
        assert_eq!(p.heap_base(), p.address_space().layout().heap_base());
        assert_eq!(p.heap_end(), p.heap_base());
    }

    #[test]
    fn termination_changes_state_and_records_tick() {
        let mut p = process();
        p.mark_terminated(99);
        assert!(!p.is_running());
        assert_eq!(p.state(), ProcessState::Terminated);
        assert_eq!(p.state().to_string(), "terminated");
        assert_eq!(p.terminate_tick(), Some(99));
    }
}
