//! Error type for the attack pipeline.

use std::error::Error;
use std::fmt;

use petalinux_sim::{KernelError, Pid};
use vitis_ai_sim::ModelKind;

/// Errors returned by attack steps.
#[derive(Debug)]
#[non_exhaustive]
pub enum AttackError {
    /// No running process matched the victim search criteria.
    VictimNotFound,
    /// The victim's maps file did not contain a `[heap]` region.
    HeapNotFound {
        /// The inspected process.
        pid: Pid,
    },
    /// None of the heap's pages could be translated to physical addresses.
    TranslationEmpty {
        /// The inspected process.
        pid: Pid,
    },
    /// The scrape step was invoked while the victim was still running.
    VictimStillRunning {
        /// The still-running process.
        pid: Pid,
    },
    /// Image reconstruction needs a profile for the identified model, but the
    /// profile database has none.
    ProfileMissing {
        /// The model whose profile is missing.
        model: ModelKind,
    },
    /// A debugger / kernel operation failed (permission denied under a
    /// confined isolation policy, bad addresses, …).
    Channel(KernelError),
    /// A sweep that requires completed attacks ran on a board whose isolation
    /// policy blocked the attack at the given step.
    Blocked {
        /// Description of the denied step.
        step: String,
    },
    /// A campaign whose axes expand to zero cells was asked to run.
    ///
    /// Aggregating an empty report (rates, duration min/max) has no
    /// well-defined answer, so the engine refuses up front instead of
    /// returning a degenerate report.
    EmptyCampaign,
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::VictimNotFound => write!(f, "no running victim process matched"),
            AttackError::HeapNotFound { pid } => {
                write!(f, "no [heap] region found in maps of pid {pid}")
            }
            AttackError::TranslationEmpty { pid } => {
                write!(f, "no heap page of pid {pid} could be translated")
            }
            AttackError::VictimStillRunning { pid } => {
                write!(
                    f,
                    "victim pid {pid} is still running; scraping requires termination"
                )
            }
            AttackError::ProfileMissing { model } => {
                write!(f, "no offline profile available for model {model}")
            }
            AttackError::Channel(e) => write!(f, "attack channel error: {e}"),
            AttackError::Blocked { step } => {
                write!(f, "attack blocked by the isolation policy at: {step}")
            }
            AttackError::EmptyCampaign => {
                write!(f, "campaign axes expand to zero cells; nothing to run")
            }
        }
    }
}

impl Error for AttackError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AttackError::Channel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KernelError> for AttackError {
    fn from(e: KernelError) -> Self {
        AttackError::Channel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(AttackError::VictimNotFound
            .to_string()
            .contains("no running victim"));
        assert!(AttackError::HeapNotFound { pid: Pid::new(1) }
            .to_string()
            .contains("[heap]"));
        assert!(AttackError::TranslationEmpty { pid: Pid::new(1) }
            .to_string()
            .contains("translated"));
        assert!(AttackError::VictimStillRunning { pid: Pid::new(1) }
            .to_string()
            .contains("still running"));
        assert!(AttackError::ProfileMissing {
            model: ModelKind::Resnet50Pt
        }
        .to_string()
        .contains("resnet50_pt"));
        let channel = AttackError::from(KernelError::EmptyCommandLine);
        assert!(channel.to_string().contains("attack channel"));
        assert!(AttackError::Blocked {
            step: "read /proc".into()
        }
        .to_string()
        .contains("blocked"));
        assert!(AttackError::EmptyCampaign
            .to_string()
            .contains("zero cells"));
        assert!(channel.source().is_some());
        assert!(AttackError::VictimNotFound.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AttackError>();
    }
}
