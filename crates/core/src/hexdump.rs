//! Hexdump rendering and searching.
//!
//! The paper formats the scraped data "into rows of eight nibbles each" and
//! runs `hexdump` / `grep` over the result (Figures 11 and 12).  This module
//! reproduces that presentation: 16 bytes per row, rendered as eight groups of
//! four hex digits (two bytes per group, in byte order) followed by an ASCII
//! gutter, so string hits look exactly like the paper's
//! `6c73 2f72 6573 6e65 7435 305f 7074 2f72  ls/resnet50_pt/r`.

// Lint audit: indexes and slice bounds here are established by the
// surrounding length checks / loop invariants before use.
#![allow(clippy::indexing_slicing)]

use std::fmt;

/// Bytes rendered per hexdump row.
pub const BYTES_PER_ROW: usize = 16;

/// One rendered hexdump row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HexRow {
    /// Byte offset of the row within the dump.
    pub offset: usize,
    /// The row's raw bytes (up to [`BYTES_PER_ROW`]).
    pub bytes: Vec<u8>,
}

impl HexRow {
    /// Renders the row as `hexdump`-style groups plus the ASCII gutter.
    pub fn render(&self) -> String {
        let mut groups = Vec::with_capacity(BYTES_PER_ROW / 2);
        for pair in self.bytes.chunks(2) {
            match pair {
                [a, b] => groups.push(format!("{a:02x}{b:02x}")),
                [a] => groups.push(format!("{a:02x}  ")),
                _ => unreachable!("chunks(2) yields 1- or 2-byte slices"),
            }
        }
        while groups.len() < BYTES_PER_ROW / 2 {
            groups.push("    ".to_string());
        }
        let ascii: String = self
            .bytes
            .iter()
            .map(|&b| {
                if (0x20..0x7f).contains(&b) {
                    b as char
                } else {
                    '.'
                }
            })
            .collect();
        format!("{:07x} {}  {}", self.offset, groups.join(" "), ascii)
    }
}

/// A hexdump of a byte buffer.
///
/// # Example
///
/// ```
/// use msa_core::hexdump::HexDump;
///
/// let dump = HexDump::new(b"ls/resnet50_pt/r".to_vec());
/// let hits = dump.grep("resnet50");
/// assert_eq!(hits.len(), 1);
/// assert!(hits[0].contains("resnet50_pt"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HexDump {
    bytes: Vec<u8>,
}

impl HexDump {
    /// Creates a hexdump over `bytes`.
    pub fn new(bytes: Vec<u8>) -> Self {
        HexDump { bytes }
    }

    /// The underlying bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Number of rows the rendering contains.
    pub fn row_count(&self) -> usize {
        self.bytes.len().div_ceil(BYTES_PER_ROW)
    }

    /// Iterates over the rows.
    pub fn rows(&self) -> impl Iterator<Item = HexRow> + '_ {
        self.bytes
            .chunks(BYTES_PER_ROW)
            .enumerate()
            .map(|(i, chunk)| HexRow {
                offset: i * BYTES_PER_ROW,
                bytes: chunk.to_vec(),
            })
    }

    /// Renders the full dump (one line per row).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for row in self.rows() {
            out.push_str(&row.render());
            out.push('\n');
        }
        out
    }

    /// Returns the rendered lines whose ASCII gutter contains `needle`
    /// (the paper's `grep "resnet50" 1391_hexdump.log` step).
    pub fn grep(&self, needle: &str) -> Vec<String> {
        self.rows()
            .filter(|row| {
                let ascii: String = row
                    .bytes
                    .iter()
                    .map(|&b| {
                        if (0x20..0x7f).contains(&b) {
                            b as char
                        } else {
                            '.'
                        }
                    })
                    .collect();
                ascii.contains(needle)
            })
            .map(|row| row.render())
            .collect()
    }

    /// Returns the byte offset of the first occurrence of `pattern`.
    pub fn find(&self, pattern: &[u8]) -> Option<usize> {
        if pattern.is_empty() || pattern.len() > self.bytes.len() {
            return None;
        }
        self.bytes
            .windows(pattern.len())
            .position(|window| window == pattern)
    }

    /// Returns the 16-byte-row index of the first occurrence of `pattern`
    /// (the "row number 646768" style offset the paper profiles).
    pub fn find_row(&self, pattern: &[u8]) -> Option<usize> {
        self.find(pattern).map(|offset| offset / BYTES_PER_ROW)
    }
}

impl fmt::Display for HexDump {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn render_matches_paper_style() {
        // The exact byte sequence shown in the paper's Figure 11.
        let bytes = b"ls/resnet50_pt/r".to_vec();
        let dump = HexDump::new(bytes);
        let rendered = dump.render();
        assert!(rendered.contains("6c73 2f72 6573 6e65 7435 305f 7074 2f72"));
        assert!(rendered.contains("ls/resnet50_pt/r"));
        assert_eq!(dump.row_count(), 1);
    }

    #[test]
    fn corrupted_image_rows_render_as_ffff_groups() {
        let dump = HexDump::new(vec![0xFF; 32]);
        let rendered = dump.render();
        assert_eq!(dump.row_count(), 2);
        for line in rendered.lines() {
            assert!(line.contains("ffff ffff ffff ffff ffff ffff ffff ffff"));
        }
    }

    #[test]
    fn non_printable_bytes_render_as_dots() {
        let dump = HexDump::new(vec![0x00, 0x1f, b'A', 0x7f]);
        let line = dump.render();
        assert!(line.contains("..A."));
    }

    #[test]
    fn partial_rows_are_padded() {
        let dump = HexDump::new(vec![0x41; 3]);
        let line = dump.rows().next().unwrap().render();
        assert!(line.contains("4141 41"));
        assert!(line.ends_with("AAA"));
    }

    #[test]
    fn grep_finds_only_matching_rows() {
        let mut bytes = vec![0u8; 64];
        bytes.extend_from_slice(b"models/resnet50_pt/model");
        bytes.extend_from_slice(&[0u8; 40]);
        let dump = HexDump::new(bytes);
        let hits = dump.grep("resnet50");
        assert_eq!(hits.len(), 1);
        assert!(dump.grep("squeezenet").is_empty());
    }

    #[test]
    fn find_and_find_row() {
        let mut bytes = vec![0u8; 100];
        bytes[37..41].copy_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF]);
        let dump = HexDump::new(bytes);
        assert_eq!(dump.find(&[0xDE, 0xAD, 0xBE, 0xEF]), Some(37));
        assert_eq!(dump.find_row(&[0xDE, 0xAD, 0xBE, 0xEF]), Some(2));
        assert!(dump.find(&[1, 2, 3]).is_none());
        assert!(dump.find(&[]).is_none());
        assert!(dump.find(&[0u8; 200]).is_none());
    }

    #[test]
    fn display_is_render() {
        let dump = HexDump::new(b"hi".to_vec());
        assert_eq!(dump.to_string(), dump.render());
        assert_eq!(dump.as_bytes(), b"hi");
    }

    proptest! {
        #[test]
        fn prop_row_count_matches_length(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let dump = HexDump::new(bytes.clone());
            prop_assert_eq!(dump.row_count(), bytes.len().div_ceil(BYTES_PER_ROW));
            prop_assert_eq!(dump.rows().count(), dump.row_count());
        }

        #[test]
        fn prop_find_locates_planted_pattern(prefix in 0usize..128, pattern in proptest::collection::vec(1u8..255, 4..8)) {
            let mut bytes = vec![0u8; prefix];
            bytes.extend_from_slice(&pattern);
            let dump = HexDump::new(bytes);
            let found = dump.find(&pattern).unwrap();
            prop_assert!(found <= prefix);
        }
    }
}
