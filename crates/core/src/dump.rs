//! The scraped memory dump.

// Lint audit: address arithmetic here is bounds-checked against the
// DRAM window before any narrowing cast or direct index; offsets are
// derived from validated window-relative coordinates.
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use serde::{Deserialize, Serialize};
use zynq_dram::{PhysAddr, ScrapeView, PAGE_SIZE};
use zynq_mmu::VirtAddr;

use crate::hexdump::HexDump;

/// The data recovered from the victim's heap, reassembled in virtual-address
/// order (the order the paper's hexdump file uses).
///
/// A dump records, per page, which physical frame the bytes came from (if
/// any) so experiments can reason about coverage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryDump {
    heap_start: VirtAddr,
    bytes: Vec<u8>,
    page_sources: Vec<Option<PhysAddr>>,
}

impl MemoryDump {
    /// Assembles a dump from per-page captures.
    ///
    /// `pages` holds, for each heap page in order, the physical address the
    /// page was read from and its bytes, or `None` when the page could not be
    /// captured (it then reads as zeros).
    ///
    /// # Panics
    ///
    /// Panics if a captured page is not exactly [`PAGE_SIZE`] bytes.
    pub fn from_pages(heap_start: VirtAddr, pages: Vec<Option<(PhysAddr, Vec<u8>)>>) -> Self {
        let mut bytes = Vec::with_capacity(pages.len() * PAGE_SIZE as usize);
        let mut sources = Vec::with_capacity(pages.len());
        for page in pages {
            match page {
                Some((pa, data)) => {
                    assert_eq!(
                        data.len(),
                        PAGE_SIZE as usize,
                        "captured page must be PAGE_SIZE bytes"
                    );
                    bytes.extend_from_slice(&data);
                    sources.push(Some(pa));
                }
                None => {
                    bytes.extend(std::iter::repeat_n(0u8, PAGE_SIZE as usize));
                    sources.push(None);
                }
            }
        }
        MemoryDump {
            heap_start,
            bytes,
            page_sources: sources,
        }
    }

    /// Assembles a dump from one contiguous physical read (the paper's
    /// endpoint-based method).
    pub fn from_contiguous(heap_start: VirtAddr, phys_start: PhysAddr, bytes: Vec<u8>) -> Self {
        let page_count = bytes.len().div_ceil(PAGE_SIZE as usize);
        let sources = (0..page_count)
            .map(|i| Some(phys_start + (i as u64) * PAGE_SIZE))
            .collect();
        MemoryDump {
            heap_start,
            bytes,
            page_sources: sources,
        }
    }

    /// An empty dump (used when scraping was denied or produced nothing).
    pub fn empty(heap_start: VirtAddr) -> Self {
        MemoryDump {
            heap_start,
            bytes: Vec::new(),
            page_sources: Vec::new(),
        }
    }

    /// Virtual address the dump starts at (the victim's heap base).
    pub fn heap_start(&self) -> VirtAddr {
        self.heap_start
    }

    /// The dump's bytes, in virtual-address order.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The dump as a single-segment [`ScrapeView`], so owned dumps run
    /// through the same view-based analysis cores the zero-copy path uses.
    pub fn as_view(&self) -> ScrapeView<'_> {
        ScrapeView::from_slice(&self.bytes)
    }

    /// Length of the dump in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns `true` if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Number of pages that were actually captured from physical memory.
    pub fn captured_pages(&self) -> usize {
        self.page_sources.iter().filter(|s| s.is_some()).count()
    }

    /// Number of pages that could not be captured.
    pub fn missing_pages(&self) -> usize {
        self.page_sources.iter().filter(|s| s.is_none()).count()
    }

    /// Physical source of each page, in order.
    pub fn page_sources(&self) -> &[Option<PhysAddr>] {
        &self.page_sources
    }

    /// Fraction of pages captured (1.0 when nothing is missing; 0.0 for an
    /// empty dump).
    pub fn coverage(&self) -> f64 {
        if self.page_sources.is_empty() {
            return 0.0;
        }
        self.captured_pages() as f64 / self.page_sources.len() as f64
    }

    /// The bytes at heap-relative `offset`, if the dump extends that far.
    pub fn slice(&self, offset: u64, len: usize) -> Option<&[u8]> {
        let start = usize::try_from(offset).ok()?;
        let end = start.checked_add(len)?;
        self.bytes.get(start..end)
    }

    /// Overlays a page of bytes recovered from a second residue substrate
    /// (the compressed swap store) onto the dump at heap-relative page
    /// `page_index`, filling only the positions the DRAM scrape left as
    /// zero: scraped DRAM residue always wins, so under zero-on-free the
    /// swapped-out plaintext slots in exactly where the scrub erased it.
    ///
    /// Returns the number of bytes filled in.  Pages beyond the dump's end
    /// (or offsets that overflow) contribute nothing.
    pub fn overlay_page(&mut self, page_index: u64, bytes: &[u8]) -> usize {
        let Some(offset) = page_index
            .checked_mul(PAGE_SIZE)
            .and_then(|o| usize::try_from(o).ok())
        else {
            return 0;
        };
        if offset >= self.bytes.len() {
            return 0;
        }
        let window = &mut self.bytes[offset..];
        let mut filled = 0;
        for (slot, &b) in window.iter_mut().zip(bytes) {
            if *slot == 0 && b != 0 {
                *slot = b;
                filled += 1;
            }
        }
        filled
    }

    /// Builds the hexdump view of the data (the `<pid>_hexdump.log` file the
    /// paper's scripts produce).
    pub fn to_hexdump(&self) -> HexDump {
        HexDump::new(self.bytes.clone())
    }

    /// Extracts printable ASCII strings of at least `min_len` characters.
    pub fn ascii_strings(&self, min_len: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut current = String::new();
        for &byte in &self.bytes {
            if (0x20..0x7f).contains(&byte) {
                current.push(byte as char);
            } else {
                if current.len() >= min_len {
                    out.push(std::mem::take(&mut current));
                } else {
                    current.clear();
                }
            }
        }
        if current.len() >= min_len {
            out.push(current);
        }
        out
    }
}

/// The zero-copy counterpart of [`MemoryDump`]: the victim's heap as a
/// borrowed [`ScrapeView`] over the DRAM bank arenas, plus the same per-page
/// coverage accounting the owned dump records.
///
/// Produced by [`crate::scrape::scrape_heap_view`] when the board's remanence
/// model permits borrowed reads; the analysis stages consume the view
/// directly, so the scrape-and-analyse hot path never assembles an owned
/// byte buffer.
#[derive(Debug, Clone)]
pub struct HeapView<'a> {
    heap_start: VirtAddr,
    view: ScrapeView<'a>,
    pages_captured: usize,
    pages_total: usize,
}

impl<'a> HeapView<'a> {
    /// Wraps a scraped view with its page-coverage accounting.
    pub fn new(
        heap_start: VirtAddr,
        view: ScrapeView<'a>,
        pages_captured: usize,
        pages_total: usize,
    ) -> Self {
        HeapView {
            heap_start,
            view,
            pages_captured,
            pages_total,
        }
    }

    /// An empty view (zero-length heap), mirroring [`MemoryDump::empty`].
    pub fn empty(heap_start: VirtAddr) -> Self {
        HeapView {
            heap_start,
            view: ScrapeView::from_slice(&[]),
            pages_captured: 0,
            pages_total: 0,
        }
    }

    /// Virtual address the view starts at (the victim's heap base).
    pub fn heap_start(&self) -> VirtAddr {
        self.heap_start
    }

    /// The underlying borrowed byte view.
    pub fn view(&self) -> &ScrapeView<'a> {
        &self.view
    }

    /// Length of the viewed heap in bytes.
    pub fn len(&self) -> usize {
        self.view.len()
    }

    /// Returns `true` if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.view.is_empty()
    }

    /// Number of pages actually captured from physical memory.
    pub fn captured_pages(&self) -> usize {
        self.pages_captured
    }

    /// Number of pages that could not be captured.
    pub fn missing_pages(&self) -> usize {
        self.pages_total - self.pages_captured
    }

    /// Fraction of pages captured, with the same convention as
    /// [`MemoryDump::coverage`] (0.0 for an empty view).
    pub fn coverage(&self) -> f64 {
        if self.pages_total == 0 {
            return 0.0;
        }
        self.pages_captured as f64 / self.pages_total as f64
    }

    /// Materializes the view into an owned [`MemoryDump`]-style byte buffer
    /// (serialization, hexdump export — the cold paths).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.view.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; PAGE_SIZE as usize]
    }

    #[test]
    fn as_view_mirrors_the_owned_bytes() {
        let dump =
            MemoryDump::from_contiguous(VirtAddr::new(0), PhysAddr::new(0), (0u8..=255).collect());
        let view = dump.as_view();
        assert_eq!(view.len(), dump.len());
        assert_eq!(view.to_vec(), dump.as_bytes());
    }

    #[test]
    fn heap_view_coverage_mirrors_memory_dump() {
        let empty = HeapView::empty(VirtAddr::new(0x1000));
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
        assert_eq!(empty.coverage(), 0.0);
        assert_eq!(empty.heap_start(), VirtAddr::new(0x1000));

        let backing = vec![7u8; 2 * PAGE_SIZE as usize];
        let hv = HeapView::new(VirtAddr::new(0), ScrapeView::from_slice(&backing), 1, 2);
        assert_eq!(hv.captured_pages(), 1);
        assert_eq!(hv.missing_pages(), 1);
        assert!((hv.coverage() - 0.5).abs() < 1e-9);
        assert_eq!(hv.to_bytes(), backing);
    }

    #[test]
    fn from_pages_assembles_in_order_with_gaps_as_zero() {
        let pa = PhysAddr::new(0x6_0000_0000);
        let dump = MemoryDump::from_pages(
            VirtAddr::new(0xaaaa_ee77_5000),
            vec![
                Some((pa, page_of(0xAA))),
                None,
                Some((pa + 2 * PAGE_SIZE, page_of(0xBB))),
            ],
        );
        assert_eq!(dump.len(), 3 * PAGE_SIZE as usize);
        assert_eq!(dump.as_bytes()[0], 0xAA);
        assert_eq!(dump.as_bytes()[PAGE_SIZE as usize], 0x00);
        assert_eq!(dump.as_bytes()[2 * PAGE_SIZE as usize], 0xBB);
        assert_eq!(dump.captured_pages(), 2);
        assert_eq!(dump.missing_pages(), 1);
        assert!((dump.coverage() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(dump.page_sources()[1], None);
        assert!(!dump.is_empty());
    }

    #[test]
    #[should_panic(expected = "PAGE_SIZE")]
    fn from_pages_rejects_short_pages() {
        let _ = MemoryDump::from_pages(
            VirtAddr::new(0),
            vec![Some((PhysAddr::new(0), vec![0u8; 10]))],
        );
    }

    #[test]
    fn from_contiguous_records_sources() {
        let dump = MemoryDump::from_contiguous(
            VirtAddr::new(0x1000),
            PhysAddr::new(0x6_0000_0000),
            vec![0u8; (2 * PAGE_SIZE + 100) as usize],
        );
        assert_eq!(dump.captured_pages(), 3);
        assert_eq!(dump.missing_pages(), 0);
        assert_eq!(dump.coverage(), 1.0);
        assert_eq!(
            dump.page_sources()[1],
            Some(PhysAddr::new(0x6_0000_0000) + PAGE_SIZE)
        );
    }

    #[test]
    fn empty_dump() {
        let dump = MemoryDump::empty(VirtAddr::new(0x1000));
        assert!(dump.is_empty());
        assert_eq!(dump.len(), 0);
        assert_eq!(dump.coverage(), 0.0);
        assert_eq!(dump.heap_start(), VirtAddr::new(0x1000));
        assert!(dump.slice(0, 1).is_none());
    }

    #[test]
    fn slice_bounds() {
        let dump =
            MemoryDump::from_contiguous(VirtAddr::new(0), PhysAddr::new(0), (0u8..=255).collect());
        assert_eq!(dump.slice(10, 3), Some(&[10u8, 11, 12][..]));
        assert!(dump.slice(250, 10).is_none());
        assert!(dump.slice(u64::MAX, 1).is_none());
        // Offsets wider than usize must be a clean `None` via `try_from`,
        // never a silent truncation back into range (`as usize` would map
        // 2^32 to 0 on a 32-bit target and return the dump's first bytes).
        assert!(dump.slice(u64::MAX, 0).is_none());
        assert!(dump.slice(u64::MAX - 255, 256).is_none());
    }

    #[test]
    fn overlay_page_fills_only_scrubbed_bytes() {
        let mut bytes = vec![0u8; 2 * PAGE_SIZE as usize];
        bytes[0] = 0xAA; // surviving DRAM residue must win
        let mut dump = MemoryDump::from_contiguous(VirtAddr::new(0), PhysAddr::new(0), bytes);

        let mut swapped = vec![0u8; PAGE_SIZE as usize];
        swapped[0] = 0x11;
        swapped[1] = 0x22;
        let filled = dump.overlay_page(0, &swapped);
        assert_eq!(filled, 1);
        assert_eq!(dump.as_bytes()[0], 0xAA);
        assert_eq!(dump.as_bytes()[1], 0x22);

        // Second page fills cleanly; a short source page fills a short run.
        assert_eq!(dump.overlay_page(1, &[0x33, 0x00, 0x44]), 2);
        assert_eq!(dump.as_bytes()[PAGE_SIZE as usize], 0x33);
        assert_eq!(dump.as_bytes()[PAGE_SIZE as usize + 2], 0x44);

        // Out-of-range and overflowing page indices are inert.
        assert_eq!(dump.overlay_page(2, &swapped), 0);
        assert_eq!(dump.overlay_page(u64::MAX, &swapped), 0);
        assert_eq!(MemoryDump::empty(VirtAddr::new(0)).overlay_page(0, &[1]), 0);
    }

    #[test]
    fn ascii_strings_extraction() {
        let mut bytes = vec![0u8; 8];
        bytes.extend_from_slice(b"resnet50_pt");
        bytes.push(0);
        bytes.extend_from_slice(b"ab");
        bytes.push(0);
        bytes.extend_from_slice(b"vitis_ai_library");
        let dump = MemoryDump::from_contiguous(VirtAddr::new(0), PhysAddr::new(0), bytes);
        let strings = dump.ascii_strings(4);
        assert_eq!(
            strings,
            vec!["resnet50_pt".to_string(), "vitis_ai_library".to_string()]
        );
        // Lower threshold picks up the short string too.
        assert!(dump.ascii_strings(2).contains(&"ab".to_string()));
    }

    #[test]
    fn hexdump_view_matches_bytes() {
        let dump = MemoryDump::from_contiguous(
            VirtAddr::new(0),
            PhysAddr::new(0),
            b"resnet50_pt".to_vec(),
        );
        let hex = dump.to_hexdump();
        assert_eq!(hex.as_bytes(), dump.as_bytes());
        assert_eq!(hex.grep("resnet50").len(), 1);
    }
}
