//! Offline profiling: learning high-value memory offsets per model.
//!
//! The adversary model gives the attacker access to the same public Vitis AI
//! library the victim uses (paper §II).  The attacker therefore runs each
//! model *on their own board* with a known sentinel input (`0x555555` pixels),
//! scrapes their own terminated process, and records where within the heap
//! dump the sentinel appears.  Because PetaLinux's layout is deterministic,
//! that offset transfers verbatim to the victim's run — the property the
//! paper demonstrates with the "row number 646768" observation.

// Lint audit: indexes and slice bounds here are established by the
// surrounding length checks / loop invariants before use.
#![allow(clippy::indexing_slicing)]

use std::collections::BTreeMap;

use petalinux_sim::{BoardConfig, Kernel, UserId};
use serde::{Deserialize, Serialize};
use vitis_ai_sim::{weights, DpuRunner, Image, ModelKind};
use xsdb::DebugSession;

use crate::analysis::marker::{first_marker_offset, SENTINEL_MARKER};
use crate::attack::ScrapeMode;
use crate::error::AttackError;
use crate::scrape::scrape_heap;
use crate::translate::capture_heap_translation;

/// The heap offsets learned for one model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// The profiled model.
    pub model: ModelKind,
    /// Heap-relative byte offset at which the input image starts.
    pub image_offset: u64,
    /// Heap-relative byte offset at which the weight blob starts, when it was
    /// located.
    pub weights_offset: Option<u64>,
    /// Length of the model's heap in bytes (used to bound scraping).
    pub heap_len: u64,
}

/// A database of per-model profiles, keyed by model.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileDatabase {
    profiles: BTreeMap<ModelKind, ModelProfile>,
}

impl ProfileDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        ProfileDatabase::default()
    }

    /// Inserts or replaces a profile.
    pub fn insert(&mut self, profile: ModelProfile) {
        self.profiles.insert(profile.model, profile);
    }

    /// The profile for `model`, if present.
    pub fn profile(&self, model: ModelKind) -> Option<&ModelProfile> {
        self.profiles.get(&model)
    }

    /// Number of profiled models.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Returns `true` if no model has been profiled.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Iterates over all profiles, ordered by model.
    pub fn iter(&self) -> impl Iterator<Item = &ModelProfile> {
        self.profiles.values()
    }
}

/// Runs the offline profiling procedure on the attacker's own board.
#[derive(Debug, Clone)]
pub struct Profiler {
    board: BoardConfig,
    scrape_mode: ScrapeMode,
}

impl Profiler {
    /// Creates a profiler that replays the victim board's configuration.
    ///
    /// Profiling always runs as root: it happens on hardware the attacker
    /// fully controls, offline, before the attack.
    pub fn new(board: BoardConfig) -> Self {
        Profiler {
            board,
            scrape_mode: ScrapeMode::ContiguousRange,
        }
    }

    /// Overrides the scrape mode used during profiling.
    pub fn with_scrape_mode(mut self, mode: ScrapeMode) -> Self {
        self.scrape_mode = mode;
        self
    }

    /// Profiles one model: runs it with the sentinel image, scrapes the
    /// terminated process and locates the sentinel and weight offsets.
    ///
    /// # Errors
    ///
    /// Propagates attack-channel errors; returns
    /// [`AttackError::ProfileMissing`] if the sentinel could not be located in
    /// the scraped dump.
    pub fn profile_model(&self, model: ModelKind) -> Result<ModelProfile, AttackError> {
        let user = UserId::new(0);
        let mut kernel = Kernel::boot(self.board);
        let (w, h) = model.input_dims();
        let launched = DpuRunner::new(model)
            .with_input(Image::profiling_sentinel(w, h))
            .launch(&mut kernel, user)
            .map_err(|e| match e {
                vitis_ai_sim::RunnerError::Kernel(k) => AttackError::Channel(k),
            })?;

        let mut debugger = DebugSession::connect(user);
        let translation = capture_heap_translation(&mut debugger, &kernel, launched.pid())?;
        launched.terminate(&mut kernel).map_err(|e| match e {
            vitis_ai_sim::RunnerError::Kernel(k) => AttackError::Channel(k),
        })?;
        let dump = scrape_heap(&mut debugger, &kernel, &translation, self.scrape_mode)?;

        let min_run = (w as u64 * 3).max(64);
        let image_offset = first_marker_offset(&dump, SENTINEL_MARKER, min_run)
            .ok_or(AttackError::ProfileMissing { model })?;

        // The attacker knows the public weights, so it can also locate the
        // weight blob by searching for its first bytes.
        let known_weights = weights::quantized_weights(model);
        let prefix = &known_weights[..known_weights.len().min(32)];
        let weights_offset = dump.to_hexdump().find(prefix).map(|offset| offset as u64);

        Ok(ModelProfile {
            model,
            image_offset,
            weights_offset,
            heap_len: dump.len() as u64,
        })
    }

    /// Profiles every model in the zoo, skipping models whose profiling run
    /// fails (none do under the default configuration).
    pub fn profile_all(&self) -> ProfileDatabase {
        let mut db = ProfileDatabase::new();
        for model in ModelKind::all() {
            if let Ok(profile) = self.profile_model(model) {
                db.insert(profile);
            }
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitis_ai_sim::runner::heap_image;

    #[test]
    fn profiled_image_offset_matches_ground_truth_layout() {
        let profiler = Profiler::new(BoardConfig::tiny_for_tests());
        let profile = profiler.profile_model(ModelKind::Resnet50Pt).unwrap();
        let (_, layout) = heap_image(ModelKind::Resnet50Pt, &Image::profiling_sentinel(224, 224));
        assert_eq!(profile.image_offset, layout.image_offset);
        assert_eq!(profile.heap_len, layout.heap_len);
        assert_eq!(profile.weights_offset, Some(layout.weights_offset));
        assert_eq!(profile.model, ModelKind::Resnet50Pt);
    }

    #[test]
    fn profiles_transfer_across_models_with_distinct_offsets() {
        let profiler = Profiler::new(BoardConfig::tiny_for_tests());
        let a = profiler.profile_model(ModelKind::SqueezeNet).unwrap();
        let b = profiler.profile_model(ModelKind::Vgg16).unwrap();
        assert_ne!(a.image_offset, b.image_offset);
        assert_ne!(a.heap_len, b.heap_len);
    }

    #[test]
    fn profile_all_covers_the_zoo() {
        let profiler =
            Profiler::new(BoardConfig::tiny_for_tests()).with_scrape_mode(ScrapeMode::PerPage);
        let db = profiler.profile_all();
        assert_eq!(db.len(), ModelKind::all().len());
        assert!(!db.is_empty());
        for model in ModelKind::all() {
            assert!(db.profile(model).is_some(), "missing profile for {model}");
        }
        assert_eq!(db.iter().count(), db.len());
    }

    #[test]
    fn database_insert_and_lookup() {
        let mut db = ProfileDatabase::new();
        assert!(db.is_empty());
        assert!(db.profile(ModelKind::YoloV3).is_none());
        db.insert(ModelProfile {
            model: ModelKind::YoloV3,
            image_offset: 100,
            weights_offset: None,
            heap_len: 4096,
        });
        db.insert(ModelProfile {
            model: ModelKind::YoloV3,
            image_offset: 200,
            weights_offset: Some(50),
            heap_len: 8192,
        });
        assert_eq!(db.len(), 1);
        assert_eq!(db.profile(ModelKind::YoloV3).unwrap().image_offset, 200);
        assert_eq!(db, db.clone());
    }
}
