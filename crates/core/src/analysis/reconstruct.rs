//! Decay-tolerant reconstruction: recovering signal a single exact-matching
//! pass writes off.
//!
//! PR 5's remanence axis ([`zynq_dram::RemanenceModel`]) degrades residue by
//! clearing bits — whole bytes under `Exponential`, individual bits under
//! `BitFlip` — and the exact-matching analysis loses the victim the moment a
//! single signature byte or image row is touched.  The paper's attacker (and
//! Pentimento's) instead accumulates weak analog signals across repeated
//! reads.  This module implements that accumulation as three cooperating
//! recoverers:
//!
//! 1. **Snapshot fusion** ([`fuse_snapshots`], [`vote_snapshots`]): the same
//!    physical range is scraped N times across revival windows and fused
//!    per bit.  Decay only ever *clears* bits, so OR-fusion is sound — a set
//!    bit in any snapshot was a set bit in the raw residue — and per-bit
//!    voting bounds false positives if a channel model ever sets bits.
//! 2. **Fuzzy model identification** ([`fuzzy_identify_view`]): signature
//!    strings are scored by bit-level consistency instead of exact equality,
//!    so [`crate::SignatureDb`] still names the model after decay has clipped
//!    bits out of the library-path strings.  The match distance is threaded
//!    into [`ModelMatch::fuzzy_distance`].
//! 3. **Entropy-guided image repair** ([`entropy_image_offset`],
//!    [`repair_image`]): entropy region classes locate the image run when
//!    neither profile nor marker offset survives, and flipped pixels are
//!    interpolated from their neighbors before `recovery_rate` scoring.

// Lint audit: address arithmetic here is bounds-checked against the
// DRAM window before any narrowing cast or direct index; offsets are
// derived from validated window-relative coordinates.
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use vitis_ai_sim::Image;
use zynq_dram::ScrapeView;

use crate::analysis::entropy::{classify_regions_view, RegionClass, DEFAULT_WINDOW};
use crate::signature::{ModelMatch, SignatureDb};

/// Minimum number of exactly-surviving non-zero pattern bytes a fuzzy window
/// must contain: consistency alone is too weak (an all-zero window is
/// consistent with everything).
pub const MIN_EXACT_BYTES: usize = 4;

/// Minimum fraction of the pattern's set bits that must survive in the
/// window for a fuzzy match to count.
pub const MIN_BIT_EVIDENCE: f64 = 0.35;

/// Maximum neighbor-interpolation passes [`repair_image`] runs before giving
/// up on reaching a fixpoint.
const MAX_REPAIR_PASSES: usize = 4;

/// OR-fuses N snapshots of the same physical range into one byte vector.
///
/// Sound under every shipped decay model: [`zynq_dram::RemanenceModel`] decay
/// only ever clears bits, so any bit set in any snapshot was genuinely set in
/// the raw residue.  The fused byte is therefore a bitwise superset of every
/// individual snapshot and a subset of the undecayed residue.
///
/// The result has the length of the longest snapshot; shorter snapshots
/// contribute zeros past their end.  An empty slice fuses to an empty vector.
pub fn fuse_snapshots(snapshots: &[Vec<u8>]) -> Vec<u8> {
    let len = snapshots.iter().map(Vec::len).max().unwrap_or(0);
    let mut fused = vec![0u8; len];
    for snapshot in snapshots {
        for (acc, byte) in fused.iter_mut().zip(snapshot) {
            *acc |= byte;
        }
    }
    fused
}

/// Per-bit majority vote across N snapshots: a bit is set in the result when
/// it is set in at least `quorum` snapshots.
///
/// `quorum == 1` degenerates to [`fuse_snapshots`] (OR).  Against a channel
/// that could also *set* bits spuriously, a higher quorum bounds the false
/// positive rate at the cost of dropping late-decaying true bits.
///
/// # Panics
///
/// Panics if `quorum` is zero (a zero quorum would set every bit).
pub fn vote_snapshots(snapshots: &[Vec<u8>], quorum: usize) -> Vec<u8> {
    assert!(quorum > 0, "vote quorum must be non-zero");
    let len = snapshots.iter().map(Vec::len).max().unwrap_or(0);
    let mut voted = vec![0u8; len];
    for (i, out) in voted.iter_mut().enumerate() {
        let mut counts = [0usize; 8];
        for snapshot in snapshots {
            let byte = snapshot.get(i).copied().unwrap_or(0);
            for (bit, count) in counts.iter_mut().enumerate() {
                *count += usize::from(byte >> bit & 1);
            }
        }
        for (bit, count) in counts.iter().enumerate() {
            if *count >= quorum {
                *out |= 1 << bit;
            }
        }
    }
    voted
}

/// Scores `pattern` against every window of `bytes` with decay-aware
/// consistency, returning the best (smallest) match distance found.
///
/// A window byte `w` is *consistent* with a pattern byte `p` when
/// `w & !p == 0` — every surviving bit agrees, and missing bits are treated
/// as erasures (decay clears bits, never sets them).  A window qualifies
/// when it is consistent throughout, keeps at least [`MIN_EXACT_BYTES`]
/// non-zero pattern bytes fully intact, and retains at least
/// [`MIN_BIT_EVIDENCE`] of the pattern's set bits.  The distance is the
/// fraction of pattern bits missing from the window (0.0 = exact match).
pub fn fuzzy_scan(bytes: &[u8], pattern: &[u8]) -> Option<f64> {
    if pattern.is_empty() || bytes.len() < pattern.len() {
        return None;
    }
    let total_bits: u32 = pattern.iter().map(|p| p.count_ones()).sum();
    if total_bits == 0 {
        return None;
    }
    // Sliding count of non-zero window bytes: windows with fewer non-zero
    // bytes than the exact-byte floor cannot qualify, and skipping them keeps
    // the scan O(n) over the zero pages that dominate a scraped heap.
    let mut nonzero_in_window = bytes[..pattern.len()].iter().filter(|&&b| b != 0).count();
    let mut best: Option<f64> = None;
    for start in 0..=bytes.len() - pattern.len() {
        if start > 0 {
            nonzero_in_window += usize::from(bytes[start + pattern.len() - 1] != 0);
        }
        if nonzero_in_window >= MIN_EXACT_BYTES {
            if let Some(distance) = score_window(&bytes[start..start + pattern.len()], pattern) {
                if best.is_none_or(|b| distance < b) {
                    best = Some(distance);
                }
                if distance == 0.0 {
                    return best;
                }
            }
        }
        nonzero_in_window -= usize::from(bytes[start] != 0);
    }
    best
}

/// One window's decay-aware score against the pattern (see [`fuzzy_scan`]).
fn score_window(window: &[u8], pattern: &[u8]) -> Option<f64> {
    let mut exact_nonzero = 0usize;
    let mut surviving_bits = 0u32;
    let mut total_bits = 0u32;
    for (&w, &p) in window.iter().zip(pattern) {
        if w & !p != 0 {
            return None;
        }
        if w == p && p != 0 {
            exact_nonzero += 1;
        }
        surviving_bits += (w & p).count_ones();
        total_bits += p.count_ones();
    }
    let evidence = f64::from(surviving_bits) / f64::from(total_bits);
    if exact_nonzero < MIN_EXACT_BYTES || evidence < MIN_BIT_EVIDENCE {
        return None;
    }
    Some(1.0 - evidence)
}

/// Decay-tolerant model identification: scores every signature in `db`
/// against the dump with [`fuzzy_scan`] and returns the best match, if any
/// pattern still carries enough bit evidence.
///
/// The returned match reports how many patterns matched fuzzily (`hits`) and
/// the mean match distance across them ([`ModelMatch::fuzzy_distance`],
/// `Some(0.0)` when the surviving fragments were exact).  Ties are broken
/// toward the smaller distance.
pub fn fuzzy_identify_view(view: &ScrapeView<'_>, db: &SignatureDb) -> Option<ModelMatch> {
    let owned;
    let bytes: &[u8] = match view.try_borrow(0, view.len()) {
        Some(slice) => slice,
        None => {
            owned = view.to_vec();
            &owned
        }
    };
    let mut matches: Vec<ModelMatch> = db
        .signatures()
        .iter()
        .filter_map(|sig| {
            let distances: Vec<f64> = sig
                .patterns
                .iter()
                .filter_map(|pattern| fuzzy_scan(bytes, pattern.as_bytes()))
                .collect();
            if distances.is_empty() {
                return None;
            }
            let mean = distances.iter().sum::<f64>() / distances.len() as f64;
            Some(ModelMatch {
                model: sig.model,
                hits: distances.len(),
                total_patterns: sig.patterns.len(),
                fuzzy_distance: Some(mean),
            })
        })
        .collect();
    matches.sort_by(|a, b| {
        b.confidence()
            .partial_cmp(&a.confidence())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                a.fuzzy_distance
                    .partial_cmp(&b.fuzzy_distance)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    });
    matches.into_iter().next()
}

/// Entropy-guided image location: the heap-relative offset of the longest
/// run of image-like windows (non-zero filler or structured data) big enough
/// to hold an `image_len`-byte image.
///
/// This is the last-resort offset source when decay has destroyed both the
/// profile match and the marker runs: an input image survives as a long
/// stretch of windows that are neither zero, text, nor high-entropy weights.
/// Returns `None` when no candidate run is long enough.
pub fn entropy_image_offset(view: &ScrapeView<'_>, image_len: usize) -> Option<u64> {
    let regions = classify_regions_view(view, DEFAULT_WINDOW);
    let image_like = |class: RegionClass| {
        matches!(
            class,
            RegionClass::Filler { value: _ } | RegionClass::Structured
        )
    };
    let mut best: Option<(u64, usize)> = None;
    let mut run: Option<(u64, usize)> = None;
    for region in &regions {
        if image_like(region.class) {
            let (_, len) = run.get_or_insert((region.offset, 0));
            *len += region.len;
        } else if let Some(candidate) = run.take() {
            if candidate.1 >= image_len && best.is_none_or(|b| candidate.1 > b.1) {
                best = Some(candidate);
            }
        }
    }
    if let Some(candidate) = run {
        if candidate.1 >= image_len && best.is_none_or(|b| candidate.1 > b.1) {
            best = Some(candidate);
        }
    }
    best.map(|(offset, _)| offset)
}

/// Repairs decay damage in a reconstructed image by neighbor interpolation,
/// running up to `MAX_REPAIR_PASSES` passes or until a fixpoint.
///
/// Two conservative repairs, both gated so an undamaged image passes through
/// bit-identical:
///
/// * an **erased** channel byte (0, the `Exponential` signature) is restored
///   only when at least two of its 4-neighbors agree *exactly* on a non-zero
///   value — natural gradients rarely produce exact agreement, so solid
///   regions heal while photo detail is left alone;
/// * a **clipped** byte (`BitFlip`) is promoted to the strict-majority bit
///   consensus of its non-zero neighbors only when it is a bitwise subset of
///   that consensus — i.e. only bits that decay could have cleared are ever
///   re-set, never bits the neighbors disagree on.
pub fn repair_image(image: &Image) -> Image {
    let width = image.width() as usize;
    let height = image.height() as usize;
    let mut pixels = image.as_bytes().to_vec();
    if width == 0 || height == 0 {
        return image.clone();
    }
    for _ in 0..MAX_REPAIR_PASSES {
        let previous = pixels.clone();
        for y in 0..height {
            for x in 0..width {
                for channel in 0..3 {
                    let at = |x: usize, y: usize| previous[(y * width + x) * 3 + channel];
                    let mut neighbors = [0u8; 4];
                    let mut count = 0usize;
                    if x > 0 {
                        neighbors[count] = at(x - 1, y);
                        count += 1;
                    }
                    if x + 1 < width {
                        neighbors[count] = at(x + 1, y);
                        count += 1;
                    }
                    if y > 0 {
                        neighbors[count] = at(x, y - 1);
                        count += 1;
                    }
                    if y + 1 < height {
                        neighbors[count] = at(x, y + 1);
                        count += 1;
                    }
                    let own = at(x, y);
                    if let Some(repaired) = repair_byte(own, &neighbors[..count]) {
                        pixels[(y * width + x) * 3 + channel] = repaired;
                    }
                }
            }
        }
        if pixels == previous {
            break;
        }
    }
    Image::reconstruct(image.width(), image.height(), &pixels).expect("repair preserves dimensions")
}

/// One channel byte's repair decision (see [`repair_image`]).
fn repair_byte(own: u8, neighbors: &[u8]) -> Option<u8> {
    let nonzero: Vec<u8> = neighbors.iter().copied().filter(|&n| n != 0).collect();
    if nonzero.len() < 2 {
        return None;
    }
    if own == 0 {
        // Erased byte: restore only an exact >= 2 neighbor agreement,
        // breaking ties toward the value with more surviving bits.
        return nonzero
            .iter()
            .map(|&value| {
                let votes = nonzero.iter().filter(|&&n| n == value).count();
                (votes, value.count_ones(), value)
            })
            .filter(|&(votes, _, _)| votes >= 2)
            .max()
            .map(|(_, _, value)| value);
    }
    // Clipped byte: strict-majority bit consensus of the non-zero neighbors,
    // applied only when `own` could be a decayed form of it.
    let mut consensus = 0u8;
    for bit in 0..8 {
        let votes = nonzero.iter().filter(|&&n| n >> bit & 1 == 1).count();
        if 2 * votes > nonzero.len() {
            consensus |= 1 << bit;
        }
    }
    (own & !consensus == 0 && own != consensus).then_some(consensus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitis_ai_sim::ModelKind;

    fn view_of(bytes: &[u8]) -> ScrapeView<'_> {
        ScrapeView::from_slice(bytes)
    }

    #[test]
    fn or_fusion_is_a_superset_of_every_snapshot() {
        let snaps = vec![
            vec![0b1010_0000, 0x00, 0xFF],
            vec![0b0000_1010, 0x0F, 0x0F],
            vec![0b1000_0001, 0x00],
        ];
        let fused = fuse_snapshots(&snaps);
        assert_eq!(fused, vec![0b1010_1011, 0x0F, 0xFF]);
        for snap in &snaps {
            for (f, s) in fused.iter().zip(snap) {
                assert_eq!(s & !f, 0, "snapshot bit missing from fusion");
            }
        }
        assert!(fuse_snapshots(&[]).is_empty());
    }

    #[test]
    fn voting_with_quorum_one_is_or_and_higher_quorums_drop_lone_bits() {
        let snaps = vec![vec![0b0000_1111], vec![0b0000_0111], vec![0b0000_0011]];
        assert_eq!(vote_snapshots(&snaps, 1), fuse_snapshots(&snaps));
        assert_eq!(vote_snapshots(&snaps, 2), vec![0b0000_0111]);
        assert_eq!(vote_snapshots(&snaps, 3), vec![0b0000_0011]);
    }

    #[test]
    #[should_panic(expected = "quorum")]
    fn zero_quorum_is_rejected() {
        vote_snapshots(&[vec![1]], 0);
    }

    #[test]
    fn fuzzy_scan_finds_exact_and_byte_erased_patterns() {
        let pattern = b"vitis_ai_library/models/resnet50_pt";
        let mut dump = vec![0u8; 256];
        dump[64..64 + pattern.len()].copy_from_slice(pattern);
        assert_eq!(fuzzy_scan(&dump, pattern), Some(0.0));

        // Clear every third byte (Exponential-style whole-byte erasure).
        for (i, byte) in dump[64..64 + pattern.len()].iter_mut().enumerate() {
            if i % 3 == 0 {
                *byte = 0;
            }
        }
        let distance = fuzzy_scan(&dump, pattern).expect("erasures still match");
        assert!(distance > 0.0 && distance < 0.5, "{distance}");
    }

    #[test]
    fn fuzzy_scan_survives_bit_clipping_but_rejects_noise_and_blanks() {
        let pattern = b"vitis_ai_library/models/yolov3";
        let mut dump = vec![0u8; 512];
        dump[100..100 + pattern.len()].copy_from_slice(pattern);
        // Clip one bit out of every second byte (BitFlip-style).
        for (i, byte) in dump[100..100 + pattern.len()].iter_mut().enumerate() {
            if i % 2 == 0 {
                *byte &= !(1 << (i % 8));
            }
        }
        let distance = fuzzy_scan(&dump, pattern).expect("clipped bits still match");
        assert!(distance > 0.0, "some bits are genuinely missing");

        // An all-zero dump is consistent with everything but carries no
        // evidence; conflicting bytes are rejected outright.
        assert_eq!(fuzzy_scan(&vec![0u8; 256], pattern), None);
        let conflicting = vec![0xAAu8; 256];
        assert_eq!(fuzzy_scan(&conflicting, pattern), None);
        // Degenerate inputs.
        assert_eq!(fuzzy_scan(&[], pattern), None);
        assert_eq!(fuzzy_scan(&dump, &[]), None);
        assert_eq!(fuzzy_scan(&dump, &[0u8; 8]), None);
    }

    #[test]
    fn fuzzy_identification_names_the_model_after_decay() {
        let db = SignatureDb::standard();
        let mut dump = vec![0u8; 2048];
        let path = b"vitis_ai_library/models/resnet50_pt";
        dump[300..300 + path.len()].copy_from_slice(path);
        let name = b"resnet50_pt";
        dump[900..900 + name.len()].copy_from_slice(name);
        // Erase 40% of the path bytes — exact matching is now hopeless.
        for (i, byte) in dump[300..300 + path.len()].iter_mut().enumerate() {
            if i % 5 < 2 {
                *byte = 0;
            }
        }
        let matched = fuzzy_identify_view(&view_of(&dump), &db).expect("fuzzy match");
        assert_eq!(matched.model, ModelKind::Resnet50Pt);
        assert!(matched.hits >= 2, "{}", matched.hits);
        let distance = matched.fuzzy_distance.expect("fuzzy path sets distance");
        assert!(distance > 0.0 && distance < 0.5, "{distance}");

        // Nothing survives on a scrubbed board.
        assert_eq!(fuzzy_identify_view(&view_of(&[0u8; 1024]), &db), None);
    }

    #[test]
    fn entropy_offset_locates_the_image_run() {
        // Layout: text page, weights-like noise, then a long filler run (the
        // corrupted image), then zeros.
        let mut dump = Vec::new();
        dump.extend_from_slice(
            &b"vitis_ai_library/models/resnet50_pt "
                .iter()
                .copied()
                .cycle()
                .take(2048)
                .collect::<Vec<_>>(),
        );
        let mut state = 0x1234_5678u32;
        dump.extend((0..4096).map(|_| {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            (state >> 24) as u8
        }));
        let image_start = dump.len() as u64;
        dump.extend_from_slice(&[0xFFu8; 8192]);
        dump.extend_from_slice(&[0u8; 4096]);

        let offset = entropy_image_offset(&view_of(&dump), 8192).expect("image run found");
        assert_eq!(offset, image_start);
        // A run requirement longer than anything present yields None.
        assert_eq!(entropy_image_offset(&view_of(&dump), dump.len() + 1), None);
    }

    #[test]
    fn repair_heals_erasures_and_clipped_bits_in_a_solid_image() {
        // Ground truth: the corrupted marker image (solid 0xFF).
        let truth = Image::corrupted(16, 16);

        // Exponential-style damage: erase 40% of channel bytes.
        let mut erased = truth.as_bytes().to_vec();
        for (i, byte) in erased.iter_mut().enumerate() {
            if i % 5 < 2 {
                *byte = 0;
            }
        }
        let damaged = Image::reconstruct(16, 16, &erased).unwrap();
        assert!(damaged.pixel_recovery_rate(&truth) < 0.5);
        let repaired = repair_image(&damaged);
        assert_eq!(repaired.pixel_recovery_rate(&truth), 1.0);

        // BitFlip-style damage: clear one hash-picked bit in two thirds of
        // the bytes (decay draws per-cell hashes, so damaged bits are
        // uncorrelated between neighboring pixels).
        let mut clipped = truth.as_bytes().to_vec();
        for (i, byte) in clipped.iter_mut().enumerate() {
            let hash = (i as u32).wrapping_mul(0x9E37_79B9);
            if !hash.is_multiple_of(3) {
                *byte &= !(1 << (hash >> 28 & 7));
            }
        }
        let damaged = Image::reconstruct(16, 16, &clipped).unwrap();
        assert!(damaged.pixel_recovery_rate(&truth) < 0.5);
        let repaired = repair_image(&damaged);
        assert!(repaired.pixel_recovery_rate(&truth) > 0.95);
    }

    #[test]
    fn repair_is_identity_on_undamaged_images() {
        let solid = Image::corrupted(8, 8);
        assert_eq!(repair_image(&solid), solid);
        let sentinel = Image::profiling_sentinel(8, 8);
        assert_eq!(repair_image(&sentinel), sentinel);
    }

    #[test]
    fn repair_never_clears_a_surviving_bit() {
        // Decay-damaged photo: whatever repair does, it must only ever add
        // bits back, never destroy surviving signal.
        let photo = Image::sample_photo(12, 12);
        let mut damaged = photo.as_bytes().to_vec();
        for (i, byte) in damaged.iter_mut().enumerate() {
            if i % 7 == 0 {
                *byte = 0;
            }
        }
        let damaged = Image::reconstruct(12, 12, &damaged).unwrap();
        let repaired = repair_image(&damaged);
        for (d, r) in damaged.as_bytes().iter().zip(repaired.as_bytes()) {
            assert_eq!(d & !r, 0, "repair cleared a surviving bit");
        }
    }
}
