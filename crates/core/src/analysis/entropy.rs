//! Dump characterization: classifying the regions of a scraped heap.
//!
//! Before an analyst knows which model ran, a coarse map of the dump is
//! already useful: which parts are text (library paths, metadata), which are
//! high-entropy blobs (weights), which are a repeated filler value (the
//! corrupted-image marker, zero pages) and which look like natural image
//! data.  This module computes per-window byte statistics and classifies each
//! window, giving the "characterizing terminated processes" view the paper's
//! second contribution describes, independent of the signature database.

// Lint audit: address arithmetic here is bounds-checked against the
// DRAM window before any narrowing cast or direct index; offsets are
// derived from validated window-relative coordinates.
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use serde::{Deserialize, Serialize};
use zynq_dram::ScrapeView;

use crate::dump::MemoryDump;

/// Default classification window size in bytes.
pub const DEFAULT_WINDOW: usize = 1024;

/// Coarse content class of one window of the dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionClass {
    /// Entirely zero bytes (unused or scrubbed memory).
    Zero,
    /// One non-zero byte value repeated (e.g. the `0xFF` corrupted-image
    /// marker or the `0x55` profiling sentinel).
    Filler {
        /// The repeated byte value.
        value: u8,
    },
    /// Mostly printable ASCII: strings, paths, serialized metadata.
    Text,
    /// High-entropy binary data: weight blobs, compressed or random content.
    HighEntropy,
    /// Everything else: structured binary data, natural images, pointers.
    Structured,
}

impl std::fmt::Display for RegionClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionClass::Zero => write!(f, "zero"),
            RegionClass::Filler { value } => write!(f, "filler(0x{value:02x})"),
            RegionClass::Text => write!(f, "text"),
            RegionClass::HighEntropy => write!(f, "high-entropy"),
            RegionClass::Structured => write!(f, "structured"),
        }
    }
}

/// One classified window of the dump.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Byte offset of the window within the dump.
    pub offset: u64,
    /// Length of the window in bytes.
    pub len: usize,
    /// Shannon entropy of the window in bits per byte (0–8).
    pub entropy: f64,
    /// Fraction of printable ASCII bytes.
    pub printable_fraction: f64,
    /// The assigned class.
    pub class: RegionClass,
}

/// Shannon entropy of a byte slice in bits per byte.
///
/// Returns 0.0 for an empty slice.
pub fn shannon_entropy(bytes: &[u8]) -> f64 {
    if bytes.is_empty() {
        return 0.0;
    }
    let mut counts = [0usize; 256];
    for &b in bytes {
        counts[b as usize] += 1;
    }
    let len = bytes.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / len;
            -p * p.log2()
        })
        .sum()
}

fn classify_window(bytes: &[u8]) -> (f64, f64, RegionClass) {
    let entropy = shannon_entropy(bytes);
    let printable = bytes
        .iter()
        .filter(|&&b| (0x20..0x7f).contains(&b) || b == b'\n' || b == b'\t')
        .count() as f64
        / bytes.len().max(1) as f64;

    let first = bytes.first().copied().unwrap_or(0);
    let uniform = bytes.iter().all(|&b| b == first);
    let class = if uniform && first == 0 {
        RegionClass::Zero
    } else if uniform {
        RegionClass::Filler { value: first }
    } else if printable > 0.85 {
        RegionClass::Text
    } else if entropy > 7.2 {
        RegionClass::HighEntropy
    } else {
        RegionClass::Structured
    };
    (entropy, printable, class)
}

/// Classifies the dump in windows of `window` bytes (the last window may be
/// shorter).
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn classify_regions(dump: &MemoryDump, window: usize) -> Vec<Region> {
    classify_regions_view(&dump.as_view(), window)
}

/// [`classify_regions`] over a borrowed [`ScrapeView`]: windows that lie
/// inside one view segment are classified in place; only windows straddling
/// a segment boundary go through a small reused scratch buffer (the dump
/// form delegates here).
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn classify_regions_view(view: &ScrapeView<'_>, window: usize) -> Vec<Region> {
    assert!(window > 0, "window size must be non-zero");
    let mut regions = Vec::with_capacity(view.len().div_ceil(window));
    let mut scratch = vec![0u8; window];
    let mut offset = 0usize;
    while offset < view.len() {
        let len = window.min(view.len() - offset);
        let (entropy, printable_fraction, class) = match view.try_borrow(offset, len) {
            Some(slice) => classify_window(slice),
            None => {
                view.copy_into(offset, &mut scratch[..len]);
                classify_window(&scratch[..len])
            }
        };
        regions.push(Region {
            offset: offset as u64,
            len,
            entropy,
            printable_fraction,
            class,
        });
        offset += len;
    }
    regions
}

/// Summary of a classified dump: how many bytes fall in each class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionSummary {
    /// Bytes classified as zero.
    pub zero: u64,
    /// Bytes classified as repeated filler.
    pub filler: u64,
    /// Bytes classified as text.
    pub text: u64,
    /// Bytes classified as high-entropy blobs.
    pub high_entropy: u64,
    /// Bytes classified as other structured data.
    pub structured: u64,
}

impl RegionSummary {
    /// Total classified bytes.
    pub fn total(&self) -> u64 {
        self.zero + self.filler + self.text + self.high_entropy + self.structured
    }

    /// Fraction of the dump that still carries non-zero content — a quick
    /// residue indicator a triage pass can compute without any model
    /// knowledge.
    pub fn non_zero_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (total - self.zero) as f64 / total as f64
    }
}

/// Classifies the dump with the default window and aggregates per-class byte
/// counts.
pub fn summarize(dump: &MemoryDump) -> RegionSummary {
    summarize_view(&dump.as_view())
}

/// [`summarize`] over a borrowed [`ScrapeView`].
pub fn summarize_view(view: &ScrapeView<'_>) -> RegionSummary {
    let mut summary = RegionSummary::default();
    for region in classify_regions_view(view, DEFAULT_WINDOW) {
        let len = region.len as u64;
        match region.class {
            RegionClass::Zero => summary.zero += len,
            RegionClass::Filler { .. } => summary.filler += len,
            RegionClass::Text => summary.text += len,
            RegionClass::HighEntropy => summary.high_entropy += len,
            RegionClass::Structured => summary.structured += len,
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use zynq_dram::PhysAddr;
    use zynq_mmu::VirtAddr;

    fn dump_of(bytes: Vec<u8>) -> MemoryDump {
        MemoryDump::from_contiguous(VirtAddr::new(0), PhysAddr::new(0), bytes)
    }

    #[test]
    fn entropy_extremes() {
        assert_eq!(shannon_entropy(&[]), 0.0);
        assert_eq!(shannon_entropy(&[7u8; 128]), 0.0);
        // A uniform distribution over all byte values has 8 bits of entropy.
        let uniform: Vec<u8> = (0..=255u8).collect();
        assert!((shannon_entropy(&uniform) - 8.0).abs() < 1e-9);
        // Two equally likely values: exactly 1 bit.
        let two: Vec<u8> = [0u8, 255].repeat(64).to_vec();
        assert!((shannon_entropy(&two) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn classifies_synthetic_regions_correctly() {
        let mut bytes = vec![0u8; 1024]; // zero window
        bytes.extend_from_slice(&[0xFF; 1024]); // filler window
        bytes.extend_from_slice(
            "usr/share/vitis_ai_library/models/resnet50_pt/ "
                .repeat(22)
                .as_bytes(),
        ); // text window (1034 bytes → spills, keep aligned below)
        bytes.truncate(3 * 1024);
        // High-entropy window from a xorshift stream.
        let weights = vitis_ai_sim::weights::quantized_weights(vitis_ai_sim::ModelKind::Vgg16);
        bytes.extend_from_slice(&weights[..1024]);

        let regions = classify_regions(&dump_of(bytes), 1024);
        assert_eq!(regions.len(), 4);
        assert_eq!(regions[0].class, RegionClass::Zero);
        assert_eq!(regions[1].class, RegionClass::Filler { value: 0xFF });
        assert_eq!(regions[2].class, RegionClass::Text);
        assert!(regions[2].printable_fraction > 0.85);
        assert_eq!(regions[3].class, RegionClass::HighEntropy);
        assert!(regions[3].entropy > 7.2);
        assert_eq!(regions[1].class.to_string(), "filler(0xff)");
    }

    #[test]
    fn summary_aggregates_bytes_per_class() {
        let mut bytes = vec![0u8; 2048];
        bytes.extend_from_slice(&[0x55; 1024]);
        let summary = summarize(&dump_of(bytes));
        assert_eq!(summary.zero, 2048);
        assert_eq!(summary.filler, 1024);
        assert_eq!(summary.total(), 3072);
        assert!((summary.non_zero_fraction() - 1024.0 / 3072.0).abs() < 1e-9);
        assert_eq!(RegionSummary::default().non_zero_fraction(), 0.0);
    }

    #[test]
    fn scraped_resnet_dump_has_the_expected_region_mix() {
        use petalinux_sim::{BoardConfig, Kernel, UserId};
        use vitis_ai_sim::{DpuRunner, Image, ModelKind};
        use xsdb::DebugSession;

        use crate::attack::ScrapeMode;
        use crate::scrape::scrape_heap;
        use crate::translate::capture_heap_translation;

        let mut kernel = Kernel::boot(BoardConfig::tiny_for_tests());
        let launched = DpuRunner::new(ModelKind::Resnet50Pt)
            .with_input(Image::corrupted(224, 224))
            .launch(&mut kernel, UserId::new(0))
            .unwrap();
        let mut dbg = DebugSession::connect(UserId::new(1));
        let translation = capture_heap_translation(&mut dbg, &kernel, launched.pid()).unwrap();
        launched.terminate(&mut kernel).unwrap();
        let dump =
            scrape_heap(&mut dbg, &kernel, &translation, ScrapeMode::ContiguousRange).unwrap();

        let summary = summarize(&dump);
        // The corrupted image dominates as filler; the weight blob shows up as
        // high entropy; residue is clearly non-zero.
        assert!(summary.filler as usize >= 100 * 1024);
        assert!(summary.high_entropy > 0);
        assert!(summary.non_zero_fraction() > 0.5);

        // A sanitized dump, by contrast, is all zero.
        let scrubbed = dump_of(vec![0u8; 16 * 1024]);
        let clean = summarize(&scrubbed);
        assert_eq!(clean.non_zero_fraction(), 0.0);
        assert_eq!(clean.zero, 16 * 1024);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_is_rejected() {
        let _ = classify_regions(&dump_of(vec![1, 2, 3]), 0);
    }

    proptest! {
        #[test]
        fn prop_entropy_is_bounded(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let e = shannon_entropy(&bytes);
            prop_assert!((0.0..=8.0).contains(&e));
        }

        #[test]
        fn prop_regions_cover_the_whole_dump(bytes in proptest::collection::vec(any::<u8>(), 1..4096), window in 1usize..512) {
            let dump = dump_of(bytes.clone());
            let regions = classify_regions(&dump, window);
            let covered: usize = regions.iter().map(|r| r.len).sum();
            prop_assert_eq!(covered, bytes.len());
            // Offsets are strictly increasing and window-aligned.
            for (i, region) in regions.iter().enumerate() {
                prop_assert_eq!(region.offset, (i * window) as u64);
            }
        }
    }
}
