//! Step 4.b: reconstructing the victim's input image.

use vitis_ai_sim::{Image, ModelKind};
use zynq_dram::ScrapeView;

use crate::dump::MemoryDump;

/// Reconstructs the input image of `model` from the dump, given the
/// heap-relative byte offset the image starts at.
///
/// Returns `None` when the dump does not extend far enough (e.g. the memory
/// was sanitized and the dump is empty or truncated).
pub fn reconstruct_image(dump: &MemoryDump, model: ModelKind, offset: u64) -> Option<Image> {
    let (w, h) = model.input_dims();
    let len = (w * h * 3) as usize;
    let bytes = dump.slice(offset, len)?;
    Image::reconstruct(w, h, bytes)
}

/// [`reconstruct_image`] over a borrowed [`ScrapeView`].  The image bytes
/// themselves are copied out (an [`Image`] owns its pixels); everything
/// around them stays zero-copy.
pub fn reconstruct_image_view(
    view: &ScrapeView<'_>,
    model: ModelKind,
    offset: u64,
) -> Option<Image> {
    let (w, h) = model.input_dims();
    let len = (w * h * 3) as usize;
    let bytes = view.to_vec_range(usize::try_from(offset).ok()?, len)?;
    Image::reconstruct(w, h, &bytes)
}

/// Scores a reconstruction against the ground-truth input: the fraction of
/// pixels recovered exactly.
///
/// A missing reconstruction scores 0.
pub fn recovery_rate(reconstructed: Option<&Image>, ground_truth: &Image) -> f64 {
    match reconstructed {
        Some(image) => image.pixel_recovery_rate(ground_truth),
        None => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitis_ai_sim::runner::heap_image;
    use zynq_dram::PhysAddr;
    use zynq_mmu::VirtAddr;

    fn dump_for(model: ModelKind, input: &Image) -> (MemoryDump, u64) {
        let (bytes, layout) = heap_image(model, input);
        (
            MemoryDump::from_contiguous(
                VirtAddr::new(0xaaaa_ee77_5000),
                PhysAddr::new(0x6_0000_0000),
                bytes,
            ),
            layout.image_offset,
        )
    }

    #[test]
    fn reconstruction_at_correct_offset_is_exact() {
        let input = Image::sample_photo(224, 224);
        let (dump, offset) = dump_for(ModelKind::Resnet50Pt, &input);
        let rebuilt = reconstruct_image(&dump, ModelKind::Resnet50Pt, offset).unwrap();
        assert_eq!(rebuilt, input);
        assert_eq!(recovery_rate(Some(&rebuilt), &input), 1.0);
    }

    #[test]
    fn reconstruction_at_wrong_offset_scores_poorly() {
        let input = Image::sample_photo(224, 224);
        let (dump, offset) = dump_for(ModelKind::Resnet50Pt, &input);
        let wrong = reconstruct_image(&dump, ModelKind::Resnet50Pt, offset + 1024).unwrap();
        assert!(wrong.pixel_recovery_rate(&input) < 0.5);
    }

    #[test]
    fn truncated_dump_yields_none() {
        let input = Image::corrupted(224, 224);
        let (dump, offset) = dump_for(ModelKind::Resnet50Pt, &input);
        // An offset near the end cannot fit a whole image.
        assert!(reconstruct_image(&dump, ModelKind::Resnet50Pt, dump.len() as u64 - 16).is_none());
        assert_eq!(recovery_rate(None, &input), 0.0);
        // Sanity: the correct offset still works.
        assert!(reconstruct_image(&dump, ModelKind::Resnet50Pt, offset).is_some());
    }

    #[test]
    fn corrupted_image_reconstructs_to_all_ff() {
        let input = Image::corrupted(224, 224);
        let (dump, offset) = dump_for(ModelKind::Resnet50Pt, &input);
        let rebuilt = reconstruct_image(&dump, ModelKind::Resnet50Pt, offset).unwrap();
        assert!(rebuilt.as_bytes().iter().all(|&b| b == 0xFF));
        assert_eq!(recovery_rate(Some(&rebuilt), &input), 1.0);
    }
}
