//! Step 4: analysis of the extracted data.
//!
//! - [`strings`] — identify the executed model from library-path strings in
//!   the dump (the paper's Step 4.a).
//! - [`marker`] — locate runs of the corrupted-image / profiling-sentinel
//!   markers (`FFFF FFFF`, `5555 5555`).
//! - [`image`] — reconstruct the victim's input image at a profiled offset
//!   (the paper's Step 4.b) and score the reconstruction.
//! - [`weights`] — identify the model by matching the scraped weight blob
//!   against the public library (a string-free identification modality).
//! - [`entropy`] — model-agnostic dump characterization: classify windows of
//!   the dump as zero / filler / text / high-entropy / structured regions.
//! - [`reconstruct`] — decay-tolerant recovery: multi-snapshot fusion, fuzzy
//!   model identification and entropy-guided image repair for residue the
//!   remanence models have partially erased.

pub mod entropy;
pub mod image;
pub mod marker;
pub mod reconstruct;
pub mod strings;
pub mod weights;
