//! Step 4.a: identifying the model from strings in the dump.

// Lint audit: indexes and slice bounds here are established by the
// surrounding length checks / loop invariants before use.
#![allow(clippy::indexing_slicing)]

use zynq_dram::ScrapeView;

use crate::dump::MemoryDump;
use crate::signature::{ModelMatch, SignatureDb};

/// Identifies the model most likely to have produced the dump.
///
/// Returns `None` when no signature pattern appears at all (e.g. when the
/// memory was sanitized).
pub fn identify_model(dump: &MemoryDump, db: &SignatureDb) -> Option<ModelMatch> {
    db.best_match(dump)
}

/// [`identify_model`] over a borrowed [`ScrapeView`] — the zero-copy
/// identification step of the view-based pipeline.
pub fn identify_model_view(view: &ScrapeView<'_>, db: &SignatureDb) -> Option<ModelMatch> {
    db.best_match_view(view)
}

/// Returns the `grep`-style evidence lines for a match: every hexdump row
/// whose ASCII rendering contains the model's name (the paper's Figure 11).
pub fn evidence_lines(dump: &MemoryDump, matched: &ModelMatch) -> Vec<String> {
    dump.to_hexdump().grep(matched.model.name())
}

/// Lists all printable strings in the dump that look like filesystem paths,
/// a useful triage view for an analyst (not used by the automated pipeline).
pub fn path_like_strings(dump: &MemoryDump) -> Vec<String> {
    dump.ascii_strings(6)
        .into_iter()
        .filter(|s| s.contains('/'))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use petalinux_sim::{BoardConfig, Kernel, UserId};
    use vitis_ai_sim::{DpuRunner, ModelKind};
    use xsdb::DebugSession;
    use zynq_dram::PhysAddr;
    use zynq_mmu::VirtAddr;

    use crate::attack::ScrapeMode;
    use crate::scrape::scrape_heap;
    use crate::translate::capture_heap_translation;

    fn scraped_dump(model: ModelKind) -> MemoryDump {
        let mut kernel = Kernel::boot(BoardConfig::tiny_for_tests());
        let launched = DpuRunner::new(model)
            .launch(&mut kernel, UserId::new(0))
            .unwrap();
        let mut dbg = DebugSession::connect(UserId::new(1));
        let translation = capture_heap_translation(&mut dbg, &kernel, launched.pid()).unwrap();
        launched.terminate(&mut kernel).unwrap();
        scrape_heap(&mut dbg, &kernel, &translation, ScrapeMode::ContiguousRange).unwrap()
    }

    #[test]
    fn identifies_every_zoo_model_from_its_own_dump() {
        let db = SignatureDb::standard();
        for model in [
            ModelKind::Resnet50Pt,
            ModelKind::SqueezeNet,
            ModelKind::YoloV3,
        ] {
            let dump = scraped_dump(model);
            let matched = identify_model(&dump, &db).expect("model should be identified");
            assert_eq!(matched.model, model, "misidentified {model}");
            assert!(matched.confidence() >= 0.5);
            let lines = evidence_lines(&dump, &matched);
            assert!(!lines.is_empty());
            assert!(lines[0].contains(model.name()));
        }
    }

    #[test]
    fn sanitized_dump_yields_no_identification() {
        let dump = MemoryDump::from_contiguous(VirtAddr::new(0), PhysAddr::new(0), vec![0u8; 8192]);
        assert!(identify_model(&dump, &SignatureDb::standard()).is_none());
        assert!(path_like_strings(&dump).is_empty());
    }

    #[test]
    fn path_like_strings_surface_library_paths() {
        let dump = scraped_dump(ModelKind::MobileNetV2);
        let paths = path_like_strings(&dump);
        assert!(paths.iter().any(|p| p.contains("vitis_ai_library")));
    }
}
