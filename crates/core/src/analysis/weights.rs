//! Weight-fingerprint identification: matching the scraped weight blob
//! against the public model library.
//!
//! String-based identification (Step 4.a) fails if the runtime's path strings
//! happen to be paged out, truncated or partially overwritten.  Because the
//! adversary has the same public Vitis AI library the victim uses (paper
//! §II), it can also fingerprint the *weight blobs* themselves: every model's
//! weights are public constants, so finding a long match between dump content
//! and a known blob identifies the model — and locates its weight region —
//! without any string evidence.

// Lint audit: address arithmetic here is bounds-checked against the
// DRAM window before any narrowing cast or direct index; offsets are
// derived from validated window-relative coordinates.
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use serde::{Deserialize, Serialize};
use vitis_ai_sim::{weights, ModelKind};
use zynq_dram::ScrapeView;

use crate::dump::MemoryDump;

/// Number of bytes of each known weight blob used as the search probe.
pub const PROBE_LEN: usize = 64;

/// A weight-fingerprint match.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightMatch {
    /// The model whose public weights matched.
    pub model: ModelKind,
    /// Heap-relative offset at which the weight blob starts in the dump.
    pub weights_offset: u64,
    /// Fraction of the full blob that matches the dump at that offset.
    pub blob_match_fraction: f64,
}

/// Searches the dump for every zoo model's weight fingerprint.
///
/// Matches are ordered by decreasing match fraction.  A model is reported
/// only if its probe (the first [`PROBE_LEN`] bytes of its public weights)
/// occurs in the dump.
pub fn match_weights(dump: &MemoryDump) -> Vec<WeightMatch> {
    match_weights_view(&dump.as_view())
}

/// [`match_weights`] over a borrowed [`ScrapeView`]: the probes are located
/// with the view's segment-wise search and the match fraction counted in
/// place, no owned copy of the dump required (the dump form delegates here).
pub fn match_weights_view(view: &ScrapeView<'_>) -> Vec<WeightMatch> {
    let mut matches = Vec::new();
    for model in ModelKind::all() {
        let known = weights::quantized_weights(model);
        let probe = &known[..known.len().min(PROBE_LEN)];
        if probe.is_empty() || probe.len() > view.len() {
            continue;
        }
        let Some(offset) = view.find(probe) else {
            continue;
        };
        let available = view.len() - offset;
        let matching = (0..known.len().min(available))
            .filter(|&i| view.byte_at(offset + i) == known[i])
            .count();
        matches.push(WeightMatch {
            model,
            weights_offset: offset as u64,
            blob_match_fraction: matching as f64 / known.len() as f64,
        });
    }
    matches.sort_by(|a, b| {
        b.blob_match_fraction
            .partial_cmp(&a.blob_match_fraction)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    matches
}

/// The single best weight-fingerprint match, if any.
pub fn identify_model_by_weights(dump: &MemoryDump) -> Option<WeightMatch> {
    match_weights(dump).into_iter().next()
}

/// Extracts the victim's weight blob from the dump given a weight match,
/// returning as many bytes as the dump still holds.
///
/// Both bounds are clamped to the dump: a match whose recorded offset lies
/// at or beyond the dump edge (possible when the match came from a larger
/// dump, or the dump was truncated since) yields a short or empty blob
/// instead of panicking.
pub fn extract_weights(dump: &MemoryDump, matched: &WeightMatch) -> Vec<u8> {
    let full_len = matched.model.simulated_param_count() as usize;
    let start = (matched.weights_offset as usize).min(dump.len());
    let end = start.saturating_add(full_len).min(dump.len());
    dump.as_bytes()[start..end].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use petalinux_sim::{BoardConfig, Kernel, UserId};
    use vitis_ai_sim::{DpuRunner, Image};
    use xsdb::DebugSession;
    use zynq_dram::PhysAddr;
    use zynq_mmu::VirtAddr;

    use crate::attack::ScrapeMode;
    use crate::scrape::scrape_heap;
    use crate::translate::capture_heap_translation;

    fn scraped_dump(model: ModelKind) -> MemoryDump {
        let mut kernel = Kernel::boot(BoardConfig::tiny_for_tests());
        let launched = DpuRunner::new(model)
            .with_input(Image::corrupted(model.input_dims().0, model.input_dims().1))
            .launch(&mut kernel, UserId::new(0))
            .unwrap();
        let mut dbg = DebugSession::connect(UserId::new(1));
        let translation = capture_heap_translation(&mut dbg, &kernel, launched.pid()).unwrap();
        launched.terminate(&mut kernel).unwrap();
        scrape_heap(&mut dbg, &kernel, &translation, ScrapeMode::ContiguousRange).unwrap()
    }

    #[test]
    fn weight_fingerprint_identifies_the_victim_model() {
        let dump = scraped_dump(ModelKind::Resnet50Pt);
        let best = identify_model_by_weights(&dump).expect("weights found");
        assert_eq!(best.model, ModelKind::Resnet50Pt);
        assert!(best.blob_match_fraction > 0.99);

        // The extracted blob matches the public weights byte for byte.
        let extracted = extract_weights(&dump, &best);
        assert_eq!(extracted, weights::quantized_weights(ModelKind::Resnet50Pt));
    }

    #[test]
    fn fingerprint_works_even_when_strings_are_redacted() {
        let dump = scraped_dump(ModelKind::MobileNetV2);
        // Simulate string residue being overwritten: blank every printable
        // ASCII byte ahead of the weight blob (the region where the container
        // strings live), leaving the weights themselves untouched.
        let weights_start = identify_model_by_weights(&dump)
            .expect("clean dump fingerprints")
            .weights_offset as usize;
        let mut bytes = dump.as_bytes().to_vec();
        for b in bytes.iter_mut().take(weights_start) {
            if (0x20..0x7f).contains(b) {
                *b = 0;
            }
        }
        let redacted =
            MemoryDump::from_contiguous(dump.heap_start(), PhysAddr::new(0x6_0000_0000), bytes);
        // String identification now fails…
        assert!(crate::analysis::strings::identify_model(
            &redacted,
            &crate::signature::SignatureDb::standard()
        )
        .is_none());
        // …but the weight fingerprint still names the model.
        let best = identify_model_by_weights(&redacted).expect("weights still present");
        assert_eq!(best.model, ModelKind::MobileNetV2);
    }

    #[test]
    fn sanitized_dump_has_no_weight_matches() {
        let empty =
            MemoryDump::from_contiguous(VirtAddr::new(0), PhysAddr::new(0), vec![0u8; 64 * 1024]);
        assert!(match_weights(&empty).is_empty());
        assert!(identify_model_by_weights(&empty).is_none());
    }

    #[test]
    fn partial_blob_reports_reduced_match_fraction() {
        // Plant only the first quarter of squeezenet's weights in the dump.
        let known = weights::quantized_weights(ModelKind::SqueezeNet);
        let mut bytes = vec![0u8; 512];
        bytes.extend_from_slice(&known[..known.len() / 4]);
        bytes.extend(std::iter::repeat_n(0u8, known.len()));
        let dump = MemoryDump::from_contiguous(VirtAddr::new(0), PhysAddr::new(0), bytes);
        let best = identify_model_by_weights(&dump).expect("probe matches");
        assert_eq!(best.model, ModelKind::SqueezeNet);
        assert_eq!(best.weights_offset, 512);
        assert!(best.blob_match_fraction < 0.5);
        assert!(best.blob_match_fraction > 0.2);
        // Extraction is clamped to what the dump holds.
        let extracted = extract_weights(&dump, &best);
        assert!(extracted.len() <= known.len());
    }

    #[test]
    fn extraction_at_the_dump_edge_is_clamped_not_panicking() {
        // Regression: the slice range used to be clamped only on one side,
        // so a match offset at or past the dump edge panicked with
        // `start > end`.  A match can legitimately outlive its dump (e.g.
        // recorded from a longer profiling dump, then applied to a truncated
        // capture).
        let dump = MemoryDump::from_contiguous(VirtAddr::new(0), PhysAddr::new(0), vec![1u8; 64]);
        let past_end = WeightMatch {
            model: ModelKind::SqueezeNet,
            weights_offset: 1024,
            blob_match_fraction: 1.0,
        };
        assert!(extract_weights(&dump, &past_end).is_empty());
        let at_end = WeightMatch {
            weights_offset: dump.len() as u64,
            ..past_end
        };
        assert!(extract_weights(&dump, &at_end).is_empty());
        let near_end = WeightMatch {
            weights_offset: dump.len() as u64 - 8,
            ..past_end
        };
        assert_eq!(extract_weights(&dump, &near_end), vec![1u8; 8]);
        // The empty dump is the degenerate edge of the same bug.
        assert!(extract_weights(&MemoryDump::empty(VirtAddr::new(0)), &past_end).is_empty());
    }

    #[test]
    fn matches_are_sorted_by_match_fraction() {
        // A dump containing two different models' probes: full blob of one,
        // probe-only of the other.
        let full = weights::quantized_weights(ModelKind::SqueezeNet);
        let probe_only = &weights::quantized_weights(ModelKind::YoloV3)[..PROBE_LEN];
        let mut bytes = full.clone();
        bytes.extend_from_slice(probe_only);
        let dump = MemoryDump::from_contiguous(VirtAddr::new(0), PhysAddr::new(0), bytes);
        let matches = match_weights(&dump);
        assert!(matches.len() >= 2);
        assert_eq!(matches[0].model, ModelKind::SqueezeNet);
        assert!(matches[0].blob_match_fraction > matches[1].blob_match_fraction);
    }
}
