//! Marker scanning: locating `FFFF FFFF` / `5555 5555` runs in the dump.
//!
//! The paper finds the corrupted input image by searching the hexdump for the
//! `FFFF FFFF` identifier (Figure 12), and learns the image's offset offline
//! by searching for `5555 5555` in a profiling run.  This module provides the
//! run-length scanner behind both steps.

// Lint audit: indexes and slice bounds here are established by the
// surrounding length checks / loop invariants before use.
#![allow(clippy::indexing_slicing)]

use serde::{Deserialize, Serialize};
use zynq_dram::ScrapeView;

use crate::dump::MemoryDump;

/// The corrupted-image marker word (`0xFFFFFF` pixels produce all-0xFF bytes).
pub const CORRUPTED_MARKER: u32 = 0xFFFF_FFFF;

/// The offline-profiling sentinel word (`0x555555` pixels).
pub const SENTINEL_MARKER: u32 = 0x5555_5555;

/// A maximal run of a repeated marker word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarkerRun {
    /// Byte offset of the run within the dump.
    pub offset: u64,
    /// Length of the run in bytes.
    pub len: u64,
}

impl MarkerRun {
    /// One past the last byte of the run.
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

/// Finds maximal runs of `marker` (repeated little-endian 32-bit words) that
/// are at least `min_len` bytes long.
pub fn marker_runs(dump: &MemoryDump, marker: u32, min_len: u64) -> Vec<MarkerRun> {
    marker_runs_view(&dump.as_view(), marker, min_len)
}

/// [`marker_runs`] over a borrowed [`ScrapeView`] — the zero-copy scan the
/// view-based pipeline uses (the dump form delegates here, so both paths run
/// the identical algorithm).
pub fn marker_runs_view(view: &ScrapeView<'_>, marker: u32, min_len: u64) -> Vec<MarkerRun> {
    let pattern = marker.to_le_bytes();
    let uniform = pattern.iter().all(|&b| b == pattern[0]);
    if uniform {
        // Runs of a repeated byte are not word-quantized in the dump, so the
        // word-based scan below would miss a maximal run of 1–3 bytes even at
        // `min_len < 4`.  Scan byte-wise over the segments instead; maximal
        // runs of >= 4 bytes come out identical to the word scan.
        return uniform_byte_runs(view, pattern[0], min_len);
    }
    let len = view.len();
    let mut runs = Vec::new();
    let mut i = 0usize;
    while i + 4 <= len {
        if view.word_eq(i, &pattern) {
            let start = i;
            while view.word_eq(i, &pattern) {
                i += 4;
            }
            // Extend over a partial trailing word of the same byte (runs of a
            // repeated byte are not word-quantized in the dump).
            while uniform && i < len && view.byte_at(i) == pattern[0] {
                i += 1;
            }
            let run_len = (i - start) as u64;
            if run_len >= min_len {
                runs.push(MarkerRun {
                    offset: start as u64,
                    len: run_len,
                });
            }
        } else {
            i += 1;
        }
    }
    runs
}

/// Maximal runs of the repeated byte `value`, at least `min_len` bytes long,
/// scanned segment-by-segment (runs may straddle segment boundaries).
fn uniform_byte_runs(view: &ScrapeView<'_>, value: u8, min_len: u64) -> Vec<MarkerRun> {
    let mut runs = Vec::new();
    let mut run_start: Option<usize> = None;
    let mut pos = 0usize;
    let flush = |start: usize, end: usize, runs: &mut Vec<MarkerRun>| {
        let run_len = (end - start) as u64;
        if run_len >= min_len {
            runs.push(MarkerRun {
                offset: start as u64,
                len: run_len,
            });
        }
    };
    for segment in view.segments() {
        for &byte in segment {
            if byte == value {
                run_start.get_or_insert(pos);
            } else if let Some(start) = run_start.take() {
                flush(start, pos, &mut runs);
            }
            pos += 1;
        }
    }
    if let Some(start) = run_start {
        flush(start, pos, &mut runs);
    }
    runs
}

/// The first marker run of at least `min_len` bytes, if any.
///
/// The paper uses the first occurrence as the image's starting offset.
pub fn first_marker_offset(dump: &MemoryDump, marker: u32, min_len: u64) -> Option<u64> {
    marker_runs(dump, marker, min_len).first().map(|r| r.offset)
}

/// Total number of marker bytes in the dump (a coarse "how much of the image
/// survived" measure used by the defense experiments).
pub fn marker_bytes(dump: &MemoryDump, marker: u32) -> u64 {
    marker_runs(dump, marker, 4).iter().map(|r| r.len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zynq_dram::PhysAddr;
    use zynq_mmu::VirtAddr;

    fn dump_of(bytes: Vec<u8>) -> MemoryDump {
        MemoryDump::from_contiguous(VirtAddr::new(0), PhysAddr::new(0), bytes)
    }

    #[test]
    fn finds_a_single_run_at_the_right_offset() {
        let mut bytes = vec![0u8; 100];
        bytes.extend_from_slice(&[0xFF; 64]);
        bytes.extend_from_slice(&[0u8; 36]);
        let dump = dump_of(bytes);
        let runs = marker_runs(&dump, CORRUPTED_MARKER, 16);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].offset, 100);
        assert_eq!(runs[0].len, 64);
        assert_eq!(runs[0].end(), 164);
        assert_eq!(first_marker_offset(&dump, CORRUPTED_MARKER, 16), Some(100));
        assert_eq!(marker_bytes(&dump, CORRUPTED_MARKER), 64);
    }

    #[test]
    fn respects_min_len_and_multiple_runs() {
        let mut bytes = vec![0u8; 16];
        bytes.extend_from_slice(&[0x55; 8]); // short run
        bytes.extend_from_slice(&[0u8; 16]);
        bytes.extend_from_slice(&[0x55; 32]); // long run
        let dump = dump_of(bytes);
        let long_only = marker_runs(&dump, SENTINEL_MARKER, 16);
        assert_eq!(long_only.len(), 1);
        assert_eq!(long_only[0].offset, 40);
        let all = marker_runs(&dump, SENTINEL_MARKER, 4);
        assert_eq!(all.len(), 2);
        assert_eq!(marker_bytes(&dump, SENTINEL_MARKER), 40);
    }

    #[test]
    fn unaligned_run_is_still_found() {
        let mut bytes = vec![0u8; 3];
        bytes.extend_from_slice(&[0xFF; 20]);
        bytes.push(0);
        let dump = dump_of(bytes);
        let runs = marker_runs(&dump, CORRUPTED_MARKER, 8);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].offset, 3);
        assert_eq!(runs[0].len, 20);
    }

    #[test]
    fn no_marker_means_no_runs() {
        let dump = dump_of(vec![0u8; 256]);
        assert!(marker_runs(&dump, CORRUPTED_MARKER, 4).is_empty());
        assert!(first_marker_offset(&dump, CORRUPTED_MARKER, 4).is_none());
        assert_eq!(marker_bytes(&dump, CORRUPTED_MARKER), 0);
        // Empty dump.
        assert!(marker_runs(&dump_of(Vec::new()), CORRUPTED_MARKER, 4).is_empty());
    }

    #[test]
    fn distinct_markers_do_not_interfere() {
        let mut bytes = vec![0xFFu8; 16];
        bytes.extend_from_slice(&[0x55; 16]);
        let dump = dump_of(bytes);
        assert_eq!(first_marker_offset(&dump, CORRUPTED_MARKER, 8), Some(0));
        assert_eq!(first_marker_offset(&dump, SENTINEL_MARKER, 8), Some(16));
    }

    #[test]
    fn chunked_view_scan_matches_the_owned_scan() {
        // Runs straddling chunk boundaries must be found identically whether
        // the bytes live in one owned buffer or a multi-segment view.
        let mut bytes = vec![0u8; 50];
        bytes.extend_from_slice(&[0xFF; 100]); // spans the 64-byte boundary
        bytes.extend_from_slice(&[0u8; 42]);
        bytes.extend_from_slice(&[0x55; 19]); // unaligned tail run
        let dump = dump_of(bytes.clone());

        let mut view = ScrapeView::with_unit(64);
        for chunk in bytes.chunks(64) {
            view.push_chunk(chunk);
        }
        for (marker, min_len) in [(CORRUPTED_MARKER, 16), (SENTINEL_MARKER, 4)] {
            assert_eq!(
                marker_runs_view(&view, marker, min_len),
                marker_runs(&dump, marker, min_len),
                "marker {marker:08x}"
            );
        }
    }

    #[test]
    fn uniform_runs_shorter_than_a_word_are_found_at_small_min_len() {
        // Regression: the word-quantized scan missed maximal uniform runs of
        // 1–3 bytes even when `min_len < 4`.
        let mut bytes = vec![0u8; 8];
        bytes.extend_from_slice(&[0xFF; 3]);
        bytes.extend_from_slice(&[0u8; 5]);
        bytes.push(0xFF);
        bytes.extend_from_slice(&[0u8; 7]);
        let dump = dump_of(bytes);
        let runs = marker_runs(&dump, CORRUPTED_MARKER, 2);
        assert_eq!(
            runs,
            vec![MarkerRun { offset: 8, len: 3 }],
            "the 3-byte run clears min_len=2, the single byte does not"
        );
        let ones = marker_runs(&dump, CORRUPTED_MARKER, 1);
        assert_eq!(
            ones,
            vec![
                MarkerRun { offset: 8, len: 3 },
                MarkerRun { offset: 16, len: 1 },
            ]
        );
        // min_len >= 4 still sees nothing here.
        assert!(marker_runs(&dump, CORRUPTED_MARKER, 4).is_empty());
    }

    #[test]
    fn short_uniform_run_at_the_dump_tail_is_found() {
        let mut bytes = vec![0u8; 6];
        bytes.extend_from_slice(&[0x55; 2]);
        let dump = dump_of(bytes);
        assert_eq!(
            marker_runs(&dump, SENTINEL_MARKER, 2),
            vec![MarkerRun { offset: 6, len: 2 }]
        );
    }

    #[test]
    fn non_repeating_marker_word_matches_exact_sequences_only() {
        // A marker whose bytes are not all identical (regression for the
        // tail-extension logic).
        let marker = 0x0102_0304u32;
        let mut bytes = marker.to_le_bytes().repeat(3);
        bytes.push(0x04);
        let dump = dump_of(bytes);
        let runs = marker_runs(&dump, marker, 4);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].len, 12);
    }
}
