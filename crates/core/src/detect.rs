//! Detection surface: recognizing a memory scraping attack from the
//! debugger's access pattern.
//!
//! The paper's conclusion places the burden of restricting debugger
//! privileges on the FPGA manufacturer.  Short of restricting them, a board
//! agent can at least *observe* them: the attack has a distinctive shape — a
//! process-list poll, a `maps`/`pagemap` burst against a single pid, then a
//! physical read volume on the order of that process's whole heap, issued by
//! a user who does not own the process.  [`ScrapingDetector`] encodes those
//! heuristics over the [`xsdb::AuditLog`] every debug session accumulates, so
//! the defense discussion can be quantified from the defender's side too.

use petalinux_sim::{Kernel, Pid, UserId};
use serde::{Deserialize, Serialize};
use xsdb::{AuditLog, DebugOp};

/// Thresholds for flagging a debug session as a scraping attempt.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Minimum number of metadata inspections (`maps`, `pagemap`, translate)
    /// of a single foreign pid before the session is considered *targeting*
    /// that pid.
    pub min_inspections: usize,
    /// Minimum bytes of physical memory read before the session is
    /// considered to be *bulk reading*.
    pub min_physical_bytes: u64,
    /// Whether reads performed by the process owner (or root) are exempt.
    pub exempt_owner: bool,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            min_inspections: 2,
            min_physical_bytes: 64 * 1024,
            exempt_owner: true,
        }
    }
}

/// Severity of a detection finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Unusual but not conclusive (e.g. cross-user metadata reads only).
    Suspicious,
    /// The full scraping signature was observed.
    Critical,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Suspicious => write!(f, "suspicious"),
            Severity::Critical => write!(f, "critical"),
        }
    }
}

/// One detection finding about a debug session.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// The user driving the session.
    pub user: UserId,
    /// The pid the session focused on, when one could be attributed.
    pub target: Option<Pid>,
    /// How severe the observed behaviour is.
    pub severity: Severity,
    /// Number of metadata inspections of the target.
    pub inspections: usize,
    /// Bytes of physical memory read by the session.
    pub physical_bytes: u64,
    /// Human-readable explanation.
    pub reason: String,
}

/// Analyses debugger audit logs for the memory-scraping signature.
///
/// # Example
///
/// ```
/// use msa_core::detect::{DetectorConfig, ScrapingDetector};
///
/// let detector = ScrapingDetector::new(DetectorConfig::default());
/// assert_eq!(detector.config().min_inspections, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScrapingDetector {
    config: DetectorConfig,
}

impl ScrapingDetector {
    /// Creates a detector with the given thresholds.
    pub fn new(config: DetectorConfig) -> Self {
        ScrapingDetector { config }
    }

    /// The thresholds in use.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Inspects one session's audit log.
    ///
    /// `user` is the user the session belongs to; `kernel` supplies process
    /// ownership so owner/root activity can be exempted.  Returns `None` when
    /// the activity looks benign.
    pub fn inspect(&self, kernel: &Kernel, user: UserId, log: &AuditLog) -> Option<Finding> {
        // Attribute the session to the foreign pid it inspected the most.
        let mut per_pid: std::collections::BTreeMap<Pid, usize> = std::collections::BTreeMap::new();
        for record in log.records() {
            let pid = match record.op {
                DebugOp::ReadMaps { pid }
                | DebugOp::ReadPagemap { pid, .. }
                | DebugOp::Translate { pid } => pid,
                _ => continue,
            };
            if self.config.exempt_owner {
                if user.is_root() {
                    continue;
                }
                if let Ok(process) = kernel.process(pid) {
                    if process.user() == user {
                        continue;
                    }
                }
            }
            *per_pid.entry(pid).or_default() += 1;
        }
        let physical_bytes = log.physical_bytes_read();
        let (target, inspections) = per_pid
            .into_iter()
            .max_by_key(|(_, count)| *count)
            .map(|(pid, count)| (Some(pid), count))
            .unwrap_or((None, 0));

        let targeting = inspections >= self.config.min_inspections;
        let bulk_reading = physical_bytes >= self.config.min_physical_bytes;

        match (targeting, bulk_reading) {
            (true, true) => Some(Finding {
                user,
                target,
                severity: Severity::Critical,
                inspections,
                physical_bytes,
                reason: format!(
                    "cross-user address-space inspection ({inspections} ops) followed by a bulk \
                     physical read of {physical_bytes} bytes"
                ),
            }),
            (true, false) => Some(Finding {
                user,
                target,
                severity: Severity::Suspicious,
                inspections,
                physical_bytes,
                reason: format!(
                    "cross-user address-space inspection ({inspections} ops) without bulk reads yet"
                ),
            }),
            (false, true) => Some(Finding {
                user,
                target,
                severity: Severity::Suspicious,
                inspections,
                physical_bytes,
                reason: format!(
                    "bulk physical read of {physical_bytes} bytes without attributable inspection"
                ),
            }),
            (false, false) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use petalinux_sim::{BoardConfig, Kernel};
    use vitis_ai_sim::{DpuRunner, Image, ModelKind};
    use xsdb::DebugSession;

    use crate::attack::{AttackConfig, AttackPipeline};

    fn detector() -> ScrapingDetector {
        ScrapingDetector::new(DetectorConfig::default())
    }

    #[test]
    fn real_attack_session_is_flagged_critical() {
        let mut kernel = Kernel::boot(BoardConfig::tiny_for_tests());
        let victim = DpuRunner::new(ModelKind::Resnet50Pt)
            .with_input(Image::corrupted(224, 224))
            .launch(&mut kernel, UserId::new(0))
            .unwrap();
        let pipeline = AttackPipeline::new(AttackConfig::default());
        let mut debugger = DebugSession::connect(UserId::new(1));
        let observation = pipeline.poll_and_observe(&mut debugger, &kernel).unwrap();
        let victim_pid = victim.pid();
        victim.terminate(&mut kernel).unwrap();
        pipeline
            .execute(&mut debugger, &kernel, &observation)
            .unwrap();

        let finding = detector()
            .inspect(&kernel, debugger.user(), debugger.audit())
            .expect("attack should be detected");
        assert_eq!(finding.severity, Severity::Critical);
        assert_eq!(finding.target, Some(victim_pid));
        assert!(finding.inspections >= 2);
        assert!(finding.physical_bytes >= 64 * 1024);
        assert!(finding.reason.contains("bulk"));
    }

    #[test]
    fn owner_debugging_their_own_process_is_not_flagged() {
        let mut kernel = Kernel::boot(BoardConfig::tiny_for_tests());
        let run = DpuRunner::new(ModelKind::SqueezeNet)
            .launch(&mut kernel, UserId::new(3))
            .unwrap();
        // The process owner uses the debugger heavily on their own process.
        let mut debugger = DebugSession::connect(UserId::new(3));
        let heap = kernel.process(run.pid()).unwrap().heap_base();
        for _ in 0..5 {
            debugger.read_maps(&kernel, run.pid()).unwrap();
            debugger.read_pagemap(&kernel, run.pid(), heap, 8).unwrap();
        }
        assert!(detector()
            .inspect(&kernel, debugger.user(), debugger.audit())
            .is_none());
    }

    #[test]
    fn metadata_only_snooping_is_suspicious_not_critical() {
        let mut kernel = Kernel::boot(BoardConfig::tiny_for_tests());
        let run = DpuRunner::new(ModelKind::SqueezeNet)
            .launch(&mut kernel, UserId::new(0))
            .unwrap();
        let mut debugger = DebugSession::connect(UserId::new(1));
        debugger.read_maps(&kernel, run.pid()).unwrap();
        debugger.read_maps(&kernel, run.pid()).unwrap();
        let finding = detector()
            .inspect(&kernel, debugger.user(), debugger.audit())
            .expect("snooping noticed");
        assert_eq!(finding.severity, Severity::Suspicious);
        assert_eq!(finding.target, Some(run.pid()));
    }

    #[test]
    fn bulk_read_without_inspection_is_suspicious() {
        let mut kernel = Kernel::boot(BoardConfig::tiny_for_tests());
        DpuRunner::new(ModelKind::SqueezeNet)
            .run_to_completion(&mut kernel, UserId::new(0))
            .unwrap();
        let mut debugger = DebugSession::connect(UserId::new(1));
        let base = kernel.config().dram().base();
        debugger.read_phys_range(&kernel, base, 128 * 1024).unwrap();
        let finding = detector()
            .inspect(&kernel, debugger.user(), debugger.audit())
            .expect("bulk read noticed");
        assert_eq!(finding.severity, Severity::Suspicious);
        assert_eq!(finding.target, None);
    }

    #[test]
    fn quiet_sessions_produce_no_finding() {
        let mut kernel = Kernel::boot(BoardConfig::tiny_for_tests());
        kernel.spawn(UserId::new(0), &["sh"]).unwrap();
        let mut debugger = DebugSession::connect(UserId::new(1));
        debugger.list_processes(&kernel);
        assert!(detector()
            .inspect(&kernel, debugger.user(), debugger.audit())
            .is_none());
    }

    #[test]
    fn root_is_exempt_by_default_but_not_when_configured() {
        let mut kernel = Kernel::boot(BoardConfig::tiny_for_tests());
        let run = DpuRunner::new(ModelKind::SqueezeNet)
            .launch(&mut kernel, UserId::new(3))
            .unwrap();
        let mut debugger = DebugSession::connect(UserId::new(0));
        debugger.read_maps(&kernel, run.pid()).unwrap();
        debugger.read_maps(&kernel, run.pid()).unwrap();
        assert!(detector()
            .inspect(&kernel, debugger.user(), debugger.audit())
            .is_none());

        let strict = ScrapingDetector::new(DetectorConfig {
            exempt_owner: false,
            ..DetectorConfig::default()
        });
        let finding = strict
            .inspect(&kernel, debugger.user(), debugger.audit())
            .expect("strict mode flags root too");
        assert_eq!(finding.severity, Severity::Suspicious);
    }

    #[test]
    fn severity_ordering_and_display() {
        assert!(Severity::Suspicious < Severity::Critical);
        assert_eq!(Severity::Suspicious.to_string(), "suspicious");
        assert_eq!(Severity::Critical.to_string(), "critical");
        assert_eq!(DetectorConfig::default().min_inspections, 2);
        assert_eq!(
            ScrapingDetector::default().config(),
            &DetectorConfig::default()
        );
    }
}
