//! End-to-end attack scenarios: victim + attacker on one board.
//!
//! [`AttackScenario`] packages everything the examples, integration tests and
//! benchmarks need, and is the unit of work the [`crate::campaign`] engine
//! schedules.  A scenario runs in three separable stages:
//!
//! 1. **Board boot** — [`AttackScenario::boot`] resolves the profile
//!    database, builds the attack pipeline, boots the kernel and plays the
//!    scenario's [`VictimSchedule`] prologue (predecessor traffic, co-resident
//!    tenants).
//! 2. **Victim lifecycle** — [`BootedScenario::launch_victim`] starts the
//!    victim model on the already-booted board.
//! 3. **Attacker run** — [`BootedScenario::run_attack`] observes the victim,
//!    waits for termination, scrapes, analyses and scores the result against
//!    ground truth.
//!
//! [`AttackScenario::execute`] drives all three stages back to back, so
//! single-shot callers keep their one-line API.

use petalinux_sim::{BoardConfig, Kernel, UserId};
use serde::{Deserialize, Serialize};
use vitis_ai_sim::{CompletedRun, DpuRunner, Image, LaunchedRun, ModelKind, RunnerError};
use xsdb::DebugSession;
use zynq_dram::ScrubReport;

use crate::attack::{AttackConfig, AttackPipeline};
use crate::error::AttackError;
use crate::metrics::AttackOutcome;
use crate::profile::{ProfileDatabase, Profiler};

fn runner_error(e: RunnerError) -> AttackError {
    match e {
        RunnerError::Kernel(k) => AttackError::Channel(k),
    }
}

/// How victim traffic is scheduled on the booted board before (and around)
/// the attacked process.
///
/// This is a first-class campaign axis: the paper's single-victim procedure
/// is [`VictimSchedule::Single`], fleet-style sequential tenant churn is
/// [`VictimSchedule::SequentialTraffic`], and the multi-tenant collateral
/// experiment (TAB-F) is [`VictimSchedule::MultiTenant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum VictimSchedule {
    /// One victim process on an otherwise idle board (the paper's setup).
    #[default]
    Single,
    /// `predecessors` other model processes run to completion on the board
    /// before the victim launches, churning the frame allocator the way a
    /// busy multi-user board would.  Which models run is derived
    /// deterministically from the scenario seed.
    SequentialTraffic {
        /// Number of predecessor processes run (and terminated) before the
        /// victim starts.
        predecessors: usize,
    },
    /// A second, still-running tenant shares the board while the victim is
    /// attacked, with the allocator deliberately fragmented by a warm-up
    /// process so the victim's frames straddle the active tenant's (the
    /// situation in which the paper argues contiguous sanitization schemes
    /// clobber live guest data).
    MultiTenant {
        /// The model the co-resident (surviving) tenant keeps running.
        active_model: ModelKind,
        /// Heap pages claimed (and later released) by the fragmentation
        /// warm-up process.
        warmup_pages: u64,
    },
}

impl std::fmt::Display for VictimSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VictimSchedule::Single => write!(f, "single"),
            VictimSchedule::SequentialTraffic { predecessors } => {
                write!(f, "sequential-traffic({predecessors})")
            }
            VictimSchedule::MultiTenant { active_model, .. } => {
                write!(f, "multi-tenant({active_model})")
            }
        }
    }
}

/// What the attack recovered, next to the ground truth it should have
/// recovered.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    attack: AttackOutcome,
    ground_truth: CompletedRun,
    scrub_report: Option<ScrubReport>,
    residue_frames_after: usize,
    denied_operations: usize,
    collateral_bytes: u64,
    active_tenant_intact: Option<bool>,
}

impl ScenarioOutcome {
    /// The attack-side outcome.
    pub fn attack(&self) -> &AttackOutcome {
        &self.attack
    }

    /// The victim-side ground truth.
    pub fn ground_truth(&self) -> &CompletedRun {
        &self.ground_truth
    }

    /// The sanitizer report produced when the victim terminated.
    pub fn scrub_report(&self) -> Option<&ScrubReport> {
        self.scrub_report.as_ref()
    }

    /// Number of residue frames left in DRAM after the attack completed.
    pub fn residue_frames_after(&self) -> usize {
        self.residue_frames_after
    }

    /// Number of debugger operations the isolation policy denied during the
    /// attack.
    pub fn denied_operations(&self) -> usize {
        self.denied_operations
    }

    /// Bytes of other live owners' data destroyed by sanitizer runs, summed
    /// over every scrub on the board (warm-up teardown, predecessor
    /// terminations and the victim's own).
    pub fn collateral_bytes(&self) -> u64 {
        self.collateral_bytes
    }

    /// Whether the co-resident tenant's input survived intact in its own
    /// heap (`None` outside [`VictimSchedule::MultiTenant`]).
    pub fn active_tenant_intact(&self) -> Option<bool> {
        self.active_tenant_intact
    }

    /// The model the attack identified, if any.
    pub fn identified_model(&self) -> Option<ModelKind> {
        self.attack.identified_model()
    }

    /// Returns `true` if the identified model matches the one the victim ran.
    pub fn model_identification_correct(&self) -> bool {
        self.identified_model() == Some(self.ground_truth.model())
    }

    /// Fraction of the victim's input pixels the attack recovered exactly.
    pub fn pixel_recovery_rate(&self) -> f64 {
        self.attack
            .image_recovery_rate(self.ground_truth.input_image())
    }

    /// Bytes scraped from physical memory.
    pub fn bytes_scraped(&self) -> usize {
        self.attack.bytes_scraped
    }

    /// Flattens the outcome into the clone-cheap [`ScenarioMetrics`] record
    /// campaigns aggregate — scalars only, no dumps or images.
    pub fn metrics(&self) -> ScenarioMetrics {
        ScenarioMetrics {
            identified_model: self.identified_model(),
            model_identified: self.model_identification_correct(),
            identification_confidence: self.attack.identification_confidence(),
            pixel_recovery: self.pixel_recovery_rate(),
            bytes_scraped: self.bytes_scraped(),
            dump_coverage: self.attack.dump_coverage,
            residue_frames: self.residue_frames_after,
            denied_operations: self.denied_operations,
            scrub_cost_cycles: self.scrub_report.as_ref().map_or(0.0, |r| r.cost_cycles),
            collateral_bytes: self.collateral_bytes,
            active_tenant_intact: self.active_tenant_intact,
        }
    }
}

/// The flat, deterministic summary of one scenario run.
///
/// Everything campaign aggregation and the experiment tables need, with none
/// of the memory dumps or reconstructed images a [`ScenarioOutcome`] carries
/// — cells can be collected by the thousand without cloning heaps.  All
/// fields are reproducible for a fixed spec and seed (wall-clock timings live
/// on the campaign cell record instead), which is what makes worker-count
/// independence testable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioMetrics {
    /// The model identification result, if any signature matched.
    pub identified_model: Option<ModelKind>,
    /// Whether the identification matches the victim's actual model.
    pub model_identified: bool,
    /// Confidence of the identification (0.0 when nothing matched).
    pub identification_confidence: f64,
    /// Fraction of the victim's input pixels recovered exactly.
    pub pixel_recovery: f64,
    /// Bytes scraped from physical memory.
    pub bytes_scraped: usize,
    /// Fraction of heap pages captured by the scrape.
    pub dump_coverage: f64,
    /// Residue frames left in DRAM after the attack.
    pub residue_frames: usize,
    /// Debugger operations denied by the isolation policy.
    pub denied_operations: usize,
    /// Modelled cost of the victim's termination scrub, in cycles.
    pub scrub_cost_cycles: f64,
    /// Live owners' bytes destroyed by sanitizer runs (summed over every
    /// scrub on the board).
    pub collateral_bytes: u64,
    /// Whether the co-resident tenant's data survived
    /// (`None` outside multi-tenant schedules).
    pub active_tenant_intact: Option<bool>,
}

/// Outcome of a scenario in which the attack could not even complete (e.g.
/// the debugger was confined).  Kept distinct so defense sweeps can report
/// *why* an attack failed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioResult {
    /// The attack ran to completion (it may still have recovered nothing).
    Completed,
    /// The attack was blocked by the isolation policy at the given step.
    Blocked {
        /// Description of the step that failed.
        step: String,
    },
}

/// Builder for a full victim-plus-attacker run.
///
/// # Example
///
/// ```
/// use msa_core::scenario::AttackScenario;
/// use petalinux_sim::BoardConfig;
/// use vitis_ai_sim::ModelKind;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let outcome = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::SqueezeNet)
///     .execute()?;
/// assert!(outcome.model_identification_correct());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AttackScenario {
    board: BoardConfig,
    model: ModelKind,
    input: Image,
    victim_user: UserId,
    attacker_user: UserId,
    attack_config: AttackConfig,
    profile_offline: bool,
    profiles_override: Option<ProfileDatabase>,
    schedule: VictimSchedule,
    seed: u64,
}

/// splitmix64 — the standard cheap seed mixer; derives per-stage randomness
/// (predecessor model rotation) from the scenario seed, and per-cell seeds
/// from the campaign seed.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl AttackScenario {
    /// Creates a scenario for `model` on a board with `board` configuration,
    /// using the sample photo as the victim's input.
    pub fn new(board: BoardConfig, model: ModelKind) -> Self {
        let (w, h) = model.input_dims();
        AttackScenario {
            board,
            model,
            input: Image::sample_photo(w, h),
            victim_user: UserId::new(0),
            attacker_user: UserId::new(1),
            attack_config: AttackConfig::default(),
            profile_offline: true,
            profiles_override: None,
            schedule: VictimSchedule::Single,
            seed: 0,
        }
    }

    /// Uses the paper's corrupted (`0xFFFFFF`) image as the victim input.
    pub fn with_corrupted_input(mut self) -> Self {
        let (w, h) = self.model.input_dims();
        self.input = Image::corrupted(w, h);
        self
    }

    /// Uses an explicit victim input image.
    pub fn with_input(mut self, input: Image) -> Self {
        self.input = input;
        self
    }

    /// Overrides the attack configuration.
    pub fn with_attack_config(mut self, config: AttackConfig) -> Self {
        self.attack_config = config;
        self
    }

    /// Enables or disables the offline profiling phase (enabled by default).
    pub fn with_offline_profiling(mut self, enabled: bool) -> Self {
        self.profile_offline = enabled;
        self
    }

    /// Supplies a pre-built profile database instead of profiling inline
    /// (used by campaigns and benchmarks to amortize profiling cost).
    pub fn with_profiles(mut self, profiles: ProfileDatabase) -> Self {
        self.profiles_override = Some(profiles);
        self.profile_offline = false;
        self
    }

    /// Sets the attacker's user id (default 1).
    pub fn with_attacker_user(mut self, user: UserId) -> Self {
        self.attacker_user = user;
        self
    }

    /// Sets the victim-traffic schedule (default [`VictimSchedule::Single`]).
    pub fn with_schedule(mut self, schedule: VictimSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the scenario seed, from which schedule-level randomness (e.g.
    /// predecessor model rotation) is derived deterministically.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The board configuration the scenario will use.
    pub fn board(&self) -> &BoardConfig {
        &self.board
    }

    /// The model the victim will run.
    pub fn model(&self) -> ModelKind {
        self.model
    }

    /// The victim-traffic schedule.
    pub fn schedule(&self) -> VictimSchedule {
        self.schedule
    }

    /// Stage 0: resolves the profile database the pipeline will use.
    ///
    /// Offline profiling happens on the attacker's own board, before the
    /// victim runs.  It replays the same board configuration but is not
    /// subject to the victim board's isolation policy (the attacker is root
    /// on their own hardware), so it profiles on the permissive variant.
    pub fn resolve_profiles(&self) -> ProfileDatabase {
        if let Some(profiles) = &self.profiles_override {
            profiles.clone()
        } else if self.profile_offline {
            let offline_board = self
                .board
                .with_isolation(petalinux_sim::IsolationPolicy::Permissive);
            let profiler = Profiler::new(offline_board);
            match profiler.profile_model(self.model) {
                Ok(profile) => {
                    let mut db = ProfileDatabase::new();
                    db.insert(profile);
                    db
                }
                Err(_) => ProfileDatabase::new(),
            }
        } else {
            ProfileDatabase::new()
        }
    }

    /// Stage 1: boots the board, builds the pipeline and plays the schedule
    /// prologue (predecessor traffic / co-tenant launch).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors from the schedule prologue.
    pub fn boot(&self) -> Result<BootedScenario<'_>, AttackError> {
        let profiles = self.resolve_profiles();

        let mut config = self.attack_config.clone();
        if matches!(self.schedule, VictimSchedule::MultiTenant { .. })
            && config.victim_pattern.is_none()
        {
            // Two model processes run at once; target the victim by name so
            // polling cannot latch onto the co-resident tenant.
            config.victim_pattern = Some(self.model.name().to_string());
        }
        let pipeline = AttackPipeline::new(config).with_profiles(profiles);

        let mut booted = BootedScenario {
            scenario: self,
            kernel: Kernel::boot(self.board),
            pipeline,
            active_tenant: None,
        };
        booted.play_prologue()?;
        Ok(booted)
    }

    /// Runs the scenario end to end (stages 1–3).
    ///
    /// # Errors
    ///
    /// Returns an [`AttackError`] when the attack cannot complete — most
    /// commonly [`AttackError::Channel`] under a confined isolation policy.
    /// Use [`AttackScenario::execute_allow_blocked`] to treat that as data
    /// rather than an error.
    pub fn execute(&self) -> Result<ScenarioOutcome, AttackError> {
        self.boot()?.run()
    }

    /// Runs the scenario, but treats an isolation-policy denial as a
    /// legitimate result (`Blocked`) rather than an error.
    ///
    /// # Errors
    ///
    /// Returns only errors that are not permission denials.
    pub fn execute_allow_blocked(
        &self,
    ) -> Result<(ScenarioResult, Option<ScenarioOutcome>), AttackError> {
        match self.execute() {
            Ok(outcome) => Ok((ScenarioResult::Completed, Some(outcome))),
            Err(AttackError::Channel(petalinux_sim::KernelError::PermissionDenied {
                operation,
                ..
            })) => Ok((
                ScenarioResult::Blocked {
                    step: operation.to_string(),
                },
                None,
            )),
            Err(e) => Err(e),
        }
    }
}

/// Stage-1 output: a booted board with the schedule prologue applied, ready
/// to launch the victim and run the attacker.
#[derive(Debug)]
pub struct BootedScenario<'a> {
    scenario: &'a AttackScenario,
    kernel: Kernel,
    pipeline: AttackPipeline,
    active_tenant: Option<LaunchedRun>,
}

impl<'a> BootedScenario<'a> {
    /// The booted kernel (inspectable between stages).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The attack pipeline the attacker stage will run.
    pub fn pipeline(&self) -> &AttackPipeline {
        &self.pipeline
    }

    /// The co-resident tenant, when the schedule launched one.
    pub fn active_tenant(&self) -> Option<&LaunchedRun> {
        self.active_tenant.as_ref()
    }

    fn play_prologue(&mut self) -> Result<(), AttackError> {
        match self.scenario.schedule {
            VictimSchedule::Single => Ok(()),
            VictimSchedule::SequentialTraffic { predecessors } => {
                let zoo = ModelKind::all();
                let start = (splitmix64(self.scenario.seed) % zoo.len() as u64) as usize;
                for i in 0..predecessors {
                    let model = zoo[(start + i) % zoo.len()];
                    let (w, h) = model.input_dims();
                    let run = DpuRunner::new(model)
                        .with_input(Image::sample_photo(w, h))
                        .launch(&mut self.kernel, self.scenario.victim_user)
                        .map_err(runner_error)?;
                    run.terminate(&mut self.kernel).map_err(runner_error)?;
                }
                Ok(())
            }
            VictimSchedule::MultiTenant {
                active_model,
                warmup_pages,
            } => {
                // Fragment the allocator: a warm-up process claims a block of
                // low frames and releases it again after the active tenant
                // has started, so the victim's allocation is split across the
                // hole and fresh frames above the active tenant.
                let warmup = self.kernel.spawn(self.scenario.victim_user, &["warmup"])?;
                self.kernel
                    .grow_heap(warmup, warmup_pages * zynq_dram::PAGE_SIZE)?;

                let active_user = UserId::new(self.scenario.victim_user.as_u32() + 2);
                let active = DpuRunner::new(active_model)
                    .launch(&mut self.kernel, active_user)
                    .map_err(runner_error)?;
                self.kernel.terminate(warmup)?;
                self.active_tenant = Some(active);
                Ok(())
            }
        }
    }

    /// Stage 2: launches the victim model on the booted board.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors from the launch.
    pub fn launch_victim(&mut self) -> Result<LaunchedRun, AttackError> {
        DpuRunner::new(self.scenario.model)
            .with_input(self.scenario.input.clone())
            .launch(&mut self.kernel, self.scenario.victim_user)
            .map_err(runner_error)
    }

    /// Stage 3: the attacker observes `victim`, the victim terminates, the
    /// attacker scrapes and analyses, and the result is scored against
    /// ground truth.
    ///
    /// # Errors
    ///
    /// Propagates attack errors (permission denials under confined isolation,
    /// translation failures, …).
    pub fn run_attack(&mut self, victim: LaunchedRun) -> Result<ScenarioOutcome, AttackError> {
        let mut debugger = DebugSession::connect(self.scenario.attacker_user);

        let observation = self
            .pipeline
            .poll_and_observe(&mut debugger, &self.kernel)?;
        let ground_truth = victim.terminate(&mut self.kernel).map_err(runner_error)?;
        let scrub_report = self.kernel.scrub_reports().last().cloned();

        let attack = self
            .pipeline
            .execute(&mut debugger, &self.kernel, &observation)?;

        let collateral_bytes = self
            .kernel
            .scrub_reports()
            .iter()
            .map(|r| r.collateral_bytes)
            .sum();
        let active_tenant_intact = match &self.active_tenant {
            Some(active) => Some(self.active_tenant_data_intact(active)?),
            None => None,
        };

        Ok(ScenarioOutcome {
            attack,
            ground_truth,
            scrub_report,
            residue_frames_after: self.kernel.residue_frame_count(),
            denied_operations: debugger.audit().denied_count(),
            collateral_bytes,
            active_tenant_intact,
        })
    }

    /// Ground truth for the co-resident tenant: is its input image still
    /// intact in its own (still mapped) heap?
    fn active_tenant_data_intact(&self, active: &LaunchedRun) -> Result<bool, AttackError> {
        let layout = active.layout();
        let expected = active.input_image().as_bytes();
        let mut live = vec![0u8; expected.len()];
        let heap_base = self.kernel.process(active.pid())?.heap_base();
        self.kernel.read_process_memory(
            active.pid(),
            heap_base + layout.image_offset,
            &mut live,
        )?;
        Ok(live == expected)
    }

    /// Drives stages 2–3 back to back.
    ///
    /// # Errors
    ///
    /// Propagates launch and attack errors.
    pub fn run(mut self) -> Result<ScenarioOutcome, AttackError> {
        let victim = self.launch_victim()?;
        self.run_attack(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use petalinux_sim::IsolationPolicy;
    use zynq_dram::SanitizePolicy;

    #[test]
    fn default_scenario_recovers_everything() {
        let outcome = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::Resnet50Pt)
            .execute()
            .unwrap();
        assert!(outcome.model_identification_correct());
        assert_eq!(outcome.identified_model(), Some(ModelKind::Resnet50Pt));
        assert!(outcome.pixel_recovery_rate() > 0.99);
        assert!(outcome.bytes_scraped() > 0);
        assert!(outcome.residue_frames_after() > 0);
        assert_eq!(outcome.denied_operations(), 0);
        assert!(outcome.scrub_report().unwrap().leaves_residue());
        assert_eq!(outcome.ground_truth().model(), ModelKind::Resnet50Pt);
        assert!(outcome.attack().timings.total() > std::time::Duration::ZERO);
        assert!(outcome.active_tenant_intact().is_none());
        assert_eq!(outcome.collateral_bytes(), 0);
    }

    #[test]
    fn corrupted_input_scenario_matches_the_paper() {
        let outcome = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::Resnet50Pt)
            .with_corrupted_input()
            .execute()
            .unwrap();
        assert!(outcome.model_identification_correct());
        assert!(outcome.pixel_recovery_rate() > 0.99);
        assert!(!outcome.attack().marker_runs.is_empty());
    }

    #[test]
    fn sanitized_board_reduces_recovery_to_zero() {
        let board =
            BoardConfig::tiny_for_tests().with_sanitize_policy(SanitizePolicy::SelectiveScrub);
        let outcome = AttackScenario::new(board, ModelKind::Resnet50Pt)
            .with_corrupted_input()
            .execute()
            .unwrap();
        assert!(!outcome.model_identification_correct());
        assert_eq!(outcome.pixel_recovery_rate(), 0.0);
        assert_eq!(outcome.residue_frames_after(), 0);
        assert!(!outcome.scrub_report().unwrap().leaves_residue());
    }

    #[test]
    fn confined_isolation_blocks_the_attack() {
        let board = BoardConfig::tiny_for_tests().with_isolation(IsolationPolicy::Confined);
        let scenario = AttackScenario::new(board, ModelKind::SqueezeNet);
        assert!(scenario.execute().is_err());
        let (result, outcome) = scenario.execute_allow_blocked().unwrap();
        assert!(matches!(result, ScenarioResult::Blocked { .. }));
        assert!(outcome.is_none());
    }

    #[test]
    fn builder_options_are_respected() {
        let profiles = Profiler::new(BoardConfig::tiny_for_tests()).profile_all();
        let scenario = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::MobileNetV2)
            .with_input(Image::profiling_sentinel(224, 224))
            .with_profiles(profiles)
            .with_attacker_user(UserId::new(7))
            .with_attack_config(AttackConfig {
                victim_pattern: Some("mobilenet".to_string()),
                ..AttackConfig::default()
            })
            .with_offline_profiling(false);
        assert_eq!(scenario.model(), ModelKind::MobileNetV2);
        assert_eq!(
            scenario.board().dram(),
            BoardConfig::tiny_for_tests().dram()
        );
        let outcome = scenario.execute().unwrap();
        assert!(outcome.model_identification_correct());
        // Sentinel input: recovered exactly, via the profiled offset.
        assert!(outcome.pixel_recovery_rate() > 0.99);
    }

    #[test]
    fn stages_run_separately_and_match_one_shot_execute() {
        let scenario = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::SqueezeNet)
            .with_corrupted_input();
        let mut booted = scenario.boot().unwrap();
        assert!(booted.active_tenant().is_none());
        assert!(!booted.pipeline().profiles().is_empty());
        let victim = booted.launch_victim().unwrap();
        assert!(booted.kernel().process(victim.pid()).unwrap().is_running());
        let staged = booted.run_attack(victim).unwrap();

        let one_shot = scenario.execute().unwrap();
        assert_eq!(staged.metrics(), one_shot.metrics());
    }

    #[test]
    fn sequential_traffic_schedule_still_recovers_the_victim() {
        let scenario = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::Resnet50Pt)
            .with_corrupted_input()
            .with_schedule(VictimSchedule::SequentialTraffic { predecessors: 2 })
            .with_seed(7);
        assert_eq!(
            scenario.schedule(),
            VictimSchedule::SequentialTraffic { predecessors: 2 }
        );
        let outcome = scenario.execute().unwrap();
        assert!(outcome.model_identification_correct());
        assert!(outcome.pixel_recovery_rate() > 0.99);
        // Predecessor residue stays behind on an unsanitized board.
        let single = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::Resnet50Pt)
            .with_corrupted_input()
            .execute()
            .unwrap();
        assert!(outcome.residue_frames_after() >= single.residue_frames_after());
        // Same seed replays the same traffic.
        let replay = scenario.execute().unwrap();
        assert_eq!(outcome.metrics(), replay.metrics());
    }

    #[test]
    fn multi_tenant_schedule_reports_co_tenant_state() {
        let scenario = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::SqueezeNet)
            .with_corrupted_input()
            .with_schedule(VictimSchedule::MultiTenant {
                active_model: ModelKind::MobileNetV2,
                warmup_pages: 16,
            });
        let outcome = scenario.execute().unwrap();
        // No sanitization: the attack succeeds and the co-tenant is intact.
        assert!(outcome.model_identification_correct());
        assert_eq!(outcome.active_tenant_intact(), Some(true));
        assert_eq!(outcome.collateral_bytes(), 0);
    }

    #[test]
    fn schedule_display_names() {
        assert_eq!(VictimSchedule::Single.to_string(), "single");
        assert_eq!(
            VictimSchedule::SequentialTraffic { predecessors: 3 }.to_string(),
            "sequential-traffic(3)"
        );
        assert_eq!(
            VictimSchedule::MultiTenant {
                active_model: ModelKind::YoloV3,
                warmup_pages: 16
            }
            .to_string(),
            "multi-tenant(yolov3)"
        );
        assert_eq!(VictimSchedule::default(), VictimSchedule::Single);
    }
}
