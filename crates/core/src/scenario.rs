//! End-to-end attack scenarios: victim + attacker on one board.
//!
//! [`AttackScenario`] packages everything the examples, integration tests and
//! benchmarks need: boot a board, (optionally) run offline profiling, launch
//! the victim model, let the attacker observe it, terminate the victim, run
//! the attack, and score the result against ground truth.

use petalinux_sim::{BoardConfig, Kernel, UserId};
use serde::{Deserialize, Serialize};
use vitis_ai_sim::{CompletedRun, DpuRunner, Image, ModelKind, RunnerError};
use xsdb::DebugSession;
use zynq_dram::ScrubReport;

use crate::attack::{AttackConfig, AttackPipeline};
use crate::error::AttackError;
use crate::metrics::AttackOutcome;
use crate::profile::{ProfileDatabase, Profiler};

fn runner_error(e: RunnerError) -> AttackError {
    match e {
        RunnerError::Kernel(k) => AttackError::Channel(k),
    }
}

/// What the attack recovered, next to the ground truth it should have
/// recovered.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    attack: AttackOutcome,
    ground_truth: CompletedRun,
    scrub_report: Option<ScrubReport>,
    residue_frames_after: usize,
    denied_operations: usize,
}

impl ScenarioOutcome {
    /// The attack-side outcome.
    pub fn attack(&self) -> &AttackOutcome {
        &self.attack
    }

    /// The victim-side ground truth.
    pub fn ground_truth(&self) -> &CompletedRun {
        &self.ground_truth
    }

    /// The sanitizer report produced when the victim terminated.
    pub fn scrub_report(&self) -> Option<&ScrubReport> {
        self.scrub_report.as_ref()
    }

    /// Number of residue frames left in DRAM after the attack completed.
    pub fn residue_frames_after(&self) -> usize {
        self.residue_frames_after
    }

    /// Number of debugger operations the isolation policy denied during the
    /// attack.
    pub fn denied_operations(&self) -> usize {
        self.denied_operations
    }

    /// The model the attack identified, if any.
    pub fn identified_model(&self) -> Option<ModelKind> {
        self.attack.identified_model()
    }

    /// Returns `true` if the identified model matches the one the victim ran.
    pub fn model_identification_correct(&self) -> bool {
        self.identified_model() == Some(self.ground_truth.model())
    }

    /// Fraction of the victim's input pixels the attack recovered exactly.
    pub fn pixel_recovery_rate(&self) -> f64 {
        self.attack
            .image_recovery_rate(self.ground_truth.input_image())
    }

    /// Bytes scraped from physical memory.
    pub fn bytes_scraped(&self) -> usize {
        self.attack.bytes_scraped
    }
}

/// Outcome of a scenario in which the attack could not even complete (e.g.
/// the debugger was confined).  Kept distinct so defense sweeps can report
/// *why* an attack failed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioResult {
    /// The attack ran to completion (it may still have recovered nothing).
    Completed,
    /// The attack was blocked by the isolation policy at the given step.
    Blocked {
        /// Description of the step that failed.
        step: String,
    },
}

/// Builder for a full victim-plus-attacker run.
///
/// # Example
///
/// ```
/// use msa_core::scenario::AttackScenario;
/// use petalinux_sim::BoardConfig;
/// use vitis_ai_sim::ModelKind;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let outcome = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::SqueezeNet)
///     .execute()?;
/// assert!(outcome.model_identification_correct());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AttackScenario {
    board: BoardConfig,
    model: ModelKind,
    input: Image,
    victim_user: UserId,
    attacker_user: UserId,
    attack_config: AttackConfig,
    profile_offline: bool,
    profiles_override: Option<ProfileDatabase>,
}

impl AttackScenario {
    /// Creates a scenario for `model` on a board with `board` configuration,
    /// using the sample photo as the victim's input.
    pub fn new(board: BoardConfig, model: ModelKind) -> Self {
        let (w, h) = model.input_dims();
        AttackScenario {
            board,
            model,
            input: Image::sample_photo(w, h),
            victim_user: UserId::new(0),
            attacker_user: UserId::new(1),
            attack_config: AttackConfig::default(),
            profile_offline: true,
            profiles_override: None,
        }
    }

    /// Uses the paper's corrupted (`0xFFFFFF`) image as the victim input.
    pub fn with_corrupted_input(mut self) -> Self {
        let (w, h) = self.model.input_dims();
        self.input = Image::corrupted(w, h);
        self
    }

    /// Uses an explicit victim input image.
    pub fn with_input(mut self, input: Image) -> Self {
        self.input = input;
        self
    }

    /// Overrides the attack configuration.
    pub fn with_attack_config(mut self, config: AttackConfig) -> Self {
        self.attack_config = config;
        self
    }

    /// Enables or disables the offline profiling phase (enabled by default).
    pub fn with_offline_profiling(mut self, enabled: bool) -> Self {
        self.profile_offline = enabled;
        self
    }

    /// Supplies a pre-built profile database instead of profiling inline
    /// (used by benchmarks to amortize profiling cost).
    pub fn with_profiles(mut self, profiles: ProfileDatabase) -> Self {
        self.profiles_override = Some(profiles);
        self.profile_offline = false;
        self
    }

    /// Sets the attacker's user id (default 1).
    pub fn with_attacker_user(mut self, user: UserId) -> Self {
        self.attacker_user = user;
        self
    }

    /// The board configuration the scenario will use.
    pub fn board(&self) -> &BoardConfig {
        &self.board
    }

    /// The model the victim will run.
    pub fn model(&self) -> ModelKind {
        self.model
    }

    /// Runs the scenario end to end.
    ///
    /// # Errors
    ///
    /// Returns an [`AttackError`] when the attack cannot complete — most
    /// commonly [`AttackError::Channel`] under a confined isolation policy.
    /// Use [`AttackScenario::execute_allow_blocked`] to treat that as data
    /// rather than an error.
    pub fn execute(&self) -> Result<ScenarioOutcome, AttackError> {
        // Offline profiling happens on the attacker's own board, before the
        // victim runs.  It replays the same board configuration but is not
        // subject to the victim board's isolation policy (the attacker is
        // root on their own hardware), so profile on the permissive variant.
        let profiles = if let Some(profiles) = &self.profiles_override {
            profiles.clone()
        } else if self.profile_offline {
            let offline_board = self
                .board
                .with_isolation(petalinux_sim::IsolationPolicy::Permissive);
            let profiler = Profiler::new(offline_board);
            match profiler.profile_model(self.model) {
                Ok(profile) => {
                    let mut db = ProfileDatabase::new();
                    db.insert(profile);
                    db
                }
                Err(_) => ProfileDatabase::new(),
            }
        } else {
            ProfileDatabase::new()
        };

        let pipeline = AttackPipeline::new(self.attack_config.clone()).with_profiles(profiles);

        let mut kernel = Kernel::boot(self.board);
        let victim = DpuRunner::new(self.model)
            .with_input(self.input.clone())
            .launch(&mut kernel, self.victim_user)
            .map_err(runner_error)?;
        let mut debugger = DebugSession::connect(self.attacker_user);

        let observation = pipeline.poll_and_observe(&mut debugger, &kernel)?;
        let ground_truth = victim.terminate(&mut kernel).map_err(runner_error)?;
        let scrub_report = kernel.scrub_reports().last().cloned();

        let attack = pipeline.execute(&mut debugger, &kernel, &observation)?;
        Ok(ScenarioOutcome {
            attack,
            ground_truth,
            scrub_report,
            residue_frames_after: kernel.residue_frame_count(),
            denied_operations: debugger.audit().denied_count(),
        })
    }

    /// Runs the scenario, but treats an isolation-policy denial as a
    /// legitimate result (`Blocked`) rather than an error.
    ///
    /// # Errors
    ///
    /// Returns only errors that are not permission denials.
    pub fn execute_allow_blocked(
        &self,
    ) -> Result<(ScenarioResult, Option<ScenarioOutcome>), AttackError> {
        match self.execute() {
            Ok(outcome) => Ok((ScenarioResult::Completed, Some(outcome))),
            Err(AttackError::Channel(petalinux_sim::KernelError::PermissionDenied {
                operation,
                ..
            })) => Ok((
                ScenarioResult::Blocked {
                    step: operation.to_string(),
                },
                None,
            )),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use petalinux_sim::IsolationPolicy;
    use zynq_dram::SanitizePolicy;

    #[test]
    fn default_scenario_recovers_everything() {
        let outcome = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::Resnet50Pt)
            .execute()
            .unwrap();
        assert!(outcome.model_identification_correct());
        assert_eq!(outcome.identified_model(), Some(ModelKind::Resnet50Pt));
        assert!(outcome.pixel_recovery_rate() > 0.99);
        assert!(outcome.bytes_scraped() > 0);
        assert!(outcome.residue_frames_after() > 0);
        assert_eq!(outcome.denied_operations(), 0);
        assert!(outcome.scrub_report().unwrap().leaves_residue());
        assert_eq!(outcome.ground_truth().model(), ModelKind::Resnet50Pt);
        assert!(outcome.attack().timings.total() > std::time::Duration::ZERO);
    }

    #[test]
    fn corrupted_input_scenario_matches_the_paper() {
        let outcome = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::Resnet50Pt)
            .with_corrupted_input()
            .execute()
            .unwrap();
        assert!(outcome.model_identification_correct());
        assert!(outcome.pixel_recovery_rate() > 0.99);
        assert!(!outcome.attack().marker_runs.is_empty());
    }

    #[test]
    fn sanitized_board_reduces_recovery_to_zero() {
        let board =
            BoardConfig::tiny_for_tests().with_sanitize_policy(SanitizePolicy::SelectiveScrub);
        let outcome = AttackScenario::new(board, ModelKind::Resnet50Pt)
            .with_corrupted_input()
            .execute()
            .unwrap();
        assert!(!outcome.model_identification_correct());
        assert_eq!(outcome.pixel_recovery_rate(), 0.0);
        assert_eq!(outcome.residue_frames_after(), 0);
        assert!(!outcome.scrub_report().unwrap().leaves_residue());
    }

    #[test]
    fn confined_isolation_blocks_the_attack() {
        let board = BoardConfig::tiny_for_tests().with_isolation(IsolationPolicy::Confined);
        let scenario = AttackScenario::new(board, ModelKind::SqueezeNet);
        assert!(scenario.execute().is_err());
        let (result, outcome) = scenario.execute_allow_blocked().unwrap();
        assert!(matches!(result, ScenarioResult::Blocked { .. }));
        assert!(outcome.is_none());
    }

    #[test]
    fn builder_options_are_respected() {
        let profiles = Profiler::new(BoardConfig::tiny_for_tests()).profile_all();
        let scenario = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::MobileNetV2)
            .with_input(Image::profiling_sentinel(224, 224))
            .with_profiles(profiles)
            .with_attacker_user(UserId::new(7))
            .with_attack_config(AttackConfig {
                victim_pattern: Some("mobilenet".to_string()),
                ..AttackConfig::default()
            })
            .with_offline_profiling(false);
        assert_eq!(scenario.model(), ModelKind::MobileNetV2);
        assert_eq!(
            scenario.board().dram(),
            BoardConfig::tiny_for_tests().dram()
        );
        let outcome = scenario.execute().unwrap();
        assert!(outcome.model_identification_correct());
        // Sentinel input: recovered exactly, via the profiled offset.
        assert!(outcome.pixel_recovery_rate() > 0.99);
    }
}
