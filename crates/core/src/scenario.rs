//! End-to-end attack scenarios: victim + attacker on one board.
//!
//! [`AttackScenario`] packages everything the examples, integration tests and
//! benchmarks need, and is the unit of work the [`crate::campaign`] engine
//! schedules.  A scenario runs in three separable stages:
//!
//! 1. **Board boot** — [`AttackScenario::boot`] resolves the profile
//!    database, builds the attack pipeline, boots the kernel and plays the
//!    scenario's [`VictimSchedule`] prologue (predecessor traffic, co-resident
//!    tenants).
//! 2. **Victim lifecycle** — [`BootedScenario::launch_victim`] starts the
//!    victim model on the already-booted board.
//! 3. **Attacker run** — [`BootedScenario::run_attack`] observes the victim,
//!    waits for termination, scrapes, analyses and scores the result against
//!    ground truth.
//!
//! [`AttackScenario::execute`] drives all three stages back to back, so
//! single-shot callers keep their one-line API.

// Lint audit: address arithmetic here is bounds-checked against the
// DRAM window before any narrowing cast or direct index; offsets are
// derived from validated window-relative coordinates.
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use petalinux_sim::{BoardConfig, Kernel, Pid, UserId};
use serde::{Deserialize, Serialize};
use vitis_ai_sim::runner::heap_image;
use vitis_ai_sim::{CompletedRun, DpuRunner, Image, LaunchedRun, ModelKind, RunnerError};
use xsdb::DebugSession;
use zynq_dram::{FrameNumber, PhysAddr, ScrubReport, PAGE_SIZE};

use crate::attack::{AttackConfig, AttackPipeline, Observation, ScrapeMode};
use crate::dump::MemoryDump;
use crate::error::AttackError;
use crate::metrics::AttackOutcome;
use crate::profile::{ProfileDatabase, Profiler};

fn runner_error(e: RunnerError) -> AttackError {
    match e {
        RunnerError::Kernel(k) => AttackError::Channel(k),
    }
}

/// How victim traffic is scheduled on the booted board before, around and
/// *after* the attacked process.
///
/// This is a first-class campaign axis: the paper's single-victim procedure
/// is [`VictimSchedule::Single`], fleet-style sequential tenant churn is
/// [`VictimSchedule::SequentialTraffic`], the multi-tenant collateral
/// experiment (TAB-F) is [`VictimSchedule::MultiTenant`], Resurrection-style
/// pid/frame reuse between termination and scrape is
/// [`VictimSchedule::Revival`], and live memory pressure *during* the scrape
/// is [`VictimSchedule::LiveTraffic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum VictimSchedule {
    /// One victim process on an otherwise idle board (the paper's setup).
    #[default]
    Single,
    /// `predecessors` other model processes run to completion on the board
    /// before the victim launches, churning the frame allocator the way a
    /// busy multi-user board would.  Which models run is derived
    /// deterministically from the scenario seed.
    SequentialTraffic {
        /// Number of predecessor processes run (and terminated) before the
        /// victim starts.
        predecessors: usize,
    },
    /// A second, still-running tenant shares the board while the victim is
    /// attacked, with the allocator deliberately fragmented by a warm-up
    /// process so the victim's frames straddle the active tenant's (the
    /// situation in which the paper argues contiguous sanitization schemes
    /// clobber live guest data).
    MultiTenant {
        /// The model the co-resident (surviving) tenant keeps running.
        active_model: ModelKind,
        /// Heap pages claimed (and later released) by the fragmentation
        /// warm-up process.
        warmup_pages: u64,
    },
    /// Resurrection-style revival: after the victim terminates — but before
    /// the attacker scrapes — `successors` new processes launch, re-allocate
    /// the victim's freed frames (and, with `reuse_pid`, its pid), read the
    /// residue they inherit, then overwrite it with their own heap images.
    ///
    /// This measures both sides of the revival window: how much exploitable
    /// residue a revived process inherits at allocation time, and how much
    /// of the victim's residue survives for the attacker once successors
    /// have run.
    Revival {
        /// Number of successor processes launched (and terminated) between
        /// the victim's termination and the scrape.  Which models they run
        /// is derived deterministically from the scenario seed.
        successors: usize,
        /// Whether the first successor reuses the victim's pid (the
        /// Resurrection Attack's most dangerous configuration).
        reuse_pid: bool,
    },
    /// Live background traffic: `tenants` co-resident model processes stay
    /// running while the attack scrapes, and between scraped chunks each of
    /// `churn_rate` churn events terminates the oldest tenant and launches a
    /// replacement — re-allocating freed frames (the victim's included)
    /// *while* the attacker reads them.
    ///
    /// Churn is interleaved deterministically with the scrape at page-chunk
    /// granularity and sequenced by the scenario seed, never by wall clock,
    /// so campaigns over this schedule stay replayable.
    LiveTraffic {
        /// Number of co-resident tenant processes kept running.
        tenants: usize,
        /// Churn events (tenant terminate + relaunch) executed between
        /// consecutive scraped chunks.
        churn_rate: usize,
    },
    /// Fork-heavy victim: just before terminating, the victim forks
    /// `children` child processes that share its frames copy-on-write and
    /// stay running across the termination and the scrape.
    ///
    /// The children pin the shared frames alive: the kernel retains them at
    /// parent exit instead of freeing them, so frame-oriented sanitize
    /// policies (which scrub only *freed* frames) never touch the victim's
    /// plaintext — a third residue substrate next to DRAM frames and
    /// compressed swap.
    ForkHeavy {
        /// Number of still-running CoW children forked off the victim
        /// before it terminates.
        children: usize,
    },
}

impl std::fmt::Display for VictimSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VictimSchedule::Single => write!(f, "single"),
            VictimSchedule::SequentialTraffic { predecessors } => {
                write!(f, "sequential-traffic({predecessors})")
            }
            VictimSchedule::MultiTenant { active_model, .. } => {
                write!(f, "multi-tenant({active_model})")
            }
            VictimSchedule::Revival {
                successors,
                reuse_pid,
            } => {
                if *reuse_pid {
                    write!(f, "revival({successors},reuse-pid)")
                } else {
                    write!(f, "revival({successors})")
                }
            }
            VictimSchedule::LiveTraffic {
                tenants,
                churn_rate,
            } => {
                write!(f, "live-traffic({tenants},churn={churn_rate})")
            }
            VictimSchedule::ForkHeavy { children } => write!(f, "fork-heavy({children})"),
        }
    }
}

/// Residue-lifetime measurements of one scenario: how long the victim's
/// residue actually survived between termination and the scrape, and what a
/// revived process inherited from it.
///
/// All counts are deterministic ground truth taken from the kernel's frame
/// ownership records at fixed points of the schedule, so they are part of the
/// campaign engine's worker-count-independent comparison surface.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResidueLifetime {
    /// Residue frames the victim left in DRAM at the moment of termination
    /// (zero on boards whose sanitize policy scrubs eagerly).
    pub victim_frames: usize,
    /// Victim residue frames that were overwritten, re-allocated or scrubbed
    /// before the attacker read them — the part of the residue the scrape
    /// arrived too late for.
    pub frames_lost_before_scrape: usize,
    /// Heap frames of the first revived successor process
    /// (zero outside [`VictimSchedule::Revival`]).
    pub revived_heap_frames: usize,
    /// Of those, frames that still held non-zero residue when the revived
    /// process first read its freshly allocated heap.
    pub revival_inherited_frames: usize,
    /// Tenant churn events executed while the scrape was in progress
    /// (zero outside [`VictimSchedule::LiveTraffic`]).
    pub churn_events: usize,
    /// Non-zero bytes the victim's residue frames held in the raw store when
    /// the attack ended (ground truth, before the remanence decay view).
    pub residue_bytes_raw: u64,
    /// Of those, bytes the remanence decay view had already driven to zero —
    /// the analog part of the residue the attacker could no longer read
    /// (zero under the perfect model).
    pub residue_bytes_decayed: u64,
    /// Total bits the remanence decay view flipped away across the victim's
    /// residue (zero under the perfect model).
    pub residue_bits_flipped: u64,
    /// Plaintext bytes of the victim's heap still recoverable from the
    /// compressed swap store when the attack ended (zero with swap disabled,
    /// and zero again under a swap-aware sanitize policy).
    pub swap_resident_bytes: u64,
    /// Victim frames still allocated at termination because forked children
    /// hold them copy-on-write (zero outside
    /// [`VictimSchedule::ForkHeavy`]) — residue no frame-oriented scrub can
    /// legally touch while the children live.
    pub cow_inherited_frames: usize,
}

impl ResidueLifetime {
    /// Fraction of the revived process's heap frames that arrived holding
    /// residue (0.0 when no revival ran or nothing was inherited).
    pub fn inheritance_rate(&self) -> f64 {
        if self.revived_heap_frames == 0 {
            0.0
        } else {
            self.revival_inherited_frames as f64 / self.revived_heap_frames as f64
        }
    }

    /// Fraction of the victim's residue frames that still held victim data
    /// when the attacker read them (0.0 when no residue existed at all).
    pub fn survival_rate(&self) -> f64 {
        if self.victim_frames == 0 {
            0.0
        } else {
            1.0 - self.frames_lost_before_scrape as f64 / self.victim_frames as f64
        }
    }

    /// Fraction of the victim's raw residue bytes that survived the
    /// remanence decay view — the analog (Pentimento-style) analogue of
    /// [`ResidueLifetime::survival_rate`].  1.0 when there was no residue at
    /// all or the model is perfect.
    pub fn decayed_recovery_rate(&self) -> f64 {
        if self.residue_bytes_raw == 0 {
            1.0
        } else {
            1.0 - self.residue_bytes_decayed as f64 / self.residue_bytes_raw as f64
        }
    }
}

/// What the attack recovered, next to the ground truth it should have
/// recovered.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    attack: AttackOutcome,
    ground_truth: CompletedRun,
    scrub_report: Option<ScrubReport>,
    residue_frames_after: usize,
    denied_operations: usize,
    collateral_bytes: u64,
    active_tenant_intact: Option<bool>,
    residue_lifetime: ResidueLifetime,
}

impl ScenarioOutcome {
    /// The attack-side outcome.
    pub fn attack(&self) -> &AttackOutcome {
        &self.attack
    }

    /// The victim-side ground truth.
    pub fn ground_truth(&self) -> &CompletedRun {
        &self.ground_truth
    }

    /// The sanitizer report produced when the victim terminated.
    pub fn scrub_report(&self) -> Option<&ScrubReport> {
        self.scrub_report.as_ref()
    }

    /// Number of residue frames left in DRAM after the attack completed.
    pub fn residue_frames_after(&self) -> usize {
        self.residue_frames_after
    }

    /// Number of debugger operations the isolation policy denied during the
    /// attack.
    pub fn denied_operations(&self) -> usize {
        self.denied_operations
    }

    /// Bytes of other live owners' data destroyed by sanitizer runs, summed
    /// over every scrub on the board (warm-up teardown, predecessor
    /// terminations and the victim's own).
    pub fn collateral_bytes(&self) -> u64 {
        self.collateral_bytes
    }

    /// Whether the co-resident tenants' inputs survived intact in their own
    /// heaps (`None` outside [`VictimSchedule::MultiTenant`] and
    /// [`VictimSchedule::LiveTraffic`]).
    pub fn active_tenant_intact(&self) -> Option<bool> {
        self.active_tenant_intact
    }

    /// Residue-lifetime measurements (revival inheritance, scrape-time
    /// residue loss, churn depth).
    pub fn residue_lifetime(&self) -> ResidueLifetime {
        self.residue_lifetime
    }

    /// The model the attack identified, if any.
    pub fn identified_model(&self) -> Option<ModelKind> {
        self.attack.identified_model()
    }

    /// Returns `true` if the identified model matches the one the victim ran.
    pub fn model_identification_correct(&self) -> bool {
        self.identified_model() == Some(self.ground_truth.model())
    }

    /// Fraction of the victim's input pixels the attack recovered exactly.
    pub fn pixel_recovery_rate(&self) -> f64 {
        self.attack
            .image_recovery_rate(self.ground_truth.input_image())
    }

    /// Bytes scraped from physical memory.
    pub fn bytes_scraped(&self) -> usize {
        self.attack.bytes_scraped
    }

    /// Flattens the outcome into the clone-cheap [`ScenarioMetrics`] record
    /// campaigns aggregate — scalars only, no dumps or images.
    pub fn metrics(&self) -> ScenarioMetrics {
        ScenarioMetrics {
            identified_model: self.identified_model(),
            model_identified: self.model_identification_correct(),
            identification_confidence: self.attack.identification_confidence(),
            pixel_recovery: self.pixel_recovery_rate(),
            bytes_scraped: self.bytes_scraped(),
            dump_coverage: self.attack.dump_coverage,
            residue_frames: self.residue_frames_after,
            denied_operations: self.denied_operations,
            scrub_cost_cycles: self.scrub_report.as_ref().map_or(0.0, |r| r.cost_cycles),
            collateral_bytes: self.collateral_bytes,
            active_tenant_intact: self.active_tenant_intact,
            residue_bits_flipped: self.residue_lifetime.residue_bits_flipped,
            residue_lifetime: self.residue_lifetime,
        }
    }
}

/// The flat, deterministic summary of one scenario run.
///
/// Everything campaign aggregation and the experiment tables need, with none
/// of the memory dumps or reconstructed images a [`ScenarioOutcome`] carries
/// — cells can be collected by the thousand without cloning heaps.  All
/// fields are reproducible for a fixed spec and seed (wall-clock timings live
/// on the campaign cell record instead), which is what makes worker-count
/// independence testable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioMetrics {
    /// The model identification result, if any signature matched.
    pub identified_model: Option<ModelKind>,
    /// Whether the identification matches the victim's actual model.
    pub model_identified: bool,
    /// Confidence of the identification (0.0 when nothing matched).
    pub identification_confidence: f64,
    /// Fraction of the victim's input pixels recovered exactly.
    pub pixel_recovery: f64,
    /// Bytes scraped from physical memory.
    pub bytes_scraped: usize,
    /// Fraction of heap pages captured by the scrape.
    pub dump_coverage: f64,
    /// Residue frames left in DRAM after the attack.
    pub residue_frames: usize,
    /// Debugger operations denied by the isolation policy.
    pub denied_operations: usize,
    /// Modelled cost of the victim's termination scrub, in cycles.
    pub scrub_cost_cycles: f64,
    /// Live owners' bytes destroyed by sanitizer runs (summed over every
    /// scrub on the board).
    pub collateral_bytes: u64,
    /// Whether the co-resident tenants' data survived
    /// (`None` outside multi-tenant / live-traffic schedules).
    pub active_tenant_intact: Option<bool>,
    /// Bits of the victim's residue the remanence decay view flipped away
    /// (zero under [`zynq_dram::RemanenceModel::Perfect`]); the full
    /// residue-fidelity breakdown lives on `residue_lifetime`.
    pub residue_bits_flipped: u64,
    /// Residue-lifetime measurements (revival inheritance, scrape-time
    /// residue loss, churn depth, remanence decay fidelity).
    pub residue_lifetime: ResidueLifetime,
}

impl ScenarioMetrics {
    /// A deterministic synthetic metrics record derived purely from `seed` —
    /// no scenario executes.
    ///
    /// This backs the campaign engine's test seam
    /// ([`crate::campaign::CampaignCell::synthetic_record`]): fleet-scale
    /// matrices (millions of cells) can exercise the streaming scheduler and
    /// fold without paying for real attacks.  Every internal invariant the
    /// aggregators rely on holds (inherited frames never exceed revived
    /// frames, decayed bytes never exceed raw bytes, rates stay in `[0, 1]`).
    pub fn synthetic(seed: u64) -> ScenarioMetrics {
        let a = splitmix64(seed);
        let b = splitmix64(a);
        let c = splitmix64(b);
        // Top 53 bits → uniform in [0, 1), exactly representable.
        let unit = |x: u64| (x >> 11) as f64 / (1u64 << 53) as f64;
        let identified = a & 3 != 0;
        let victim_frames = (b % 64) as usize + 1;
        let frames_lost = (c % (victim_frames as u64 + 1)) as usize;
        let revived_heap_frames = (a % 32) as usize;
        let residue_bytes_raw = victim_frames as u64 * 4096;
        let residue_bytes_decayed = b % (residue_bytes_raw + 1);
        let residue_bits_flipped = c % 2048;
        ScenarioMetrics {
            identified_model: identified.then_some(ModelKind::Resnet50Pt),
            model_identified: identified,
            identification_confidence: if identified { unit(a) } else { 0.0 },
            pixel_recovery: unit(b),
            bytes_scraped: (a % (1 << 20)) as usize,
            dump_coverage: unit(c),
            residue_frames: victim_frames - frames_lost,
            denied_operations: 0,
            scrub_cost_cycles: 0.0,
            collateral_bytes: 0,
            active_tenant_intact: None,
            residue_bits_flipped,
            residue_lifetime: ResidueLifetime {
                victim_frames,
                frames_lost_before_scrape: frames_lost,
                revived_heap_frames,
                revival_inherited_frames: ((b % 33) as usize).min(revived_heap_frames),
                churn_events: 0,
                residue_bytes_raw,
                residue_bytes_decayed,
                residue_bits_flipped,
                swap_resident_bytes: 0,
                cow_inherited_frames: 0,
            },
        }
    }
}

/// Outcome of a scenario in which the attack could not even complete (e.g.
/// the debugger was confined).  Kept distinct so defense sweeps can report
/// *why* an attack failed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioResult {
    /// The attack ran to completion (it may still have recovered nothing).
    Completed,
    /// The attack was blocked by the isolation policy at the given step.
    Blocked {
        /// Description of the step that failed.
        step: String,
    },
}

/// Builder for a full victim-plus-attacker run.
///
/// # Example
///
/// ```
/// use msa_core::scenario::AttackScenario;
/// use petalinux_sim::BoardConfig;
/// use vitis_ai_sim::ModelKind;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let outcome = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::SqueezeNet)
///     .execute()?;
/// assert!(outcome.model_identification_correct());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AttackScenario {
    board: BoardConfig,
    model: ModelKind,
    input: Image,
    victim_user: UserId,
    attacker_user: UserId,
    attack_config: AttackConfig,
    profile_offline: bool,
    profiles_override: Option<ProfileDatabase>,
    schedule: VictimSchedule,
    seed: u64,
}

/// splitmix64 — the standard cheap seed mixer; derives per-stage randomness
/// (predecessor model rotation) from the scenario seed, and per-cell seeds
/// from the campaign seed.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl AttackScenario {
    /// Creates a scenario for `model` on a board with `board` configuration,
    /// using the sample photo as the victim's input.
    pub fn new(board: BoardConfig, model: ModelKind) -> Self {
        let (w, h) = model.input_dims();
        AttackScenario {
            board,
            model,
            input: Image::sample_photo(w, h),
            victim_user: UserId::new(0),
            attacker_user: UserId::new(1),
            attack_config: AttackConfig::default(),
            profile_offline: true,
            profiles_override: None,
            schedule: VictimSchedule::Single,
            seed: 0,
        }
    }

    /// Uses the paper's corrupted (`0xFFFFFF`) image as the victim input.
    pub fn with_corrupted_input(mut self) -> Self {
        let (w, h) = self.model.input_dims();
        self.input = Image::corrupted(w, h);
        self
    }

    /// Uses an explicit victim input image.
    pub fn with_input(mut self, input: Image) -> Self {
        self.input = input;
        self
    }

    /// Overrides the attack configuration.
    pub fn with_attack_config(mut self, config: AttackConfig) -> Self {
        self.attack_config = config;
        self
    }

    /// Enables or disables the offline profiling phase (enabled by default).
    pub fn with_offline_profiling(mut self, enabled: bool) -> Self {
        self.profile_offline = enabled;
        self
    }

    /// Supplies a pre-built profile database instead of profiling inline
    /// (used by campaigns and benchmarks to amortize profiling cost).
    pub fn with_profiles(mut self, profiles: ProfileDatabase) -> Self {
        self.profiles_override = Some(profiles);
        self.profile_offline = false;
        self
    }

    /// Sets the attacker's user id (default 1).
    pub fn with_attacker_user(mut self, user: UserId) -> Self {
        self.attacker_user = user;
        self
    }

    /// Sets the victim-traffic schedule (default [`VictimSchedule::Single`]).
    pub fn with_schedule(mut self, schedule: VictimSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the scenario seed, from which schedule-level randomness (e.g.
    /// predecessor model rotation) is derived deterministically.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The board configuration the scenario will use.
    pub fn board(&self) -> &BoardConfig {
        &self.board
    }

    /// The model the victim will run.
    pub fn model(&self) -> ModelKind {
        self.model
    }

    /// The victim-traffic schedule.
    pub fn schedule(&self) -> VictimSchedule {
        self.schedule
    }

    /// Stage 0: resolves the profile database the pipeline will use.
    ///
    /// Offline profiling happens on the attacker's own board, before the
    /// victim runs.  It replays the same board configuration but is not
    /// subject to the victim board's isolation policy (the attacker is root
    /// on their own hardware), so it profiles on the permissive variant.
    pub fn resolve_profiles(&self) -> ProfileDatabase {
        if let Some(profiles) = &self.profiles_override {
            profiles.clone()
        } else if self.profile_offline {
            let offline_board = self
                .board
                .with_isolation(petalinux_sim::IsolationPolicy::Permissive);
            let profiler = Profiler::new(offline_board);
            match profiler.profile_model(self.model) {
                Ok(profile) => {
                    let mut db = ProfileDatabase::new();
                    db.insert(profile);
                    db
                }
                Err(_) => ProfileDatabase::new(),
            }
        } else {
            ProfileDatabase::new()
        }
    }

    /// Stage 1: boots the board, builds the pipeline and plays the schedule
    /// prologue (predecessor traffic / co-tenant launch).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors from the schedule prologue.
    pub fn boot(&self) -> Result<BootedScenario<'_>, AttackError> {
        let profiles = self.resolve_profiles();

        let mut config = self.attack_config.clone();
        if matches!(
            self.schedule,
            VictimSchedule::MultiTenant { .. } | VictimSchedule::LiveTraffic { .. }
        ) && config.victim_pattern.is_none()
        {
            // Several model processes run at once; target the victim by name
            // so polling cannot latch onto a co-resident tenant.
            config.victim_pattern = Some(self.model.name().to_string());
        }
        let pipeline = AttackPipeline::new(config).with_profiles(profiles);

        // The seed-rotated traffic zoo (successors, tenants, churn
        // replacements), computed once per scenario.  It never includes the
        // victim's own model, so traffic processes are distinguishable from
        // the victim by name (and a revival misidentification is a real
        // misidentification).
        let mut traffic_zoo: Vec<ModelKind> = ModelKind::all()
            .into_iter()
            .filter(|m| *m != self.model)
            .collect();
        let start = (splitmix64(self.seed ^ 0x7AFF_1C00) % traffic_zoo.len() as u64) as usize;
        traffic_zoo.rotate_left(start);

        // The board's remanence decay draws are seeded from the scenario
        // seed, so a decayed scrape replays exactly per campaign cell.
        let mut kernel = Kernel::boot(self.board);
        kernel.set_remanence_seed(splitmix64(self.seed ^ 0x6B5F_0D7A));

        let mut booted = BootedScenario {
            scenario: self,
            kernel,
            pipeline,
            tenants: Vec::new(),
            traffic_zoo,
            traffic_cursor: 0,
        };
        booted.play_prologue()?;
        Ok(booted)
    }

    /// Runs the scenario end to end (stages 1–3).
    ///
    /// # Errors
    ///
    /// Returns an [`AttackError`] when the attack cannot complete — most
    /// commonly [`AttackError::Channel`] under a confined isolation policy.
    /// Use [`AttackScenario::execute_allow_blocked`] to treat that as data
    /// rather than an error.
    pub fn execute(&self) -> Result<ScenarioOutcome, AttackError> {
        self.boot()?.run()
    }

    /// Runs the scenario, but treats an isolation-policy denial as a
    /// legitimate result (`Blocked`) rather than an error.
    ///
    /// # Errors
    ///
    /// Returns only errors that are not permission denials.
    pub fn execute_allow_blocked(
        &self,
    ) -> Result<(ScenarioResult, Option<ScenarioOutcome>), AttackError> {
        match self.execute() {
            Ok(outcome) => Ok((ScenarioResult::Completed, Some(outcome))),
            Err(AttackError::Channel(petalinux_sim::KernelError::PermissionDenied {
                operation,
                ..
            })) => Ok((
                ScenarioResult::Blocked {
                    step: operation.to_string(),
                },
                None,
            )),
            Err(e) => Err(e),
        }
    }
}

/// Pages scraped between two churn opportunities under
/// [`VictimSchedule::LiveTraffic`].
const CHURN_CHUNK_PAGES: usize = 8;

/// The physical frames currently backing `pid`'s heap, in virtual order.
fn heap_frames(kernel: &Kernel, pid: Pid) -> Result<Vec<FrameNumber>, AttackError> {
    let process = kernel.process(pid)?;
    let space = process.address_space();
    let mut frames = Vec::new();
    let mut va = process.heap_base();
    while va < process.heap_end() {
        if let Some(pa) = space.translate(va) {
            frames.push(pa.frame_number());
        }
        va += PAGE_SIZE;
    }
    Ok(frames)
}

/// Whether a victim residue frame is no longer available to the attacker: it
/// was re-allocated to a later process, re-owned by a live one, or scrubbed.
fn frame_lost(kernel: &Kernel, frame: FrameNumber, reclaimed: &BTreeSet<FrameNumber>) -> bool {
    if reclaimed.contains(&frame) {
        return true;
    }
    match kernel.dram().frame_ownership(frame) {
        Some(record) => record.live,
        None => true,
    }
}

/// Stage-1 output: a booted board with the schedule prologue applied, ready
/// to launch the victim and run the attacker.
#[derive(Debug)]
pub struct BootedScenario<'a> {
    scenario: &'a AttackScenario,
    kernel: Kernel,
    pipeline: AttackPipeline,
    /// Co-resident tenants still running, oldest first (one under
    /// `MultiTenant`, `tenants` under `LiveTraffic`).
    tenants: Vec<LaunchedRun>,
    /// The seed-rotated model zoo traffic processes draw from (victim's own
    /// model excluded), fixed at boot.
    traffic_zoo: Vec<ModelKind>,
    /// Position in the traffic-model rotation (shared by the prologue,
    /// revival successors and live churn so models never repeat
    /// back-to-back within a scenario).
    traffic_cursor: usize,
}

impl<'a> BootedScenario<'a> {
    /// The booted kernel (inspectable between stages).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The attack pipeline the attacker stage will run.
    pub fn pipeline(&self) -> &AttackPipeline {
        &self.pipeline
    }

    /// The first co-resident tenant, when the schedule launched one.
    pub fn active_tenant(&self) -> Option<&LaunchedRun> {
        self.tenants.first()
    }

    /// All co-resident tenants currently running, oldest first.
    pub fn tenants(&self) -> &[LaunchedRun] {
        &self.tenants
    }

    /// The `index`-th model of the scenario's deterministic traffic rotation.
    fn traffic_model(&self, index: usize) -> ModelKind {
        self.traffic_zoo[index % self.traffic_zoo.len()]
    }

    /// Launches one tenant process with the next rotation model.
    fn launch_tenant(&mut self, user: UserId) -> Result<(), AttackError> {
        let model = self.traffic_model(self.traffic_cursor);
        self.traffic_cursor += 1;
        let run = DpuRunner::new(model)
            .launch(&mut self.kernel, user)
            .map_err(runner_error)?;
        self.tenants.push(run);
        Ok(())
    }

    fn play_prologue(&mut self) -> Result<(), AttackError> {
        match self.scenario.schedule {
            VictimSchedule::Single
            | VictimSchedule::Revival { .. }
            | VictimSchedule::ForkHeavy { .. } => Ok(()),
            VictimSchedule::SequentialTraffic { predecessors } => {
                let zoo = ModelKind::all();
                let start = (splitmix64(self.scenario.seed) % zoo.len() as u64) as usize;
                for i in 0..predecessors {
                    let model = zoo[(start + i) % zoo.len()];
                    let (w, h) = model.input_dims();
                    let run = DpuRunner::new(model)
                        .with_input(Image::sample_photo(w, h))
                        .launch(&mut self.kernel, self.scenario.victim_user)
                        .map_err(runner_error)?;
                    run.terminate(&mut self.kernel).map_err(runner_error)?;
                }
                Ok(())
            }
            VictimSchedule::MultiTenant {
                active_model,
                warmup_pages,
            } => {
                // Fragment the allocator: a warm-up process claims a block of
                // low frames and releases it again after the active tenant
                // has started, so the victim's allocation is split across the
                // hole and fresh frames above the active tenant.
                let warmup = self.kernel.spawn(self.scenario.victim_user, &["warmup"])?;
                self.kernel
                    .grow_heap(warmup, warmup_pages * zynq_dram::PAGE_SIZE)?;

                let active_user = UserId::new(self.scenario.victim_user.as_u32() + 2);
                let active = DpuRunner::new(active_model)
                    .launch(&mut self.kernel, active_user)
                    .map_err(runner_error)?;
                self.kernel.terminate(warmup)?;
                self.tenants.push(active);
                Ok(())
            }
            VictimSchedule::LiveTraffic { tenants, .. } => {
                for i in 0..tenants {
                    let user = UserId::new(self.scenario.victim_user.as_u32() + 2 + i as u32);
                    self.launch_tenant(user)?;
                }
                Ok(())
            }
        }
    }

    /// Revival epilogue: between the victim's termination and the scrape,
    /// launch successor processes that re-allocate the victim's freed frames
    /// (and optionally its pid), measure the residue each inherits, then let
    /// them overwrite it and terminate.
    fn play_revival_epilogue(
        &mut self,
        victim_pid: Pid,
        lifetime: &mut ResidueLifetime,
        reclaimed: &mut BTreeSet<FrameNumber>,
    ) -> Result<(), AttackError> {
        let VictimSchedule::Revival {
            successors,
            reuse_pid,
        } = self.scenario.schedule
        else {
            return Ok(());
        };
        for i in 0..successors {
            let model = self.traffic_model(self.traffic_cursor);
            self.traffic_cursor += 1;
            let binary = format!("./{}", model.name());
            let xmodel_path = model.xmodel_path();
            let cmdline = [binary.as_str(), xmodel_path.as_str()];
            let pid = if reuse_pid && i == 0 {
                self.kernel
                    .spawn_reusing_pid(self.scenario.victim_user, &cmdline, victim_pid)?
            } else {
                self.kernel.spawn(self.scenario.victim_user, &cmdline)?
            };

            // Deliberately NOT `DpuRunner::launch`: the successor must read
            // its heap *between* allocation and the runtime's first write
            // (the inheritance measurement), which the runner's launch
            // sequence gives no hook for; successors also skip the inference
            // pass, since only their memory footprint matters here.
            let (w, h) = model.input_dims();
            let (bytes, layout) = heap_image(model, &Image::sample_photo(w, h));
            self.kernel.grow_heap(pid, layout.heap_len)?;
            let heap = self.kernel.process(pid)?.heap_base();

            // A revived process sees its freshly allocated heap *before*
            // writing anything — exactly the read that inherits residue.
            let mut inherited = vec![0u8; layout.heap_len as usize];
            self.kernel.read_process_memory(pid, heap, &mut inherited)?;
            if i == 0 {
                lifetime.revived_heap_frames = (layout.heap_len / PAGE_SIZE) as usize;
                lifetime.revival_inherited_frames = inherited
                    .chunks(PAGE_SIZE as usize)
                    .filter(|page| page.iter().any(|&b| b != 0))
                    .count();
            }
            reclaimed.extend(heap_frames(&self.kernel, pid)?);

            self.kernel.write_process_memory(pid, heap, &bytes)?;
            self.kernel.terminate(pid)?;
        }
        Ok(())
    }

    /// One live-traffic churn event: the oldest tenant terminates and a
    /// replacement launches, re-allocating freed frames mid-scrape.
    ///
    /// Returns `false` (no event) when there is no tenant to cycle.
    fn churn_tenant_once(
        &mut self,
        reclaimed: &mut BTreeSet<FrameNumber>,
    ) -> Result<bool, AttackError> {
        if self.tenants.is_empty() {
            return Ok(false);
        }
        let oldest = self.tenants.remove(0);
        let user = self.kernel.process(oldest.pid())?.user();
        oldest.terminate(&mut self.kernel).map_err(runner_error)?;
        self.launch_tenant(user)?;
        let newest = self.tenants.last().expect("tenant just launched");
        reclaimed.extend(heap_frames(&self.kernel, newest.pid())?);
        Ok(true)
    }

    /// Scrape under live traffic: reads the heap in page chunks, running the
    /// schedule's churn events between chunks, and counts each victim
    /// residue frame that was already gone when its page was read.
    #[allow(clippy::too_many_arguments)]
    fn scrape_with_churn(
        &mut self,
        debugger: &mut DebugSession,
        observation: &Observation,
        churn_rate: usize,
        victim_residue: &BTreeSet<FrameNumber>,
        lifetime: &mut ResidueLifetime,
        reclaimed: &mut BTreeSet<FrameNumber>,
    ) -> Result<AttackOutcome, AttackError> {
        if debugger.is_running(&self.kernel, observation.pid()) {
            return Err(AttackError::VictimStillRunning {
                pid: observation.pid(),
            });
        }
        let translation = observation.translation().clone();
        let mode = self.pipeline.config().scrape_mode;
        mode.validate()?;
        let pid = translation.pid();
        // A zero-length window is a typed empty dump, exactly as on the
        // single-sweep paths (`crate::scrape`): checked before any physical
        // usability test, so a degenerate translation with no pages at all
        // scores an empty outcome instead of erroring.
        if translation.heap_len() == 0 {
            return Ok(self.pipeline.score_dump(
                observation,
                &MemoryDump::empty(translation.heap_start()),
                Duration::ZERO,
            ));
        }
        // Mode-specific usability checks, mirroring `crate::scrape`: the
        // endpoint attackers (contiguous and its bank-striped variant) need
        // the first page resident, the per-page attacker needs any page at
        // all.  Churn interleaves at page-chunk granularity, so the
        // bank-striped fan-out has nothing to add inside a single page read
        // — both contiguous attackers scrape chunk-identically here, which
        // keeps LiveTraffic dumps byte-comparable across scrape modes.
        let contiguous_start = if mode.reads_contiguous_range() {
            Some(
                translation
                    .phys_start()
                    .ok_or(AttackError::TranslationEmpty { pid })?,
            )
        } else {
            if translation.present_pages() == 0 {
                return Err(AttackError::TranslationEmpty { pid });
            }
            None
        };

        let scrape_start = Instant::now();
        let window = self.kernel.config().dram();
        let mut captured: Vec<Option<(PhysAddr, Vec<u8>)>> =
            Vec::with_capacity(translation.pages().len());
        for (index, page) in translation.pages().iter().enumerate() {
            if index > 0 && index % CHURN_CHUNK_PAGES == 0 {
                // Each churned chunk is one logical tick: the slow, chunked
                // scrape gives residue time to decay under a non-perfect
                // remanence model (and gives background scrubbers time to
                // fire), sequenced by chunk count — never wall clock — so
                // campaigns stay replayable.
                self.kernel.tick(1);
                for _ in 0..churn_rate {
                    // Only churn that actually happened counts: with no
                    // tenants to cycle there is no event to record.
                    if self.churn_tenant_once(reclaimed)? {
                        lifetime.churn_events += 1;
                    }
                }
            }
            // Residue-lifetime accounting at the moment of the read: was this
            // page's frame still victim residue when the attacker got to it?
            if let Some(pa) = page {
                let frame = pa.frame_number();
                if victim_residue.contains(&frame) && frame_lost(&self.kernel, frame, reclaimed) {
                    lifetime.frames_lost_before_scrape += 1;
                }
            }
            // The paper's endpoint-based attacker assumes contiguity from the
            // first page; the per-page attacker uses each page's translation.
            // Edge semantics mirror `crate::scrape` exactly, so a LiveTraffic
            // dump is byte-comparable to a Single-schedule one: contiguous
            // reads clamp to the DRAM window and zero-pad, per-page reads
            // propagate channel errors.
            if mode.reads_contiguous_range() {
                let pa = contiguous_start.expect("checked for contiguous mode")
                    + index as u64 * PAGE_SIZE;
                if pa < window.end() {
                    let available = window.end().offset_from(pa).min(PAGE_SIZE) as usize;
                    let mut bytes = debugger.read_phys_range(&self.kernel, pa, available)?;
                    bytes.resize(PAGE_SIZE as usize, 0);
                    captured.push(Some((pa, bytes)));
                } else {
                    captured.push(None);
                }
            } else {
                match page {
                    Some(pa) => {
                        let bytes =
                            debugger.read_phys_range(&self.kernel, *pa, PAGE_SIZE as usize)?;
                        captured.push(Some((*pa, bytes)));
                    }
                    None => captured.push(None),
                }
            }
        }
        let mut dump = if mode.reads_contiguous_range() {
            let start = contiguous_start.expect("checked for contiguous mode");
            let heap_len = translation.heap_len() as usize;
            let mut bytes = Vec::with_capacity(heap_len);
            for page in &captured {
                match page {
                    Some((_, data)) => bytes.extend_from_slice(data),
                    None => bytes.extend(std::iter::repeat_n(0u8, PAGE_SIZE as usize)),
                }
            }
            bytes.truncate(heap_len);
            // The multi-snapshot attacker takes its remaining reads here, one
            // decay tick apart, pinned relative to the scrape start: the
            // churned chunk pass above is snapshot 1 (its ticks are sequenced
            // by chunk count), and each further snapshot is one full-range
            // re-read a tick later.  Before this arm existed the mode
            // silently degenerated under live traffic to the single churned
            // pass.
            if let ScrapeMode::MultiSnapshot { snapshots } = mode {
                let mut reads = Vec::with_capacity(snapshots);
                reads.push(std::mem::take(&mut bytes));
                for _ in 1..snapshots {
                    self.kernel.tick(1);
                    let mut snapshot = if start < window.end() {
                        let available = window.end().offset_from(start).min(heap_len as u64);
                        debugger.read_phys_range(&self.kernel, start, available as usize)?
                    } else {
                        Vec::new()
                    };
                    snapshot.resize(heap_len, 0);
                    reads.push(snapshot);
                }
                bytes = crate::analysis::reconstruct::fuse_snapshots(&reads);
                bytes.resize(heap_len, 0);
            }
            MemoryDump::from_contiguous(translation.heap_start(), start, bytes)
        } else {
            MemoryDump::from_pages(translation.heap_start(), captured)
        };
        // Drain the compressed-swap channel before scoring, exactly as the
        // single-sweep `execute_mut` path does.
        self.pipeline
            .read_swap_residue(&self.kernel, observation, &mut dump);
        Ok(self
            .pipeline
            .score_dump(observation, &dump, scrape_start.elapsed()))
    }

    /// Stage 2: launches the victim model on the booted board.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors from the launch.
    pub fn launch_victim(&mut self) -> Result<LaunchedRun, AttackError> {
        DpuRunner::new(self.scenario.model)
            .with_input(self.scenario.input.clone())
            .launch(&mut self.kernel, self.scenario.victim_user)
            .map_err(runner_error)
    }

    /// Stage 3: the attacker observes `victim`, the victim terminates, the
    /// schedule's post-termination traffic plays (revival successors, live
    /// churn), the attacker scrapes and analyses, and the result is scored
    /// against ground truth.
    ///
    /// # Errors
    ///
    /// Propagates attack errors (permission denials under confined isolation,
    /// translation failures, …).
    pub fn run_attack(&mut self, victim: LaunchedRun) -> Result<ScenarioOutcome, AttackError> {
        let mut debugger = DebugSession::connect(self.scenario.attacker_user);

        let observation = self
            .pipeline
            .poll_and_observe(&mut debugger, &self.kernel)?;
        let victim_pid = victim.pid();
        let victim_tag = victim_pid.owner_tag();

        // Fork-heavy schedule: the children fork *after* the observation (so
        // polling latched onto the victim, not a child) and just before the
        // termination whose scrub they are about to defeat.  They stay
        // running through the scrape, pinning the shared frames alive.
        if let VictimSchedule::ForkHeavy { children } = self.scenario.schedule {
            for _ in 0..children {
                self.kernel.fork(victim_pid)?;
            }
        }

        let ground_truth = victim.terminate(&mut self.kernel).map_err(runner_error)?;
        let scrub_report = self.kernel.scrub_reports().last().cloned();

        // Residue-lifetime bookkeeping starts at the moment of termination:
        // these are the frames an ideal (instant) scrape could still read.
        let victim_residue: BTreeSet<FrameNumber> = self
            .kernel
            .dram()
            .residue_frames()
            .filter(|(_, owner)| *owner == victim_tag)
            .map(|(frame, _)| frame)
            .collect();
        let mut lifetime = ResidueLifetime {
            victim_frames: victim_residue.len(),
            ..ResidueLifetime::default()
        };
        // Substrate accounting at the moment of termination: victim frames a
        // CoW child still holds allocated (retained, so frame scrubs skipped
        // them), and victim plaintext sitting in the compressed swap store.
        lifetime.cow_inherited_frames = victim_residue
            .iter()
            .filter(|frame| self.kernel.allocator().is_allocated(**frame))
            .count();
        lifetime.swap_resident_bytes = self
            .kernel
            .dram()
            .swap_store()
            .residue_bytes(Some(victim_tag));
        let mut reclaimed: BTreeSet<FrameNumber> = BTreeSet::new();

        self.play_revival_epilogue(victim_pid, &mut lifetime, &mut reclaimed)?;

        let attack = match self.scenario.schedule {
            VictimSchedule::LiveTraffic { churn_rate, .. } => self.scrape_with_churn(
                &mut debugger,
                &observation,
                churn_rate,
                &victim_residue,
                &mut lifetime,
                &mut reclaimed,
            )?,
            _ => {
                // No mutation happens during the scrape itself: the loss
                // count is exact when taken just before the read starts.
                lifetime.frames_lost_before_scrape = victim_residue
                    .iter()
                    .filter(|frame| frame_lost(&self.kernel, **frame, &reclaimed))
                    .count();
                self.pipeline
                    .execute_mut(&mut debugger, &mut self.kernel, &observation)?
            }
        };

        // Residue-fidelity accounting: how much of the victim's residue the
        // remanence decay view had taken away by the time the attack ended
        // (all zeros under the perfect model).
        let decay = self.kernel.dram().residue_decay(Some(victim_tag));
        lifetime.residue_bytes_raw = decay.raw_bytes;
        lifetime.residue_bytes_decayed = decay.raw_bytes - decay.surviving_bytes;
        lifetime.residue_bits_flipped = decay.bits_flipped;

        let collateral_bytes = self
            .kernel
            .scrub_reports()
            .iter()
            .map(|r| r.collateral_bytes)
            .sum();
        let active_tenant_intact = if self.tenants.is_empty() {
            None
        } else {
            let mut all_intact = true;
            for tenant in &self.tenants {
                all_intact &= self.active_tenant_data_intact(tenant)?;
            }
            Some(all_intact)
        };

        Ok(ScenarioOutcome {
            attack,
            ground_truth,
            scrub_report,
            residue_frames_after: self.kernel.residue_frame_count(),
            denied_operations: debugger.audit().denied_count(),
            collateral_bytes,
            active_tenant_intact,
            residue_lifetime: lifetime,
        })
    }

    /// Ground truth for a co-resident tenant: is its input image still
    /// intact in its own (still mapped) heap?
    fn active_tenant_data_intact(&self, active: &LaunchedRun) -> Result<bool, AttackError> {
        let layout = active.layout();
        let expected = active.input_image().as_bytes();
        let mut live = vec![0u8; expected.len()];
        let heap_base = self.kernel.process(active.pid())?.heap_base();
        self.kernel.read_process_memory(
            active.pid(),
            heap_base + layout.image_offset,
            &mut live,
        )?;
        Ok(live == expected)
    }

    /// Drives stages 2–3 back to back.
    ///
    /// # Errors
    ///
    /// Propagates launch and attack errors.
    pub fn run(mut self) -> Result<ScenarioOutcome, AttackError> {
        let victim = self.launch_victim()?;
        self.run_attack(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::ScrapeMode;
    use petalinux_sim::IsolationPolicy;
    use zynq_dram::SanitizePolicy;

    #[test]
    fn default_scenario_recovers_everything() {
        let outcome = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::Resnet50Pt)
            .execute()
            .unwrap();
        assert!(outcome.model_identification_correct());
        assert_eq!(outcome.identified_model(), Some(ModelKind::Resnet50Pt));
        assert!(outcome.pixel_recovery_rate() > 0.99);
        assert!(outcome.bytes_scraped() > 0);
        assert!(outcome.residue_frames_after() > 0);
        assert_eq!(outcome.denied_operations(), 0);
        assert!(outcome.scrub_report().unwrap().leaves_residue());
        assert_eq!(outcome.ground_truth().model(), ModelKind::Resnet50Pt);
        assert!(outcome.attack().timings.total() > std::time::Duration::ZERO);
        assert!(outcome.active_tenant_intact().is_none());
        assert_eq!(outcome.collateral_bytes(), 0);
    }

    #[test]
    fn corrupted_input_scenario_matches_the_paper() {
        let outcome = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::Resnet50Pt)
            .with_corrupted_input()
            .execute()
            .unwrap();
        assert!(outcome.model_identification_correct());
        assert!(outcome.pixel_recovery_rate() > 0.99);
        assert!(!outcome.attack().marker_runs.is_empty());
    }

    #[test]
    fn sanitized_board_reduces_recovery_to_zero() {
        let board =
            BoardConfig::tiny_for_tests().with_sanitize_policy(SanitizePolicy::SelectiveScrub);
        let outcome = AttackScenario::new(board, ModelKind::Resnet50Pt)
            .with_corrupted_input()
            .execute()
            .unwrap();
        assert!(!outcome.model_identification_correct());
        assert_eq!(outcome.pixel_recovery_rate(), 0.0);
        assert_eq!(outcome.residue_frames_after(), 0);
        assert!(!outcome.scrub_report().unwrap().leaves_residue());
    }

    #[test]
    fn confined_isolation_blocks_the_attack() {
        let board = BoardConfig::tiny_for_tests().with_isolation(IsolationPolicy::Confined);
        let scenario = AttackScenario::new(board, ModelKind::SqueezeNet);
        assert!(scenario.execute().is_err());
        let (result, outcome) = scenario.execute_allow_blocked().unwrap();
        assert!(matches!(result, ScenarioResult::Blocked { .. }));
        assert!(outcome.is_none());
    }

    #[test]
    fn builder_options_are_respected() {
        let profiles = Profiler::new(BoardConfig::tiny_for_tests()).profile_all();
        let scenario = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::MobileNetV2)
            .with_input(Image::profiling_sentinel(224, 224))
            .with_profiles(profiles)
            .with_attacker_user(UserId::new(7))
            .with_attack_config(AttackConfig {
                victim_pattern: Some("mobilenet".to_string()),
                ..AttackConfig::default()
            })
            .with_offline_profiling(false);
        assert_eq!(scenario.model(), ModelKind::MobileNetV2);
        assert_eq!(
            scenario.board().dram(),
            BoardConfig::tiny_for_tests().dram()
        );
        let outcome = scenario.execute().unwrap();
        assert!(outcome.model_identification_correct());
        // Sentinel input: recovered exactly, via the profiled offset.
        assert!(outcome.pixel_recovery_rate() > 0.99);
    }

    #[test]
    fn stages_run_separately_and_match_one_shot_execute() {
        let scenario = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::SqueezeNet)
            .with_corrupted_input();
        let mut booted = scenario.boot().unwrap();
        assert!(booted.active_tenant().is_none());
        assert!(!booted.pipeline().profiles().is_empty());
        let victim = booted.launch_victim().unwrap();
        assert!(booted.kernel().process(victim.pid()).unwrap().is_running());
        let staged = booted.run_attack(victim).unwrap();

        let one_shot = scenario.execute().unwrap();
        assert_eq!(staged.metrics(), one_shot.metrics());
    }

    #[test]
    fn sequential_traffic_schedule_still_recovers_the_victim() {
        let scenario = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::Resnet50Pt)
            .with_corrupted_input()
            .with_schedule(VictimSchedule::SequentialTraffic { predecessors: 2 })
            .with_seed(7);
        assert_eq!(
            scenario.schedule(),
            VictimSchedule::SequentialTraffic { predecessors: 2 }
        );
        let outcome = scenario.execute().unwrap();
        assert!(outcome.model_identification_correct());
        assert!(outcome.pixel_recovery_rate() > 0.99);
        // Predecessor residue stays behind on an unsanitized board.
        let single = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::Resnet50Pt)
            .with_corrupted_input()
            .execute()
            .unwrap();
        assert!(outcome.residue_frames_after() >= single.residue_frames_after());
        // Same seed replays the same traffic.
        let replay = scenario.execute().unwrap();
        assert_eq!(outcome.metrics(), replay.metrics());
    }

    #[test]
    fn multi_tenant_schedule_reports_co_tenant_state() {
        let scenario = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::SqueezeNet)
            .with_corrupted_input()
            .with_schedule(VictimSchedule::MultiTenant {
                active_model: ModelKind::MobileNetV2,
                warmup_pages: 16,
            });
        let outcome = scenario.execute().unwrap();
        // No sanitization: the attack succeeds and the co-tenant is intact.
        assert!(outcome.model_identification_correct());
        assert_eq!(outcome.active_tenant_intact(), Some(true));
        assert_eq!(outcome.collateral_bytes(), 0);
    }

    #[test]
    fn schedule_display_names() {
        assert_eq!(VictimSchedule::Single.to_string(), "single");
        assert_eq!(
            VictimSchedule::SequentialTraffic { predecessors: 3 }.to_string(),
            "sequential-traffic(3)"
        );
        assert_eq!(
            VictimSchedule::MultiTenant {
                active_model: ModelKind::YoloV3,
                warmup_pages: 16
            }
            .to_string(),
            "multi-tenant(yolov3)"
        );
        assert_eq!(
            VictimSchedule::Revival {
                successors: 2,
                reuse_pid: true
            }
            .to_string(),
            "revival(2,reuse-pid)"
        );
        assert_eq!(
            VictimSchedule::Revival {
                successors: 1,
                reuse_pid: false
            }
            .to_string(),
            "revival(1)"
        );
        assert_eq!(
            VictimSchedule::LiveTraffic {
                tenants: 2,
                churn_rate: 3
            }
            .to_string(),
            "live-traffic(2,churn=3)"
        );
        assert_eq!(
            VictimSchedule::ForkHeavy { children: 2 }.to_string(),
            "fork-heavy(2)"
        );
        assert_eq!(VictimSchedule::default(), VictimSchedule::Single);
    }

    #[test]
    fn revival_successor_inherits_then_destroys_the_residue() {
        let scenario = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::SqueezeNet)
            .with_corrupted_input()
            .with_schedule(VictimSchedule::Revival {
                successors: 1,
                reuse_pid: true,
            })
            .with_seed(11);
        let outcome = scenario.execute().unwrap();
        let lifetime = outcome.residue_lifetime();

        // The victim left residue, and the revived process inherited it in
        // its freshly allocated heap frames.
        assert!(lifetime.victim_frames > 0);
        assert!(lifetime.revived_heap_frames > 0);
        assert!(lifetime.revival_inherited_frames > 0);
        assert!(lifetime.inheritance_rate() > 0.0);
        assert!(lifetime.inheritance_rate() <= 1.0);
        // Inherited frames come from the reused pool, never exceed it.
        assert!(lifetime.revival_inherited_frames <= lifetime.victim_frames);

        // The successor then overwrote the reused frames, so the attacker
        // arrived too late: residue lost, recovery destroyed.
        assert!(lifetime.frames_lost_before_scrape > 0);
        assert!(lifetime.survival_rate() < 1.0);
        assert!(outcome.pixel_recovery_rate() < 0.5);
        assert!(!outcome.model_identification_correct());

        // Same seed replays the same revival, byte for byte.
        let replay = scenario.execute().unwrap();
        assert_eq!(outcome.metrics(), replay.metrics());
    }

    #[test]
    fn revival_without_pid_reuse_still_inherits_frames() {
        let outcome = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::SqueezeNet)
            .with_schedule(VictimSchedule::Revival {
                successors: 2,
                reuse_pid: false,
            })
            .with_seed(5)
            .execute()
            .unwrap();
        let lifetime = outcome.residue_lifetime();
        assert!(lifetime.revival_inherited_frames > 0);
        assert!(lifetime.frames_lost_before_scrape > 0);
    }

    #[test]
    fn sanitize_on_free_drives_revival_inheritance_to_zero() {
        let board = BoardConfig::tiny_for_tests().with_sanitize_policy(SanitizePolicy::ZeroOnFree);
        let outcome = AttackScenario::new(board, ModelKind::SqueezeNet)
            .with_corrupted_input()
            .with_schedule(VictimSchedule::Revival {
                successors: 1,
                reuse_pid: true,
            })
            .execute()
            .unwrap();
        let lifetime = outcome.residue_lifetime();
        // The victim's frames were scrubbed at termination: nothing to
        // inherit, nothing to survive.
        assert_eq!(lifetime.victim_frames, 0);
        assert_eq!(lifetime.revival_inherited_frames, 0);
        assert_eq!(lifetime.inheritance_rate(), 0.0);
        assert_eq!(lifetime.survival_rate(), 0.0);
    }

    #[test]
    fn fork_heavy_cow_residue_survives_zero_on_free() {
        let board = BoardConfig::tiny_for_tests().with_sanitize_policy(SanitizePolicy::ZeroOnFree);
        let scenario = AttackScenario::new(board, ModelKind::SqueezeNet)
            .with_corrupted_input()
            .with_schedule(VictimSchedule::ForkHeavy { children: 2 })
            .with_seed(17);
        let outcome = scenario.execute().unwrap();
        let lifetime = outcome.residue_lifetime();

        // The CoW children pinned the victim's frames alive through
        // termination, so the zero-on-free scrub (which touches only freed
        // frames) never reached the plaintext: the attack recovers in full
        // on a board whose policy defeats it for a single victim.
        assert!(lifetime.victim_frames > 0);
        assert!(lifetime.cow_inherited_frames > 0);
        assert!(lifetime.cow_inherited_frames <= lifetime.victim_frames);
        assert!(outcome.model_identification_correct());
        assert!(outcome.pixel_recovery_rate() > 0.99);

        // The same board without forked children scrubs everything.
        let scrubbed = AttackScenario::new(board, ModelKind::SqueezeNet)
            .with_corrupted_input()
            .with_seed(17)
            .execute()
            .unwrap();
        assert_eq!(scrubbed.residue_lifetime().cow_inherited_frames, 0);
        assert_eq!(scrubbed.residue_lifetime().victim_frames, 0);
        assert!(!scrubbed.model_identification_correct());
        assert_eq!(scrubbed.pixel_recovery_rate(), 0.0);

        // Same seed replays the fork-heavy run exactly.
        let replay = scenario.execute().unwrap();
        assert_eq!(outcome.metrics(), replay.metrics());
    }

    #[test]
    fn swap_residue_leaks_past_zero_on_free_until_a_swap_aware_scrub() {
        // Memory pressure swaps the victim's heap out (compressed) before
        // termination; zero-on-free then scrubs the DRAM frames but never
        // the swap slots, so the attacker decompresses the slots and
        // recovers what the scrub was supposed to destroy.
        let leaky = BoardConfig::tiny_for_tests()
            .with_sanitize_policy(SanitizePolicy::ZeroOnFree)
            .with_swap(100);
        let scenario = AttackScenario::new(leaky, ModelKind::SqueezeNet)
            .with_corrupted_input()
            .with_seed(19);
        let outcome = scenario.execute().unwrap();
        assert!(outcome.residue_lifetime().swap_resident_bytes > 0);
        assert!(outcome.model_identification_correct());
        assert!(outcome.pixel_recovery_rate() > 0.99);

        // A swap-aware scrub closes the channel completely.
        let sealed = BoardConfig::tiny_for_tests()
            .with_sanitize_policy(SanitizePolicy::ZeroOnFreeSwap)
            .with_swap(100);
        let closed = AttackScenario::new(sealed, ModelKind::SqueezeNet)
            .with_corrupted_input()
            .with_seed(19)
            .execute()
            .unwrap();
        assert_eq!(closed.residue_lifetime().swap_resident_bytes, 0);
        assert!(!closed.model_identification_correct());
        assert_eq!(closed.pixel_recovery_rate(), 0.0);

        // Same seed replays the swap-assisted recovery exactly.
        let replay = scenario.execute().unwrap();
        assert_eq!(outcome.metrics(), replay.metrics());
    }

    #[test]
    fn churn_scrape_handles_zero_and_sub_page_windows() {
        use crate::translate::HeapTranslation;
        use zynq_mmu::VirtAddr;

        let scenario = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::SqueezeNet)
            .with_schedule(VictimSchedule::LiveTraffic {
                tenants: 1,
                churn_rate: 1,
            })
            .with_seed(23);
        let mut booted = scenario.boot().unwrap();
        let victim = booted.launch_victim().unwrap();
        victim.terminate(&mut booted.kernel).unwrap();
        let mut debugger = DebugSession::connect(UserId::new(1));
        let base = booted.kernel.config().dram().base();

        // Degenerate windows cannot be produced through the live capture
        // (the kernel page-aligns heaps and the debugger rejects heap-less
        // processes), so the translations are assembled directly — exactly
        // what a replayed or corrupted observation can hand the scraper.
        for len in [0u64, 1, PAGE_SIZE - 1] {
            let pages = if len == 0 { vec![] } else { vec![Some(base)] };
            let translation = HeapTranslation::from_parts(
                Pid::new(9999),
                VirtAddr::new(0x2000),
                VirtAddr::new(0x2000 + len),
                pages,
            );
            let observation = Observation::from_translation(translation);
            let mut lifetime = ResidueLifetime::default();
            let mut reclaimed = BTreeSet::new();
            let outcome = booted
                .scrape_with_churn(
                    &mut debugger,
                    &observation,
                    1,
                    &BTreeSet::new(),
                    &mut lifetime,
                    &mut reclaimed,
                )
                .unwrap();
            // A typed, correctly sized outcome at every width — never a
            // `TranslationEmpty` error, never a page-rounded dump.
            assert_eq!(outcome.bytes_scraped, len as usize, "len={len}");
            if len == 0 {
                assert_eq!(outcome.dump_coverage, 0.0);
                assert_eq!(lifetime.churn_events, 0);
                assert!(outcome.identified.is_none());
            }
        }
    }

    #[test]
    fn live_traffic_multi_snapshot_takes_real_snapshots_and_replays() {
        use zynq_dram::RemanenceModel;
        let board = BoardConfig::tiny_for_tests()
            .with_remanence(RemanenceModel::Exponential { half_life_ticks: 4 });
        let at_mode = |mode| {
            AttackScenario::new(board, ModelKind::SqueezeNet)
                .with_corrupted_input()
                .with_attack_config(AttackConfig {
                    scrape_mode: mode,
                    victim_pattern: Some("squeezenet".to_string()),
                    ..AttackConfig::default()
                })
                .with_schedule(VictimSchedule::LiveTraffic {
                    tenants: 1,
                    churn_rate: 0,
                })
                .with_seed(31)
                .execute()
                .unwrap()
        };
        let single = at_mode(ScrapeMode::ContiguousRange);
        let fused = at_mode(ScrapeMode::MultiSnapshot { snapshots: 3 });

        // Under monotone decay the OR-fusion of later snapshots adds nothing
        // to the churned first pass, so the fused recovery equals the
        // single-pass attacker byte for byte at the same seed…
        assert_eq!(fused.bytes_scraped(), single.bytes_scraped());
        assert_eq!(fused.pixel_recovery_rate(), single.pixel_recovery_rate());
        // …but the snapshots really happened: the two extra reads each
        // advanced the decay clock one tick past the single-pass run, which
        // shows up in the end-of-attack residue fidelity.
        assert!(
            fused.residue_lifetime().residue_bits_flipped
                >= single.residue_lifetime().residue_bits_flipped
        );
        assert!(fused.residue_lifetime().residue_bits_flipped > 0);

        // Snapshot ticks are pinned to the scrape sequence, never the wall
        // clock: replays are exact.
        let replay = at_mode(ScrapeMode::MultiSnapshot { snapshots: 3 });
        assert_eq!(fused.metrics(), replay.metrics());
    }

    #[test]
    fn live_traffic_churn_decays_scrape_coverage() {
        let at_churn = |churn_rate| {
            AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::SqueezeNet)
                .with_corrupted_input()
                .with_schedule(VictimSchedule::LiveTraffic {
                    tenants: 2,
                    churn_rate,
                })
                .with_seed(3)
                .execute()
                .unwrap()
        };

        let calm = at_churn(0);
        assert_eq!(calm.residue_lifetime().churn_events, 0);
        assert_eq!(calm.residue_lifetime().frames_lost_before_scrape, 0);
        assert!(calm.model_identification_correct());
        assert!(calm.pixel_recovery_rate() > 0.99);

        let stormy = at_churn(4);
        let lifetime = stormy.residue_lifetime();
        assert!(lifetime.churn_events > 0);
        // Live churn re-allocated victim frames mid-scrape: residue decayed.
        assert!(lifetime.frames_lost_before_scrape > 0);
        assert!(lifetime.survival_rate() < 1.0);
        assert!(stormy.pixel_recovery_rate() < calm.pixel_recovery_rate());

        // Tenants keep running during the attack and report their health.
        assert!(stormy.active_tenant_intact().is_some());

        // Churn is sequenced by the seed, not the wall clock: replays match.
        let replay = at_churn(4);
        assert_eq!(stormy.metrics(), replay.metrics());
    }

    #[test]
    fn churn_free_scrape_matches_the_pipeline_scraper_byte_for_byte() {
        // Anti-drift pin for the duplicated edge semantics: on the same
        // terminated board, `scrape_with_churn` at churn 0 must produce the
        // identical attack outcome (minus wall-clock) as the one-shot
        // `AttackPipeline::execute` path, in both scrape modes.
        for mode in [ScrapeMode::ContiguousRange, ScrapeMode::PerPage] {
            let scenario =
                AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::SqueezeNet)
                    .with_corrupted_input()
                    .with_attack_config(AttackConfig {
                        scrape_mode: mode,
                        victim_pattern: Some("squeezenet".to_string()),
                        ..AttackConfig::default()
                    })
                    .with_seed(13);
            let mut booted = scenario.boot().unwrap();
            let victim = booted.launch_victim().unwrap();
            let mut debugger = DebugSession::connect(UserId::new(1));
            let observation = booted
                .pipeline
                .poll_and_observe(&mut debugger, &booted.kernel)
                .unwrap();
            victim.terminate(&mut booted.kernel).unwrap();

            let via_pipeline = booted
                .pipeline
                .execute(&mut debugger, &booted.kernel, &observation)
                .unwrap();

            let mut lifetime = ResidueLifetime::default();
            let mut reclaimed = std::collections::BTreeSet::new();
            let via_churn_path = booted
                .scrape_with_churn(
                    &mut debugger,
                    &observation,
                    0,
                    &std::collections::BTreeSet::new(),
                    &mut lifetime,
                    &mut reclaimed,
                )
                .unwrap();

            assert_eq!(via_pipeline.identified, via_churn_path.identified, "{mode}");
            assert_eq!(via_pipeline.marker_runs, via_churn_path.marker_runs);
            assert_eq!(
                via_pipeline.reconstructed_image,
                via_churn_path.reconstructed_image
            );
            assert_eq!(
                via_pipeline.image_offset_used,
                via_churn_path.image_offset_used
            );
            assert_eq!(via_pipeline.bytes_scraped, via_churn_path.bytes_scraped);
            assert_eq!(via_pipeline.dump_coverage, via_churn_path.dump_coverage);
            assert_eq!(lifetime.churn_events, 0);
        }
    }

    #[test]
    fn zero_worker_bank_striping_fails_under_live_traffic_too() {
        // The churn scraper ignores the fan-out (it reads page chunks), but
        // an invalid zero-worker mode must fail here exactly like it does on
        // the single-sweep path — not silently succeed.
        let result = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::SqueezeNet)
            .with_attack_config(AttackConfig {
                scrape_mode: ScrapeMode::BankStriped { workers: 0 },
                ..AttackConfig::default()
            })
            .with_schedule(VictimSchedule::LiveTraffic {
                tenants: 1,
                churn_rate: 1,
            })
            .execute();
        let err = result.unwrap_err();
        assert!(err.to_string().contains("zero workers"), "{err}");
    }

    #[test]
    fn remanence_decay_degrades_recovery_and_replays_by_seed() {
        use zynq_dram::RemanenceModel;
        let at = |model: RemanenceModel| {
            AttackScenario::new(
                BoardConfig::tiny_for_tests().with_remanence(model),
                ModelKind::SqueezeNet,
            )
            .with_corrupted_input()
            .with_seed(21)
            .execute()
            .unwrap()
        };

        // The perfect model is today's all-or-nothing residue: nothing flips.
        let perfect = at(RemanenceModel::Perfect);
        assert_eq!(perfect.residue_lifetime().residue_bits_flipped, 0);
        assert_eq!(perfect.metrics().residue_bits_flipped, 0);
        assert_eq!(perfect.residue_lifetime().decayed_recovery_rate(), 1.0);
        assert!(perfect.pixel_recovery_rate() > 0.99);

        // A short half-life loses real residue between termination and the
        // scrape, and the loss shows up in the recovered image.
        let decayed = at(RemanenceModel::Exponential { half_life_ticks: 2 });
        let lifetime = decayed.residue_lifetime();
        assert!(lifetime.residue_bytes_raw > 0);
        assert!(lifetime.residue_bytes_decayed > 0);
        assert!(lifetime.residue_bits_flipped > 0);
        assert!(lifetime.decayed_recovery_rate() < 1.0);
        assert_eq!(
            decayed.metrics().residue_bits_flipped,
            lifetime.residue_bits_flipped
        );
        assert!(decayed.pixel_recovery_rate() < perfect.pixel_recovery_rate());

        // Decay is seeded from the scenario seed: the same cell replays
        // bit-exactly, a different seed decays different cells.
        let replay = at(RemanenceModel::Exponential { half_life_ticks: 2 });
        assert_eq!(decayed.metrics(), replay.metrics());
        let reseeded = AttackScenario::new(
            BoardConfig::tiny_for_tests()
                .with_remanence(RemanenceModel::Exponential { half_life_ticks: 2 }),
            ModelKind::SqueezeNet,
        )
        .with_corrupted_input()
        .with_seed(22)
        .execute()
        .unwrap();
        assert_ne!(
            reseeded.residue_lifetime().residue_bits_flipped,
            lifetime.residue_bits_flipped
        );
    }

    #[test]
    fn remanence_decay_composes_with_revival_and_live_traffic() {
        use zynq_dram::RemanenceModel;
        let base = BoardConfig::tiny_for_tests()
            .with_remanence(RemanenceModel::BitFlip { rate_ppm: 120_000 });

        // Revival successors advance the logical clock, so the late-arriving
        // attacker sees further-decayed residue.
        let revival = AttackScenario::new(base, ModelKind::SqueezeNet)
            .with_corrupted_input()
            .with_schedule(VictimSchedule::Revival {
                successors: 1,
                reuse_pid: true,
            })
            .with_seed(5)
            .execute()
            .unwrap();
        assert!(revival.residue_lifetime().residue_bits_flipped > 0);

        // Chunked live-traffic scrapes tick the decay clock between chunks.
        let live = AttackScenario::new(base, ModelKind::SqueezeNet)
            .with_corrupted_input()
            .with_schedule(VictimSchedule::LiveTraffic {
                tenants: 1,
                churn_rate: 0,
            })
            .with_seed(5)
            .execute()
            .unwrap();
        assert!(live.residue_lifetime().residue_bits_flipped > 0);
        // Replays stay exact even with mid-scrape decay ticks.
        let replay = AttackScenario::new(base, ModelKind::SqueezeNet)
            .with_corrupted_input()
            .with_schedule(VictimSchedule::LiveTraffic {
                tenants: 1,
                churn_rate: 0,
            })
            .with_seed(5)
            .execute()
            .unwrap();
        assert_eq!(live.metrics(), replay.metrics());
    }

    #[test]
    fn live_traffic_keeps_co_tenants_and_poll_targets_the_victim() {
        let scenario = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::SqueezeNet)
            .with_schedule(VictimSchedule::LiveTraffic {
                tenants: 2,
                churn_rate: 1,
            })
            .with_seed(9);
        let booted = scenario.boot().unwrap();
        assert_eq!(booted.tenants().len(), 2);
        // The rotation never runs the victim's own model as a tenant.
        for tenant in booted.tenants() {
            assert_ne!(tenant.model(), ModelKind::SqueezeNet);
        }
        let outcome = booted.run().unwrap();
        // Polling still latched onto the victim, not a tenant.
        assert_eq!(outcome.ground_truth().model(), ModelKind::SqueezeNet);
    }
}
