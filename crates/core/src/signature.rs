//! Model signature database.
//!
//! The adversary model (paper §II) assumes the attacker can profile the
//! publicly available Vitis AI library offline and therefore knows what byte
//! patterns each model leaves in memory — most usefully its name and library
//! path fragments.  [`SignatureDb`] holds those patterns;
//! [`SignatureDb::match_dump`] scores a scraped dump against every model.

// Lint audit: indexes and slice bounds here are established by the
// surrounding length checks / loop invariants before use.
#![allow(clippy::indexing_slicing)]

use serde::{Deserialize, Serialize};
use vitis_ai_sim::ModelKind;
use zynq_dram::ScrapeView;

use crate::dump::MemoryDump;

/// Signature of one model: byte patterns whose presence indicates the model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSignature {
    /// The model this signature identifies.
    pub model: ModelKind,
    /// Patterns searched for in the dump (primary name plus path fragments).
    pub patterns: Vec<String>,
}

/// A scored match of a dump against one model's signature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelMatch {
    /// The matched model.
    pub model: ModelKind,
    /// Number of distinct patterns found.
    pub hits: usize,
    /// Total number of patterns in the signature.
    pub total_patterns: usize,
    /// Mean fuzzy-match distance (fraction of pattern bits missing from the
    /// dump, 0.0 = exact) when the match came from the decay-tolerant scan
    /// ([`crate::analysis::reconstruct::fuzzy_identify_view`]); `None` on the
    /// exact-matching path.
    pub fuzzy_distance: Option<f64>,
}

impl ModelMatch {
    /// Fraction of the signature's patterns that were found (0.0–1.0).
    pub fn confidence(&self) -> f64 {
        if self.total_patterns == 0 {
            return 0.0;
        }
        self.hits as f64 / self.total_patterns as f64
    }
}

/// Database of model signatures.
///
/// # Example
///
/// ```
/// use msa_core::SignatureDb;
/// use vitis_ai_sim::ModelKind;
///
/// let db = SignatureDb::standard();
/// assert!(db.signature(ModelKind::Resnet50Pt).is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignatureDb {
    signatures: Vec<ModelSignature>,
}

impl SignatureDb {
    /// Builds the standard database covering the whole model zoo, using the
    /// patterns an attacker learns from the public library: the model name,
    /// its install path and its framework export path.
    pub fn standard() -> Self {
        let signatures = ModelKind::all()
            .into_iter()
            .map(|model| ModelSignature {
                model,
                patterns: vec![
                    model.name().to_string(),
                    format!("vitis_ai_library/models/{}", model.name()),
                    format!("torchvision/{}", model.name()),
                ],
            })
            .collect();
        SignatureDb { signatures }
    }

    /// Builds a database from explicit signatures.
    pub fn from_signatures(signatures: Vec<ModelSignature>) -> Self {
        SignatureDb { signatures }
    }

    /// All signatures.
    pub fn signatures(&self) -> &[ModelSignature] {
        &self.signatures
    }

    /// The signature of a specific model, if present.
    pub fn signature(&self, model: ModelKind) -> Option<&ModelSignature> {
        self.signatures.iter().find(|s| s.model == model)
    }

    /// Scores `dump` against every signature, most-confident first.
    ///
    /// Only models with at least one hit are returned.
    pub fn match_dump(&self, dump: &MemoryDump) -> Vec<ModelMatch> {
        self.match_view(&dump.as_view())
    }

    /// [`SignatureDb::match_dump`] over a borrowed [`ScrapeView`]: the
    /// patterns are searched segment-wise without materializing the dump
    /// (the dump form delegates here).
    pub fn match_view(&self, view: &ScrapeView<'_>) -> Vec<ModelMatch> {
        let mut matches: Vec<ModelMatch> = self
            .signatures
            .iter()
            .map(|sig| {
                let hits = sig
                    .patterns
                    .iter()
                    .filter(|pattern| view.contains_seq(pattern.as_bytes()))
                    .count();
                ModelMatch {
                    model: sig.model,
                    hits,
                    total_patterns: sig.patterns.len(),
                    fuzzy_distance: None,
                }
            })
            .filter(|m| m.hits > 0)
            .collect();
        matches.sort_by(|a, b| {
            b.confidence()
                .partial_cmp(&a.confidence())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| b.hits.cmp(&a.hits))
        });
        matches
    }

    /// The single best match, if any signature hit at all.
    pub fn best_match(&self, dump: &MemoryDump) -> Option<ModelMatch> {
        self.match_dump(dump).into_iter().next()
    }

    /// The single best match over a borrowed view, if any signature hit.
    pub fn best_match_view(&self, view: &ScrapeView<'_>) -> Option<ModelMatch> {
        self.match_view(view).into_iter().next()
    }
}

impl Default for SignatureDb {
    fn default() -> Self {
        SignatureDb::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zynq_dram::PhysAddr;
    use zynq_mmu::VirtAddr;

    fn dump_with(content: &[u8]) -> MemoryDump {
        MemoryDump::from_contiguous(VirtAddr::new(0), PhysAddr::new(0), content.to_vec())
    }

    #[test]
    fn standard_db_covers_the_zoo() {
        let db = SignatureDb::standard();
        assert_eq!(db.signatures().len(), ModelKind::all().len());
        for model in ModelKind::all() {
            let sig = db.signature(model).unwrap();
            assert!(sig.patterns.iter().any(|p| p == model.name()));
        }
        assert_eq!(SignatureDb::default(), db);
    }

    #[test]
    fn match_scores_hits_and_sorts_by_confidence() {
        let db = SignatureDb::standard();
        let dump = dump_with(
            b"...vitis_ai_library/models/resnet50_pt/resnet50_pt.xmodel...torchvision/resnet50_pt...",
        );
        let matches = db.match_dump(&dump);
        assert!(!matches.is_empty());
        assert_eq!(matches[0].model, ModelKind::Resnet50Pt);
        assert_eq!(matches[0].hits, 3);
        assert_eq!(matches[0].confidence(), 1.0);
        assert_eq!(db.best_match(&dump).unwrap().model, ModelKind::Resnet50Pt);
    }

    #[test]
    fn unrelated_dump_matches_nothing() {
        let db = SignatureDb::standard();
        let dump = dump_with(&[0u8; 512]);
        assert!(db.match_dump(&dump).is_empty());
        assert!(db.best_match(&dump).is_none());
    }

    #[test]
    fn partial_hits_have_lower_confidence() {
        let db = SignatureDb::standard();
        // Only the bare model name, not the paths.
        let dump = dump_with(b"....squeezenet....");
        let best = db.best_match(&dump).unwrap();
        assert_eq!(best.model, ModelKind::SqueezeNet);
        assert_eq!(best.hits, 1);
        assert!(best.confidence() < 1.0);
        assert!(best.confidence() > 0.0);
    }

    #[test]
    fn ambiguous_dump_prefers_more_complete_signature() {
        let db = SignatureDb::standard();
        let dump = dump_with(
            b"vitis_ai_library/models/yolov3/yolov3.xmodel ... mobilenet_v2 mentioned once",
        );
        let matches = db.match_dump(&dump);
        assert_eq!(matches[0].model, ModelKind::YoloV3);
        assert!(matches.iter().any(|m| m.model == ModelKind::MobileNetV2));
    }

    #[test]
    fn custom_database_and_edge_cases() {
        let db = SignatureDb::from_signatures(vec![ModelSignature {
            model: ModelKind::Vgg16,
            patterns: vec![],
        }]);
        let dump = dump_with(b"vgg16");
        // A signature with no patterns can never match.
        assert!(db.match_dump(&dump).is_empty());
        assert_eq!(
            ModelMatch {
                model: ModelKind::Vgg16,
                hits: 0,
                total_patterns: 0,
                fuzzy_distance: None
            }
            .confidence(),
            0.0
        );
        // Needle longer than the dump is handled.
        let tiny = dump_with(b"x");
        assert!(SignatureDb::standard().match_dump(&tiny).is_empty());
    }
}
