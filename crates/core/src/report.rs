//! Plain-text report tables.
//!
//! The experiment harness (`msa-bench`'s `experiments` binary) prints every
//! reproduced figure and table as text; this module provides the small
//! column-aligned table renderer it uses.

use std::fmt;

/// A column-aligned text table.
///
/// # Example
///
/// ```
/// use msa_core::report::TextTable;
///
/// let mut table = TextTable::new(vec!["policy", "recovery"]);
/// table.add_row(vec!["none".to_string(), "100%".to_string()]);
/// table.add_row(vec!["zero-on-free".to_string(), "0%".to_string()]);
/// let rendered = table.render();
/// assert!(rendered.contains("zero-on-free"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header count.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns and a separator under the
    /// header.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, cell)| format!("{:<width$}", cell, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a fraction as a percentage with one decimal (e.g. `99.6%`).
pub fn percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats a byte count with a binary-unit suffix.
pub fn bytes(count: u64) -> String {
    const KIB: u64 = 1024;
    const MIB: u64 = 1024 * KIB;
    if count >= MIB {
        format!("{:.1} MiB", count as f64 / MIB as f64)
    } else if count >= KIB {
        format!("{:.1} KiB", count as f64 / KIB as f64)
    } else {
        format!("{count} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut table = TextTable::new(vec!["policy", "recovery", "cost"]);
        table.add_row(vec!["none".into(), "100.0%".into(), "0".into()]);
        table.add_row(vec![
            "selective-scrub".into(),
            "0.0%".into(),
            "123456".into(),
        ]);
        assert_eq!(table.row_count(), 2);
        let rendered = table.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("policy"));
        assert!(lines[1].starts_with("---"));
        // Columns align: "recovery" starts at the same column in all rows.
        let col = lines[0].find("recovery").unwrap();
        assert_eq!(&lines[2][col..col + 6], "100.0%");
        assert_eq!(table.to_string(), rendered);
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn mismatched_row_length_panics() {
        let mut table = TextTable::new(vec!["a", "b"]);
        table.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(percent(0.996), "99.6%");
        assert_eq!(percent(0.0), "0.0%");
        assert_eq!(bytes(100), "100 B");
        assert_eq!(bytes(2048), "2.0 KiB");
        assert_eq!(bytes(3 * 1024 * 1024), "3.0 MiB");
    }
}
