//! Plain-text report tables.
//!
//! The experiment harness (`msa-bench`'s `experiments` binary) prints every
//! reproduced figure and table as text; this module provides the small
//! column-aligned table renderer it uses.

// Lint audit: indexes and slice bounds here are established by the
// surrounding length checks / loop invariants before use.
#![allow(clippy::indexing_slicing)]

use std::fmt;

/// A column-aligned text table.
///
/// # Example
///
/// ```
/// use msa_core::report::TextTable;
///
/// let mut table = TextTable::new(vec!["policy", "recovery"]);
/// table.add_row(vec!["none".to_string(), "100%".to_string()]);
/// table.add_row(vec!["zero-on-free".to_string(), "0%".to_string()]);
/// let rendered = table.render();
/// assert!(rendered.contains("zero-on-free"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header count.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns and a separator under the
    /// header.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, cell)| format!("{:<width$}", cell, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// A minimal hand-rolled JSON object builder (the vendored `serde` stand-in
/// has no serialization, so machine-readable output — NDJSON progress lines,
/// `BENCH_campaign.json` — is written through this).
///
/// Keys are emitted in insertion order; floats use Rust's shortest-roundtrip
/// `{}` formatting, so equal values always serialize to equal bytes (the
/// property the campaign determinism suite compares on).
///
/// # Example
///
/// ```
/// use msa_core::report::JsonObject;
///
/// let line = JsonObject::new()
///     .str("event", "group")
///     .u64("cells", 16)
///     .f64("rate", 0.5)
///     .finish();
/// assert_eq!(line, r#"{"event":"group","cells":16,"rate":0.5}"#);
/// ```
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    fn key(mut self, key: &str) -> Self {
        self.buf.push(if self.buf.is_empty() { '{' } else { ',' });
        push_json_string(&mut self.buf, key);
        self.buf.push(':');
        self
    }

    /// Appends a string field (escaped).
    pub fn str(self, key: &str, value: &str) -> Self {
        let mut obj = self.key(key);
        push_json_string(&mut obj.buf, value);
        obj
    }

    /// Appends an unsigned integer field.
    pub fn u64(self, key: &str, value: u64) -> Self {
        let mut obj = self.key(key);
        obj.buf.push_str(&value.to_string());
        obj
    }

    /// Appends a float field with shortest-roundtrip formatting; non-finite
    /// values (which JSON cannot represent) become `null`.
    pub fn f64(self, key: &str, value: f64) -> Self {
        let mut obj = self.key(key);
        if value.is_finite() {
            obj.buf.push_str(&value.to_string());
        } else {
            obj.buf.push_str("null");
        }
        obj
    }

    /// Appends a boolean field.
    pub fn bool(self, key: &str, value: bool) -> Self {
        let mut obj = self.key(key);
        obj.buf.push_str(if value { "true" } else { "false" });
        obj
    }

    /// Appends a field whose value is already-serialized JSON (a nested
    /// object or array).
    pub fn raw(self, key: &str, json: &str) -> Self {
        let mut obj = self.key(key);
        obj.buf.push_str(json);
        obj
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        if self.buf.is_empty() {
            return "{}".to_string();
        }
        self.buf.push('}');
        self.buf
    }
}

fn push_json_string(buf: &mut String, value: &str) {
    buf.push('"');
    for ch in value.chars() {
        match ch {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// Serializes a list of already-serialized JSON values as an array.
pub fn json_array<I>(items: I) -> String
where
    I: IntoIterator,
    I::Item: AsRef<str>,
{
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(item.as_ref());
    }
    buf.push(']');
    buf
}

/// Formats a fraction as a percentage with one decimal (e.g. `99.6%`).
pub fn percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats a byte count with a binary-unit suffix.
pub fn bytes(count: u64) -> String {
    const KIB: u64 = 1024;
    const MIB: u64 = 1024 * KIB;
    if count >= MIB {
        format!("{:.1} MiB", count as f64 / MIB as f64)
    } else if count >= KIB {
        format!("{:.1} KiB", count as f64 / KIB as f64)
    } else {
        format!("{count} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut table = TextTable::new(vec!["policy", "recovery", "cost"]);
        table.add_row(vec!["none".into(), "100.0%".into(), "0".into()]);
        table.add_row(vec![
            "selective-scrub".into(),
            "0.0%".into(),
            "123456".into(),
        ]);
        assert_eq!(table.row_count(), 2);
        let rendered = table.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("policy"));
        assert!(lines[1].starts_with("---"));
        // Columns align: "recovery" starts at the same column in all rows.
        let col = lines[0].find("recovery").unwrap();
        assert_eq!(&lines[2][col..col + 6], "100.0%");
        assert_eq!(table.to_string(), rendered);
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn mismatched_row_length_panics() {
        let mut table = TextTable::new(vec!["a", "b"]);
        table.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn json_object_builds_escaped_ordered_output() {
        let json = JsonObject::new()
            .str("name", "tiny \"sweep\"\n")
            .u64("cells", 192)
            .f64("rate", 0.25)
            .f64("bad", f64::NAN)
            .bool("stream", true)
            .raw("groups", &json_array(["{\"block\":0}".to_string()]))
            .finish();
        assert_eq!(
            json,
            "{\"name\":\"tiny \\\"sweep\\\"\\n\",\"cells\":192,\"rate\":0.25,\
             \"bad\":null,\"stream\":true,\"groups\":[{\"block\":0}]}"
        );
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(json_array(Vec::<String>::new()), "[]");
    }

    #[test]
    fn json_floats_roundtrip_shortest_form() {
        // The determinism suite compares summaries as JSON strings, so the
        // formatting must be a function of the value alone.
        let one = JsonObject::new().f64("v", 1.0).finish();
        assert_eq!(one, "{\"v\":1}");
        let third = JsonObject::new().f64("v", 1.0 / 3.0).finish();
        let reparsed: f64 = third
            .trim_start_matches("{\"v\":")
            .trim_end_matches('}')
            .parse()
            .unwrap();
        assert_eq!(reparsed, 1.0 / 3.0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(percent(0.996), "99.6%");
        assert_eq!(percent(0.0), "0.0%");
        assert_eq!(bytes(100), "100 B");
        assert_eq!(bytes(2048), "2.0 KiB");
        assert_eq!(bytes(3 * 1024 * 1024), "3.0 MiB");
    }
}
