//! The campaign engine: declarative, parallel scenario matrices.
//!
//! The paper's evaluation (§IV–§V) is a matrix — models × inputs × sanitize
//! policies × isolation × layout × scrape modes × boards — and this module
//! turns each such matrix into data instead of hand-rolled loops:
//!
//! - [`CampaignSpec`] declares the axes.  Every axis defaults to a single
//!   neutral value, so a spec only names the dimensions it sweeps.
//! - [`CampaignSpec::expand`] produces the full cross product as seeded
//!   [`CampaignCell`]s in a fixed, documented order (independent of how the
//!   campaign is later scheduled).
//! - [`CampaignSpec::run`] executes the cells on a scoped worker pool
//!   (`--jobs`-style concurrency), sharing one pre-built
//!   [`ProfileDatabase`] per board instead of profiling in every cell, and
//!   aggregates per-cell [`ScenarioMetrics`] into a [`CampaignReport`].
//!
//! Cell results are stored by cell index, so a report is **byte-identical
//! regardless of worker count**: only the wall-clock fields differ between a
//! serial and a 16-way run.
//!
//! # Example
//!
//! ```
//! use msa_core::campaign::{CampaignSpec, InputKind};
//! use petalinux_sim::BoardConfig;
//! use vitis_ai_sim::ModelKind;
//! use zynq_dram::SanitizePolicy;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let report = CampaignSpec::new("tiny", BoardConfig::tiny_for_tests())
//!     .with_models(vec![ModelKind::SqueezeNet, ModelKind::MobileNetV2])
//!     .with_inputs(vec![InputKind::Corrupted])
//!     .with_sanitize_policies(vec![SanitizePolicy::None, SanitizePolicy::SelectiveScrub])
//!     .run()?;
//! assert_eq!(report.len(), 4);
//! // Unsanitized cells leak; scrubbed cells do not.
//! assert_eq!(report.identified_count(), 2);
//! # Ok(())
//! # }
//! ```

// Lint audit: address arithmetic here is bounds-checked against the
// DRAM window before any narrowing cast or direct index; offsets are
// derived from validated window-relative coordinates.
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

pub mod stream;

pub use stream::{
    Adversary, AxisGroups, CampaignAccumulator, CampaignSummary, GroupProgress, GroupSummary,
    StreamConfig,
};

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use petalinux_sim::{BoardConfig, IsolationPolicy};
use serde::{Deserialize, Serialize};
use vitis_ai_sim::{Image, ModelKind};
use zynq_dram::{RemanenceModel, SanitizePolicy};
use zynq_mmu::{AllocationOrder, AslrMode};

use crate::attack::{AttackConfig, ScrapeMode};
use crate::error::AttackError;
use crate::metrics::StepTimings;
use crate::profile::{ProfileDatabase, Profiler};
use crate::scenario::{AttackScenario, ScenarioMetrics, ScenarioResult, VictimSchedule};

/// Which input image the victim feeds its model — a campaign axis standing in
/// for "input kind" in the paper's matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum InputKind {
    /// The sample photograph (the paper's benign input).
    #[default]
    SamplePhoto,
    /// The all-`0xFFFFFF` corrupted image (the paper's marked input).
    Corrupted,
    /// The `0x555555` profiling sentinel.
    Sentinel,
}

impl InputKind {
    /// Materializes the input at `model`'s native dimensions.
    pub fn materialize(self, model: ModelKind) -> Image {
        let (w, h) = model.input_dims();
        match self {
            InputKind::SamplePhoto => Image::sample_photo(w, h),
            InputKind::Corrupted => Image::corrupted(w, h),
            InputKind::Sentinel => Image::profiling_sentinel(w, h),
        }
    }
}

impl std::fmt::Display for InputKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InputKind::SamplePhoto => write!(f, "sample-photo"),
            InputKind::Corrupted => write!(f, "corrupted"),
            InputKind::Sentinel => write!(f, "sentinel"),
        }
    }
}

/// One fully resolved point of the campaign matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignCell {
    /// Position of the cell in the spec's deterministic expansion order.
    pub index: usize,
    /// Position of the cell's board in the spec's board axis (the key the
    /// engine shares profile databases by — names need not be unique).
    pub board_index: usize,
    /// Name of the board axis entry this cell runs on.
    pub board_name: String,
    /// The fully resolved board configuration (axis overrides applied).
    pub board: BoardConfig,
    /// The victim model.
    pub model: ModelKind,
    /// The victim input kind.
    pub input: InputKind,
    /// The effective sanitize policy.
    pub sanitize: SanitizePolicy,
    /// The effective isolation policy.
    pub isolation: IsolationPolicy,
    /// The effective virtual-address randomization mode.
    pub aslr: AslrMode,
    /// The effective physical allocation order.
    pub allocation_order: AllocationOrder,
    /// The effective DRAM remanence decay model.
    pub remanence: RemanenceModel,
    /// The attacker's scraping strategy.
    pub scrape_mode: ScrapeMode,
    /// The victim-traffic schedule.
    pub schedule: VictimSchedule,
    /// Whether the decay-tolerant reconstruction layer is enabled for this
    /// cell (`None` when the spec does not sweep the axis — the base attack
    /// config's setting applies).
    pub reconstruct: Option<bool>,
    /// The per-cell seed (spec seed mixed with the cell index).
    pub seed: u64,
}

impl CampaignCell {
    /// A compact human-readable label (used by progress output and tables).
    /// The remanence model is appended only when it deviates from the perfect
    /// default, so pre-remanence labels are unchanged.
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}/{}/{}/{}/{}/{}",
            self.board_name, self.model, self.input, self.sanitize, self.scrape_mode, self.schedule
        );
        if !self.remanence.is_perfect() {
            label.push('/');
            label.push_str(&self.remanence.to_string());
        }
        // Swept reconstruction is called out either way; unswept cells keep
        // their pre-reconstruction labels.
        match self.reconstruct {
            Some(true) => label.push_str("/reconstruct"),
            Some(false) => label.push_str("/exact"),
            None => {}
        }
        label
    }

    /// Produces a deterministic synthetic [`CellRecord`] derived purely
    /// from the cell's seed — no scenario executes.
    ///
    /// This is the executor the scale and property suites plug into
    /// [`CampaignSpec::stream_with_executor`]: it costs microseconds per
    /// cell, so million-cell matrices exercise the scheduling and folding
    /// machinery in test time.  Roughly one cell in seven reports as
    /// blocked (seed-derived), so both fold paths stay covered.
    pub fn synthetic_record(&self) -> CellRecord {
        let blocked = self.seed.is_multiple_of(7);
        let metrics = (!blocked).then(|| ScenarioMetrics::synthetic(self.seed));
        CellRecord {
            cell: self.clone(),
            result: if blocked {
                ScenarioResult::Blocked {
                    step: "synthetic".into(),
                }
            } else {
                ScenarioResult::Completed
            },
            metrics,
            timings: None,
            elapsed: Duration::ZERO,
        }
    }

    /// Builds the [`AttackScenario`] this cell describes, attaching the
    /// campaign-shared profile database.
    pub fn scenario(&self, profiles: ProfileDatabase, base: &AttackConfig) -> AttackScenario {
        AttackScenario::new(self.board, self.model)
            .with_input(self.input.materialize(self.model))
            .with_attack_config(AttackConfig {
                scrape_mode: self.scrape_mode,
                reconstruct: self.reconstruct.unwrap_or(base.reconstruct),
                ..base.clone()
            })
            .with_profiles(profiles)
            .with_schedule(self.schedule)
            .with_seed(self.seed)
    }
}

/// A declarative scenario matrix plus execution knobs.
///
/// Axis semantics: `models`, `inputs`, `scrape_modes` and `schedules` always
/// have at least one value.  The five board-override axes (`sanitize`,
/// `isolation`, `aslr`, `allocation`, `remanence`) are optional — when
/// unset, each board keeps its own configured policy, so presets pass
/// through untouched.
///
/// Expansion order (slowest-varying first): board → model → input →
/// sanitize → isolation → aslr → allocation order → remanence → scrape mode
/// → schedule → reconstruction.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    boards: Vec<(String, BoardConfig)>,
    models: Vec<ModelKind>,
    inputs: Vec<InputKind>,
    sanitize_policies: Option<Vec<SanitizePolicy>>,
    isolation_policies: Option<Vec<IsolationPolicy>>,
    aslr_modes: Option<Vec<AslrMode>>,
    allocation_orders: Option<Vec<AllocationOrder>>,
    remanence_models: Option<Vec<RemanenceModel>>,
    scrape_modes: Vec<ScrapeMode>,
    schedules: Vec<VictimSchedule>,
    reconstruct_modes: Option<Vec<bool>>,
    attack_config: AttackConfig,
    seed: u64,
    jobs: Option<usize>,
}

impl CampaignSpec {
    /// Creates a spec over one named board with every axis at its default
    /// single value (one cell).
    pub fn new(board_name: impl Into<String>, board: BoardConfig) -> Self {
        CampaignSpec::over_boards(vec![(board_name.into(), board)])
    }

    /// Creates a spec over an explicit board axis with every other axis at
    /// its default single value.
    ///
    /// Unlike [`CampaignSpec::new`], the board axis may be empty — specs
    /// generated from external matrices can legitimately collapse to zero
    /// boards.  Such a spec expands to zero cells, and
    /// [`CampaignSpec::run`] refuses it with the typed
    /// [`AttackError::EmptyCampaign`] instead of producing a degenerate
    /// report.
    pub fn over_boards(boards: Vec<(String, BoardConfig)>) -> Self {
        CampaignSpec {
            boards,
            models: vec![ModelKind::Resnet50Pt],
            inputs: vec![InputKind::SamplePhoto],
            sanitize_policies: None,
            isolation_policies: None,
            aslr_modes: None,
            allocation_orders: None,
            remanence_models: None,
            scrape_modes: vec![ScrapeMode::ContiguousRange],
            schedules: vec![VictimSchedule::Single],
            reconstruct_modes: None,
            attack_config: AttackConfig::default(),
            seed: 0,
            jobs: None,
        }
    }

    /// Adds another board axis entry.
    pub fn with_board(mut self, name: impl Into<String>, board: BoardConfig) -> Self {
        self.boards.push((name.into(), board));
        self
    }

    /// Sets the victim-model axis.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn with_models(mut self, models: Vec<ModelKind>) -> Self {
        assert!(!models.is_empty(), "model axis must not be empty");
        self.models = models;
        self
    }

    /// Sets the input-kind axis.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn with_inputs(mut self, inputs: Vec<InputKind>) -> Self {
        assert!(!inputs.is_empty(), "input axis must not be empty");
        self.inputs = inputs;
        self
    }

    /// Sweeps the sanitize policy over `policies` (overriding each board's
    /// own policy).
    pub fn with_sanitize_policies(mut self, policies: Vec<SanitizePolicy>) -> Self {
        assert!(!policies.is_empty(), "sanitize axis must not be empty");
        self.sanitize_policies = Some(policies);
        self
    }

    /// Sweeps the isolation policy over `policies`.
    pub fn with_isolation_policies(mut self, policies: Vec<IsolationPolicy>) -> Self {
        assert!(!policies.is_empty(), "isolation axis must not be empty");
        self.isolation_policies = Some(policies);
        self
    }

    /// Sweeps virtual-address randomization over `modes`.
    pub fn with_aslr_modes(mut self, modes: Vec<AslrMode>) -> Self {
        assert!(!modes.is_empty(), "aslr axis must not be empty");
        self.aslr_modes = Some(modes);
        self
    }

    /// Sweeps the physical allocation order over `orders`.
    pub fn with_allocation_orders(mut self, orders: Vec<AllocationOrder>) -> Self {
        assert!(!orders.is_empty(), "allocation axis must not be empty");
        self.allocation_orders = Some(orders);
        self
    }

    /// Sweeps the DRAM remanence decay model over `models` (overriding each
    /// board's own model) — the Pentimento-style analog-retention axis.
    ///
    /// Decay is seeded per cell and advanced on logical ticks only, so the
    /// swept campaign stays byte-identical across worker counts, and a
    /// [`RemanenceModel::Perfect`] cell reproduces the pre-remanence results
    /// bit-exactly.
    pub fn with_remanence_models(mut self, models: Vec<RemanenceModel>) -> Self {
        assert!(!models.is_empty(), "remanence axis must not be empty");
        self.remanence_models = Some(models);
        self
    }

    /// Sets the scrape-mode axis.
    ///
    /// # Panics
    ///
    /// Panics if `modes` is empty.
    pub fn with_scrape_modes(mut self, modes: Vec<ScrapeMode>) -> Self {
        assert!(!modes.is_empty(), "scrape axis must not be empty");
        self.scrape_modes = modes;
        self
    }

    /// Sets the scrape-mode axis to the bank-striped attacker at `workers`
    /// concurrent bank readers ([`ScrapeMode::BankStriped`]).
    ///
    /// Bank striping changes only the scrape wall clock, never the bytes
    /// recovered, so a campaign swept this way stays byte-identical to its
    /// contiguous-range twin (pinned by `tests/campaign_determinism.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_bank_striped_scrape(self, workers: usize) -> Self {
        assert!(workers > 0, "bank-striped scrape needs at least one worker");
        self.with_scrape_modes(vec![ScrapeMode::BankStriped { workers }])
    }

    /// Sets the victim-schedule axis.
    ///
    /// # Panics
    ///
    /// Panics if `schedules` is empty.
    pub fn with_schedules(mut self, schedules: Vec<VictimSchedule>) -> Self {
        assert!(!schedules.is_empty(), "schedule axis must not be empty");
        self.schedules = schedules;
        self
    }

    /// Sweeps the decay-tolerant reconstruction layer
    /// ([`AttackConfig::reconstruct`]) over `modes` — typically
    /// `vec![false, true]` so fleet sweeps compare raw exact-matching
    /// recovery against reconstructed recovery cell for cell.
    ///
    /// When unset (the default) the axis contributes no cells and the base
    /// attack config's setting applies, so pre-reconstruction campaigns and
    /// their seeds are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `modes` is empty.
    pub fn with_reconstruction(mut self, modes: Vec<bool>) -> Self {
        assert!(!modes.is_empty(), "reconstruction axis must not be empty");
        self.reconstruct_modes = Some(modes);
        self
    }

    /// Sets the base attack configuration (each cell overlays its scrape
    /// mode on top).
    pub fn with_attack_config(mut self, config: AttackConfig) -> Self {
        self.attack_config = config;
        self
    }

    /// Sets the campaign seed mixed into every cell's seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the worker pool at `jobs` threads (`--jobs` style).  Defaults to
    /// the machine's available parallelism.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs.max(1));
        self
    }

    /// Number of cells the spec expands to.
    pub fn cell_count(&self) -> usize {
        self.boards.len()
            * self.models.len()
            * self.inputs.len()
            * self.sanitize_policies.as_ref().map_or(1, Vec::len)
            * self.isolation_policies.as_ref().map_or(1, Vec::len)
            * self.aslr_modes.as_ref().map_or(1, Vec::len)
            * self.allocation_orders.as_ref().map_or(1, Vec::len)
            * self.remanence_models.as_ref().map_or(1, Vec::len)
            * self.scrape_modes.len()
            * self.schedules.len()
            * self.reconstruct_modes.as_ref().map_or(1, Vec::len)
    }

    /// Expands the matrix into cells, in the documented deterministic order.
    ///
    /// This materializes the whole matrix at once; fleet-scale callers
    /// should prefer the lazy [`CampaignSpec::cells`] walk (the streaming
    /// engine never calls `expand`).
    pub fn expand(&self) -> Vec<CampaignCell> {
        self.cells().collect()
    }

    /// Lazily walks the axis cross-product in the documented deterministic
    /// order without allocating the matrix: each `next()` call materializes
    /// exactly one seeded [`CampaignCell`].
    ///
    /// `spec.cells().collect::<Vec<_>>()` equals `spec.expand()` cell for
    /// cell; the iterator is exact-size and double-ended.
    pub fn cells(&self) -> Cells<'_> {
        Cells {
            spec: self,
            next: 0,
            end: self.cell_count(),
        }
    }

    /// Materializes the single cell at `index` of the deterministic
    /// expansion order, in O(axes) time (a mixed-radix decode of `index` —
    /// no part of the matrix is allocated).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.cell_count()`.
    pub fn cell_at(&self, index: usize) -> CampaignCell {
        assert!(
            index < self.cell_count(),
            "cell index {index} out of range for a {}-cell campaign",
            self.cell_count()
        );
        // Decode the fastest-varying axis first — the reverse of the
        // documented slowest-first expansion order.
        let mut rem = index;
        let reconstruct = optional_pick(&self.reconstruct_modes, &mut rem);
        let schedule = self.schedules[axis_index(self.schedules.len(), &mut rem)];
        let scrape_mode = self.scrape_modes[axis_index(self.scrape_modes.len(), &mut rem)];
        let remanence = optional_pick(&self.remanence_models, &mut rem);
        let order = optional_pick(&self.allocation_orders, &mut rem);
        let aslr = optional_pick(&self.aslr_modes, &mut rem);
        let isolation = optional_pick(&self.isolation_policies, &mut rem);
        let sanitize = optional_pick(&self.sanitize_policies, &mut rem);
        let input = self.inputs[axis_index(self.inputs.len(), &mut rem)];
        let model = self.models[axis_index(self.models.len(), &mut rem)];
        let board_index = rem;
        let (board_name, base_board) = &self.boards[board_index];
        let mut board = *base_board;
        if let Some(p) = sanitize {
            board = board.with_sanitize_policy(p);
        }
        if let Some(p) = isolation {
            board = board.with_isolation(p);
        }
        if let Some(m) = aslr {
            board = board.with_aslr(m);
        }
        if let Some(o) = order {
            board = board.with_allocation_order(o);
        }
        if let Some(r) = remanence {
            board = board.with_remanence(r);
        }
        CampaignCell {
            index,
            board_index,
            board_name: board_name.clone(),
            board,
            model,
            input,
            sanitize: board.sanitize_policy(),
            isolation: board.isolation(),
            aslr: board.aslr(),
            allocation_order: board.allocation_order(),
            remanence: board.remanence(),
            scrape_mode,
            schedule,
            reconstruct,
            seed: mix_seed(self.seed, index as u64),
        }
    }

    /// Runs the campaign on the default worker count (the configured
    /// `--jobs` cap, else the machine's available parallelism).
    ///
    /// # Errors
    ///
    /// Returns the first (lowest cell index) hard error; isolation denials
    /// are data ([`ScenarioResult::Blocked`]), not errors.  A spec expanding
    /// to zero cells is [`AttackError::EmptyCampaign`].
    pub fn run(&self) -> Result<CampaignReport, AttackError> {
        let workers = self.jobs.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        self.run_with_workers(workers)
    }

    /// Runs the campaign on exactly `workers` pool threads.
    ///
    /// This is a thin batch wrapper over the streaming engine: the visitor
    /// collects every [`CellRecord`] into the report.  Records arrive in
    /// cell-index order, so the report content does not depend on `workers`.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::EmptyCampaign`] when the axes expand to zero
    /// cells (e.g. an empty board axis from [`CampaignSpec::over_boards`]),
    /// otherwise the first (lowest cell index) hard error.
    pub fn run_with_workers(&self, workers: usize) -> Result<CampaignReport, AttackError> {
        let mut records = Vec::with_capacity(self.cell_count());
        let summary =
            self.stream_cells(StreamConfig::default().with_workers(workers), |record| {
                records.push(record);
                Ok(())
            })?;
        Ok(CampaignReport {
            cells: records,
            workers: summary.workers,
            total_elapsed: summary.total_elapsed,
        })
    }

    /// Streams the campaign under `config`, folding per-cell metrics into a
    /// [`CampaignSummary`] as cells complete — peak memory is bounded by the
    /// in-flight window (O(workers) cells), never by the matrix size.
    ///
    /// The fold is normalized to cell-index order, so the summary's
    /// deterministic surface ([`CampaignSummary::deterministic_json`]) is
    /// byte-identical regardless of worker count or completion order.
    ///
    /// # Errors
    ///
    /// [`AttackError::EmptyCampaign`] for a zero-cell spec, otherwise the
    /// first (lowest cell index) hard error.
    pub fn stream(&self, config: StreamConfig) -> Result<CampaignSummary, AttackError> {
        self.stream_observed(config, |_| Ok(()), |_| {})
    }

    /// Streams the campaign, invoking `progress` after each folded cell
    /// group (in group order) — the hook behind `--stream` NDJSON output.
    pub fn stream_with_progress<P>(
        &self,
        config: StreamConfig,
        progress: P,
    ) -> Result<CampaignSummary, AttackError>
    where
        P: FnMut(&GroupProgress),
    {
        self.stream_observed(config, |_| Ok(()), progress)
    }

    /// Streams the campaign, handing every [`CellRecord`] to `visit` in
    /// strict cell-index order without retaining it — the constant-memory
    /// replacement for `run()?.cells()` iteration.
    ///
    /// A `visit` error aborts the stream and is returned as-is.
    pub fn stream_cells<V>(
        &self,
        config: StreamConfig,
        visit: V,
    ) -> Result<CampaignSummary, AttackError>
    where
        V: FnMut(CellRecord) -> Result<(), AttackError>,
    {
        self.stream_observed(config, visit, |_| {})
    }

    /// Streams the campaign with both a per-cell visitor and a per-group
    /// progress hook (each called in deterministic order).
    pub fn stream_observed<V, P>(
        &self,
        config: StreamConfig,
        visit: V,
        progress: P,
    ) -> Result<CampaignSummary, AttackError>
    where
        V: FnMut(CellRecord) -> Result<(), AttackError>,
        P: FnMut(&GroupProgress),
    {
        // One offline profiling pass per board axis entry, shared by every
        // cell on that board.  Profiling replays the board preset on the
        // attacker's own (permissive, pre-defense) hardware.
        let profiles: Vec<ProfileDatabase> = self
            .boards
            .iter()
            .map(|(_, board)| {
                Profiler::new(board.with_isolation(IsolationPolicy::Permissive)).profile_all()
            })
            .collect();
        let executor =
            |cell: &CampaignCell| run_cell(cell, &profiles[cell.board_index], &self.attack_config);
        stream::run(self, &config, &executor, visit, progress)
    }

    /// Streams the campaign through a caller-supplied cell executor instead
    /// of the real scenario pipeline.
    ///
    /// This is the engine's test seam: the determinism, property and scale
    /// suites drive million-cell matrices through synthetic executors
    /// ([`CampaignCell::synthetic_record`]) that cost microseconds per cell,
    /// exercising the scheduling/folding machinery without the scenario
    /// cost.
    pub fn stream_with_executor<E, V, P>(
        &self,
        config: StreamConfig,
        executor: E,
        visit: V,
        progress: P,
    ) -> Result<CampaignSummary, AttackError>
    where
        E: Fn(&CampaignCell) -> Result<CellRecord, AttackError> + Sync,
        V: FnMut(CellRecord) -> Result<(), AttackError>,
        P: FnMut(&GroupProgress),
    {
        stream::run(self, &config, &executor, visit, progress)
    }
}

/// Decodes the next mixed-radix digit of a cell index: the in-axis position
/// for an axis of `len` values, consuming it from `rem`.
fn axis_index(len: usize, rem: &mut usize) -> usize {
    let i = *rem % len;
    *rem /= len;
    i
}

/// Decodes an optional override axis digit: absent → `None` (inherit the
/// board's own setting, zero index digits), present → the selected value.
fn optional_pick<T: Copy>(axis: &Option<Vec<T>>, rem: &mut usize) -> Option<T> {
    axis.as_ref()
        .map(|values| values[axis_index(values.len(), rem)])
}

/// Lazy iterator over a spec's cells in deterministic expansion order — see
/// [`CampaignSpec::cells`].
#[derive(Debug, Clone)]
pub struct Cells<'a> {
    spec: &'a CampaignSpec,
    next: usize,
    end: usize,
}

impl Iterator for Cells<'_> {
    type Item = CampaignCell;

    fn next(&mut self) -> Option<CampaignCell> {
        if self.next >= self.end {
            return None;
        }
        let cell = self.spec.cell_at(self.next);
        self.next += 1;
        Some(cell)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.end - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Cells<'_> {}

impl DoubleEndedIterator for Cells<'_> {
    fn next_back(&mut self) -> Option<CampaignCell> {
        if self.next >= self.end {
            return None;
        }
        self.end -= 1;
        Some(self.spec.cell_at(self.end))
    }
}

/// splitmix64 mix of the campaign seed and the cell index.
fn mix_seed(seed: u64, index: u64) -> u64 {
    crate::scenario::splitmix64(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn run_cell(
    cell: &CampaignCell,
    profiles: &ProfileDatabase,
    base_config: &AttackConfig,
) -> Result<CellRecord, AttackError> {
    let started = Instant::now();
    let scenario = cell.scenario(profiles.clone(), base_config);
    let (result, outcome) = scenario.execute_allow_blocked()?;
    Ok(CellRecord {
        cell: cell.clone(),
        metrics: outcome.as_ref().map(|o| o.metrics()),
        timings: outcome.map(|o| o.attack().timings),
        result,
        elapsed: started.elapsed(),
    })
}

/// The result of one campaign cell.
#[derive(Debug, Clone)]
pub struct CellRecord {
    /// The cell that ran.
    pub cell: CampaignCell,
    /// Whether the attack completed or was blocked (and where).
    pub result: ScenarioResult,
    /// The deterministic scenario metrics (`None` when blocked).
    pub metrics: Option<ScenarioMetrics>,
    /// Per-step attack timings (`None` when blocked); wall-clock, so not
    /// part of the deterministic comparison surface.
    pub timings: Option<StepTimings>,
    /// Wall-clock duration of the whole cell (boot to scored outcome).
    pub elapsed: Duration,
}

impl CellRecord {
    /// `true` when the attack ran to completion.
    pub fn completed(&self) -> bool {
        matches!(self.result, ScenarioResult::Completed)
    }

    /// The step the isolation policy denied, when the cell was blocked.
    pub fn blocked_step(&self) -> Option<&str> {
        match &self.result {
            ScenarioResult::Completed => None,
            ScenarioResult::Blocked { step } => Some(step),
        }
    }

    /// `true` when the attack correctly identified the victim model.
    pub fn identified(&self) -> bool {
        self.metrics.as_ref().is_some_and(|m| m.model_identified)
    }

    /// Pixel recovery rate (0.0 for blocked cells).
    pub fn pixel_recovery(&self) -> f64 {
        self.metrics.as_ref().map_or(0.0, |m| m.pixel_recovery)
    }

    /// The reproducible part of the record — what must be identical across
    /// worker counts and repeated same-seed runs.
    pub fn deterministic_view(&self) -> (&CampaignCell, &ScenarioResult, Option<&ScenarioMetrics>) {
        (&self.cell, &self.result, self.metrics.as_ref())
    }
}

/// Success/recovery/blocked aggregates over one group of cells.
///
/// Each mean is computed over its *relevant* denominator: blocked cells
/// (which never produced metrics) no longer drag `mean_pixel_recovery`
/// toward zero, and cells without a revival schedule no longer dilute
/// `mean_revival_inheritance`.  The old blocked-cells-count-as-zero
/// semantics survives only on the documented report-wide
/// [`CampaignReport::mean_pixel_recovery`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GroupStats {
    /// Cells in the group.
    pub cells: usize,
    /// Cells whose attack ran to completion.
    pub completed: usize,
    /// Cells blocked by the isolation policy.
    pub blocked: usize,
    /// Cells whose attack identified the correct model.
    pub identified: usize,
    /// Mean pixel recovery across the group's **completed** cells (0.0 when
    /// every cell was blocked).
    pub mean_pixel_recovery: f64,
    /// Total residue frames left across the group.
    pub residue_frames: usize,
    /// Total victim residue frames lost (overwritten, re-allocated or
    /// scrubbed) before the scrape could read them.
    pub residue_frames_lost: usize,
    /// Total residue frames inherited by revived successor processes.
    pub revival_inherited_frames: usize,
    /// Completed cells that ran a [`VictimSchedule::Revival`] schedule — the
    /// denominator of `mean_revival_inheritance`.
    pub revival_cells: usize,
    /// Mean revival inheritance rate across the group's **revival** cells
    /// (0.0 when the group has none).
    pub mean_revival_inheritance: f64,
    /// Total residue bits the remanence decay view flipped away across the
    /// group (zero under the perfect model).
    pub residue_bits_flipped: u64,
    /// Mean remanence decayed-recovery rate
    /// ([`crate::scenario::ResidueLifetime::decayed_recovery_rate`]) across
    /// the group's **completed** cells (1.0 under the perfect model).
    pub mean_decayed_recovery: f64,
    /// Sum of squared deviations (Welford/Chan M2) of pixel recovery across
    /// the group's completed cells — `pixel_recovery_variance()` reads it.
    pub pixel_recovery_m2: f64,
}

impl GroupStats {
    /// Folds one cell record into the running aggregates.
    ///
    /// Means are maintained incrementally (Welford's algorithm), so the
    /// struct is always in its final form — there is no separate
    /// finalization pass, and a group can be read mid-stream.
    pub fn absorb(&mut self, record: &CellRecord) {
        self.cells += 1;
        if record.completed() {
            self.completed += 1;
            let recovery = record.pixel_recovery();
            let delta = recovery - self.mean_pixel_recovery;
            self.mean_pixel_recovery += delta / self.completed as f64;
            self.pixel_recovery_m2 += delta * (recovery - self.mean_pixel_recovery);
        } else {
            self.blocked += 1;
        }
        if record.identified() {
            self.identified += 1;
        }
        self.residue_frames += record.metrics.as_ref().map_or(0, |m| m.residue_frames);
        if let Some(metrics) = &record.metrics {
            let lifetime = metrics.residue_lifetime;
            self.residue_frames_lost += lifetime.frames_lost_before_scrape;
            self.revival_inherited_frames += lifetime.revival_inherited_frames;
            self.residue_bits_flipped += lifetime.residue_bits_flipped;
            // Metrics exist exactly for completed cells, so `completed` is
            // this mean's sample count.
            let delta = lifetime.decayed_recovery_rate() - self.mean_decayed_recovery;
            self.mean_decayed_recovery += delta / self.completed as f64;
            if matches!(record.cell.schedule, VictimSchedule::Revival { .. }) {
                self.revival_cells += 1;
                let delta = lifetime.inheritance_rate() - self.mean_revival_inheritance;
                self.mean_revival_inheritance += delta / self.revival_cells as f64;
            }
        }
    }

    /// Merges another group into this one with count-weighted mean/variance
    /// combination (Chan et al.'s parallel form), so partial aggregates can
    /// be folded in any tree shape without magnitude-dependent drift — the
    /// naive `(mean_a + mean_b) / 2` midpoint is wrong whenever the sides
    /// hold different cell counts.
    pub fn merge(&mut self, other: &GroupStats) {
        if other.completed > 0 {
            let n_self = self.completed as f64;
            let n_other = other.completed as f64;
            let n = n_self + n_other;
            let delta = other.mean_pixel_recovery - self.mean_pixel_recovery;
            self.mean_pixel_recovery += delta * n_other / n;
            self.pixel_recovery_m2 +=
                other.pixel_recovery_m2 + delta * delta * n_self * n_other / n;
            let delta = other.mean_decayed_recovery - self.mean_decayed_recovery;
            self.mean_decayed_recovery += delta * n_other / n;
        }
        if other.revival_cells > 0 {
            let n_self = self.revival_cells as f64;
            let n_other = other.revival_cells as f64;
            let delta = other.mean_revival_inheritance - self.mean_revival_inheritance;
            self.mean_revival_inheritance += delta * n_other / (n_self + n_other);
        }
        self.cells += other.cells;
        self.completed += other.completed;
        self.blocked += other.blocked;
        self.identified += other.identified;
        self.revival_cells += other.revival_cells;
        self.residue_frames += other.residue_frames;
        self.residue_frames_lost += other.residue_frames_lost;
        self.revival_inherited_frames += other.revival_inherited_frames;
        self.residue_bits_flipped += other.residue_bits_flipped;
    }

    /// Population variance of pixel recovery across the group's completed
    /// cells (0.0 with fewer than two samples).
    pub fn pixel_recovery_variance(&self) -> f64 {
        if self.completed < 2 {
            0.0
        } else {
            self.pixel_recovery_m2 / self.completed as f64
        }
    }

    /// Fraction of the group's cells that identified the victim model.
    pub fn identification_rate(&self) -> f64 {
        if self.cells == 0 {
            0.0
        } else {
            self.identified as f64 / self.cells as f64
        }
    }

    /// Fraction of the group's cells blocked by isolation.
    pub fn blocked_rate(&self) -> f64 {
        if self.cells == 0 {
            0.0
        } else {
            self.blocked as f64 / self.cells as f64
        }
    }
}

/// Wall-clock statistics of a campaign run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WallClockStats {
    /// End-to-end campaign duration (includes shared profiling).
    pub total: Duration,
    /// Sum of per-cell durations (the serial-equivalent work).
    pub cells_total: Duration,
    /// Fastest cell.
    pub min_cell: Duration,
    /// Slowest cell.
    pub max_cell: Duration,
    /// Mean cell duration.
    pub mean_cell: Duration,
}

/// Aggregated result of a campaign run: per-cell records in deterministic
/// cell order plus grouped success/recovery/blocked rates and wall-clock
/// statistics.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    cells: Vec<CellRecord>,
    workers: usize,
    total_elapsed: Duration,
}

impl CampaignReport {
    /// The per-cell records, ordered by cell index (worker-count
    /// independent).
    pub fn cells(&self) -> &[CellRecord] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when the campaign had no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Worker threads the run used.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Cells whose attack ran to completion.
    pub fn completed_count(&self) -> usize {
        self.cells.iter().filter(|c| c.completed()).count()
    }

    /// Cells blocked by the isolation policy.
    pub fn blocked_count(&self) -> usize {
        self.len() - self.completed_count()
    }

    /// Cells that identified the correct victim model.
    pub fn identified_count(&self) -> usize {
        self.cells.iter().filter(|c| c.identified()).count()
    }

    /// Mean pixel recovery across all cells (blocked cells count as 0).
    pub fn mean_pixel_recovery(&self) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells
            .iter()
            .map(CellRecord::pixel_recovery)
            .sum::<f64>()
            / self.len() as f64
    }

    /// Groups cells by `key` and aggregates each group, in key order.
    pub fn group_by<K, F>(&self, key: F) -> BTreeMap<K, GroupStats>
    where
        K: Ord,
        F: Fn(&CellRecord) -> K,
    {
        let mut groups: BTreeMap<K, GroupStats> = BTreeMap::new();
        for record in &self.cells {
            groups.entry(key(record)).or_default().absorb(record);
        }
        groups
    }

    /// Re-derives the streaming [`CampaignSummary`] from the batch records,
    /// folding with the same [`CampaignAccumulator`] in the same cell order
    /// — so batch and streaming runs of one spec agree field for field on
    /// the deterministic surface.
    pub fn summary(&self) -> CampaignSummary {
        let mut accumulator = CampaignAccumulator::new();
        for record in &self.cells {
            accumulator.absorb(record);
        }
        accumulator.into_summary(self.workers, 0, self.len(), self.total_elapsed, Vec::new())
    }

    /// Wall-clock statistics of the run.
    pub fn wall_clock(&self) -> WallClockStats {
        if self.cells.is_empty() {
            return WallClockStats {
                total: self.total_elapsed,
                ..WallClockStats::default()
            };
        }
        let cells_total: Duration = self.cells.iter().map(|c| c.elapsed).sum();
        WallClockStats {
            total: self.total_elapsed,
            cells_total,
            min_cell: self.cells.iter().map(|c| c.elapsed).min().unwrap(),
            max_cell: self.cells.iter().map(|c| c.elapsed).max().unwrap(),
            mean_cell: cells_total / self.cells.len() as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec::new("tiny", BoardConfig::tiny_for_tests())
    }

    #[test]
    fn default_spec_is_one_cell() {
        let spec = tiny_spec();
        assert_eq!(spec.cell_count(), 1);
        let cells = spec.expand();
        assert_eq!(cells.len(), 1);
        let cell = &cells[0];
        assert_eq!(cell.index, 0);
        assert_eq!(cell.board_name, "tiny");
        assert_eq!(cell.model, ModelKind::Resnet50Pt);
        assert_eq!(cell.input, InputKind::SamplePhoto);
        // Unset override axes inherit the board's own policies.
        assert_eq!(cell.sanitize, SanitizePolicy::None);
        assert_eq!(cell.isolation, IsolationPolicy::Permissive);
        assert_eq!(cell.remanence, zynq_dram::RemanenceModel::Perfect);
        assert_eq!(cell.schedule, VictimSchedule::Single);
    }

    #[test]
    fn expansion_order_and_seeds_are_deterministic() {
        let spec = tiny_spec()
            .with_models(vec![ModelKind::SqueezeNet, ModelKind::MobileNetV2])
            .with_inputs(vec![InputKind::SamplePhoto, InputKind::Corrupted])
            .with_scrape_modes(vec![ScrapeMode::ContiguousRange, ScrapeMode::PerPage])
            .with_seed(99);
        assert_eq!(spec.cell_count(), 8);
        let a = spec.expand();
        let b = spec.expand();
        assert_eq!(a, b);
        // Model varies slowest, scrape mode fastest.
        assert_eq!(a[0].model, ModelKind::SqueezeNet);
        assert_eq!(a[3].model, ModelKind::SqueezeNet);
        assert_eq!(a[4].model, ModelKind::MobileNetV2);
        assert_eq!(a[0].scrape_mode, ScrapeMode::ContiguousRange);
        assert_eq!(a[1].scrape_mode, ScrapeMode::PerPage);
        assert_eq!(a[1].input, InputKind::SamplePhoto);
        assert_eq!(a[2].input, InputKind::Corrupted);
        // Seeds are index-mixed and distinct.
        assert!(a.windows(2).all(|w| w[0].seed != w[1].seed));
        // A different campaign seed yields different cell seeds.
        let other = tiny_spec().with_seed(100).expand();
        assert_ne!(other[0].seed, a[0].seed);
        // Labels mention the axes.
        assert!(a[0].label().contains("tiny/"));
        assert!(a[0].label().contains("squeezenet"));
    }

    #[test]
    fn board_override_axes_resolve_into_cells() {
        let spec = tiny_spec()
            .with_sanitize_policies(vec![SanitizePolicy::None, SanitizePolicy::ZeroOnFree])
            .with_isolation_policies(vec![IsolationPolicy::Permissive, IsolationPolicy::Confined]);
        let cells = spec.expand();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].sanitize, SanitizePolicy::None);
        assert_eq!(cells[0].isolation, IsolationPolicy::Permissive);
        assert_eq!(cells[1].isolation, IsolationPolicy::Confined);
        assert_eq!(cells[2].sanitize, SanitizePolicy::ZeroOnFree);
        for cell in &cells {
            assert_eq!(cell.board.sanitize_policy(), cell.sanitize);
            assert_eq!(cell.board.isolation(), cell.isolation);
        }
    }

    #[test]
    fn campaign_runs_and_aggregates() {
        let report = tiny_spec()
            .with_models(vec![ModelKind::SqueezeNet])
            .with_inputs(vec![InputKind::Corrupted])
            .with_sanitize_policies(vec![SanitizePolicy::None, SanitizePolicy::SelectiveScrub])
            .with_isolation_policies(vec![IsolationPolicy::Permissive, IsolationPolicy::Confined])
            .with_jobs(2)
            .run()
            .unwrap();
        assert_eq!(report.len(), 4);
        assert_eq!(report.workers(), 2);
        assert_eq!(report.completed_count(), 2);
        assert_eq!(report.blocked_count(), 2);
        // Only the unsanitized + permissive cell leaks.
        assert_eq!(report.identified_count(), 1);
        assert!(report.mean_pixel_recovery() > 0.0);
        assert!(!report.is_empty());

        let by_isolation = report.group_by(|r| r.cell.isolation.to_string());
        assert_eq!(by_isolation.len(), 2);
        let confined = &by_isolation["confined"];
        assert_eq!(confined.cells, 2);
        assert_eq!(confined.blocked, 2);
        assert_eq!(confined.blocked_rate(), 1.0);
        assert_eq!(confined.identification_rate(), 0.0);
        let permissive = &by_isolation["permissive"];
        assert_eq!(permissive.completed, 2);
        assert_eq!(permissive.identified, 1);

        let clock = report.wall_clock();
        assert!(clock.total > Duration::ZERO);
        assert!(clock.min_cell <= clock.max_cell);
        assert!(clock.cells_total >= clock.max_cell);

        let blocked: Vec<_> = report
            .cells()
            .iter()
            .filter_map(CellRecord::blocked_step)
            .collect();
        assert_eq!(blocked.len(), 2);
    }

    #[test]
    fn residue_lifetime_schedules_compose_with_the_sanitize_axis() {
        let report = tiny_spec()
            .with_models(vec![ModelKind::SqueezeNet])
            .with_inputs(vec![InputKind::Corrupted])
            .with_sanitize_policies(vec![SanitizePolicy::None, SanitizePolicy::ZeroOnFree])
            .with_schedules(vec![
                VictimSchedule::Revival {
                    successors: 1,
                    reuse_pid: true,
                },
                VictimSchedule::LiveTraffic {
                    tenants: 1,
                    churn_rate: 2,
                },
            ])
            .with_jobs(2)
            .run()
            .unwrap();
        assert_eq!(report.len(), 4);

        // Expansion order: sanitize varies slower than schedule.
        let lifetime = |i: usize| report.cells()[i].metrics.as_ref().unwrap().residue_lifetime;
        // Unsanitized revival: the successor inherited victim residue.
        assert!(lifetime(0).revival_inherited_frames > 0);
        // Unsanitized live traffic: churn ran during the scrape.
        assert!(lifetime(1).churn_events > 0);
        // Zero-on-free: revival inherits nothing — the defense closes the
        // resurrection window.
        assert_eq!(lifetime(2).revival_inherited_frames, 0);
        assert_eq!(lifetime(2).inheritance_rate(), 0.0);

        // Aggregation surfaces the same story per schedule group.
        let by_schedule = report.group_by(|r| r.cell.schedule.to_string());
        let revival = &by_schedule["revival(1,reuse-pid)"];
        assert!(revival.revival_inherited_frames > 0);
        assert!(revival.mean_revival_inheritance > 0.0);
        let live = &by_schedule["live-traffic(1,churn=2)"];
        assert_eq!(live.revival_inherited_frames, 0);
    }

    #[test]
    fn bank_striped_scrape_axis_matches_contiguous_results() {
        // The worker count of the bank-striped attacker is a wall-clock
        // knob, not a science knob: the recovered metrics are identical to
        // the plain contiguous attacker at every fan-out.
        let base = |spec: CampaignSpec| {
            spec.with_models(vec![ModelKind::SqueezeNet])
                .with_inputs(vec![InputKind::Corrupted])
                .with_seed(77)
        };
        let contiguous = base(tiny_spec()).run().unwrap();
        for workers in [1usize, 4] {
            let striped = base(tiny_spec())
                .with_bank_striped_scrape(workers)
                .run()
                .unwrap();
            assert_eq!(striped.len(), contiguous.len());
            assert_eq!(
                striped.cells()[0].cell.scrape_mode,
                ScrapeMode::BankStriped { workers }
            );
            assert!(striped.cells()[0]
                .cell
                .label()
                .contains(&format!("bank-striped({workers})")));
            assert_eq!(
                striped.cells()[0].metrics,
                contiguous.cells()[0].metrics,
                "workers={workers}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn bank_striped_scrape_rejects_zero_workers() {
        let _ = tiny_spec().with_bank_striped_scrape(0);
    }

    #[test]
    fn multi_snapshot_live_traffic_is_deterministic_across_worker_counts() {
        // Regression guard for the MultiSnapshot-under-LiveTraffic fix: the
        // snapshot ticks are pinned to the scrape start, so the fused dump —
        // and every downstream metric — must be byte-identical whether the
        // campaign runs on one worker or four.
        let spec = tiny_spec()
            .with_models(vec![ModelKind::SqueezeNet])
            .with_inputs(vec![InputKind::Corrupted])
            .with_scrape_modes(vec![
                ScrapeMode::MultiSnapshot { snapshots: 2 },
                ScrapeMode::MultiSnapshot { snapshots: 3 },
            ])
            .with_sanitize_policies(vec![SanitizePolicy::None, SanitizePolicy::ZeroOnFree])
            .with_schedules(vec![VictimSchedule::LiveTraffic {
                tenants: 2,
                churn_rate: 2,
            }])
            .with_seed(41);
        let single = spec.run_with_workers(1).unwrap();
        let fanned = spec.run_with_workers(4).unwrap();
        assert_eq!(single.len(), fanned.len());
        assert_eq!(fanned.workers(), 4);
        for (a, b) in single.cells().iter().zip(fanned.cells()) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.result, b.result);
            assert_eq!(a.metrics, b.metrics);
        }
        // The cells actually exercised the fixed path: live churn fired and
        // the scrape completed with a real multi-snapshot fusion.
        let metrics = single.cells()[0].metrics.as_ref().unwrap();
        assert!(metrics.residue_lifetime.churn_events > 0);
        assert!(metrics.bytes_scraped > 0);
    }

    #[test]
    fn group_stats_empty_rates() {
        let stats = GroupStats::default();
        assert_eq!(stats.identification_rate(), 0.0);
        assert_eq!(stats.blocked_rate(), 0.0);
    }

    /// A synthetic record for the aggregation tests: `recovery` is `None`
    /// for a blocked cell, `Some(rate)` for a completed one.
    fn synthetic_record(
        index: usize,
        schedule: VictimSchedule,
        recovery: Option<f64>,
        inheritance: Option<(usize, usize)>,
    ) -> CellRecord {
        use crate::scenario::ResidueLifetime;
        let spec = tiny_spec();
        let mut cell = spec.expand().remove(0);
        cell.index = index;
        cell.schedule = schedule;
        let metrics = recovery.map(|pixel_recovery| {
            let (revived, inherited) = inheritance.unwrap_or((0, 0));
            ScenarioMetrics {
                identified_model: None,
                model_identified: false,
                identification_confidence: 0.0,
                pixel_recovery,
                bytes_scraped: 0,
                dump_coverage: 0.0,
                residue_frames: 0,
                denied_operations: 0,
                scrub_cost_cycles: 0.0,
                collateral_bytes: 0,
                active_tenant_intact: None,
                residue_bits_flipped: 0,
                residue_lifetime: ResidueLifetime {
                    revived_heap_frames: revived,
                    revival_inherited_frames: inherited,
                    ..ResidueLifetime::default()
                },
            }
        });
        CellRecord {
            cell,
            result: match recovery {
                Some(_) => crate::scenario::ScenarioResult::Completed,
                None => crate::scenario::ScenarioResult::Blocked {
                    step: "devmem".into(),
                },
            },
            metrics,
            timings: None,
            elapsed: Duration::ZERO,
        }
    }

    #[test]
    fn group_stats_pixel_recovery_mean_ignores_blocked_cells() {
        // Satellite bugfix pin: two completed cells at 1.0 and 0.5 recovery
        // plus two blocked cells must average 0.75, not 0.375 — the blocked
        // cells contribute no recovery sample at all.
        let mut stats = GroupStats::default();
        stats.absorb(&synthetic_record(
            0,
            VictimSchedule::Single,
            Some(1.0),
            None,
        ));
        stats.absorb(&synthetic_record(
            1,
            VictimSchedule::Single,
            Some(0.5),
            None,
        ));
        stats.absorb(&synthetic_record(2, VictimSchedule::Single, None, None));
        stats.absorb(&synthetic_record(3, VictimSchedule::Single, None, None));
        assert_eq!(stats.cells, 4);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.blocked, 2);
        assert_eq!(stats.mean_pixel_recovery, 0.75);
        // Samples 1.0 and 0.5 → population variance 0.0625.
        assert_eq!(stats.pixel_recovery_variance(), 0.0625);

        // A fully blocked group has no recovery mean to report.
        let mut blocked = GroupStats::default();
        blocked.absorb(&synthetic_record(0, VictimSchedule::Single, None, None));
        assert_eq!(blocked.mean_pixel_recovery, 0.0);
        assert_eq!(blocked.pixel_recovery_variance(), 0.0);
    }

    #[test]
    fn group_stats_merge_is_count_weighted_even_across_magnitude_spreads() {
        // Satellite regression pin: merging partial aggregates must weight
        // by sample count (Chan et al.), not average the means.  One side
        // holds 1000 near-zero samples, the other a single huge outlier —
        // the midpoint formula would report ~0.5 * 1e6.
        let completed = |index: usize, recovery: f64| {
            synthetic_record(index, VictimSchedule::Single, Some(recovery), None)
        };
        let mut small = GroupStats::default();
        for index in 0..1000 {
            small.absorb(&completed(index, 1e-6));
        }
        let mut outlier = GroupStats::default();
        outlier.absorb(&completed(1000, 1e6));

        let mut serial = GroupStats::default();
        for index in 0..1000 {
            serial.absorb(&completed(index, 1e-6));
        }
        serial.absorb(&completed(1000, 1e6));

        let mut merged = small;
        merged.merge(&outlier);
        assert_eq!(merged.cells, serial.cells);
        assert_eq!(merged.completed, serial.completed);
        let expected_mean = (1000.0 * 1e-6 + 1e6) / 1001.0;
        assert!((merged.mean_pixel_recovery - expected_mean).abs() / expected_mean < 1e-12);
        assert!(
            (merged.mean_pixel_recovery - serial.mean_pixel_recovery).abs() / expected_mean < 1e-12
        );
        assert!(
            (merged.pixel_recovery_variance() - serial.pixel_recovery_variance()).abs()
                / serial.pixel_recovery_variance()
                < 1e-9
        );

        // Merge direction must not matter beyond float associativity: the
        // outlier-first fold lands on the same count-weighted mean.
        let mut reversed = outlier;
        reversed.merge(&small);
        assert!(
            (reversed.mean_pixel_recovery - merged.mean_pixel_recovery).abs() / expected_mean
                < 1e-12
        );

        // Merging an empty group is the identity.
        let before = merged;
        merged.merge(&GroupStats::default());
        assert_eq!(merged, before);
        let mut empty = GroupStats::default();
        empty.merge(&before);
        assert_eq!(empty.mean_pixel_recovery, before.mean_pixel_recovery);
        assert_eq!(empty.cells, before.cells);
    }

    #[test]
    fn group_stats_revival_mean_uses_only_revival_cells() {
        // Satellite bugfix pin: one revival cell at 50% inheritance mixed
        // with three non-revival cells must report 0.5, not 0.125.
        let revival = VictimSchedule::Revival {
            successors: 1,
            reuse_pid: true,
        };
        let mut stats = GroupStats::default();
        stats.absorb(&synthetic_record(0, revival, Some(0.0), Some((10, 5))));
        for index in 1..4 {
            stats.absorb(&synthetic_record(
                index,
                VictimSchedule::Single,
                Some(1.0),
                None,
            ));
        }
        assert_eq!(stats.revival_cells, 1);
        assert_eq!(stats.mean_revival_inheritance, 0.5);
        assert_eq!(stats.revival_inherited_frames, 5);

        // No revival cells at all: the mean is 0, not NaN.
        let mut none = GroupStats::default();
        none.absorb(&synthetic_record(
            0,
            VictimSchedule::Single,
            Some(1.0),
            None,
        ));
        assert_eq!(none.revival_cells, 0);
        assert_eq!(none.mean_revival_inheritance, 0.0);
    }

    #[test]
    fn empty_campaign_is_a_typed_error_not_a_degenerate_report() {
        let spec = CampaignSpec::over_boards(Vec::new());
        assert_eq!(spec.cell_count(), 0);
        assert!(spec.expand().is_empty());
        assert!(matches!(spec.run(), Err(AttackError::EmptyCampaign)));
        assert!(matches!(
            spec.run_with_workers(4),
            Err(AttackError::EmptyCampaign)
        ));
        // A non-empty explicit board axis still runs normally.
        let report =
            CampaignSpec::over_boards(vec![("tiny".to_string(), BoardConfig::tiny_for_tests())])
                .run()
                .unwrap();
        assert_eq!(report.len(), 1);
    }

    #[test]
    fn remanence_axis_expands_decays_and_keeps_perfect_cells_identical() {
        use zynq_dram::RemanenceModel;
        let swept = tiny_spec()
            .with_models(vec![ModelKind::SqueezeNet])
            .with_inputs(vec![InputKind::Corrupted])
            .with_remanence_models(vec![
                RemanenceModel::Perfect,
                RemanenceModel::Exponential { half_life_ticks: 1 },
            ])
            .with_seed(3);
        assert_eq!(swept.cell_count(), 2);
        let cells = swept.expand();
        assert_eq!(cells[0].remanence, RemanenceModel::Perfect);
        assert_eq!(
            cells[1].remanence,
            RemanenceModel::Exponential { half_life_ticks: 1 }
        );
        // Labels mention the axis only when it deviates from the default.
        assert!(!cells[0].label().contains("perfect"));
        assert!(cells[1].label().contains("exponential(hl=1)"));

        let report = swept.run().unwrap();
        let perfect = report.cells()[0].metrics.as_ref().unwrap();
        let decayed = report.cells()[1].metrics.as_ref().unwrap();
        assert_eq!(perfect.residue_bits_flipped, 0);
        assert!(perfect.pixel_recovery > 0.99);
        assert!(decayed.residue_bits_flipped > 0);
        assert!(decayed.pixel_recovery < perfect.pixel_recovery);

        // The perfect cell of the swept campaign is bit-identical to the
        // same cell from a spec that never mentions remanence... except for
        // the cell seed, which is index-mixed — so compare against a
        // baseline whose perfect cell sits at the same index.
        let baseline = tiny_spec()
            .with_models(vec![ModelKind::SqueezeNet])
            .with_inputs(vec![InputKind::Corrupted])
            .with_seed(3)
            .run()
            .unwrap();
        assert_eq!(
            baseline.cells()[0].metrics.as_ref().unwrap(),
            perfect,
            "perfect remanence must reproduce the pre-remanence results"
        );

        // Aggregation carries the fidelity totals.
        let groups = report.group_by(|r| r.cell.remanence.to_string());
        assert_eq!(groups.len(), 2);
        assert_eq!(groups["perfect"].residue_bits_flipped, 0);
        assert_eq!(groups["perfect"].mean_decayed_recovery, 1.0);
        assert!(groups["exponential(hl=1)"].residue_bits_flipped > 0);
        assert!(groups["exponential(hl=1)"].mean_decayed_recovery < 1.0);
    }

    #[test]
    fn reconstruction_axis_doubles_cells_and_lifts_decayed_recovery() {
        use zynq_dram::RemanenceModel;
        let swept = tiny_spec()
            .with_models(vec![ModelKind::SqueezeNet])
            .with_inputs(vec![InputKind::Corrupted])
            .with_remanence_models(vec![RemanenceModel::Exponential { half_life_ticks: 1 }])
            .with_reconstruction(vec![false, true])
            .with_seed(11);
        assert_eq!(swept.cell_count(), 2);
        let cells = swept.expand();
        assert_eq!(cells[0].reconstruct, Some(false));
        assert_eq!(cells[1].reconstruct, Some(true));
        assert!(cells[0].label().ends_with("/exact"));
        assert!(cells[1].label().ends_with("/reconstruct"));
        // Specs that never mention the axis keep their cells untouched.
        let unswept = tiny_spec().expand();
        assert_eq!(unswept[0].reconstruct, None);
        assert!(!unswept[0].label().contains("reconstruct"));

        let report = swept.run().unwrap();
        let exact = report.cells()[0].metrics.as_ref().unwrap();
        let repaired = report.cells()[1].metrics.as_ref().unwrap();
        // At a one-tick half-life the exact matcher loses the signature;
        // fuzzy identification recovers the model and neighbor repair lifts
        // pixel recovery above the raw decayed read.
        assert!(!exact.model_identified);
        assert!(repaired.model_identified);
        assert!(repaired.pixel_recovery > exact.pixel_recovery);

        // Aggregation splits cleanly along the new axis.
        let groups = report.group_by(|r| {
            r.cell
                .reconstruct
                .map_or_else(|| "default".into(), |on| on.to_string())
        });
        assert_eq!(groups.len(), 2);
        assert!(groups["true"].mean_pixel_recovery > groups["false"].mean_pixel_recovery);
    }

    #[test]
    fn input_kind_materializes_and_displays() {
        let img = InputKind::Corrupted.materialize(ModelKind::SqueezeNet);
        assert!(img.as_bytes().iter().all(|&b| b == 0xFF));
        assert_eq!(InputKind::SamplePhoto.to_string(), "sample-photo");
        assert_eq!(InputKind::Corrupted.to_string(), "corrupted");
        assert_eq!(InputKind::Sentinel.to_string(), "sentinel");
        assert_eq!(InputKind::default(), InputKind::SamplePhoto);
    }
}
