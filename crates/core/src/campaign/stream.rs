//! The streaming campaign engine.
//!
//! [`super::CampaignSpec::expand`] materializes a matrix; this module runs
//! one without ever holding it.  Cells are generated lazily
//! ([`super::CampaignSpec::cell_at`]) in fixed-size **blocks**, executed by
//! a pool of claim-on-demand workers, and folded into running aggregates by
//! a single collector that consumes blocks in strict block-index order — a
//! reorder buffer decouples completion order from fold order, so the
//! deterministic surface of a [`CampaignSummary`] is byte-identical
//! regardless of worker count or scheduling.
//!
//! Memory is bounded by the in-flight window, not the matrix: a worker may
//! not claim a new block while `max_ready_blocks` completed blocks await
//! folding (backpressure), so peak resident cells is
//! O(workers + max_ready_blocks) · block size — a 1,000,000-cell campaign
//! streams through a few thousand resident cells.
//!
//! For tests, [`Adversary`] deliberately withholds completed blocks and
//! releases them in reverse or shuffled order, proving the reorder buffer
//! (not scheduling luck) is what makes results order-independent.

// Lint audit: address arithmetic here is bounds-checked against the
// DRAM window before any narrowing cast or direct index; offsets are
// derived from validated window-relative coordinates.
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::error::AttackError;
use crate::report::{json_array, JsonObject};
use crate::scenario::splitmix64;

use super::{CampaignCell, CampaignSpec, CellRecord, GroupStats};

/// Execution knobs of the streaming engine — all optional; the defaults
/// resolve from the spec (`--jobs` cap) and the matrix size.
#[derive(Debug, Clone, Default)]
pub struct StreamConfig {
    workers: Option<usize>,
    block_size: Option<usize>,
    max_ready_blocks: Option<usize>,
    adversary: Option<Adversary>,
}

impl StreamConfig {
    /// Starts from the all-default configuration.
    pub fn new() -> Self {
        StreamConfig::default()
    }

    /// Pins the worker count (otherwise the spec's `--jobs` cap, else the
    /// machine's available parallelism).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Pins the cells-per-block claim granularity.
    ///
    /// The default is derived from the matrix size alone (never from the
    /// worker count), so progress output is identical across `--jobs`
    /// settings.
    pub fn with_block_size(mut self, cells: usize) -> Self {
        self.block_size = Some(cells.max(1));
        self
    }

    /// Pins the backpressure window: workers stop claiming new blocks while
    /// this many completed blocks await folding (default: workers + 2).
    pub fn with_max_ready_blocks(mut self, blocks: usize) -> Self {
        self.max_ready_blocks = Some(blocks.max(1));
        self
    }

    /// Installs an adversarial completion-order scheduler (test hook).
    ///
    /// Backpressure is disabled under an adversary — every block is held
    /// back until the pool drains, so resident cells grow to the full
    /// matrix.  Strictly for determinism tests on small matrices.
    pub fn with_adversary(mut self, adversary: Adversary) -> Self {
        self.adversary = Some(adversary);
        self
    }
}

/// Adversarial completion-order schedules for the determinism suite: blocks
/// are executed normally but withheld from the collector until the whole
/// pool drains, then released in a hostile order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adversary {
    /// Releases completed blocks in reverse completion order (the collector
    /// sees the last block first).
    ReverseCompletion,
    /// Releases completed blocks in a seed-determined shuffled order.
    ShuffledCompletion {
        /// Seed of the release-order shuffle.
        seed: u64,
    },
}

/// Progress snapshot handed to the progress hook after each folded cell
/// group (block), in group order.
///
/// Everything except `resident_cells` and `elapsed` is deterministic for a
/// fixed spec; those two are scheduling/wall-clock artifacts and are masked
/// by the golden tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupProgress {
    /// Index of the group (block) just folded.
    pub block: usize,
    /// Cell index of the group's first cell.
    pub first_cell: usize,
    /// Cells in this group.
    pub cells: usize,
    /// Cells folded so far, this group included.
    pub folded_cells: usize,
    /// Total cells in the campaign.
    pub cells_total: usize,
    /// Completed cells so far.
    pub completed: usize,
    /// Blocked cells so far.
    pub blocked: usize,
    /// Cells that identified the victim model so far.
    pub identified: usize,
    /// Running mean pixel recovery over completed cells.
    pub mean_pixel_recovery: f64,
    /// Cells currently resident (claimed or awaiting fold).
    pub resident_cells: usize,
    /// Wall clock since the stream started.
    pub elapsed: Duration,
}

impl GroupProgress {
    /// Renders the snapshot as one NDJSON line (no trailing newline) — the
    /// `experiments --campaign --stream` progress format.
    pub fn to_ndjson(&self) -> String {
        JsonObject::new()
            .str("event", "group")
            .u64("block", self.block as u64)
            .u64("first_cell", self.first_cell as u64)
            .u64("cells", self.cells as u64)
            .u64("folded_cells", self.folded_cells as u64)
            .u64("cells_total", self.cells_total as u64)
            .u64("completed", self.completed as u64)
            .u64("blocked", self.blocked as u64)
            .u64("identified", self.identified as u64)
            .f64("mean_pixel_recovery", self.mean_pixel_recovery)
            .u64("resident_cells", self.resident_cells as u64)
            .u64("elapsed_ms", self.elapsed.as_millis() as u64)
            .finish()
    }
}

/// Wall-clock record of one folded cell group, kept for the bench report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupSummary {
    /// Group (block) index.
    pub block: usize,
    /// Cell index of the group's first cell.
    pub first_cell: usize,
    /// Cells in the group.
    pub cells: usize,
    /// Wall clock the executing worker spent on the group.
    pub wall_clock: Duration,
}

impl GroupSummary {
    fn to_json(self) -> String {
        JsonObject::new()
            .u64("block", self.block as u64)
            .u64("first_cell", self.first_cell as u64)
            .u64("cells", self.cells as u64)
            .u64("wall_clock_ms", self.wall_clock.as_millis() as u64)
            .finish()
    }
}

/// Per-axis aggregates of a streamed campaign, keyed by each axis value's
/// display form (boards by their axis name — two boards sharing a name fold
/// into one group).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AxisGroups {
    /// Aggregates keyed by board name.
    pub by_board: BTreeMap<String, GroupStats>,
    /// Aggregates keyed by victim model.
    pub by_model: BTreeMap<String, GroupStats>,
    /// Aggregates keyed by input kind.
    pub by_input: BTreeMap<String, GroupStats>,
    /// Aggregates keyed by effective sanitize policy.
    pub by_sanitize: BTreeMap<String, GroupStats>,
    /// Aggregates keyed by effective isolation policy.
    pub by_isolation: BTreeMap<String, GroupStats>,
    /// Aggregates keyed by victim schedule.
    pub by_schedule: BTreeMap<String, GroupStats>,
}

fn merge_groups(into: &mut BTreeMap<String, GroupStats>, from: &BTreeMap<String, GroupStats>) {
    for (key, stats) in from {
        into.entry(key.clone()).or_default().merge(stats);
    }
}

fn groups_json(map: &BTreeMap<String, GroupStats>) -> String {
    let mut obj = JsonObject::new();
    for (key, stats) in map {
        obj = obj.raw(key, &group_stats_json(stats));
    }
    obj.finish()
}

fn group_stats_json(stats: &GroupStats) -> String {
    JsonObject::new()
        .u64("cells", stats.cells as u64)
        .u64("completed", stats.completed as u64)
        .u64("blocked", stats.blocked as u64)
        .u64("identified", stats.identified as u64)
        .f64("mean_pixel_recovery", stats.mean_pixel_recovery)
        .f64("pixel_recovery_m2", stats.pixel_recovery_m2)
        .u64("residue_frames", stats.residue_frames as u64)
        .u64("residue_frames_lost", stats.residue_frames_lost as u64)
        .u64(
            "revival_inherited_frames",
            stats.revival_inherited_frames as u64,
        )
        .u64("revival_cells", stats.revival_cells as u64)
        .f64("mean_revival_inheritance", stats.mean_revival_inheritance)
        .u64("residue_bits_flipped", stats.residue_bits_flipped)
        .f64("mean_decayed_recovery", stats.mean_decayed_recovery)
        .finish()
}

impl AxisGroups {
    fn absorb(&mut self, record: &CellRecord) {
        let cell = &record.cell;
        self.by_board
            .entry(cell.board_name.clone())
            .or_default()
            .absorb(record);
        self.by_model
            .entry(cell.model.to_string())
            .or_default()
            .absorb(record);
        self.by_input
            .entry(cell.input.to_string())
            .or_default()
            .absorb(record);
        self.by_sanitize
            .entry(cell.sanitize.to_string())
            .or_default()
            .absorb(record);
        self.by_isolation
            .entry(cell.isolation.to_string())
            .or_default()
            .absorb(record);
        self.by_schedule
            .entry(cell.schedule.to_string())
            .or_default()
            .absorb(record);
    }

    /// Merges another partial aggregate into this one, group-wise, with the
    /// count-weighted [`GroupStats::merge`] combination.
    pub fn merge(&mut self, other: &AxisGroups) {
        merge_groups(&mut self.by_board, &other.by_board);
        merge_groups(&mut self.by_model, &other.by_model);
        merge_groups(&mut self.by_input, &other.by_input);
        merge_groups(&mut self.by_sanitize, &other.by_sanitize);
        merge_groups(&mut self.by_isolation, &other.by_isolation);
        merge_groups(&mut self.by_schedule, &other.by_schedule);
    }

    fn to_json(&self) -> String {
        JsonObject::new()
            .raw("board", &groups_json(&self.by_board))
            .raw("model", &groups_json(&self.by_model))
            .raw("input", &groups_json(&self.by_input))
            .raw("sanitize", &groups_json(&self.by_sanitize))
            .raw("isolation", &groups_json(&self.by_isolation))
            .raw("schedule", &groups_json(&self.by_schedule))
            .finish()
    }
}

/// The incremental fold the streaming collector applies cell by cell —
/// campaign totals plus per-axis groups, always in final (no separate
/// finalization) form.
///
/// The engine folds in strict cell-index order for bit-identical results;
/// [`CampaignAccumulator::merge`] additionally supports count-weighted
/// tree-shaped combination of independently built partials.
#[derive(Debug, Clone, Default)]
pub struct CampaignAccumulator {
    totals: GroupStats,
    axes: AxisGroups,
}

impl CampaignAccumulator {
    /// Starts an empty fold.
    pub fn new() -> Self {
        CampaignAccumulator::default()
    }

    /// Folds one cell record into the totals and every axis group.
    pub fn absorb(&mut self, record: &CellRecord) {
        self.totals.absorb(record);
        self.axes.absorb(record);
    }

    /// Merges another independently built accumulator into this one
    /// (Chan-style count-weighted combination; see [`GroupStats::merge`]).
    pub fn merge(&mut self, other: &CampaignAccumulator) {
        self.totals.merge(&other.totals);
        self.axes.merge(&other.axes);
    }

    /// Campaign-wide totals folded so far.
    pub fn totals(&self) -> &GroupStats {
        &self.totals
    }

    /// Per-axis groups folded so far.
    pub fn axes(&self) -> &AxisGroups {
        &self.axes
    }

    pub(crate) fn into_summary(
        self,
        workers: usize,
        block_size: usize,
        peak_resident_cells: usize,
        total_elapsed: Duration,
        groups: Vec<GroupSummary>,
    ) -> CampaignSummary {
        CampaignSummary {
            cells_total: self.totals.cells,
            totals: self.totals,
            axes: self.axes,
            workers,
            block_size,
            peak_resident_cells,
            total_elapsed,
            groups,
        }
    }
}

/// The result of a streamed campaign: deterministic aggregates (totals +
/// per-axis groups) plus the run's wall-clock/bench measurements.
#[derive(Debug, Clone)]
pub struct CampaignSummary {
    /// Total cells the campaign folded.
    pub cells_total: usize,
    /// Campaign-wide aggregates.
    pub totals: GroupStats,
    /// Per-axis aggregates.
    pub axes: AxisGroups,
    /// Worker threads the run used (after clamping to the matrix size).
    pub workers: usize,
    /// Cells per claim block (0 for summaries re-derived from batch
    /// reports, which have no block structure).
    pub block_size: usize,
    /// Peak cells simultaneously resident (claimed or awaiting fold).
    pub peak_resident_cells: usize,
    /// End-to-end wall clock (includes shared profiling).
    pub total_elapsed: Duration,
    /// Per-group wall-clock records, in group order.
    pub groups: Vec<GroupSummary>,
}

impl CampaignSummary {
    /// Fold throughput in cells per second (0.0 for a zero-duration run).
    pub fn cells_per_sec(&self) -> f64 {
        let secs = self.total_elapsed.as_secs_f64();
        if secs > 0.0 {
            self.cells_total as f64 / secs
        } else {
            0.0
        }
    }

    /// The deterministic comparison surface: totals and per-axis groups as
    /// canonical JSON, excluding every scheduling/wall-clock artifact
    /// (workers, block size, residency, durations).
    ///
    /// Two runs of one spec must produce byte-identical strings here,
    /// whatever the worker count or completion order — the determinism
    /// suite compares these directly.
    pub fn deterministic_json(&self) -> String {
        JsonObject::new()
            .u64("cells_total", self.cells_total as u64)
            .raw("totals", &group_stats_json(&self.totals))
            .raw("axes", &self.axes.to_json())
            .finish()
    }

    /// Renders the `BENCH_campaign.json` document: the deterministic
    /// headline counts plus throughput, residency and per-group wall-clock
    /// — the cross-PR perf trajectory record.
    pub fn bench_json(&self, name: &str) -> String {
        JsonObject::new()
            .str("schema", "msa-bench-campaign-v1")
            .str("campaign", name)
            .u64("cells_total", self.cells_total as u64)
            .u64("completed", self.totals.completed as u64)
            .u64("blocked", self.totals.blocked as u64)
            .u64("identified", self.totals.identified as u64)
            .f64("mean_pixel_recovery", self.totals.mean_pixel_recovery)
            .u64("workers", self.workers as u64)
            .u64("block_size", self.block_size as u64)
            .u64("blocks", self.groups.len() as u64)
            .u64("peak_resident_cells", self.peak_resident_cells as u64)
            .u64("elapsed_ms", self.total_elapsed.as_millis() as u64)
            .f64("cells_per_sec", self.cells_per_sec())
            .raw(
                "groups",
                &json_array(self.groups.iter().map(|group| group.to_json())),
            )
            .finish()
    }
}

/// Auto block size: a pure function of the matrix size (never the worker
/// count), so group boundaries — and therefore NDJSON progress output — are
/// identical across `--jobs` settings.  Targets ~256 groups, clamped so
/// tiny campaigns still batch a little and huge ones cap per-block memory.
fn auto_block_size(cells_total: usize) -> usize {
    cells_total.div_ceil(256).clamp(16, 1024)
}

/// One executed block parked in the reorder buffer.
struct Block {
    index: usize,
    first_cell: usize,
    results: Vec<Result<CellRecord, AttackError>>,
    wall_clock: Duration,
}

/// Collector/worker shared state, guarded by one mutex + condvar.
struct Shared {
    /// Next block index to claim.
    next_block: usize,
    /// Completed blocks awaiting in-order folding (the reorder buffer).
    ready: BTreeMap<usize, Block>,
    /// Blocks an [`Adversary`] is withholding until the pool drains.
    stash: Vec<Block>,
    /// Cells claimed but not yet folded.
    resident_cells: usize,
    /// High-water mark of `resident_cells`.
    peak_resident_cells: usize,
    /// Workers that have exited their claim loop.
    done_workers: usize,
}

/// Runs `spec` through the streaming engine.
///
/// `executor` produces each cell's record (real scenario or synthetic),
/// `visit` receives every record in strict cell-index order, `progress` is
/// called after each folded group.  See the `stream_*` methods on
/// [`CampaignSpec`] for the public entry points.
pub(crate) fn run<E, V, P>(
    spec: &CampaignSpec,
    config: &StreamConfig,
    executor: &E,
    mut visit: V,
    mut progress: P,
) -> Result<CampaignSummary, AttackError>
where
    E: Fn(&CampaignCell) -> Result<CellRecord, AttackError> + Sync,
    V: FnMut(CellRecord) -> Result<(), AttackError>,
    P: FnMut(&GroupProgress),
{
    let started = Instant::now();
    let cells_total = spec.cell_count();
    if cells_total == 0 {
        return Err(AttackError::EmptyCampaign);
    }
    let block_size = config
        .block_size
        .unwrap_or_else(|| auto_block_size(cells_total));
    let blocks = cells_total.div_ceil(block_size);
    let workers = config
        .workers
        .or(spec.jobs)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
        .clamp(1, cells_total);
    let max_ready = config.max_ready_blocks.unwrap_or(workers + 2).max(1);
    let adversary = config.adversary;

    let shared = Mutex::new(Shared {
        next_block: 0,
        ready: BTreeMap::new(),
        stash: Vec::new(),
        resident_cells: 0,
        peak_resident_cells: 0,
        done_workers: 0,
    });
    let condvar = Condvar::new();
    let abort = AtomicBool::new(false);

    // Shadow log (race-check builds only): every block claim as a
    // `(worker, cell-index interval)` record, asserted cross-worker disjoint
    // once the pool and collector have drained — the proof that the
    // claim-on-demand fan-out hands every cell to exactly one worker.
    #[cfg(feature = "race-check")]
    let race_log = zynq_dram::racecheck::AccessLog::new("campaign::stream block claims");

    let result = std::thread::scope(|scope| {
        let shared = &shared;
        let condvar = &condvar;
        let abort = &abort;
        #[cfg(feature = "race-check")]
        let race_log = &race_log;
        // The worker index only feeds the race-check shadow log; the claim
        // protocol itself is index-blind.
        #[cfg_attr(not(feature = "race-check"), allow(unused_variables))]
        for worker_index in 0..workers {
            scope.spawn(move || {
                loop {
                    let claim = {
                        let mut state = shared.lock().expect("stream state poisoned");
                        loop {
                            if abort.load(Ordering::Relaxed) || state.next_block >= blocks {
                                break None;
                            }
                            // Backpressure: park instead of outrunning the
                            // collector (disabled under an adversary, which
                            // withholds blocks by design).
                            if adversary.is_none() && state.ready.len() >= max_ready {
                                state = condvar.wait(state).expect("stream state poisoned");
                                continue;
                            }
                            let index = state.next_block;
                            state.next_block += 1;
                            let first_cell = index * block_size;
                            let cells = block_size.min(cells_total - first_cell);
                            state.resident_cells += cells;
                            state.peak_resident_cells =
                                state.peak_resident_cells.max(state.resident_cells);
                            break Some((index, first_cell, cells));
                        }
                    };
                    let Some((index, first_cell, cells)) = claim else {
                        break;
                    };
                    // Interval units: cell indexes.  Each claimed block must
                    // be private to this worker.
                    #[cfg(feature = "race-check")]
                    race_log.record(worker_index, first_cell as u64..(first_cell + cells) as u64);
                    let block_started = Instant::now();
                    let mut results = Vec::with_capacity(cells);
                    for offset in 0..cells {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let cell = spec.cell_at(first_cell + offset);
                        results.push(executor(&cell));
                    }
                    let block = Block {
                        index,
                        first_cell,
                        results,
                        wall_clock: block_started.elapsed(),
                    };
                    let mut state = shared.lock().expect("stream state poisoned");
                    if abort.load(Ordering::Relaxed) {
                        // The collector already gave up on this run; the
                        // (possibly partial) block is dead weight.
                        drop(block);
                    } else if adversary.is_some() {
                        state.stash.push(block);
                    } else {
                        state.ready.insert(index, block);
                    }
                    drop(state);
                    condvar.notify_all();
                }
                let mut state = shared.lock().expect("stream state poisoned");
                state.done_workers += 1;
                if state.done_workers == workers {
                    if let Some(adversary) = adversary {
                        release_stash(&mut state, adversary);
                    }
                }
                drop(state);
                condvar.notify_all();
            });
        }

        // The collector runs on the calling thread: it owns the (non-Sync)
        // visitor, progress hook and accumulator, and folds blocks in
        // strict index order — the reorder buffer above absorbs whatever
        // completion order the pool produces.
        let mut accumulator = CampaignAccumulator::new();
        let mut groups: Vec<GroupSummary> = Vec::with_capacity(blocks);
        let mut folded_cells = 0usize;
        let mut first_error: Option<AttackError> = None;
        'collect: for next_fold in 0..blocks {
            let (block, resident_after) = {
                let mut state = shared.lock().expect("stream state poisoned");
                loop {
                    if let Some(block) = state.ready.remove(&next_fold) {
                        state.resident_cells -= block.results.len();
                        let resident = state.resident_cells;
                        drop(state);
                        condvar.notify_all();
                        break (block, resident);
                    }
                    assert!(
                        state.done_workers < workers || !state.stash.is_empty(),
                        "stream pool drained without producing block {next_fold}"
                    );
                    state = condvar.wait(state).expect("stream state poisoned");
                }
            };
            let cells = block.results.len();
            for result in block.results {
                match result {
                    Ok(record) => {
                        accumulator.absorb(&record);
                        if let Err(error) = visit(record) {
                            first_error = Some(error);
                            break;
                        }
                    }
                    Err(error) => {
                        first_error = Some(error);
                        break;
                    }
                }
            }
            if first_error.is_some() {
                abort.store(true, Ordering::Relaxed);
                condvar.notify_all();
                break 'collect;
            }
            folded_cells += cells;
            let group = GroupSummary {
                block: block.index,
                first_cell: block.first_cell,
                cells,
                wall_clock: block.wall_clock,
            };
            groups.push(group);
            let totals = *accumulator.totals();
            progress(&GroupProgress {
                block: group.block,
                first_cell: group.first_cell,
                cells,
                folded_cells,
                cells_total,
                completed: totals.completed,
                blocked: totals.blocked,
                identified: totals.identified,
                mean_pixel_recovery: totals.mean_pixel_recovery,
                resident_cells: resident_after,
                elapsed: started.elapsed(),
            });
        }

        if let Some(error) = first_error {
            return Err(error);
        }
        let peak = shared
            .lock()
            .expect("stream state poisoned")
            .peak_resident_cells;
        Ok(accumulator.into_summary(workers, block_size, peak, started.elapsed(), groups))
    });
    #[cfg(feature = "race-check")]
    race_log.finish();
    result
}

/// Moves an adversary's withheld blocks into the reorder buffer in the
/// hostile release order (called by the last worker to exit, under the
/// state lock).
fn release_stash(state: &mut Shared, adversary: Adversary) {
    let mut stash = std::mem::take(&mut state.stash);
    match adversary {
        Adversary::ReverseCompletion => stash.reverse(),
        Adversary::ShuffledCompletion { seed } => {
            let mut mix = seed;
            for i in (1..stash.len()).rev() {
                mix = splitmix64(mix);
                stash.swap(i, (mix % (i as u64 + 1)) as usize);
            }
        }
    }
    for block in stash {
        state.ready.insert(block.index, block);
    }
}

#[cfg(test)]
mod tests {
    use super::super::{CampaignSpec, InputKind};
    use super::*;
    use petalinux_sim::BoardConfig;
    use vitis_ai_sim::ModelKind;

    fn synthetic_spec() -> CampaignSpec {
        CampaignSpec::new("tiny", BoardConfig::tiny_for_tests())
            .with_models(vec![ModelKind::SqueezeNet, ModelKind::MobileNetV2])
            .with_inputs(vec![InputKind::SamplePhoto, InputKind::Corrupted])
            .with_seed(11)
    }

    fn stream_synthetic(spec: &CampaignSpec, config: StreamConfig) -> CampaignSummary {
        spec.stream_with_executor(
            config,
            |cell| Ok(cell.synthetic_record()),
            |_| Ok(()),
            |_| {},
        )
        .unwrap()
    }

    #[test]
    fn auto_block_size_ignores_worker_count_and_scales_with_cells() {
        assert_eq!(auto_block_size(1), 16);
        assert_eq!(auto_block_size(192), 16);
        assert_eq!(auto_block_size(16_384), 64);
        assert_eq!(auto_block_size(1_000_000), 1024);
    }

    #[test]
    fn streaming_fold_is_identical_across_workers_and_adversaries() {
        let spec = synthetic_spec();
        let baseline = stream_synthetic(&spec, StreamConfig::new().with_workers(1));
        assert_eq!(baseline.cells_total, 4);
        for config in [
            StreamConfig::new().with_workers(3).with_block_size(1),
            StreamConfig::new()
                .with_workers(2)
                .with_block_size(1)
                .with_adversary(Adversary::ReverseCompletion),
            StreamConfig::new()
                .with_workers(2)
                .with_block_size(1)
                .with_adversary(Adversary::ShuffledCompletion { seed: 5 }),
        ] {
            let summary = stream_synthetic(&spec, config);
            assert_eq!(summary.deterministic_json(), baseline.deterministic_json());
        }
    }

    #[test]
    fn visitor_sees_cells_in_index_order_and_errors_abort_the_stream() {
        let spec = synthetic_spec();
        let mut seen = Vec::new();
        spec.stream_with_executor(
            StreamConfig::new().with_workers(2).with_block_size(1),
            |cell| Ok(cell.synthetic_record()),
            |record| {
                seen.push(record.cell.index);
                Ok(())
            },
            |_| {},
        )
        .unwrap();
        assert_eq!(seen, vec![0, 1, 2, 3]);

        let error = spec
            .stream_with_executor(
                StreamConfig::new().with_workers(2).with_block_size(1),
                |cell| {
                    if cell.index >= 2 {
                        Err(AttackError::EmptyCampaign)
                    } else {
                        Ok(cell.synthetic_record())
                    }
                },
                |_| Ok(()),
                |_| {},
            )
            .unwrap_err();
        assert!(matches!(error, AttackError::EmptyCampaign));
    }

    #[test]
    fn progress_groups_cover_the_matrix_and_render_ndjson() {
        let spec = synthetic_spec();
        let mut lines = Vec::new();
        let summary = spec
            .stream_with_executor(
                StreamConfig::new().with_workers(2).with_block_size(3),
                |cell| Ok(cell.synthetic_record()),
                |_| Ok(()),
                |progress| lines.push(progress.to_ndjson()),
            )
            .unwrap();
        // 4 cells at block size 3 → groups of 3 and 1.
        assert_eq!(summary.groups.len(), 2);
        assert_eq!(summary.groups[0].cells, 3);
        assert_eq!(summary.groups[1].cells, 1);
        assert_eq!(summary.block_size, 3);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"event\":\"group\",\"block\":0,"));
        assert!(lines[1].contains("\"folded_cells\":4,\"cells_total\":4"));
        let bench = summary.bench_json("synthetic");
        assert!(
            bench.starts_with("{\"schema\":\"msa-bench-campaign-v1\",\"campaign\":\"synthetic\",")
        );
        assert!(bench.contains("\"cells_per_sec\":"));
        assert!(bench.contains("\"wall_clock_ms\":"));
    }

    #[test]
    fn accumulator_merge_matches_serial_fold() {
        let spec = synthetic_spec();
        let records: Vec<CellRecord> = spec.cells().map(|cell| cell.synthetic_record()).collect();
        let mut serial = CampaignAccumulator::new();
        for record in &records {
            serial.absorb(record);
        }
        let mut left = CampaignAccumulator::new();
        let mut right = CampaignAccumulator::new();
        for record in &records[..2] {
            left.absorb(record);
        }
        for record in &records[2..] {
            right.absorb(record);
        }
        left.merge(&right);
        assert_eq!(left.totals().cells, serial.totals().cells);
        assert_eq!(left.totals().completed, serial.totals().completed);
        assert!(
            (left.totals().mean_pixel_recovery - serial.totals().mean_pixel_recovery).abs() < 1e-12
        );
        assert_eq!(left.axes().by_model.len(), serial.axes().by_model.len());
    }

    #[test]
    fn empty_campaign_errors_before_spawning_the_pool() {
        let spec = CampaignSpec::over_boards(Vec::new());
        let result = spec.stream_with_executor(
            StreamConfig::new(),
            |cell| Ok(cell.synthetic_record()),
            |_| Ok(()),
            |_| {},
        );
        assert!(matches!(result, Err(AttackError::EmptyCampaign)));
    }
}
