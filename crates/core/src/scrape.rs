//! Step 3: extract data from physical addresses after victim termination.

// Lint audit: address arithmetic here is bounds-checked against the
// DRAM window before any narrowing cast or direct index; offsets are
// derived from validated window-relative coordinates.
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use petalinux_sim::Kernel;
use xsdb::DebugSession;
use zynq_dram::{ScrapeView, PAGE_SIZE};

use crate::attack::ScrapeMode;
use crate::dump::{HeapView, MemoryDump};
use crate::error::AttackError;
use crate::translate::HeapTranslation;

/// Scrapes the victim's heap from physical memory using a previously captured
/// translation.
///
/// The paper performs this step only after the victim's pid has disappeared
/// from the process list; callers that want the same discipline should check
/// [`DebugSession::is_running`] first (the [`crate::attack::AttackPipeline`]
/// does, and returns [`AttackError::VictimStillRunning`] otherwise).
///
/// Four read strategies are supported:
///
/// - [`ScrapeMode::ContiguousRange`] — the paper's method: translate only the
///   heap's endpoints and read the physical range between them in one sweep.
///   Correct whenever the kernel hands out physically contiguous frames for a
///   contiguous heap (the PetaLinux default), cheap, but defeated by
///   physical-layout randomization.
/// - [`ScrapeMode::BankStriped`] — the same contiguous read executed as
///   concurrent per-bank `devmem` loops over the sharded DRAM store;
///   byte-identical to the contiguous sweep, faster on large heaps.
/// - [`ScrapeMode::PerPage`] — translate and read every page individually; a
///   stronger attacker that tolerates scattered physical layouts.
/// - [`ScrapeMode::MultiSnapshot`] — the contiguous read repeated across
///   revival windows and OR-fused; on this immutable entry point it
///   degenerates to the single contiguous sweep (see
///   [`scrape_heap_snapshots`] for the real N-pass read).
///
/// # Errors
///
/// Returns [`AttackError::TranslationEmpty`] if the translation has no usable
/// physical addresses, and [`AttackError::Channel`] if a physical read is
/// denied or out of range.
pub fn scrape_heap(
    debugger: &mut DebugSession,
    kernel: &Kernel,
    translation: &HeapTranslation,
    mode: ScrapeMode,
) -> Result<MemoryDump, AttackError> {
    mode.validate()?;
    match mode {
        ScrapeMode::ContiguousRange => scrape_contiguous(debugger, kernel, translation, None),
        ScrapeMode::BankStriped { workers } => {
            scrape_contiguous(debugger, kernel, translation, Some(workers))
        }
        // Without a mutable kernel the decay clock cannot advance between
        // snapshots, and OR-fusing N identical-tick reads of a monotone decay
        // view equals the earliest read — so the single contiguous sweep is
        // byte-identical to the fused result.  The real N-pass read lives in
        // `scrape_heap_snapshots`.
        ScrapeMode::MultiSnapshot { .. } => scrape_contiguous(debugger, kernel, translation, None),
        ScrapeMode::PerPage => scrape_per_page(debugger, kernel, translation),
    }
}

/// The zero-copy form of [`scrape_heap`]: borrows the victim's heap as a
/// [`HeapView`] over the DRAM bank arenas instead of copying it out.
///
/// Returns `Ok(None)` when the board's remanence model forces an owned decay
/// transform — callers then fall back to [`scrape_heap`].  When a view is
/// returned, its bytes and coverage are identical to the owned dump the same
/// mode would produce, and the debugger audit trail records the same
/// `ReadPhys` operations.
///
/// [`ScrapeMode::BankStriped`] degenerates to the contiguous view: assembling
/// a borrowed view is O(segments) with no byte copying, so there is nothing
/// left to fan out across bank workers.
///
/// # Errors
///
/// Same conditions as [`scrape_heap`].
pub fn scrape_heap_view<'k>(
    debugger: &mut DebugSession,
    kernel: &'k Kernel,
    translation: &HeapTranslation,
    mode: ScrapeMode,
) -> Result<Option<HeapView<'k>>, AttackError> {
    mode.validate()?;
    if !kernel.zero_copy_reads_available() {
        return Ok(None);
    }
    match mode {
        // MultiSnapshot joins the contiguous modes here for the same reason
        // it does in `scrape_heap`: with an immutable kernel every snapshot
        // reads the same tick, and the OR-fusion of identical reads is that
        // read.
        ScrapeMode::ContiguousRange
        | ScrapeMode::BankStriped { .. }
        | ScrapeMode::MultiSnapshot { .. } => scrape_contiguous_view(debugger, kernel, translation),
        ScrapeMode::PerPage => scrape_per_page_view(debugger, kernel, translation),
    }
}

/// A multi-snapshot scrape: the fused dump the analysis consumes plus the
/// raw per-snapshot reads (each taken one decay tick after the previous).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotScrape {
    /// The OR-fused dump ([`crate::analysis::reconstruct::fuse_snapshots`]).
    pub dump: MemoryDump,
    /// The individual snapshots, earliest first.
    pub snapshots: Vec<Vec<u8>>,
}

/// The mutable-kernel form of [`scrape_heap`] for
/// [`ScrapeMode::MultiSnapshot`]: reads the victim's contiguous physical
/// range `snapshots` times across successive decay ticks and OR-fuses the
/// reads into one dump.
///
/// Because decay only ever clears bits, the fused dump is a bitwise superset
/// of every individual snapshot and a subset of the raw residue; with the
/// default perfect remanence every snapshot is identical and the fused dump
/// equals the single-read scrape.  Edge semantics (empty translation,
/// zero-length heap, window-end clamping) mirror the contiguous scrape.
///
/// # Errors
///
/// Same conditions as [`scrape_heap`], plus a rejection of zero snapshot
/// counts.
pub fn scrape_heap_snapshots(
    debugger: &mut DebugSession,
    kernel: &mut Kernel,
    translation: &HeapTranslation,
    snapshots: usize,
) -> Result<SnapshotScrape, AttackError> {
    ScrapeMode::MultiSnapshot { snapshots }.validate()?;
    // A zero-length window is a typed empty scrape, not a translation error:
    // it is checked before `phys_start()` so a degenerate translation with no
    // pages at all still dumps empty instead of erroring.
    let len = translation.heap_len() as usize;
    if len == 0 {
        return Ok(SnapshotScrape {
            dump: MemoryDump::empty(translation.heap_start()),
            snapshots: vec![Vec::new(); snapshots],
        });
    }
    let start = translation
        .phys_start()
        .ok_or(AttackError::TranslationEmpty {
            pid: translation.pid(),
        })?;
    let window_end = kernel.config().dram().end();
    let available = window_end.offset_from(start).min(len as u64) as usize;
    let reads = debugger.read_phys_snapshots(kernel, start, available, snapshots)?;
    let mut fused = crate::analysis::reconstruct::fuse_snapshots(&reads);
    fused.resize(len, 0);
    Ok(SnapshotScrape {
        dump: MemoryDump::from_contiguous(translation.heap_start(), start, fused),
        snapshots: reads,
    })
}

fn scrape_contiguous_view<'k>(
    debugger: &mut DebugSession,
    kernel: &'k Kernel,
    translation: &HeapTranslation,
) -> Result<Option<HeapView<'k>>, AttackError> {
    // Zero-length window first, as in the owned path: a typed empty view,
    // even when the translation carries no physical pages.
    let len = translation.heap_len() as usize;
    if len == 0 {
        return Ok(Some(HeapView::empty(translation.heap_start())));
    }
    let start = translation
        .phys_start()
        .ok_or(AttackError::TranslationEmpty {
            pid: translation.pid(),
        })?;
    // Same window-end clamp as the owned read; the unreadable tail is
    // zero-padded with shared zero chunks.  The padding starts on a view-unit
    // boundary: window end and heap start are page-aligned, and the unit
    // divides the page size.
    let window_end = kernel.config().dram().end();
    let available = window_end.offset_from(start).min(len as u64);
    let Some(mut view) = debugger.read_phys_view(kernel, start, available)? else {
        return Ok(None);
    };
    view.push_zeros(len - available as usize);
    // The owned contiguous dump records every page as captured (including a
    // zero-padded tail); mirror that so coverage agrees.
    let pages = len.div_ceil(PAGE_SIZE as usize);
    Ok(Some(HeapView::new(
        translation.heap_start(),
        view,
        pages,
        pages,
    )))
}

fn scrape_per_page_view<'k>(
    debugger: &mut DebugSession,
    kernel: &'k Kernel,
    translation: &HeapTranslation,
) -> Result<Option<HeapView<'k>>, AttackError> {
    if translation.heap_len() == 0 {
        return Ok(Some(HeapView::empty(translation.heap_start())));
    }
    if translation.present_pages() == 0 {
        return Err(AttackError::TranslationEmpty {
            pid: translation.pid(),
        });
    }
    // The view unit comes from the first captured page (it is a board
    // constant), so gap pages ahead of it are buffered as a count and
    // prepended once the unit is known.
    let mut view: Option<ScrapeView<'k>> = None;
    let mut leading_gaps = 0usize;
    let mut captured = 0usize;
    for page in translation.pages() {
        match page {
            Some(pa) => {
                let Some(page_view) = debugger.read_phys_view(kernel, *pa, PAGE_SIZE)? else {
                    return Ok(None);
                };
                captured += 1;
                let stitched = view.get_or_insert_with(|| ScrapeView::with_unit(page_view.unit()));
                if leading_gaps > 0 {
                    stitched.push_zeros(leading_gaps * PAGE_SIZE as usize);
                    leading_gaps = 0;
                }
                stitched.append(page_view);
            }
            None => match view.as_mut() {
                Some(stitched) => stitched.push_zeros(PAGE_SIZE as usize),
                None => leading_gaps += 1,
            },
        }
    }
    let view = view.expect("present_pages() > 0 guarantees at least one captured page");
    Ok(Some(HeapView::new(
        translation.heap_start(),
        view,
        captured,
        translation.pages().len(),
    )))
}

fn scrape_contiguous(
    debugger: &mut DebugSession,
    kernel: &Kernel,
    translation: &HeapTranslation,
    bank_workers: Option<usize>,
) -> Result<MemoryDump, AttackError> {
    // A zero-length window is a typed empty dump, not a translation error,
    // so it is checked before `phys_start()`: a degenerate translation with
    // no pages at all must not be promoted to `TranslationEmpty`.
    let len = translation.heap_len() as usize;
    if len == 0 {
        return Ok(MemoryDump::empty(translation.heap_start()));
    }
    let start = translation
        .phys_start()
        .ok_or(AttackError::TranslationEmpty {
            pid: translation.pid(),
        })?;
    // Reading beyond the DRAM window (possible when randomized layouts put the
    // first heap page near the top of memory) is clamped rather than failed:
    // the real attack's devmem loop would simply get errors for those words.
    let window_end = kernel.config().dram().end();
    let available = window_end.offset_from(start).min(len as u64) as usize;
    let bytes = match bank_workers {
        Some(workers) => debugger.read_phys_range_banked(kernel, start, available, workers)?,
        None => debugger.read_phys_range(kernel, start, available)?,
    };
    let mut padded = bytes;
    padded.resize(len, 0);
    Ok(MemoryDump::from_contiguous(
        translation.heap_start(),
        start,
        padded,
    ))
}

fn scrape_per_page(
    debugger: &mut DebugSession,
    kernel: &Kernel,
    translation: &HeapTranslation,
) -> Result<MemoryDump, AttackError> {
    if translation.heap_len() == 0 {
        return Ok(MemoryDump::empty(translation.heap_start()));
    }
    if translation.present_pages() == 0 {
        return Err(AttackError::TranslationEmpty {
            pid: translation.pid(),
        });
    }
    let mut pages = Vec::with_capacity(translation.pages().len());
    for page in translation.pages() {
        match page {
            Some(pa) => {
                let bytes = debugger.read_phys_range(kernel, *pa, PAGE_SIZE as usize)?;
                pages.push(Some((*pa, bytes)));
            }
            None => pages.push(None),
        }
    }
    Ok(MemoryDump::from_pages(translation.heap_start(), pages))
}

#[cfg(test)]
mod tests {
    use super::*;
    use petalinux_sim::{BoardConfig, Pid, UserId};
    use vitis_ai_sim::{DpuRunner, Image, ModelKind};
    use zynq_mmu::VirtAddr;

    use crate::translate::capture_heap_translation;

    fn attacked_board() -> (Kernel, vitis_ai_sim::CompletedRun, HeapTranslation) {
        let mut kernel = Kernel::boot(BoardConfig::tiny_for_tests());
        let launched = DpuRunner::new(ModelKind::SqueezeNet)
            .with_input(Image::corrupted(224, 224))
            .launch(&mut kernel, UserId::new(0))
            .unwrap();
        let mut dbg = DebugSession::connect(UserId::new(1));
        let translation = capture_heap_translation(&mut dbg, &kernel, launched.pid()).unwrap();
        let run = launched.terminate(&mut kernel).unwrap();
        (kernel, run, translation)
    }

    #[test]
    fn both_modes_recover_identical_data_under_default_layout() {
        let (kernel, run, translation) = attacked_board();
        let mut dbg = DebugSession::connect(UserId::new(1));

        let contiguous =
            scrape_heap(&mut dbg, &kernel, &translation, ScrapeMode::ContiguousRange).unwrap();
        let per_page = scrape_heap(&mut dbg, &kernel, &translation, ScrapeMode::PerPage).unwrap();

        assert_eq!(contiguous.len() as u64, run.layout().heap_len);
        assert_eq!(contiguous.as_bytes(), per_page.as_bytes());
        assert_eq!(per_page.coverage(), 1.0);

        // The scraped dump contains the model string and the corrupted-image
        // marker, i.e. the victim's residue.
        let hex = contiguous.to_hexdump();
        assert!(!hex.grep("squeezenet").is_empty());
        let marker_offset = hex.find(&[0xFF; 16]).unwrap() as u64;
        assert_eq!(marker_offset, run.layout().image_offset);
    }

    #[test]
    fn bank_striped_mode_is_byte_identical_to_contiguous() {
        let (kernel, _run, translation) = attacked_board();
        let mut dbg = DebugSession::connect(UserId::new(1));
        let contiguous =
            scrape_heap(&mut dbg, &kernel, &translation, ScrapeMode::ContiguousRange).unwrap();
        for workers in [1usize, 2, 4, 8] {
            let striped = scrape_heap(
                &mut dbg,
                &kernel,
                &translation,
                ScrapeMode::BankStriped { workers },
            )
            .unwrap();
            assert_eq!(
                contiguous.as_bytes(),
                striped.as_bytes(),
                "workers={workers}"
            );
            assert_eq!(contiguous.coverage(), striped.coverage());
        }
    }

    #[test]
    fn zero_worker_bank_striping_is_rejected_up_front() {
        // `workers` is a public field, so an invalid mode can reach the
        // scrape without passing any builder assert; every path refuses it
        // with the same channel error (before touching memory — even an
        // empty heap must not make the invalid mode silently succeed).
        let (kernel, _run, translation) = attacked_board();
        let mut dbg = DebugSession::connect(UserId::new(1));
        let err = scrape_heap(
            &mut dbg,
            &kernel,
            &translation,
            ScrapeMode::BankStriped { workers: 0 },
        )
        .unwrap_err();
        assert!(matches!(err, AttackError::Channel(_)), "{err}");
        assert!(err.to_string().contains("zero workers"));
    }

    #[test]
    fn zero_copy_view_is_byte_identical_to_the_owned_dump_in_every_mode() {
        let (kernel, _run, translation) = attacked_board();
        let mut dbg = DebugSession::connect(UserId::new(1));
        for mode in [
            ScrapeMode::ContiguousRange,
            ScrapeMode::BankStriped { workers: 4 },
            ScrapeMode::PerPage,
        ] {
            let dump = scrape_heap(&mut dbg, &kernel, &translation, mode).unwrap();
            let heap = scrape_heap_view(&mut dbg, &kernel, &translation, mode)
                .unwrap()
                .expect("perfect remanence permits borrowed reads");
            assert_eq!(heap.len(), dump.len(), "{mode}");
            assert_eq!(heap.to_bytes(), dump.as_bytes(), "{mode}");
            assert_eq!(heap.coverage(), dump.coverage(), "{mode}");
            assert_eq!(heap.heap_start(), dump.heap_start(), "{mode}");
            assert_eq!(heap.captured_pages(), dump.captured_pages(), "{mode}");
            assert_eq!(heap.missing_pages(), dump.missing_pages(), "{mode}");
        }
    }

    #[test]
    fn view_scrape_stitches_gap_pages_and_clamps_like_the_owned_path() {
        let (kernel, _run, translation) = attacked_board();
        let mut dbg = DebugSession::connect(UserId::new(1));

        // Leading and interior gaps: pages 0 and 2 dropped.
        let mut pages = translation.pages().to_vec();
        pages[0] = None;
        pages[2] = None;
        let partial = HeapTranslation::from_parts(
            translation.pid(),
            translation.heap_start(),
            translation.heap_end(),
            pages,
        );
        let dump = scrape_heap(&mut dbg, &kernel, &partial, ScrapeMode::PerPage).unwrap();
        let heap = scrape_heap_view(&mut dbg, &kernel, &partial, ScrapeMode::PerPage)
            .unwrap()
            .unwrap();
        assert_eq!(heap.to_bytes(), dump.as_bytes());
        assert_eq!(heap.missing_pages(), 2);
        assert_eq!(heap.coverage(), dump.coverage());

        // Window-end clamp: the unreadable tail reads as zero padding.
        let near_end = kernel.config().dram().end() - PAGE_SIZE;
        let clamped = HeapTranslation::from_parts(
            Pid::new(77),
            VirtAddr::new(0x1000),
            VirtAddr::new(0x1000 + 4 * PAGE_SIZE),
            vec![Some(near_end), None, None, None],
        );
        let dump = scrape_heap(&mut dbg, &kernel, &clamped, ScrapeMode::ContiguousRange).unwrap();
        let heap = scrape_heap_view(&mut dbg, &kernel, &clamped, ScrapeMode::ContiguousRange)
            .unwrap()
            .unwrap();
        assert_eq!(heap.len() as u64, 4 * PAGE_SIZE);
        assert_eq!(heap.to_bytes(), dump.as_bytes());

        // Zero-length heap mirrors the owned empty dump.
        let empty = HeapTranslation::from_parts(
            Pid::new(77),
            VirtAddr::new(0x1000),
            VirtAddr::new(0x1000),
            vec![Some(kernel.config().dram().base())],
        );
        let heap = scrape_heap_view(&mut dbg, &kernel, &empty, ScrapeMode::ContiguousRange)
            .unwrap()
            .unwrap();
        assert!(heap.is_empty());
        assert_eq!(heap.coverage(), 0.0);
    }

    #[test]
    fn view_scrape_declines_under_decaying_remanence() {
        use zynq_dram::RemanenceModel;
        let board = BoardConfig::tiny_for_tests().with_remanence(RemanenceModel::Exponential {
            half_life_ticks: 1000,
        });
        let mut kernel = Kernel::boot(board);
        let launched = DpuRunner::new(ModelKind::SqueezeNet)
            .with_input(Image::corrupted(224, 224))
            .launch(&mut kernel, UserId::new(0))
            .unwrap();
        let mut dbg = DebugSession::connect(UserId::new(1));
        let translation = capture_heap_translation(&mut dbg, &kernel, launched.pid()).unwrap();
        launched.terminate(&mut kernel).unwrap();
        for mode in [ScrapeMode::ContiguousRange, ScrapeMode::PerPage] {
            assert!(scrape_heap_view(&mut dbg, &kernel, &translation, mode)
                .unwrap()
                .is_none());
        }
        // The invalid mode is still rejected ahead of the remanence gate.
        let err = scrape_heap_view(
            &mut dbg,
            &kernel,
            &translation,
            ScrapeMode::BankStriped { workers: 0 },
        )
        .unwrap_err();
        assert!(err.to_string().contains("zero workers"));
    }

    #[test]
    fn multi_snapshot_mode_degenerates_to_contiguous_on_immutable_paths() {
        let (kernel, _run, translation) = attacked_board();
        let mut dbg = DebugSession::connect(UserId::new(1));
        let contiguous =
            scrape_heap(&mut dbg, &kernel, &translation, ScrapeMode::ContiguousRange).unwrap();
        let multi = scrape_heap(
            &mut dbg,
            &kernel,
            &translation,
            ScrapeMode::MultiSnapshot { snapshots: 3 },
        )
        .unwrap();
        assert_eq!(contiguous.as_bytes(), multi.as_bytes());
        let heap = scrape_heap_view(
            &mut dbg,
            &kernel,
            &translation,
            ScrapeMode::MultiSnapshot { snapshots: 3 },
        )
        .unwrap()
        .expect("perfect remanence permits borrowed reads");
        assert_eq!(heap.to_bytes(), contiguous.as_bytes());
    }

    #[test]
    fn snapshot_scrape_fuses_decaying_reads_soundly() {
        use zynq_dram::RemanenceModel;
        let board = BoardConfig::tiny_for_tests()
            .with_remanence(RemanenceModel::Exponential { half_life_ticks: 4 });
        let mut kernel = Kernel::boot(board);
        kernel.set_remanence_seed(99);
        let launched = DpuRunner::new(ModelKind::SqueezeNet)
            .with_input(Image::corrupted(224, 224))
            .launch(&mut kernel, UserId::new(0))
            .unwrap();
        let mut dbg = DebugSession::connect(UserId::new(1));
        let translation = capture_heap_translation(&mut dbg, &kernel, launched.pid()).unwrap();
        launched.terminate(&mut kernel).unwrap();

        let scrape = scrape_heap_snapshots(&mut dbg, &mut kernel, &translation, 3).unwrap();
        assert_eq!(scrape.snapshots.len(), 3);
        let fused = scrape.dump.as_bytes();
        for (i, snapshot) in scrape.snapshots.iter().enumerate() {
            for (f, s) in fused.iter().zip(snapshot) {
                assert_eq!(s & !f, 0, "snapshot {i} bit missing from fusion");
            }
        }
        // Under monotone decay the fusion equals the earliest snapshot
        // (padded to heap length).
        let mut earliest = scrape.snapshots[0].clone();
        earliest.resize(fused.len(), 0);
        assert_eq!(fused, &earliest[..]);
        // Later snapshots genuinely lose bytes at this half-life.
        let survivors = |bytes: &[u8]| bytes.iter().filter(|&&b| b != 0).count();
        assert!(survivors(&scrape.snapshots[2]) < survivors(&scrape.snapshots[0]));
    }

    #[test]
    fn snapshot_scrape_rejects_zero_and_mirrors_edge_semantics() {
        let (kernel, _run, translation) = attacked_board();
        let mut kernel = kernel;
        let mut dbg = DebugSession::connect(UserId::new(1));
        let err = scrape_heap_snapshots(&mut dbg, &mut kernel, &translation, 0).unwrap_err();
        assert!(matches!(err, AttackError::Channel(_)), "{err}");
        assert!(err.to_string().contains("zero snapshots"));

        // Empty translation and zero-length heap behave like the contiguous
        // scrape.
        let empty = HeapTranslation::from_parts(
            translation.pid(),
            translation.heap_start(),
            translation.heap_end(),
            vec![None; translation.pages().len()],
        );
        assert!(matches!(
            scrape_heap_snapshots(&mut dbg, &mut kernel, &empty, 2),
            Err(AttackError::TranslationEmpty { .. })
        ));
        let zero_len = HeapTranslation::from_parts(
            Pid::new(77),
            VirtAddr::new(0x1000),
            VirtAddr::new(0x1000),
            vec![Some(kernel.config().dram().base())],
        );
        let scrape = scrape_heap_snapshots(&mut dbg, &mut kernel, &zero_len, 2).unwrap();
        assert!(scrape.dump.is_empty());
        assert_eq!(scrape.snapshots, vec![Vec::new(); 2]);

        // Under perfect remanence every snapshot is identical and the fused
        // dump equals the single-read scrape.
        let single =
            scrape_heap(&mut dbg, &kernel, &translation, ScrapeMode::ContiguousRange).unwrap();
        let multi = scrape_heap_snapshots(&mut dbg, &mut kernel, &translation, 3).unwrap();
        assert_eq!(multi.dump.as_bytes(), single.as_bytes());
        assert!(multi.snapshots.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn per_page_mode_fills_missing_pages_with_zeros() {
        let (kernel, _run, translation) = attacked_board();
        // Drop one page from the translation to simulate a swapped-out page.
        let mut pages = translation.pages().to_vec();
        pages[1] = None;
        let partial = HeapTranslation::from_parts(
            translation.pid(),
            translation.heap_start(),
            translation.heap_end(),
            pages,
        );
        let mut dbg = DebugSession::connect(UserId::new(1));
        let dump = scrape_heap(&mut dbg, &kernel, &partial, ScrapeMode::PerPage).unwrap();
        assert_eq!(dump.missing_pages(), 1);
        assert!(dump.coverage() < 1.0);
        assert!(dump.as_bytes()[PAGE_SIZE as usize..2 * PAGE_SIZE as usize]
            .iter()
            .all(|&b| b == 0));
    }

    #[test]
    fn empty_translation_is_rejected() {
        let (kernel, _, translation) = attacked_board();
        let empty = HeapTranslation::from_parts(
            translation.pid(),
            translation.heap_start(),
            translation.heap_end(),
            vec![None; translation.pages().len()],
        );
        let mut dbg = DebugSession::connect(UserId::new(1));
        assert!(matches!(
            scrape_heap(&mut dbg, &kernel, &empty, ScrapeMode::PerPage),
            Err(AttackError::TranslationEmpty { .. })
        ));
        assert!(matches!(
            scrape_heap(&mut dbg, &kernel, &empty, ScrapeMode::ContiguousRange),
            Err(AttackError::TranslationEmpty { .. })
        ));
    }

    #[test]
    fn zero_length_heap_yields_empty_dump() {
        let (kernel, _, _) = attacked_board();
        let translation = HeapTranslation::from_parts(
            Pid::new(77),
            VirtAddr::new(0x1000),
            VirtAddr::new(0x1000),
            vec![Some(kernel.config().dram().base())],
        );
        let mut dbg = DebugSession::connect(UserId::new(1));
        let dump =
            scrape_heap(&mut dbg, &kernel, &translation, ScrapeMode::ContiguousRange).unwrap();
        assert!(dump.is_empty());
    }

    #[test]
    fn contiguous_read_near_window_end_is_clamped() {
        let (kernel, _, _) = attacked_board();
        let near_end = kernel.config().dram().end() - PAGE_SIZE;
        let translation = HeapTranslation::from_parts(
            Pid::new(77),
            VirtAddr::new(0x1000),
            VirtAddr::new(0x1000 + 4 * PAGE_SIZE),
            vec![Some(near_end), None, None, None],
        );
        let mut dbg = DebugSession::connect(UserId::new(1));
        let dump =
            scrape_heap(&mut dbg, &kernel, &translation, ScrapeMode::ContiguousRange).unwrap();
        // Full requested length, with the unreadable tail zero-padded.
        assert_eq!(dump.len() as u64, 4 * PAGE_SIZE);
    }
}
