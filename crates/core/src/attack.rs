//! The attack pipeline: the paper's four steps as a composable API.

use std::time::{Duration, Instant};

use petalinux_sim::{Kernel, Pid};
use serde::{Deserialize, Serialize};
use vitis_ai_sim::ModelKind;
use xsdb::DebugSession;

use zynq_dram::ScrapeView;

use crate::analysis::image::reconstruct_image_view;
use crate::analysis::marker::{marker_runs_view, CORRUPTED_MARKER};
use crate::analysis::reconstruct::{entropy_image_offset, fuzzy_identify_view, repair_image};
use crate::analysis::strings::identify_model_view;
use crate::dump::{HeapView, MemoryDump};
use crate::error::AttackError;
use crate::metrics::{AttackOutcome, OffsetSource, StepTimingsBuilder};
use crate::profile::ProfileDatabase;
use crate::scrape::{scrape_heap, scrape_heap_snapshots, scrape_heap_view};
use crate::signature::SignatureDb;
use crate::translate::{capture_heap_translation, HeapTranslation};

/// How physical memory is read during scraping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum ScrapeMode {
    /// Translate only the heap endpoints and read the contiguous physical
    /// range between them (the paper's method; assumes a physically
    /// contiguous heap).
    #[default]
    ContiguousRange,
    /// Translate and read every heap page individually (a stronger attacker
    /// that survives physical-layout randomization).
    PerPage,
    /// The contiguous-range read executed as `workers` concurrent per-bank
    /// `devmem` loops over the sharded DRAM store
    /// ([`zynq_dram::Dram::scrape_banks_parallel`]).
    ///
    /// Recovers exactly the bytes [`ScrapeMode::ContiguousRange`] recovers —
    /// campaign results are pinned byte-identical across worker counts, and
    /// that identity extends to analog-decayed residue: the remanence view
    /// ([`zynq_dram::RemanenceModel`]) is a pure per-cell function, so the
    /// per-shard parallel read of decayed residue matches the sequential
    /// sweep bit for bit.  The fan-out shrinks the scrape wall clock, and
    /// with it the window in which residue can churn away under live
    /// traffic.
    BankStriped {
        /// Concurrent bank readers (must be non-zero; 1 degenerates to the
        /// plain contiguous read).
        workers: usize,
    },
    /// The contiguous-range read repeated `snapshots` times across
    /// successive revival windows (one decay tick apart), with the snapshots
    /// OR-fused per bit ([`crate::analysis::reconstruct::fuse_snapshots`]).
    ///
    /// Because the shipped decay models only ever clear bits, the fused dump
    /// is a bitwise superset of every individual snapshot and a subset of
    /// the raw residue — the accumulation-across-reads attacker Pentimento
    /// describes.  Requires a mutable kernel to tick the clock between
    /// snapshots ([`AttackPipeline::execute_mut`]); on the immutable
    /// entry points it soundly degenerates to a single contiguous read (the
    /// fusion of snapshots under monotone decay equals the earliest one).
    MultiSnapshot {
        /// Number of snapshots fused (must be non-zero; 1 degenerates to
        /// the plain contiguous read).
        snapshots: usize,
    },
}

impl ScrapeMode {
    /// `true` for the strategies that read one contiguous physical range
    /// from the heap's endpoints (the paper's attacker and its bank-striped
    /// variant), `false` for the per-page attacker.
    pub fn reads_contiguous_range(self) -> bool {
        matches!(
            self,
            ScrapeMode::ContiguousRange
                | ScrapeMode::BankStriped { .. }
                | ScrapeMode::MultiSnapshot { .. }
        )
    }

    /// Rejects modes that are invalid by construction —
    /// [`ScrapeMode::BankStriped`] with zero workers and
    /// [`ScrapeMode::MultiSnapshot`] with zero snapshots, which every scrape
    /// path refuses identically (the fields are public, so specs can carry
    /// the invalid values past the builder asserts).
    ///
    /// # Errors
    ///
    /// Returns the same typed error the corresponding DRAM operation
    /// produces ([`zynq_dram::DramError::ZeroWorkers`] /
    /// [`zynq_dram::DramError::ZeroSnapshots`] wrapped as a channel error).
    pub fn validate(self) -> Result<(), crate::error::AttackError> {
        if matches!(self, ScrapeMode::BankStriped { workers: 0 }) {
            return Err(crate::error::AttackError::Channel(
                petalinux_sim::KernelError::from(zynq_dram::DramError::ZeroWorkers),
            ));
        }
        if matches!(self, ScrapeMode::MultiSnapshot { snapshots: 0 }) {
            return Err(crate::error::AttackError::Channel(
                petalinux_sim::KernelError::from(zynq_dram::DramError::ZeroSnapshots),
            ));
        }
        Ok(())
    }
}

impl std::fmt::Display for ScrapeMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScrapeMode::ContiguousRange => write!(f, "contiguous-range"),
            ScrapeMode::PerPage => write!(f, "per-page"),
            ScrapeMode::BankStriped { workers } => write!(f, "bank-striped({workers})"),
            ScrapeMode::MultiSnapshot { snapshots } => write!(f, "multi-snapshot({snapshots})"),
        }
    }
}

/// Configuration of the attack pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackConfig {
    /// How to read physical memory in Step 3.
    pub scrape_mode: ScrapeMode,
    /// Command-line substring identifying the victim in Step 1.  When `None`,
    /// any process whose command line mentions a zoo model is targeted.
    pub victim_pattern: Option<String>,
    /// Minimum marker-run length (bytes) considered image evidence.
    pub marker_min_run: u64,
    /// Minimum identification confidence required before using a profile's
    /// image offset.
    pub min_identification_confidence: f64,
    /// Enables the decay-tolerant reconstruction layer
    /// ([`crate::analysis::reconstruct`]): fuzzy model identification when
    /// exact matching fails, entropy-guided image location when no profile
    /// or marker offset is usable, and neighbor repair of the reconstructed
    /// image before scoring.
    pub reconstruct: bool,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            scrape_mode: ScrapeMode::ContiguousRange,
            victim_pattern: None,
            marker_min_run: 256,
            min_identification_confidence: 0.3,
            reconstruct: false,
        }
    }
}

/// The state captured while the victim is still running (Steps 1–2): its pid,
/// its heap translation, and the partial timing record of those steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation {
    translation: HeapTranslation,
    timings: StepTimingsBuilder,
}

impl Observation {
    /// Wraps an already-captured translation with a fresh (empty) timing
    /// record.
    ///
    /// The live path builds observations through
    /// [`AttackPipeline::observe_victim`]; this constructor exists for replay
    /// tooling and edge-case tests that assemble a [`HeapTranslation`]
    /// directly (e.g. via [`HeapTranslation::from_parts`]) — degenerate
    /// windows like a zero-length heap cannot be produced through the
    /// debugger capture, which requires a live `[heap]` mapping.
    pub fn from_translation(translation: HeapTranslation) -> Self {
        Observation {
            translation,
            timings: StepTimingsBuilder::new(),
        }
    }

    /// The victim's pid.
    pub fn pid(&self) -> Pid {
        self.translation.pid()
    }

    /// The captured heap translation.
    pub fn translation(&self) -> &HeapTranslation {
        &self.translation
    }

    /// The partial timing record (poll + translate stamped; scrape and
    /// analyze are added by [`AttackPipeline::execute`]).
    pub fn timings(&self) -> StepTimingsBuilder {
        self.timings
    }
}

/// Result of Step 4 alone (analysis of a dump), before being folded into an
/// [`AttackOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// The identification result.
    pub identified: Option<crate::signature::ModelMatch>,
    /// Corrupted-image marker runs found in the dump.
    pub marker_runs: Vec<crate::analysis::marker::MarkerRun>,
    /// The reconstructed image, if any.
    pub reconstructed_image: Option<vitis_ai_sim::Image>,
    /// Where the reconstruction offset came from.
    pub image_offset_used: Option<OffsetSource>,
}

/// The memory scraping attack.
///
/// # Example
///
/// ```
/// use msa_core::attack::{AttackConfig, AttackPipeline};
/// use msa_core::profile::Profiler;
/// use petalinux_sim::{BoardConfig, Kernel, UserId};
/// use vitis_ai_sim::{DpuRunner, Image, ModelKind};
/// use xsdb::DebugSession;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let board = BoardConfig::tiny_for_tests();
/// // Offline: profile the public library on the attacker's own board.
/// let profiles = Profiler::new(board).profile_all();
/// let pipeline = AttackPipeline::new(AttackConfig::default()).with_profiles(profiles);
///
/// // Online: the victim runs; the attacker observes, waits, scrapes.
/// let mut kernel = Kernel::boot(board);
/// let victim = DpuRunner::new(ModelKind::Resnet50Pt)
///     .with_input(Image::corrupted(224, 224))
///     .launch(&mut kernel, UserId::new(0))?;
/// let mut debugger = DebugSession::connect(UserId::new(1));
///
/// let pid = pipeline.poll_for_victim(&mut debugger, &kernel)?;
/// let observation = pipeline.observe_victim(&mut debugger, &kernel, pid)?;
/// victim.terminate(&mut kernel)?;
/// let outcome = pipeline.execute(&mut debugger, &kernel, &observation)?;
/// assert_eq!(outcome.identified_model(), Some(ModelKind::Resnet50Pt));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct AttackPipeline {
    config: AttackConfig,
    signatures: SignatureDb,
    profiles: ProfileDatabase,
}

impl AttackPipeline {
    /// Creates a pipeline with the standard signature database and no
    /// profiles.
    pub fn new(config: AttackConfig) -> Self {
        AttackPipeline {
            config,
            signatures: SignatureDb::standard(),
            profiles: ProfileDatabase::new(),
        }
    }

    /// Attaches an offline-profiling database (enables image reconstruction
    /// at profiled offsets).
    pub fn with_profiles(mut self, profiles: ProfileDatabase) -> Self {
        self.profiles = profiles;
        self
    }

    /// Replaces the signature database.
    pub fn with_signatures(mut self, signatures: SignatureDb) -> Self {
        self.signatures = signatures;
        self
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }

    /// The attached profile database.
    pub fn profiles(&self) -> &ProfileDatabase {
        &self.profiles
    }

    /// Step 1: poll the process list for a victim.
    ///
    /// A process matches when its command line contains the configured
    /// pattern, or — with no pattern configured — the name of any zoo model.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::VictimNotFound`] when nothing matches.
    pub fn poll_for_victim(
        &self,
        debugger: &mut DebugSession,
        kernel: &Kernel,
    ) -> Result<Pid, AttackError> {
        let processes = debugger.list_processes(kernel);
        let matched = processes
            .into_iter()
            .find(|p| match &self.config.victim_pattern {
                Some(pattern) => p.command.contains(pattern),
                None => ModelKind::all()
                    .iter()
                    .any(|model| p.command.contains(model.name())),
            });
        matched.map(|p| p.pid).ok_or(AttackError::VictimNotFound)
    }

    /// Steps 1–2 combined: capture the victim's heap translation while it is
    /// still running.
    ///
    /// # Errors
    ///
    /// Propagates translation errors (missing heap, denied access, …).
    pub fn observe_victim(
        &self,
        debugger: &mut DebugSession,
        kernel: &Kernel,
        pid: Pid,
    ) -> Result<Observation, AttackError> {
        self.observe_with_timings(debugger, kernel, pid, StepTimingsBuilder::new())
    }

    /// Step 2 with an existing partial timing record (carrying the poll
    /// stamp); stamps the translate step on top.
    fn observe_with_timings(
        &self,
        debugger: &mut DebugSession,
        kernel: &Kernel,
        pid: Pid,
        timings: StepTimingsBuilder,
    ) -> Result<Observation, AttackError> {
        let start = Instant::now();
        let translation = capture_heap_translation(debugger, kernel, pid)?;
        Ok(Observation {
            translation,
            timings: timings.with_translate(start.elapsed()),
        })
    }

    /// Convenience for Steps 1–2: poll, then observe whichever victim was
    /// found.
    ///
    /// # Errors
    ///
    /// Propagates polling and translation errors.
    pub fn poll_and_observe(
        &self,
        debugger: &mut DebugSession,
        kernel: &Kernel,
    ) -> Result<Observation, AttackError> {
        let poll_start = Instant::now();
        let pid = self.poll_for_victim(debugger, kernel)?;
        let timings = StepTimingsBuilder::new().with_poll(poll_start.elapsed());
        self.observe_with_timings(debugger, kernel, pid, timings)
    }

    /// Step 3: scrape the victim's heap from physical memory, requiring that
    /// the victim has terminated (as the paper's procedure does).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::VictimStillRunning`] if the pid is still in the
    /// process list, plus any scraping errors.
    pub fn scrape_after_termination(
        &self,
        debugger: &mut DebugSession,
        kernel: &Kernel,
        observation: &Observation,
    ) -> Result<MemoryDump, AttackError> {
        if debugger.is_running(kernel, observation.pid()) {
            return Err(AttackError::VictimStillRunning {
                pid: observation.pid(),
            });
        }
        scrape_heap(
            debugger,
            kernel,
            observation.translation(),
            self.config.scrape_mode,
        )
    }

    /// Step 3b, the compressed-swap channel: decompresses every residue slot
    /// the victim left in the swap store and overlays the recovered
    /// plaintext onto the scraped dump ([`MemoryDump::overlay_page`] —
    /// bytes the DRAM scrape already recovered always win).
    ///
    /// Swap slots are indexed by heap-relative page, so the overlay needs no
    /// physical translation; slots another owner wrote, slots a swap-aware
    /// sanitizer scrubbed, and slots decay has driven to all-zero contribute
    /// nothing.  Returns the number of dump bytes filled in.
    pub fn read_swap_residue(
        &self,
        kernel: &Kernel,
        observation: &Observation,
        dump: &mut MemoryDump,
    ) -> usize {
        let owner = observation.pid().owner_tag();
        let store = kernel.dram().swap_store();
        let mut filled = 0;
        for (id, slot) in store.residue_slots() {
            if slot.owner() != owner {
                continue;
            }
            if let Some(bytes) = store.read_slot(id) {
                filled += dump.overlay_page(slot.page_index(), &bytes);
            }
        }
        filled
    }

    /// Step 4: analyse a dump — identify the model, find image markers,
    /// reconstruct the image.
    pub fn analyze(&self, dump: &MemoryDump) -> Analysis {
        self.analyze_view(&dump.as_view())
    }

    /// Step 4 over a borrowed [`ScrapeView`] — the same analysis, run
    /// directly against the bank arenas with no owned dump in between
    /// ([`AttackPipeline::analyze`] delegates here, so both paths share one
    /// algorithm).
    pub fn analyze_view(&self, view: &ScrapeView<'_>) -> Analysis {
        let usable = |m: &crate::signature::ModelMatch| {
            m.confidence() >= self.config.min_identification_confidence
        };
        let mut identified = identify_model_view(view, &self.signatures);
        if self.config.reconstruct && !identified.as_ref().is_some_and(usable) {
            // Decay-tolerant fallback: bit-level fuzzy signature matching
            // over the same view, which survives clipped and erased bytes.
            identified = fuzzy_identify_view(view, &self.signatures)
                .filter(usable)
                .or(identified);
        }
        let runs = marker_runs_view(view, CORRUPTED_MARKER, self.config.marker_min_run);

        let mut image_offset_used = None;
        let mut reconstructed_image = None;
        if let Some(matched) = &identified {
            if usable(matched) && matched.model.accepts_image_input() {
                // Preferred: the offset learned by offline profiling.
                if let Some(profile) = self.profiles.profile(matched.model) {
                    image_offset_used = Some(OffsetSource::Profile {
                        offset: profile.image_offset,
                    });
                } else if let Some(run) = runs.first() {
                    // Fallback: the first corrupted-image marker run.
                    image_offset_used = Some(OffsetSource::Marker { offset: run.offset });
                } else if self.config.reconstruct {
                    // Last resort, reconstruction only: locate the image by
                    // its entropy region signature (decay shortens marker
                    // runs below any useful threshold long before it erases
                    // the region structure).
                    let (w, h) = matched.model.input_dims();
                    if let Some(offset) = entropy_image_offset(view, (w * h * 3) as usize) {
                        image_offset_used = Some(OffsetSource::Entropy { offset });
                    }
                }
                if let Some(source) = image_offset_used {
                    reconstructed_image =
                        reconstruct_image_view(view, matched.model, source.offset());
                }
                if self.config.reconstruct {
                    // Heal decay damage by neighbor interpolation before the
                    // reconstruction is scored.
                    reconstructed_image = reconstructed_image.map(|image| repair_image(&image));
                }
            }
        }

        Analysis {
            identified,
            marker_runs: runs,
            reconstructed_image,
            image_offset_used,
        }
    }

    /// Step 4 plus outcome assembly: analyses `dump` (timing the analysis)
    /// and folds it with the observation's partial timings and the caller's
    /// scrape duration into a full [`AttackOutcome`].
    ///
    /// Used by [`AttackPipeline::execute`] and by schedule-driven scrapers
    /// (live-traffic churn) that produce the dump themselves.
    pub fn score_dump(
        &self,
        observation: &Observation,
        dump: &MemoryDump,
        scrape_elapsed: Duration,
    ) -> AttackOutcome {
        let analyze_start = Instant::now();
        let analysis = self.analyze(dump);
        let analyze_elapsed = analyze_start.elapsed();

        AttackOutcome {
            victim_pid: observation.pid(),
            identified: analysis.identified,
            marker_runs: analysis.marker_runs,
            reconstructed_image: analysis.reconstructed_image,
            image_offset_used: analysis.image_offset_used,
            bytes_scraped: dump.len(),
            dump_coverage: dump.coverage(),
            timings: observation
                .timings
                .with_scrape(scrape_elapsed)
                .with_analyze(analyze_elapsed)
                .build(),
        }
    }

    /// [`AttackPipeline::score_dump`] for the zero-copy path: analyses a
    /// borrowed [`HeapView`] and folds it into the same [`AttackOutcome`].
    pub fn score_view(
        &self,
        observation: &Observation,
        heap: &HeapView<'_>,
        scrape_elapsed: Duration,
    ) -> AttackOutcome {
        let analyze_start = Instant::now();
        let analysis = self.analyze_view(heap.view());
        let analyze_elapsed = analyze_start.elapsed();

        AttackOutcome {
            victim_pid: observation.pid(),
            identified: analysis.identified,
            marker_runs: analysis.marker_runs,
            reconstructed_image: analysis.reconstructed_image,
            image_offset_used: analysis.image_offset_used,
            bytes_scraped: heap.len(),
            dump_coverage: heap.coverage(),
            timings: observation
                .timings
                .with_scrape(scrape_elapsed)
                .with_analyze(analyze_elapsed)
                .build(),
        }
    }

    /// Steps 3–4: scrape the terminated victim and analyse the dump,
    /// producing the full [`AttackOutcome`] with timings.
    ///
    /// When the board's remanence model permits borrowed reads (the default
    /// perfect model), the scrape-and-analyse hot path runs zero-copy: the
    /// heap is borrowed straight out of the DRAM bank arenas as a
    /// [`HeapView`] and analysed in place.  Otherwise it falls back to the
    /// owned [`MemoryDump`].  Outcome and audit trail are identical either
    /// way.
    ///
    /// # Errors
    ///
    /// Propagates scraping errors.
    pub fn execute(
        &self,
        debugger: &mut DebugSession,
        kernel: &Kernel,
        observation: &Observation,
    ) -> Result<AttackOutcome, AttackError> {
        if debugger.is_running(kernel, observation.pid()) {
            return Err(AttackError::VictimStillRunning {
                pid: observation.pid(),
            });
        }
        let scrape_start = Instant::now();
        if let Some(heap) = scrape_heap_view(
            debugger,
            kernel,
            observation.translation(),
            self.config.scrape_mode,
        )? {
            let scrape_elapsed = scrape_start.elapsed();
            return Ok(self.score_view(observation, &heap, scrape_elapsed));
        }
        let dump = scrape_heap(
            debugger,
            kernel,
            observation.translation(),
            self.config.scrape_mode,
        )?;
        let scrape_elapsed = scrape_start.elapsed();
        Ok(self.score_dump(observation, &dump, scrape_elapsed))
    }

    /// [`AttackPipeline::execute`] with a mutable kernel, which is what
    /// [`ScrapeMode::MultiSnapshot`] needs: the decay clock is ticked once
    /// between snapshots, so each read sees the residue one revival window
    /// later, and the snapshots are OR-fused into the analysed dump.
    ///
    /// This entry point also drains the compressed-swap channel: when the
    /// victim left residue slots in the swap store
    /// ([`AttackPipeline::read_swap_residue`]), the scrape takes the
    /// owned-dump path (the zero-copy view borrows the bank arenas and
    /// cannot be overlaid) and the decompressed slots fill the bytes the
    /// DRAM scrape missed before scoring.
    ///
    /// Every other scrape mode on a swap-free board behaves exactly as
    /// [`AttackPipeline::execute`] (the kernel is simply not mutated).
    ///
    /// # Errors
    ///
    /// Propagates scraping errors, and rejects a zero snapshot count.
    pub fn execute_mut(
        &self,
        debugger: &mut DebugSession,
        kernel: &mut Kernel,
        observation: &Observation,
    ) -> Result<AttackOutcome, AttackError> {
        let owner = observation.pid().owner_tag();
        let has_swap_residue = kernel.dram().swap_store().residue_bytes(Some(owner)) > 0;
        let ScrapeMode::MultiSnapshot { snapshots } = self.config.scrape_mode else {
            if !has_swap_residue {
                return self.execute(debugger, kernel, observation);
            }
            if debugger.is_running(kernel, observation.pid()) {
                return Err(AttackError::VictimStillRunning {
                    pid: observation.pid(),
                });
            }
            let scrape_start = Instant::now();
            let mut dump = scrape_heap(
                debugger,
                kernel,
                observation.translation(),
                self.config.scrape_mode,
            )?;
            self.read_swap_residue(kernel, observation, &mut dump);
            let scrape_elapsed = scrape_start.elapsed();
            return Ok(self.score_dump(observation, &dump, scrape_elapsed));
        };
        if debugger.is_running(kernel, observation.pid()) {
            return Err(AttackError::VictimStillRunning {
                pid: observation.pid(),
            });
        }
        let scrape_start = Instant::now();
        let scrape = scrape_heap_snapshots(debugger, kernel, observation.translation(), snapshots)?;
        let mut dump = scrape.dump;
        if has_swap_residue {
            self.read_swap_residue(kernel, observation, &mut dump);
        }
        let scrape_elapsed = scrape_start.elapsed();
        Ok(self.score_dump(observation, &dump, scrape_elapsed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use petalinux_sim::{BoardConfig, UserId};
    use vitis_ai_sim::{DpuRunner, Image};

    use crate::profile::Profiler;

    fn board() -> BoardConfig {
        BoardConfig::tiny_for_tests()
    }

    fn pipeline_with_profiles() -> AttackPipeline {
        let profiles = Profiler::new(board()).profile_all();
        AttackPipeline::new(AttackConfig::default()).with_profiles(profiles)
    }

    #[test]
    fn full_pipeline_recovers_model_and_image() {
        let pipeline = pipeline_with_profiles();
        let mut kernel = Kernel::boot(board());
        let input = Image::sample_photo(224, 224);
        let victim = DpuRunner::new(ModelKind::Resnet50Pt)
            .with_input(input.clone())
            .launch(&mut kernel, UserId::new(0))
            .unwrap();
        let mut debugger = DebugSession::connect(UserId::new(1));

        let observation = pipeline.poll_and_observe(&mut debugger, &kernel).unwrap();
        assert_eq!(observation.pid(), victim.pid());
        assert!(observation.translation().completeness() > 0.99);

        victim.terminate(&mut kernel).unwrap();
        let outcome = pipeline
            .execute(&mut debugger, &kernel, &observation)
            .unwrap();

        assert_eq!(outcome.identified_model(), Some(ModelKind::Resnet50Pt));
        assert!(outcome.identification_confidence() >= 0.5);
        assert!(outcome.has_reconstructed_image());
        assert_eq!(outcome.image_recovery_rate(&input), 1.0);
        assert!(matches!(
            outcome.image_offset_used,
            Some(OffsetSource::Profile { .. })
        ));
        assert!(outcome.bytes_scraped > 0);
        assert_eq!(outcome.dump_coverage, 1.0);
        // An ordinary photo contains no long 0xFF runs.
        assert!(outcome.marker_runs.is_empty());
    }

    #[test]
    fn corrupted_image_is_found_via_marker_without_profiles() {
        // No profiles attached: the marker fallback locates the image.
        let pipeline = AttackPipeline::new(AttackConfig::default());
        assert!(pipeline.profiles().is_empty());
        let mut kernel = Kernel::boot(board());
        let victim = DpuRunner::new(ModelKind::Resnet50Pt)
            .with_input(Image::corrupted(224, 224))
            .launch(&mut kernel, UserId::new(0))
            .unwrap();
        let mut debugger = DebugSession::connect(UserId::new(1));
        let observation = pipeline.poll_and_observe(&mut debugger, &kernel).unwrap();
        victim.terminate(&mut kernel).unwrap();
        let outcome = pipeline
            .execute(&mut debugger, &kernel, &observation)
            .unwrap();

        assert_eq!(outcome.identified_model(), Some(ModelKind::Resnet50Pt));
        assert!(!outcome.marker_runs.is_empty());
        assert!(matches!(
            outcome.image_offset_used,
            Some(OffsetSource::Marker { .. })
        ));
        assert_eq!(
            outcome.image_recovery_rate(&Image::corrupted(224, 224)),
            1.0
        );
    }

    #[test]
    fn zero_copy_execute_scores_identically_to_the_owned_pipeline() {
        let pipeline = pipeline_with_profiles();
        let mut kernel = Kernel::boot(board());
        let input = Image::corrupted(224, 224);
        let victim = DpuRunner::new(ModelKind::Resnet50Pt)
            .with_input(input.clone())
            .launch(&mut kernel, UserId::new(0))
            .unwrap();
        let mut debugger = DebugSession::connect(UserId::new(1));
        let observation = pipeline.poll_and_observe(&mut debugger, &kernel).unwrap();
        victim.terminate(&mut kernel).unwrap();

        // `execute` takes the zero-copy view path under perfect remanence;
        // the owned scrape-and-score must agree on every non-timing field.
        let via_view = pipeline
            .execute(&mut debugger, &kernel, &observation)
            .unwrap();
        let dump = pipeline
            .scrape_after_termination(&mut debugger, &kernel, &observation)
            .unwrap();
        let via_dump = pipeline.score_dump(&observation, &dump, Duration::ZERO);

        assert_eq!(via_view.victim_pid, via_dump.victim_pid);
        assert_eq!(via_view.identified, via_dump.identified);
        assert_eq!(via_view.marker_runs, via_dump.marker_runs);
        assert_eq!(via_view.reconstructed_image, via_dump.reconstructed_image);
        assert_eq!(via_view.image_offset_used, via_dump.image_offset_used);
        assert_eq!(via_view.bytes_scraped, via_dump.bytes_scraped);
        assert_eq!(via_view.dump_coverage, via_dump.dump_coverage);

        // And the analysis cores agree directly, dump vs borrowed view.
        assert_eq!(
            pipeline.analyze(&dump),
            pipeline.analyze_view(&dump.as_view())
        );
    }

    #[test]
    fn polling_honours_explicit_pattern_and_fails_cleanly() {
        let mut kernel = Kernel::boot(board());
        kernel.spawn(UserId::new(0), &["sh"]).unwrap();
        let mut debugger = DebugSession::connect(UserId::new(1));

        let default_pipeline = AttackPipeline::new(AttackConfig::default());
        assert!(matches!(
            default_pipeline.poll_for_victim(&mut debugger, &kernel),
            Err(AttackError::VictimNotFound)
        ));

        let victim = DpuRunner::new(ModelKind::YoloV3)
            .launch(&mut kernel, UserId::new(0))
            .unwrap();
        assert_eq!(
            default_pipeline
                .poll_for_victim(&mut debugger, &kernel)
                .unwrap(),
            victim.pid()
        );

        let targeted = AttackPipeline::new(AttackConfig {
            victim_pattern: Some("resnet50".to_string()),
            ..AttackConfig::default()
        });
        assert!(matches!(
            targeted.poll_for_victim(&mut debugger, &kernel),
            Err(AttackError::VictimNotFound)
        ));
    }

    #[test]
    fn scraping_before_termination_is_refused() {
        let pipeline = AttackPipeline::new(AttackConfig::default());
        let mut kernel = Kernel::boot(board());
        let _victim = DpuRunner::new(ModelKind::SqueezeNet)
            .launch(&mut kernel, UserId::new(0))
            .unwrap();
        let mut debugger = DebugSession::connect(UserId::new(1));
        let observation = pipeline.poll_and_observe(&mut debugger, &kernel).unwrap();
        assert!(matches!(
            pipeline.scrape_after_termination(&mut debugger, &kernel, &observation),
            Err(AttackError::VictimStillRunning { .. })
        ));
    }

    #[test]
    fn sanitized_board_defeats_the_attack() {
        use zynq_dram::SanitizePolicy;
        let hardened = board().with_sanitize_policy(SanitizePolicy::ZeroOnFree);
        let profiles = Profiler::new(board()).profile_all();
        let pipeline = AttackPipeline::new(AttackConfig::default()).with_profiles(profiles);
        let mut kernel = Kernel::boot(hardened);
        let input = Image::corrupted(224, 224);
        let victim = DpuRunner::new(ModelKind::Resnet50Pt)
            .with_input(input.clone())
            .launch(&mut kernel, UserId::new(0))
            .unwrap();
        let mut debugger = DebugSession::connect(UserId::new(1));
        let observation = pipeline.poll_and_observe(&mut debugger, &kernel).unwrap();
        victim.terminate(&mut kernel).unwrap();
        let outcome = pipeline
            .execute(&mut debugger, &kernel, &observation)
            .unwrap();

        assert!(outcome.identified_model().is_none());
        assert!(outcome.marker_runs.is_empty());
        assert!(!outcome.has_reconstructed_image());
        assert_eq!(outcome.image_recovery_rate(&input), 0.0);
    }

    #[test]
    fn config_and_mode_defaults() {
        let config = AttackConfig::default();
        assert_eq!(config.scrape_mode, ScrapeMode::ContiguousRange);
        assert!(config.victim_pattern.is_none());
        assert_eq!(ScrapeMode::default(), ScrapeMode::ContiguousRange);
        assert_eq!(ScrapeMode::ContiguousRange.to_string(), "contiguous-range");
        assert_eq!(ScrapeMode::PerPage.to_string(), "per-page");
        assert_eq!(
            ScrapeMode::BankStriped { workers: 4 }.to_string(),
            "bank-striped(4)"
        );
        assert_eq!(
            ScrapeMode::MultiSnapshot { snapshots: 3 }.to_string(),
            "multi-snapshot(3)"
        );
        assert!(ScrapeMode::ContiguousRange.reads_contiguous_range());
        assert!(ScrapeMode::BankStriped { workers: 2 }.reads_contiguous_range());
        assert!(ScrapeMode::MultiSnapshot { snapshots: 3 }.reads_contiguous_range());
        assert!(!ScrapeMode::PerPage.reads_contiguous_range());
        assert!(!AttackConfig::default().reconstruct);
        assert!(ScrapeMode::MultiSnapshot { snapshots: 1 }
            .validate()
            .is_ok());
        assert!(ScrapeMode::MultiSnapshot { snapshots: 0 }
            .validate()
            .unwrap_err()
            .to_string()
            .contains("zero snapshots"));
        let pipeline = AttackPipeline::default();
        assert_eq!(pipeline.config(), &AttackConfig::default());
    }
}
