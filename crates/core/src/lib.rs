//! # msa-core — the Memory Scraping Attack on Xilinx FPGAs
//!
//! This crate implements the paper's contribution: an end-to-end memory
//! scraping attack (MSA) that recovers private data — the identity of the ML
//! model and its input image — from the local DRAM of a terminated process on
//! a (simulated) Zynq UltraScale+ board running PetaLinux.
//!
//! The attack follows the paper's four steps (§III):
//!
//! 1. **Poll for the victim pid** — [`attack::AttackPipeline::poll_for_victim`]
//!    watches the process list through the debugger channel.
//! 2. **Fetch virtual addresses and convert them to physical addresses** —
//!    [`translate::capture_heap_translation`] reads `/proc/<pid>/maps`, takes
//!    the `[heap]` range and converts it with `/proc/<pid>/pagemap`.
//! 3. **Extract data from physical addresses** — after the victim terminates,
//!    [`scrape::scrape_heap`] reads the physical locations with `devmem`-style
//!    accesses, producing a [`dump::MemoryDump`].
//! 4. **Analyse the extracted data** — [`analysis::strings`] identifies the
//!    model from library-path strings ([`signature::SignatureDb`]),
//!    [`analysis::marker`] locates the corrupted-image marker, and
//!    [`analysis::image`] reconstructs the input image at the offset learned
//!    by offline [`profile::Profiler`] runs.
//!
//! Beyond the attack itself, [`defense`] evaluates it against every
//! sanitization / isolation / layout-randomization policy the substrate
//! crates provide, [`detect`] gives the defender a monitor that recognizes
//! the attack's access pattern in the debugger audit log, and [`scenario`]
//! packages a full victim-plus-attacker run for the examples, integration
//! tests and benchmarks.  [`campaign`] scales all of that to fleet-sized
//! evaluation: a [`campaign::CampaignSpec`] declares a scenario matrix over
//! boards, models, inputs, defenses, scrape modes and victim schedules, and
//! a scoped worker pool runs the cells in parallel with deterministic,
//! worker-count-independent results — the substrate every `defense` sweep
//! and the `experiments` binary now run on.
//!
//! # Example
//!
//! ```
//! use msa_core::scenario::AttackScenario;
//! use petalinux_sim::BoardConfig;
//! use vitis_ai_sim::ModelKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let outcome = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::Resnet50Pt)
//!     .with_corrupted_input()
//!     .execute()?;
//! assert_eq!(outcome.identified_model(), Some(ModelKind::Resnet50Pt));
//! assert!(outcome.pixel_recovery_rate() > 0.95);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod attack;
pub mod campaign;
pub mod defense;
pub mod detect;
pub mod dump;
pub mod error;
pub mod hexdump;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod scenario;
pub mod scrape;
pub mod signature;
pub mod translate;

pub use attack::{AttackConfig, AttackPipeline, ScrapeMode};
pub use campaign::{
    Adversary, CampaignCell, CampaignReport, CampaignSpec, CampaignSummary, CellRecord, InputKind,
    StreamConfig,
};
pub use dump::{HeapView, MemoryDump};
pub use error::AttackError;
pub use metrics::{AttackOutcome, StepTimings};
pub use profile::{ModelProfile, ProfileDatabase, Profiler};
pub use scenario::{
    AttackScenario, ResidueLifetime, ScenarioMetrics, ScenarioOutcome, VictimSchedule,
};
pub use signature::{ModelMatch, SignatureDb};
pub use translate::HeapTranslation;
