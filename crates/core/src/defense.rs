//! Defense evaluation: how each mitigation affects the attack.
//!
//! The paper's related-work and conclusion sections discuss three families of
//! mitigations without quantifying them: memory initialization at process
//! termination (RowClone / RowReset / selective scrubbing), confining the
//! debugger, and randomizing layout.  These sweeps supply the missing numbers
//! (experiments TAB-B, TAB-D, TAB-F and the isolation ablation).

use petalinux_sim::{BoardConfig, IsolationPolicy, Kernel, UserId};
use serde::{Deserialize, Serialize};
use vitis_ai_sim::{DpuRunner, Image, ModelKind};
use xsdb::DebugSession;
use zynq_dram::SanitizePolicy;
use zynq_mmu::{AllocationOrder, AslrMode};

use crate::attack::{AttackConfig, AttackPipeline, ScrapeMode};
use crate::error::AttackError;
use crate::profile::Profiler;
use crate::scenario::{AttackScenario, ScenarioResult};

/// One row of the sanitization-policy sweep (TAB-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SanitizeRow {
    /// The policy under test.
    pub policy: SanitizePolicy,
    /// Whether the attack still identified the model.
    pub model_identified: bool,
    /// Fraction of input pixels recovered exactly.
    pub pixel_recovery: f64,
    /// Residue frames left after the attack.
    pub residue_frames: usize,
    /// Modelled sanitization cost in cycles.
    pub scrub_cost_cycles: f64,
    /// Bytes of other live owners' data destroyed by the sanitizer.
    pub collateral_bytes: u64,
}

/// Sweeps every basic sanitization policy (plus a background scrubber) for
/// one victim model and reports what the attack still recovers.
///
/// # Errors
///
/// Propagates attack errors other than permission denials (which cannot occur
/// here because the isolation policy is left permissive).
pub fn evaluate_sanitize_policies(
    board: BoardConfig,
    model: ModelKind,
) -> Result<Vec<SanitizeRow>, AttackError> {
    let mut policies: Vec<SanitizePolicy> = SanitizePolicy::all_basic().to_vec();
    policies.push(SanitizePolicy::Background { delay_ticks: 1000 });

    let mut rows = Vec::with_capacity(policies.len());
    for policy in policies {
        let outcome = AttackScenario::new(board.with_sanitize_policy(policy), model)
            .with_corrupted_input()
            .execute()?;
        let report = outcome.scrub_report().cloned();
        rows.push(SanitizeRow {
            policy,
            model_identified: outcome.model_identification_correct(),
            pixel_recovery: outcome.pixel_recovery_rate(),
            residue_frames: outcome.residue_frames_after(),
            scrub_cost_cycles: report.as_ref().map_or(0.0, |r| r.cost_cycles),
            collateral_bytes: report.as_ref().map_or(0, |r| r.collateral_bytes),
        });
    }
    Ok(rows)
}

/// One row of the isolation-policy ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsolationRow {
    /// The isolation policy under test.
    pub isolation: IsolationPolicy,
    /// Whether the attack completed (vs. being blocked by a denial).
    pub attack_completed: bool,
    /// Whether the model was identified.
    pub model_identified: bool,
    /// Fraction of input pixels recovered.
    pub pixel_recovery: f64,
    /// The step at which the attack was blocked, when it was.
    pub blocked_at: Option<String>,
}

/// Compares the permissive (vulnerable) and confined isolation policies.
///
/// # Errors
///
/// Propagates non-permission attack errors.
pub fn evaluate_isolation(
    board: BoardConfig,
    model: ModelKind,
) -> Result<Vec<IsolationRow>, AttackError> {
    let mut rows = Vec::new();
    for isolation in [IsolationPolicy::Permissive, IsolationPolicy::Confined] {
        let scenario =
            AttackScenario::new(board.with_isolation(isolation), model).with_corrupted_input();
        let (result, outcome) = scenario.execute_allow_blocked()?;
        match (result, outcome) {
            (ScenarioResult::Completed, Some(outcome)) => rows.push(IsolationRow {
                isolation,
                attack_completed: true,
                model_identified: outcome.model_identification_correct(),
                pixel_recovery: outcome.pixel_recovery_rate(),
                blocked_at: None,
            }),
            (ScenarioResult::Blocked { step }, _) => rows.push(IsolationRow {
                isolation,
                attack_completed: false,
                model_identified: false,
                pixel_recovery: 0.0,
                blocked_at: Some(step),
            }),
            (ScenarioResult::Completed, None) => unreachable!("completed scenario has an outcome"),
        }
    }
    Ok(rows)
}

/// One row of the layout-randomization sweep (TAB-D).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayoutRow {
    /// Physical frame allocation order.
    pub allocation_order: AllocationOrder,
    /// Virtual address-space randomization mode.
    pub aslr: AslrMode,
    /// The scraping strategy the attacker used.
    pub scrape_mode: ScrapeMode,
    /// Whether the model was identified.
    pub model_identified: bool,
    /// Fraction of input pixels recovered.
    pub pixel_recovery: f64,
}

/// Sweeps layout randomization (physical allocation order and virtual ASLR)
/// against both scraping strategies.
///
/// # Errors
///
/// Propagates attack errors.
pub fn evaluate_layout_randomization(
    board: BoardConfig,
    model: ModelKind,
) -> Result<Vec<LayoutRow>, AttackError> {
    let layouts = [
        (AllocationOrder::Sequential, AslrMode::Disabled),
        (
            AllocationOrder::Randomized { seed: 0xC0FFEE },
            AslrMode::Disabled,
        ),
        (AllocationOrder::Sequential, AslrMode::Virtual { seed: 7 }),
        (
            AllocationOrder::Randomized { seed: 0xC0FFEE },
            AslrMode::Virtual { seed: 7 },
        ),
    ];
    let mut rows = Vec::new();
    for (order, aslr) in layouts {
        for scrape_mode in [ScrapeMode::ContiguousRange, ScrapeMode::PerPage] {
            let configured = board.with_allocation_order(order).with_aslr(aslr);
            let outcome = AttackScenario::new(configured, model)
                .with_corrupted_input()
                .with_attack_config(AttackConfig {
                    scrape_mode,
                    ..AttackConfig::default()
                })
                .execute()?;
            rows.push(LayoutRow {
                allocation_order: order,
                aslr,
                scrape_mode,
                model_identified: outcome.model_identification_correct(),
                pixel_recovery: outcome.pixel_recovery_rate(),
            });
        }
    }
    Ok(rows)
}

/// One row of the multi-tenant sweep (TAB-F): what a sanitization policy does
/// to a *co-resident, still-running* tenant when another tenant terminates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiTenantRow {
    /// The policy under test.
    pub policy: SanitizePolicy,
    /// Whether the attacker could still identify the terminated tenant's
    /// model.
    pub victim_model_identified: bool,
    /// Bytes of the still-running tenant's data destroyed by the sanitizer.
    pub active_tenant_bytes_clobbered: u64,
    /// Whether the still-running tenant's input image survived intact in its
    /// own heap.
    pub active_tenant_data_intact: bool,
}

/// Evaluates each sanitization policy in a two-tenant setting: tenant A
/// terminates (and is attacked), tenant B keeps running.
///
/// The allocation history is deliberately fragmented (a warm-up process is
/// spawned and torn down before the victim starts) so the victim's physical
/// frames are **non-contiguous and straddle the active tenant's frames** —
/// the situation in which the paper argues contiguous-initialization schemes
/// are unsafe because they "can include active guest user data".
///
/// The attacker uses the per-page scraping strategy, since a fragmented heap
/// defeats the endpoint-based read anyway.
///
/// # Errors
///
/// Propagates kernel/attack errors.
pub fn evaluate_multi_tenant(
    board: BoardConfig,
    victim_model: ModelKind,
    active_model: ModelKind,
) -> Result<Vec<MultiTenantRow>, AttackError> {
    let mut policies: Vec<SanitizePolicy> = SanitizePolicy::all_basic().to_vec();
    policies.push(SanitizePolicy::Background { delay_ticks: 1000 });

    let profiles = Profiler::new(board).profile_all();
    let mut rows = Vec::with_capacity(policies.len());
    for policy in policies {
        let configured = board.with_sanitize_policy(policy);
        let mut kernel = Kernel::boot(configured);

        let tenant_a = UserId::new(0);
        let tenant_b = UserId::new(2);

        // Fragment the allocator: a warm-up process claims a block of low
        // frames and releases it again after the active tenant has started,
        // so the victim's allocation is split across the hole and fresh
        // frames above the active tenant.
        let warmup = kernel.spawn(tenant_a, &["warmup"])?;
        kernel.grow_heap(warmup, 16 * zynq_dram::PAGE_SIZE)?;

        let active = DpuRunner::new(active_model)
            .launch(&mut kernel, tenant_b)
            .map_err(|e| match e {
                vitis_ai_sim::RunnerError::Kernel(k) => AttackError::Channel(k),
            })?;
        kernel.terminate(warmup)?;

        let victim = DpuRunner::new(victim_model)
            .with_input(Image::corrupted(
                victim_model.input_dims().0,
                victim_model.input_dims().1,
            ))
            .launch(&mut kernel, tenant_a)
            .map_err(|e| match e {
                vitis_ai_sim::RunnerError::Kernel(k) => AttackError::Channel(k),
            })?;

        // The attacker observes the victim, the victim terminates, the policy
        // runs, the attacker scrapes.
        let pipeline = AttackPipeline::new(AttackConfig {
            victim_pattern: Some(victim_model.name().to_string()),
            scrape_mode: ScrapeMode::PerPage,
            ..AttackConfig::default()
        })
        .with_profiles(profiles.clone());
        let mut debugger = DebugSession::connect(UserId::new(1));
        let observation = pipeline.poll_and_observe(&mut debugger, &kernel)?;
        victim.terminate(&mut kernel).map_err(|e| match e {
            vitis_ai_sim::RunnerError::Kernel(k) => AttackError::Channel(k),
        })?;
        // Collateral is summed over every sanitizer run on this board (the
        // warm-up teardown plus the victim's), since both can touch the
        // active tenant under bank/row-granular schemes.
        let collateral: u64 = kernel
            .scrub_reports()
            .iter()
            .map(|r| r.collateral_bytes)
            .sum();
        let outcome = pipeline.execute(&mut debugger, &kernel, &observation)?;

        // Ground truth for the active tenant: is its input image still intact
        // in its own (still mapped) heap?
        let active_layout = active.layout();
        let (aw, ah) = active_model.input_dims();
        let mut active_image = vec![0u8; (aw * ah * 3) as usize];
        let heap_base = kernel.process(active.pid())?.heap_base();
        kernel.read_process_memory(
            active.pid(),
            heap_base + active_layout.image_offset,
            &mut active_image,
        )?;
        let expected = active.input_image().as_bytes();
        let intact = active_image == expected;

        rows.push(MultiTenantRow {
            policy,
            victim_model_identified: outcome.identified_model() == Some(victim_model),
            active_tenant_bytes_clobbered: collateral,
            active_tenant_data_intact: intact,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn board() -> BoardConfig {
        BoardConfig::tiny_for_tests()
    }

    #[test]
    fn sanitize_sweep_has_expected_shape() {
        let rows = evaluate_sanitize_policies(board(), ModelKind::SqueezeNet).unwrap();
        assert_eq!(rows.len(), 6);

        let by_policy = |p: SanitizePolicy| rows.iter().find(|r| r.policy == p).unwrap();

        // No sanitization: full recovery, zero cost.
        let none = by_policy(SanitizePolicy::None);
        assert!(none.model_identified);
        assert!(none.pixel_recovery > 0.99);
        assert_eq!(none.scrub_cost_cycles, 0.0);
        assert!(none.residue_frames > 0);

        // Every eager scrubbing policy defeats the attack.
        for policy in [
            SanitizePolicy::ZeroOnFree,
            SanitizePolicy::RowClone,
            SanitizePolicy::RowReset,
            SanitizePolicy::SelectiveScrub,
        ] {
            let row = by_policy(policy);
            assert!(
                !row.model_identified,
                "{policy} should defeat identification"
            );
            assert_eq!(row.pixel_recovery, 0.0, "{policy} should defeat recovery");
            assert!(row.scrub_cost_cycles > 0.0);
        }

        // Cost ordering: in-DRAM bulk schemes are cheaper than CPU zeroing.
        assert!(
            by_policy(SanitizePolicy::RowClone).scrub_cost_cycles
                < by_policy(SanitizePolicy::ZeroOnFree).scrub_cost_cycles
        );

        // A long-delay background scrubber leaves the window open: the attack
        // still succeeds.
        let background = rows
            .iter()
            .find(|r| matches!(r.policy, SanitizePolicy::Background { .. }))
            .unwrap();
        assert!(background.model_identified);
        assert!(background.pixel_recovery > 0.99);
    }

    #[test]
    fn isolation_sweep_blocks_only_the_confined_board() {
        let rows = evaluate_isolation(board(), ModelKind::SqueezeNet).unwrap();
        assert_eq!(rows.len(), 2);
        let permissive = &rows[0];
        assert_eq!(permissive.isolation, IsolationPolicy::Permissive);
        assert!(permissive.attack_completed);
        assert!(permissive.model_identified);
        assert!(permissive.pixel_recovery > 0.99);
        assert!(permissive.blocked_at.is_none());

        let confined = &rows[1];
        assert_eq!(confined.isolation, IsolationPolicy::Confined);
        assert!(!confined.attack_completed);
        assert!(!confined.model_identified);
        assert_eq!(confined.pixel_recovery, 0.0);
        assert!(confined.blocked_at.is_some());
    }

    #[test]
    fn layout_sweep_shows_per_page_attacker_beating_randomization() {
        let rows = evaluate_layout_randomization(board(), ModelKind::SqueezeNet).unwrap();
        assert_eq!(rows.len(), 8);

        let find = |order_random: bool, mode: ScrapeMode| {
            rows.iter()
                .find(|r| {
                    matches!(r.allocation_order, AllocationOrder::Randomized { .. }) == order_random
                        && r.aslr == AslrMode::Disabled
                        && r.scrape_mode == mode
                })
                .unwrap()
        };

        // Deterministic layout: both attackers succeed fully.
        assert!(find(false, ScrapeMode::ContiguousRange).pixel_recovery > 0.99);
        assert!(find(false, ScrapeMode::PerPage).pixel_recovery > 0.99);

        // Randomized physical layout: the paper's contiguous-range method
        // degrades badly, while the per-page attacker is unaffected.
        let contiguous_rand = find(true, ScrapeMode::ContiguousRange);
        let per_page_rand = find(true, ScrapeMode::PerPage);
        assert!(contiguous_rand.pixel_recovery < 0.5);
        assert!(per_page_rand.pixel_recovery > 0.99);
        assert!(per_page_rand.model_identified);

        // Virtual ASLR alone does not stop either attacker (offsets are
        // heap-relative).
        let aslr_row = rows
            .iter()
            .find(|r| {
                r.aslr != AslrMode::Disabled
                    && r.allocation_order == AllocationOrder::Sequential
                    && r.scrape_mode == ScrapeMode::ContiguousRange
            })
            .unwrap();
        assert!(aslr_row.pixel_recovery > 0.99);
    }

    #[test]
    fn multi_tenant_sweep_shows_collateral_damage_of_bulk_schemes() {
        let rows =
            evaluate_multi_tenant(board(), ModelKind::SqueezeNet, ModelKind::MobileNetV2).unwrap();
        assert_eq!(rows.len(), 6);
        let by_policy = |p: SanitizePolicy| rows.iter().find(|r| r.policy == p).unwrap();

        // No sanitization: attack succeeds, co-tenant untouched.
        let none = by_policy(SanitizePolicy::None);
        assert!(none.victim_model_identified);
        assert!(none.active_tenant_data_intact);
        assert_eq!(none.active_tenant_bytes_clobbered, 0);

        // Precise schemes protect the victim without harming the co-tenant.
        for policy in [SanitizePolicy::ZeroOnFree, SanitizePolicy::SelectiveScrub] {
            let row = by_policy(policy);
            assert!(!row.victim_model_identified);
            assert!(
                row.active_tenant_data_intact,
                "{policy} must not clobber the co-tenant"
            );
            assert_eq!(row.active_tenant_bytes_clobbered, 0);
        }

        // Bulk schemes defeat the attack but destroy the co-tenant's data
        // (the paper's argument against them in multi-tenant settings).
        for policy in [SanitizePolicy::RowClone, SanitizePolicy::RowReset] {
            let row = by_policy(policy);
            assert!(!row.victim_model_identified);
            assert!(
                row.active_tenant_bytes_clobbered > 0,
                "{policy} should clobber"
            );
            assert!(!row.active_tenant_data_intact);
        }
    }
}
