//! Defense evaluation: how each mitigation affects the attack.
//!
//! The paper's related-work and conclusion sections discuss three families of
//! mitigations without quantifying them: memory initialization at process
//! termination (RowClone / RowReset / selective scrubbing), confining the
//! debugger, and randomizing layout.  These sweeps supply the missing numbers
//! (experiments TAB-B, TAB-D, TAB-F and the isolation ablation).
//!
//! Each sweep is a thin [`CampaignSpec`] over the [`crate::campaign`] engine:
//! the spec declares the axis being swept, the shared worker pool executes
//! the cells (amortizing offline profiling across the sweep), and the rows
//! below are projections of the resulting [`CellRecord`]s.  The larger
//! sweeps project their rows through the streaming visitor
//! ([`CampaignSpec::stream_cells`]) — records are consumed in cell-index
//! order as they complete, never held as a batch.
//!
//! Because every sweep fans out exclusively through the streaming engine,
//! `race-check` builds audit this module's parallelism transitively: each
//! block claim the pool makes on a sweep's behalf is recorded per worker and
//! asserted cross-worker disjoint (see `zynq_dram::racecheck`), with no
//! sweep-specific instrumentation needed here.

// Lint audit: indexes and slice bounds here are established by the
// surrounding length checks / loop invariants before use.
#![allow(clippy::indexing_slicing)]

use petalinux_sim::{BoardConfig, IsolationPolicy};
use serde::{Deserialize, Serialize};
use vitis_ai_sim::ModelKind;
use zynq_dram::{RemanenceModel, SanitizePolicy};
use zynq_mmu::{AllocationOrder, AslrMode};

use crate::attack::{AttackConfig, ScrapeMode};
use crate::campaign::{CampaignSpec, CellRecord, InputKind, StreamConfig};
use crate::error::AttackError;
use crate::scenario::{ScenarioMetrics, ScenarioResult, VictimSchedule};

/// The sanitization policies every policy sweep covers: each basic policy
/// plus a long-delay background scrubber.
fn swept_policies() -> Vec<SanitizePolicy> {
    let mut policies: Vec<SanitizePolicy> = SanitizePolicy::all_basic().to_vec();
    policies.push(SanitizePolicy::Background { delay_ticks: 1000 });
    policies
}

/// The metrics of a cell that a sweep requires to have completed.
///
/// Sweeps that do not themselves ablate isolation (sanitize, layout,
/// multi-tenant) inherit the caller's board policy; on a confined board
/// their cells come back blocked, which these sweeps surface as
/// [`AttackError::Blocked`] rather than panicking or fabricating rows.
fn completed_metrics(record: &CellRecord) -> Result<&ScenarioMetrics, AttackError> {
    match (&record.result, &record.metrics) {
        (ScenarioResult::Completed, Some(metrics)) => Ok(metrics),
        (ScenarioResult::Blocked { step }, _) => Err(AttackError::Blocked { step: step.clone() }),
        (ScenarioResult::Completed, None) => unreachable!("completed cell has metrics"),
    }
}

/// One row of the sanitization-policy sweep (TAB-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SanitizeRow {
    /// The policy under test.
    pub policy: SanitizePolicy,
    /// Whether the attack still identified the model.
    pub model_identified: bool,
    /// Fraction of input pixels recovered exactly.
    pub pixel_recovery: f64,
    /// Residue frames left after the attack.
    pub residue_frames: usize,
    /// Modelled sanitization cost in cycles.
    pub scrub_cost_cycles: f64,
    /// Bytes of other live owners' data destroyed by the sanitizer.
    pub collateral_bytes: u64,
}

/// Sweeps every basic sanitization policy (plus a background scrubber) for
/// one victim model and reports what the attack still recovers.
///
/// # Errors
///
/// Propagates attack errors; returns [`AttackError::Blocked`] when the
/// caller's board confines the attack channel (the sweep inherits the
/// board's isolation policy).
pub fn evaluate_sanitize_policies(
    board: BoardConfig,
    model: ModelKind,
) -> Result<Vec<SanitizeRow>, AttackError> {
    let mut rows = Vec::new();
    CampaignSpec::new("sanitize-sweep", board)
        .with_models(vec![model])
        .with_inputs(vec![InputKind::Corrupted])
        .with_sanitize_policies(swept_policies())
        .stream_cells(StreamConfig::default(), |record| {
            let metrics = completed_metrics(&record)?;
            rows.push(SanitizeRow {
                policy: record.cell.sanitize,
                model_identified: metrics.model_identified,
                pixel_recovery: metrics.pixel_recovery,
                residue_frames: metrics.residue_frames,
                scrub_cost_cycles: metrics.scrub_cost_cycles,
                collateral_bytes: metrics.collateral_bytes,
            });
            Ok(())
        })?;
    Ok(rows)
}

/// One row of the isolation-policy ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsolationRow {
    /// The isolation policy under test.
    pub isolation: IsolationPolicy,
    /// Whether the attack completed (vs. being blocked by a denial).
    pub attack_completed: bool,
    /// Whether the model was identified.
    pub model_identified: bool,
    /// Fraction of input pixels recovered.
    pub pixel_recovery: f64,
    /// The step at which the attack was blocked, when it was.
    pub blocked_at: Option<String>,
}

/// Compares the permissive (vulnerable) and confined isolation policies.
///
/// # Errors
///
/// Propagates non-permission attack errors.
pub fn evaluate_isolation(
    board: BoardConfig,
    model: ModelKind,
) -> Result<Vec<IsolationRow>, AttackError> {
    let report = CampaignSpec::new("isolation-ablation", board)
        .with_models(vec![model])
        .with_inputs(vec![InputKind::Corrupted])
        .with_isolation_policies(vec![IsolationPolicy::Permissive, IsolationPolicy::Confined])
        .run()?;
    Ok(report
        .cells()
        .iter()
        .map(|record| match (&record.result, &record.metrics) {
            (ScenarioResult::Completed, Some(metrics)) => IsolationRow {
                isolation: record.cell.isolation,
                attack_completed: true,
                model_identified: metrics.model_identified,
                pixel_recovery: metrics.pixel_recovery,
                blocked_at: None,
            },
            (ScenarioResult::Blocked { step }, _) => IsolationRow {
                isolation: record.cell.isolation,
                attack_completed: false,
                model_identified: false,
                pixel_recovery: 0.0,
                blocked_at: Some(step.clone()),
            },
            (ScenarioResult::Completed, None) => unreachable!("completed cell has metrics"),
        })
        .collect())
}

/// One row of the layout-randomization sweep (TAB-D).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayoutRow {
    /// Physical frame allocation order.
    pub allocation_order: AllocationOrder,
    /// Virtual address-space randomization mode.
    pub aslr: AslrMode,
    /// The scraping strategy the attacker used.
    pub scrape_mode: ScrapeMode,
    /// Whether the model was identified.
    pub model_identified: bool,
    /// Fraction of input pixels recovered.
    pub pixel_recovery: f64,
}

/// Sweeps layout randomization (physical allocation order and virtual ASLR)
/// against both scraping strategies.
///
/// # Errors
///
/// Propagates attack errors; returns [`AttackError::Blocked`] on a confined
/// board.
pub fn evaluate_layout_randomization(
    board: BoardConfig,
    model: ModelKind,
) -> Result<Vec<LayoutRow>, AttackError> {
    let mut rows = Vec::new();
    CampaignSpec::new("layout-sweep", board)
        .with_models(vec![model])
        .with_inputs(vec![InputKind::Corrupted])
        .with_aslr_modes(vec![AslrMode::Disabled, AslrMode::Virtual { seed: 7 }])
        .with_allocation_orders(vec![
            AllocationOrder::Sequential,
            AllocationOrder::Randomized { seed: 0xC0FFEE },
        ])
        .with_scrape_modes(vec![ScrapeMode::ContiguousRange, ScrapeMode::PerPage])
        .stream_cells(StreamConfig::default(), |record| {
            let metrics = completed_metrics(&record)?;
            rows.push(LayoutRow {
                allocation_order: record.cell.allocation_order,
                aslr: record.cell.aslr,
                scrape_mode: record.cell.scrape_mode,
                model_identified: metrics.model_identified,
                pixel_recovery: metrics.pixel_recovery,
            });
            Ok(())
        })?;
    Ok(rows)
}

/// One row of the bank-striping sweep: what the bank-striped attacker
/// recovers next to the paper's single-sweep attacker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BankStripeRow {
    /// The scraping strategy the attacker used.
    pub scrape_mode: ScrapeMode,
    /// Whether the model was identified.
    pub model_identified: bool,
    /// Fraction of input pixels recovered.
    pub pixel_recovery: f64,
    /// Bytes scraped from physical memory.
    pub bytes_scraped: usize,
    /// Fraction of heap pages captured by the scrape.
    pub dump_coverage: f64,
}

/// Sweeps the contiguous-range attacker against its bank-striped variant at
/// `workers` concurrent bank readers.
///
/// The table documents a *capability* result, not a defense: striping the
/// scrape across DRAM banks recovers byte-for-byte what the single sweep
/// recovers — parallelism shrinks the attacker's exposure window without
/// costing fidelity, so defenses that rely on the scrape being slow
/// (background scrubbing delays, live traffic churn) get less time than the
/// single-sweep numbers suggest.
///
/// # Errors
///
/// Propagates attack errors; returns [`AttackError::Blocked`] when the
/// caller's board confines the attack channel.
pub fn evaluate_bank_striping(
    board: BoardConfig,
    model: ModelKind,
    workers: usize,
) -> Result<Vec<BankStripeRow>, AttackError> {
    let mut rows = Vec::new();
    CampaignSpec::new("bank-striping-sweep", board)
        .with_models(vec![model])
        .with_inputs(vec![InputKind::Corrupted])
        .with_scrape_modes(vec![
            ScrapeMode::ContiguousRange,
            ScrapeMode::BankStriped { workers },
        ])
        .stream_cells(StreamConfig::default(), |record| {
            let metrics = completed_metrics(&record)?;
            rows.push(BankStripeRow {
                scrape_mode: record.cell.scrape_mode,
                model_identified: metrics.model_identified,
                pixel_recovery: metrics.pixel_recovery,
                bytes_scraped: metrics.bytes_scraped,
                dump_coverage: metrics.dump_coverage,
            });
            Ok(())
        })?;
    Ok(rows)
}

/// One row of the remanence sweep: what the attack still recovers when the
/// residue decays analog-style (Pentimento) between termination and the
/// scrape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemanenceRow {
    /// The remanence decay model under test.
    pub remanence: RemanenceModel,
    /// The scraping strategy the attacker used.
    pub scrape_mode: ScrapeMode,
    /// Whether the model was identified.
    pub model_identified: bool,
    /// Fraction of input pixels recovered.
    pub pixel_recovery: f64,
    /// Non-zero residue bytes in the raw store when the attack ended.
    pub residue_bytes_raw: u64,
    /// Of those, bytes the decay view had driven to zero.
    pub residue_bytes_decayed: u64,
    /// Bits the decay view flipped away.
    pub residue_bits_flipped: u64,
    /// Fraction of the raw residue still readable through the decay view.
    pub decayed_recovery: f64,
}

/// The remanence models every remanence sweep covers: the perfect baseline,
/// exponential byte decay at shortening half-lives, and a per-bit discharge
/// model.
pub fn swept_remanence_models() -> Vec<RemanenceModel> {
    vec![
        RemanenceModel::Perfect,
        RemanenceModel::Exponential {
            half_life_ticks: 16,
        },
        RemanenceModel::Exponential { half_life_ticks: 4 },
        RemanenceModel::Exponential { half_life_ticks: 1 },
        RemanenceModel::BitFlip { rate_ppm: 120_000 },
    ]
}

/// Sweeps the remanence decay axis ([`swept_remanence_models`]) against both
/// the paper's single-sweep attacker and its bank-striped variant at
/// `workers` concurrent bank readers.
///
/// Two results come out of the table: how fast the attack's recovery falls
/// off as retention shortens (the robustness question Pentimento raises),
/// and that the bank-striped scrape of *decayed* residue is byte-identical
/// to the sequential one — per-shard decay is a pure per-cell function, so
/// fanning out never changes the science.  Each scrape mode runs as its own
/// campaign with the same seed, so paired rows share their cell seed (and
/// therefore their decay draws) and differ only in the read path.
///
/// Rows come back remanence-major: for each model, the contiguous row is
/// immediately followed by its bank-striped twin.
///
/// # Errors
///
/// Propagates attack errors; returns [`AttackError::Blocked`] when the
/// caller's board confines the attack channel.
pub fn evaluate_remanence(
    board: BoardConfig,
    model: ModelKind,
    workers: usize,
) -> Result<Vec<RemanenceRow>, AttackError> {
    let sweep = |mode: ScrapeMode| -> Result<Vec<RemanenceRow>, AttackError> {
        let mut rows = Vec::new();
        CampaignSpec::new("remanence-sweep", board)
            .with_models(vec![model])
            .with_inputs(vec![InputKind::Corrupted])
            .with_remanence_models(swept_remanence_models())
            .with_scrape_modes(vec![mode])
            .stream_cells(StreamConfig::default(), |record| {
                let metrics = completed_metrics(&record)?;
                let lifetime = metrics.residue_lifetime;
                rows.push(RemanenceRow {
                    remanence: record.cell.remanence,
                    scrape_mode: record.cell.scrape_mode,
                    model_identified: metrics.model_identified,
                    pixel_recovery: metrics.pixel_recovery,
                    residue_bytes_raw: lifetime.residue_bytes_raw,
                    residue_bytes_decayed: lifetime.residue_bytes_decayed,
                    residue_bits_flipped: lifetime.residue_bits_flipped,
                    decayed_recovery: lifetime.decayed_recovery_rate(),
                });
                Ok(())
            })?;
        Ok(rows)
    };
    let contiguous = sweep(ScrapeMode::ContiguousRange)?;
    let striped = sweep(ScrapeMode::BankStriped { workers })?;
    Ok(contiguous
        .into_iter()
        .zip(striped)
        .flat_map(|(a, b)| [a, b])
        .collect())
}

/// One row of the reconstruction sweep: what the raw exact-matching attacker
/// recovers at a remanence point versus the decay-tolerant reconstructor
/// ([`crate::analysis::reconstruct`]) at the **same cell seed** — the paired
/// columns of the `--reconstruct` experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconstructRow {
    /// The remanence decay model under test.
    pub remanence: RemanenceModel,
    /// Snapshots fused by the multi-snapshot read (1 = single read).
    pub snapshots: usize,
    /// Whether the exact-matching baseline identified the model.
    pub baseline_identified: bool,
    /// Pixel recovery of the exact-matching baseline.
    pub baseline_recovery: f64,
    /// Whether the reconstructing attacker identified the model (exact or
    /// fuzzy).
    pub reconstructed_identified: bool,
    /// Pixel recovery after fusion, fuzzy identification, and repair.
    pub reconstructed_recovery: f64,
    /// Fraction of the raw residue still readable through the decay view —
    /// the physical ceiling both attackers share.
    pub decayed_recovery: f64,
}

impl ReconstructRow {
    /// `reconstructed_recovery / baseline_recovery`: how much the
    /// reconstructor buys at this remanence point.  1.0 when both recovered
    /// nothing; infinite when only reconstruction recovered pixels.
    pub fn recovery_gain(&self) -> f64 {
        if self.baseline_recovery > 0.0 {
            self.reconstructed_recovery / self.baseline_recovery
        } else if self.reconstructed_recovery > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }
}

/// Sweeps the remanence decay axis ([`swept_remanence_models`]) twice at
/// matched cell seeds: once with the exact-matching single-read attacker
/// (the [`evaluate_remanence`] contiguous baseline) and once with the
/// decay-tolerant reconstructor — [`ScrapeMode::MultiSnapshot`] fusion plus
/// fuzzy identification and neighbor repair ([`AttackConfig::reconstruct`]).
///
/// Both sweeps use the same spec shape (single-value axes around the
/// remanence axis) and the same campaign seed, so cell index *i* draws the
/// same decay pattern in both — each row is a true paired comparison, and
/// the baseline column reproduces the contiguous column of
/// [`evaluate_remanence`] byte for byte.
///
/// # Errors
///
/// Propagates attack errors; returns [`AttackError::Blocked`] when the
/// caller's board confines the attack channel.
pub fn evaluate_reconstruction(
    board: BoardConfig,
    model: ModelKind,
    snapshots: usize,
) -> Result<Vec<ReconstructRow>, AttackError> {
    type Projection = (bool, f64, f64);
    let sweep = |mode: ScrapeMode, reconstruct: bool| -> Result<Vec<Projection>, AttackError> {
        let mut rows = Vec::new();
        CampaignSpec::new("remanence-sweep", board)
            .with_models(vec![model])
            .with_inputs(vec![InputKind::Corrupted])
            .with_remanence_models(swept_remanence_models())
            .with_scrape_modes(vec![mode])
            .with_attack_config(AttackConfig {
                reconstruct,
                ..AttackConfig::default()
            })
            .stream_cells(StreamConfig::default(), |record| {
                let metrics = completed_metrics(&record)?;
                rows.push((
                    metrics.model_identified,
                    metrics.pixel_recovery,
                    metrics.residue_lifetime.decayed_recovery_rate(),
                ));
                Ok(())
            })?;
        Ok(rows)
    };
    let baseline = sweep(ScrapeMode::ContiguousRange, false)?;
    let reconstructed = sweep(ScrapeMode::MultiSnapshot { snapshots }, true)?;
    Ok(swept_remanence_models()
        .into_iter()
        .zip(baseline)
        .zip(reconstructed)
        .map(|((remanence, base), recon)| ReconstructRow {
            remanence,
            snapshots,
            baseline_identified: base.0,
            baseline_recovery: base.1,
            reconstructed_identified: recon.0,
            reconstructed_recovery: recon.1,
            decayed_recovery: base.2,
        })
        .collect())
}

/// One row of the revival (Resurrection-style) sweep: what a sanitization
/// policy leaves for a successor process that re-allocates the victim's pid
/// and frames before the scrape runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RevivalRow {
    /// The policy under test.
    pub policy: SanitizePolicy,
    /// Residue frames the victim left at termination.
    pub victim_frames: usize,
    /// Heap frames of the revived successor process.
    pub revived_heap_frames: usize,
    /// Of those, frames that still held residue when the revived process
    /// first read them.
    pub inherited_frames: usize,
    /// `inherited_frames / revived_heap_frames`.
    pub inheritance_rate: f64,
    /// Victim residue frames overwritten or scrubbed before the scrape.
    pub frames_lost_before_scrape: usize,
    /// Whether the late-arriving attacker still identified the victim model.
    pub model_identified: bool,
    /// Fraction of input pixels the late attacker still recovered.
    pub pixel_recovery: f64,
}

/// Sweeps every sanitization policy through a Resurrection-style revival:
/// the victim terminates, a successor re-allocates its pid and frames, and
/// only then does the attacker scrape.
///
/// Two quantities come out: how much residue the *revived process* inherits
/// at allocation time (the Resurrection Attack's channel), and how much the
/// *attacker* still finds once the revival has overwritten the frames (the
/// paper's channel, measured one tenant-lifetime too late).
///
/// # Errors
///
/// Propagates attack errors; returns [`AttackError::Blocked`] when the
/// caller's board confines the attack channel.
pub fn evaluate_revival(
    board: BoardConfig,
    model: ModelKind,
) -> Result<Vec<RevivalRow>, AttackError> {
    let report = CampaignSpec::new("revival-sweep", board)
        .with_models(vec![model])
        .with_inputs(vec![InputKind::Corrupted])
        .with_sanitize_policies(swept_policies())
        .with_schedules(vec![VictimSchedule::Revival {
            successors: 1,
            reuse_pid: true,
        }])
        .run()?;
    report
        .cells()
        .iter()
        .map(|record| {
            let metrics = completed_metrics(record)?;
            let lifetime = metrics.residue_lifetime;
            Ok(RevivalRow {
                policy: record.cell.sanitize,
                victim_frames: lifetime.victim_frames,
                revived_heap_frames: lifetime.revived_heap_frames,
                inherited_frames: lifetime.revival_inherited_frames,
                inheritance_rate: lifetime.inheritance_rate(),
                frames_lost_before_scrape: lifetime.frames_lost_before_scrape,
                model_identified: metrics.model_identified,
                pixel_recovery: metrics.pixel_recovery,
            })
        })
        .collect()
}

/// One row of the multi-tenant sweep (TAB-F): what a sanitization policy does
/// to a *co-resident, still-running* tenant when another tenant terminates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiTenantRow {
    /// The policy under test.
    pub policy: SanitizePolicy,
    /// Whether the attacker could still identify the terminated tenant's
    /// model.
    pub victim_model_identified: bool,
    /// Bytes of the still-running tenant's data destroyed by the sanitizer.
    pub active_tenant_bytes_clobbered: u64,
    /// Whether the still-running tenant's input image survived intact in its
    /// own heap.
    pub active_tenant_data_intact: bool,
}

/// Evaluates each sanitization policy in a two-tenant setting: tenant A
/// terminates (and is attacked), tenant B keeps running.
///
/// The campaign schedule axis is [`VictimSchedule::MultiTenant`]: the
/// allocation history is deliberately fragmented (a warm-up process is
/// spawned and torn down before the victim starts) so the victim's physical
/// frames are **non-contiguous and straddle the active tenant's frames** —
/// the situation in which the paper argues contiguous-initialization schemes
/// are unsafe because they "can include active guest user data".
///
/// The attacker uses the per-page scraping strategy, since a fragmented heap
/// defeats the endpoint-based read anyway.
///
/// # Errors
///
/// Propagates kernel/attack errors; returns [`AttackError::Blocked`] on a
/// confined board.
pub fn evaluate_multi_tenant(
    board: BoardConfig,
    victim_model: ModelKind,
    active_model: ModelKind,
) -> Result<Vec<MultiTenantRow>, AttackError> {
    let report = CampaignSpec::new("multi-tenant-sweep", board)
        .with_models(vec![victim_model])
        .with_inputs(vec![InputKind::Corrupted])
        .with_sanitize_policies(swept_policies())
        .with_scrape_modes(vec![ScrapeMode::PerPage])
        .with_schedules(vec![VictimSchedule::MultiTenant {
            active_model,
            warmup_pages: 16,
        }])
        .run()?;
    report
        .cells()
        .iter()
        .map(|record| {
            let metrics = completed_metrics(record)?;
            Ok(MultiTenantRow {
                policy: record.cell.sanitize,
                victim_model_identified: metrics.model_identified,
                active_tenant_bytes_clobbered: metrics.collateral_bytes,
                active_tenant_data_intact: metrics
                    .active_tenant_intact
                    .expect("multi-tenant schedule reports co-tenant state"),
            })
        })
        .collect()
}

/// One row of the compressed-swap sweep: what each sanitization policy
/// leaves in the swap store, and what the attacker still recovers when it
/// overlays decompressed slots onto the scraped dump.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwapRow {
    /// The policy under test.
    pub policy: SanitizePolicy,
    /// Whether the policy scrubs swap slots in addition to DRAM frames.
    pub scrubs_swap: bool,
    /// Victim bytes still resident in compressed swap after termination.
    pub swap_resident_bytes: u64,
    /// Residue frames left in DRAM after the attack.
    pub residue_frames: usize,
    /// Whether the attack still identified the model.
    pub model_identified: bool,
    /// Fraction of input pixels recovered exactly.
    pub pixel_recovery: f64,
}

/// Sweeps sanitization policies on a board under memory pressure, where the
/// kernel swapped the victim's cold heap pages into a compressed swap store
/// before termination.
///
/// Frame-oriented scrubbers never touch the swap slots, so the residue
/// simply moves substrate: the attacker decompresses the surviving slots and
/// overlays them onto the (scrubbed) DRAM dump.  Only the swap-aware
/// policies ([`SanitizePolicy::SwapScrub`], [`SanitizePolicy::ZeroOnFreeSwap`])
/// close the channel they each cover.
///
/// # Errors
///
/// Propagates attack errors; returns [`AttackError::Blocked`] when the
/// caller's board confines the attack channel.
pub fn evaluate_swap(
    board: BoardConfig,
    model: ModelKind,
    swap_pressure: u8,
) -> Result<Vec<SwapRow>, AttackError> {
    let mut policies = swept_policies();
    policies.push(SanitizePolicy::SwapScrub);
    policies.push(SanitizePolicy::ZeroOnFreeSwap);
    let mut rows = Vec::new();
    CampaignSpec::new("swap-sweep", board.with_swap(swap_pressure))
        .with_models(vec![model])
        .with_inputs(vec![InputKind::Corrupted])
        .with_sanitize_policies(policies)
        .stream_cells(StreamConfig::default(), |record| {
            let metrics = completed_metrics(&record)?;
            rows.push(SwapRow {
                policy: record.cell.sanitize,
                scrubs_swap: record.cell.sanitize.scrubs_swap(),
                swap_resident_bytes: metrics.residue_lifetime.swap_resident_bytes,
                residue_frames: metrics.residue_frames,
                model_identified: metrics.model_identified,
                pixel_recovery: metrics.pixel_recovery,
            });
            Ok(())
        })?;
    Ok(rows)
}

/// One row of the copy-on-write retention sweep: residue a fork-heavy victim
/// leaves behind through frames its children still share at scrape time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CowRow {
    /// The policy under test.
    pub policy: SanitizePolicy,
    /// Residue frames the victim left at termination.
    pub victim_frames: usize,
    /// Of those, frames kept alive past termination by CoW-sharing children.
    pub cow_inherited_frames: usize,
    /// Whether the attack still identified the model.
    pub model_identified: bool,
    /// Fraction of input pixels recovered exactly.
    pub pixel_recovery: f64,
}

/// Sweeps sanitization policies through a fork-heavy victim: the victim
/// forks `children` CoW children before terminating, so its heap frames stay
/// referenced — and therefore allocated — when it dies.
///
/// Frame-oriented scrubbers only sanitize frames that actually return to the
/// free list, so the shared frames sail past even [`SanitizePolicy::ZeroOnFree`]
/// and the attacker reads them out of the children's address spaces.
///
/// # Errors
///
/// Propagates attack errors; returns [`AttackError::Blocked`] when the
/// caller's board confines the attack channel.
pub fn evaluate_cow_retention(
    board: BoardConfig,
    model: ModelKind,
    children: usize,
) -> Result<Vec<CowRow>, AttackError> {
    let report = CampaignSpec::new("cow-sweep", board)
        .with_models(vec![model])
        .with_inputs(vec![InputKind::Corrupted])
        .with_sanitize_policies(swept_policies())
        .with_schedules(vec![VictimSchedule::ForkHeavy { children }])
        .run()?;
    report
        .cells()
        .iter()
        .map(|record| {
            let metrics = completed_metrics(record)?;
            let lifetime = metrics.residue_lifetime;
            Ok(CowRow {
                policy: record.cell.sanitize,
                victim_frames: lifetime.victim_frames,
                cow_inherited_frames: lifetime.cow_inherited_frames,
                model_identified: metrics.model_identified,
                pixel_recovery: metrics.pixel_recovery,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn board() -> BoardConfig {
        BoardConfig::tiny_for_tests()
    }

    #[test]
    fn sanitize_sweep_has_expected_shape() {
        let rows = evaluate_sanitize_policies(board(), ModelKind::SqueezeNet).unwrap();
        assert_eq!(rows.len(), 6);

        let by_policy = |p: SanitizePolicy| rows.iter().find(|r| r.policy == p).unwrap();

        // No sanitization: full recovery, zero cost.
        let none = by_policy(SanitizePolicy::None);
        assert!(none.model_identified);
        assert!(none.pixel_recovery > 0.99);
        assert_eq!(none.scrub_cost_cycles, 0.0);
        assert!(none.residue_frames > 0);

        // Every eager scrubbing policy defeats the attack.
        for policy in [
            SanitizePolicy::ZeroOnFree,
            SanitizePolicy::RowClone,
            SanitizePolicy::RowReset,
            SanitizePolicy::SelectiveScrub,
        ] {
            let row = by_policy(policy);
            assert!(
                !row.model_identified,
                "{policy} should defeat identification"
            );
            assert_eq!(row.pixel_recovery, 0.0, "{policy} should defeat recovery");
            assert!(row.scrub_cost_cycles > 0.0);
        }

        // Cost ordering: in-DRAM bulk schemes are cheaper than CPU zeroing.
        assert!(
            by_policy(SanitizePolicy::RowClone).scrub_cost_cycles
                < by_policy(SanitizePolicy::ZeroOnFree).scrub_cost_cycles
        );

        // A long-delay background scrubber leaves the window open: the attack
        // still succeeds.
        let background = rows
            .iter()
            .find(|r| matches!(r.policy, SanitizePolicy::Background { .. }))
            .unwrap();
        assert!(background.model_identified);
        assert!(background.pixel_recovery > 0.99);
    }

    #[test]
    fn swap_sweep_shows_frame_only_scrubbers_leaking_through_swap() {
        let rows = evaluate_swap(board(), ModelKind::SqueezeNet, 100).unwrap();
        assert_eq!(rows.len(), 8);
        let by_policy = |p: SanitizePolicy| rows.iter().find(|r| r.policy == p).unwrap();

        // Frame-only zeroing moves the residue, it does not remove it: the
        // DRAM dump comes back scrubbed, but the attacker rebuilds it from
        // the surviving compressed-swap slots.
        let zero = by_policy(SanitizePolicy::ZeroOnFree);
        assert!(!zero.scrubs_swap);
        assert!(zero.swap_resident_bytes > 0);
        assert!(zero.model_identified);
        assert!(zero.pixel_recovery > 0.99);

        // Swap-aware zeroing closes both substrates.
        let both = by_policy(SanitizePolicy::ZeroOnFreeSwap);
        assert!(both.scrubs_swap);
        assert_eq!(both.swap_resident_bytes, 0);
        assert!(!both.model_identified);
        assert_eq!(both.pixel_recovery, 0.0);

        // SwapScrub alone empties the swap store but leaves the DRAM frames:
        // the paper's original channel remains wide open.
        let swap_only = by_policy(SanitizePolicy::SwapScrub);
        assert_eq!(swap_only.swap_resident_bytes, 0);
        assert!(swap_only.residue_frames > 0);
        assert!(swap_only.model_identified);
        assert!(swap_only.pixel_recovery > 0.99);

        // No sanitization at all: swap residue and DRAM residue coexist.
        let none = by_policy(SanitizePolicy::None);
        assert!(none.swap_resident_bytes > 0);
        assert!(none.residue_frames > 0);
        assert!(none.model_identified);
    }

    #[test]
    fn cow_sweep_shows_shared_frames_sailing_past_zero_on_free() {
        let rows = evaluate_cow_retention(board(), ModelKind::SqueezeNet, 2).unwrap();
        assert_eq!(rows.len(), 6);
        let by_policy = |p: SanitizePolicy| rows.iter().find(|r| r.policy == p).unwrap();

        // Zero-on-free only sanitizes frames that return to the free list;
        // the children's CoW references keep the victim's heap allocated, so
        // the attacker recovers everything.
        let zero = by_policy(SanitizePolicy::ZeroOnFree);
        assert!(zero.victim_frames > 0);
        assert!(zero.cow_inherited_frames > 0);
        assert!(zero.cow_inherited_frames <= zero.victim_frames);
        assert!(zero.model_identified);
        assert!(zero.pixel_recovery > 0.99);

        // The unsanitized baseline leaks the same way.
        let none = by_policy(SanitizePolicy::None);
        assert!(none.cow_inherited_frames > 0);
        assert!(none.model_identified);
    }

    #[test]
    fn sweeps_on_a_confined_board_error_instead_of_fabricating_rows() {
        let confined = board().with_isolation(IsolationPolicy::Confined);
        assert!(matches!(
            evaluate_sanitize_policies(confined, ModelKind::SqueezeNet),
            Err(AttackError::Blocked { .. })
        ));
        assert!(matches!(
            evaluate_layout_randomization(confined, ModelKind::SqueezeNet),
            Err(AttackError::Blocked { .. })
        ));
    }

    #[test]
    fn isolation_sweep_blocks_only_the_confined_board() {
        let rows = evaluate_isolation(board(), ModelKind::SqueezeNet).unwrap();
        assert_eq!(rows.len(), 2);
        let permissive = &rows[0];
        assert_eq!(permissive.isolation, IsolationPolicy::Permissive);
        assert!(permissive.attack_completed);
        assert!(permissive.model_identified);
        assert!(permissive.pixel_recovery > 0.99);
        assert!(permissive.blocked_at.is_none());

        let confined = &rows[1];
        assert_eq!(confined.isolation, IsolationPolicy::Confined);
        assert!(!confined.attack_completed);
        assert!(!confined.model_identified);
        assert_eq!(confined.pixel_recovery, 0.0);
        assert!(confined.blocked_at.is_some());
    }

    #[test]
    fn layout_sweep_shows_per_page_attacker_beating_randomization() {
        let rows = evaluate_layout_randomization(board(), ModelKind::SqueezeNet).unwrap();
        assert_eq!(rows.len(), 8);

        let find = |order_random: bool, mode: ScrapeMode| {
            rows.iter()
                .find(|r| {
                    matches!(r.allocation_order, AllocationOrder::Randomized { .. }) == order_random
                        && r.aslr == AslrMode::Disabled
                        && r.scrape_mode == mode
                })
                .unwrap()
        };

        // Row order matches the hand-rolled sweep this replaced: ASLR varies
        // slowest, then allocation order, then scrape mode.
        assert_eq!(rows[0].allocation_order, AllocationOrder::Sequential);
        assert_eq!(rows[0].aslr, AslrMode::Disabled);
        assert_eq!(rows[0].scrape_mode, ScrapeMode::ContiguousRange);
        assert!(matches!(
            rows[2].allocation_order,
            AllocationOrder::Randomized { .. }
        ));
        assert_eq!(rows[2].aslr, AslrMode::Disabled);
        assert_eq!(rows[4].allocation_order, AllocationOrder::Sequential);
        assert!(matches!(rows[4].aslr, AslrMode::Virtual { .. }));

        // Deterministic layout: both attackers succeed fully.
        assert!(find(false, ScrapeMode::ContiguousRange).pixel_recovery > 0.99);
        assert!(find(false, ScrapeMode::PerPage).pixel_recovery > 0.99);

        // Randomized physical layout: the paper's contiguous-range method
        // degrades badly, while the per-page attacker is unaffected.
        let contiguous_rand = find(true, ScrapeMode::ContiguousRange);
        let per_page_rand = find(true, ScrapeMode::PerPage);
        assert!(contiguous_rand.pixel_recovery < 0.5);
        assert!(per_page_rand.pixel_recovery > 0.99);
        assert!(per_page_rand.model_identified);

        // Virtual ASLR alone does not stop either attacker (offsets are
        // heap-relative).
        let aslr_row = rows
            .iter()
            .find(|r| {
                r.aslr != AslrMode::Disabled
                    && r.allocation_order == AllocationOrder::Sequential
                    && r.scrape_mode == ScrapeMode::ContiguousRange
            })
            .unwrap();
        assert!(aslr_row.pixel_recovery > 0.99);
    }

    #[test]
    fn bank_striping_sweep_shows_identical_recovery() {
        let rows = evaluate_bank_striping(board(), ModelKind::SqueezeNet, 4).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].scrape_mode, ScrapeMode::ContiguousRange);
        assert_eq!(rows[1].scrape_mode, ScrapeMode::BankStriped { workers: 4 });
        // Identical science: the fan-out changes wall clock only.
        assert_eq!(rows[0].model_identified, rows[1].model_identified);
        assert_eq!(rows[0].pixel_recovery, rows[1].pixel_recovery);
        assert_eq!(rows[0].bytes_scraped, rows[1].bytes_scraped);
        assert_eq!(rows[0].dump_coverage, rows[1].dump_coverage);
        assert!(rows[0].model_identified);
        assert!(rows[0].pixel_recovery > 0.99);
    }

    #[test]
    fn remanence_sweep_decays_recovery_and_striping_changes_nothing() {
        let rows = evaluate_remanence(board(), ModelKind::SqueezeNet, 4).unwrap();
        assert_eq!(rows.len(), 2 * swept_remanence_models().len());

        // Rows are remanence-major, with each contiguous row followed by its
        // bank-striped twin — and the twins are identical on every science
        // column (per-shard decay is a pure per-cell function).
        for pair in rows.chunks(2) {
            let (contiguous, striped) = (&pair[0], &pair[1]);
            assert_eq!(contiguous.scrape_mode, ScrapeMode::ContiguousRange);
            assert_eq!(striped.scrape_mode, ScrapeMode::BankStriped { workers: 4 });
            assert_eq!(contiguous.remanence, striped.remanence);
            assert_eq!(contiguous.model_identified, striped.model_identified);
            assert_eq!(contiguous.pixel_recovery, striped.pixel_recovery);
            assert_eq!(
                contiguous.residue_bits_flipped,
                striped.residue_bits_flipped
            );
            assert_eq!(contiguous.decayed_recovery, striped.decayed_recovery);
        }

        // The perfect baseline reproduces the pre-remanence attack exactly.
        let perfect = &rows[0];
        assert_eq!(perfect.remanence, RemanenceModel::Perfect);
        assert!(perfect.model_identified);
        assert!(perfect.pixel_recovery > 0.99);
        assert_eq!(perfect.residue_bits_flipped, 0);
        assert_eq!(perfect.decayed_recovery, 1.0);

        // Shortening the half-life monotonically shrinks what survives: the
        // same cells decay, more of them, never fewer.
        let contiguous: Vec<&RemanenceRow> = rows
            .iter()
            .filter(|r| r.scrape_mode == ScrapeMode::ContiguousRange)
            .collect();
        let exp = |hl: u64| {
            contiguous
                .iter()
                .find(|r| {
                    r.remanence
                        == RemanenceModel::Exponential {
                            half_life_ticks: hl,
                        }
                })
                .unwrap()
        };
        assert!(exp(16).decayed_recovery >= exp(4).decayed_recovery);
        assert!(exp(4).decayed_recovery >= exp(1).decayed_recovery);
        assert!(exp(1).decayed_recovery < 1.0);
        assert!(exp(1).residue_bytes_decayed > 0);
        assert!(exp(1).pixel_recovery < perfect.pixel_recovery);

        // The bit-flip model degrades bits without necessarily zeroing whole
        // bytes.
        let bitflip = contiguous
            .iter()
            .find(|r| matches!(r.remanence, RemanenceModel::BitFlip { .. }))
            .unwrap();
        assert!(bitflip.residue_bits_flipped > 0);
        assert!(bitflip.pixel_recovery < perfect.pixel_recovery);
    }

    #[test]
    fn reconstruction_sweep_beats_the_exact_baseline_at_matched_seeds() {
        let rows = evaluate_reconstruction(board(), ModelKind::SqueezeNet, 3).unwrap();
        assert_eq!(rows.len(), swept_remanence_models().len());

        // The baseline column reproduces the contiguous column of the
        // remanence sweep byte for byte — same spec shape, same seeds.
        let remanence = evaluate_remanence(board(), ModelKind::SqueezeNet, 4).unwrap();
        let contiguous: Vec<&RemanenceRow> = remanence
            .iter()
            .filter(|r| r.scrape_mode == ScrapeMode::ContiguousRange)
            .collect();
        for (row, base) in rows.iter().zip(contiguous) {
            assert_eq!(row.remanence, base.remanence);
            assert_eq!(row.snapshots, 3);
            assert_eq!(row.baseline_identified, base.model_identified);
            assert_eq!(row.baseline_recovery, base.pixel_recovery);
            assert_eq!(row.decayed_recovery, base.decayed_recovery);
        }

        // Perfect remanence: nothing to repair, and the reconstructor must
        // pass a clean read through untouched.
        let perfect = &rows[0];
        assert_eq!(perfect.remanence, RemanenceModel::Perfect);
        assert!(perfect.reconstructed_identified);
        assert_eq!(perfect.reconstructed_recovery, perfect.baseline_recovery);
        assert_eq!(perfect.recovery_gain(), 1.0);

        // Every decayed point: reconstruction strictly beats exact matching.
        for row in &rows[1..] {
            assert!(
                row.reconstructed_identified,
                "reconstruction must identify the model at {:?}",
                row.remanence
            );
            assert!(
                row.reconstructed_recovery > row.baseline_recovery,
                "reconstruction must beat the baseline at {:?} ({} vs {})",
                row.remanence,
                row.reconstructed_recovery,
                row.baseline_recovery
            );
            assert!(row.recovery_gain() > 1.0);
        }
    }

    #[test]
    fn revival_sweep_quantifies_the_resurrection_window() {
        let rows = evaluate_revival(board(), ModelKind::SqueezeNet).unwrap();
        assert_eq!(rows.len(), 6);
        let by_policy = |p: SanitizePolicy| rows.iter().find(|r| r.policy == p).unwrap();

        // No sanitization: the revived process inherits victim residue, and
        // its overwrite destroys what the attacker came for.
        let none = by_policy(SanitizePolicy::None);
        assert!(none.victim_frames > 0);
        assert!(none.inherited_frames > 0);
        assert!(none.inheritance_rate > 0.0);
        assert!(none.frames_lost_before_scrape > 0);
        assert!(!none.model_identified);

        // Every frame-exact scrubbing policy drives revival inheritance to
        // zero — this is the acceptance bar for the defense.
        for policy in [
            SanitizePolicy::ZeroOnFree,
            SanitizePolicy::RowClone,
            SanitizePolicy::SelectiveScrub,
        ] {
            let row = by_policy(policy);
            assert_eq!(
                row.inherited_frames, 0,
                "{policy} must close the resurrection window"
            );
            assert_eq!(row.inheritance_rate, 0.0);
            assert_eq!(row.victim_frames, 0);
        }

        // RowReset is bank-granular: on the interleaved DDR4 geometry a
        // frame's base always decomposes to bank group 0, so only that
        // stripe of each frame is reset and the other bank groups' columns
        // survive — the revived process still inherits partial residue.
        // (Another face of the paper's argument that bulk DRAM schemes are a
        // poor fit for frame-granular sanitization.)
        let rowreset = by_policy(SanitizePolicy::RowReset);
        assert!(rowreset.victim_frames > 0);
        assert!(rowreset.inherited_frames > 0);

        // A long-delay background scrubber leaves the window open: the
        // revived process still inherits inside the delay.
        let background = rows
            .iter()
            .find(|r| matches!(r.policy, SanitizePolicy::Background { .. }))
            .unwrap();
        assert!(background.inherited_frames > 0);
    }

    #[test]
    fn revival_sweep_on_a_confined_board_errors() {
        let confined = board().with_isolation(IsolationPolicy::Confined);
        assert!(matches!(
            evaluate_revival(confined, ModelKind::SqueezeNet),
            Err(AttackError::Blocked { .. })
        ));
    }

    #[test]
    fn multi_tenant_sweep_shows_collateral_damage_of_bulk_schemes() {
        let rows =
            evaluate_multi_tenant(board(), ModelKind::SqueezeNet, ModelKind::MobileNetV2).unwrap();
        assert_eq!(rows.len(), 6);
        let by_policy = |p: SanitizePolicy| rows.iter().find(|r| r.policy == p).unwrap();

        // No sanitization: attack succeeds, co-tenant untouched.
        let none = by_policy(SanitizePolicy::None);
        assert!(none.victim_model_identified);
        assert!(none.active_tenant_data_intact);
        assert_eq!(none.active_tenant_bytes_clobbered, 0);

        // Precise schemes protect the victim without harming the co-tenant.
        for policy in [SanitizePolicy::ZeroOnFree, SanitizePolicy::SelectiveScrub] {
            let row = by_policy(policy);
            assert!(!row.victim_model_identified);
            assert!(
                row.active_tenant_data_intact,
                "{policy} must not clobber the co-tenant"
            );
            assert_eq!(row.active_tenant_bytes_clobbered, 0);
        }

        // Bulk schemes defeat the attack but destroy the co-tenant's data
        // (the paper's argument against them in multi-tenant settings).
        for policy in [SanitizePolicy::RowClone, SanitizePolicy::RowReset] {
            let row = by_policy(policy);
            assert!(!row.victim_model_identified);
            assert!(
                row.active_tenant_bytes_clobbered > 0,
                "{policy} should clobber"
            );
            assert!(!row.active_tenant_data_intact);
        }
    }
}
