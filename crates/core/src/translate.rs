//! Step 2: fetch virtual addresses and convert them to physical addresses.
//!
//! This is the attacker-side analogue of the paper's `virtual_to_physical.c`
//! helper: it works exclusively with data visible through the debugger channel
//! (`/proc/<pid>/maps` text and `/proc/<pid>/pagemap` entries), never with
//! kernel internals.

// Lint audit: narrowing casts here operate on values already clamped
// to their target range by the surrounding arithmetic.
#![allow(clippy::cast_possible_truncation)]

use petalinux_sim::procfs::parse_heap_range;
use petalinux_sim::{Kernel, Pid};
use serde::{Deserialize, Serialize};
use xsdb::DebugSession;
use zynq_dram::{PhysAddr, PAGE_SIZE};
use zynq_mmu::VirtAddr;

use crate::error::AttackError;

/// The captured translation of a victim's heap: its virtual range and, for
/// every page, the physical address it was resident at while the victim was
/// running.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeapTranslation {
    pid: Pid,
    heap_start: VirtAddr,
    heap_end: VirtAddr,
    pages: Vec<Option<PhysAddr>>,
}

impl HeapTranslation {
    /// Builds a translation directly from its parts (used by tests and by
    /// synthetic experiments).
    pub fn from_parts(
        pid: Pid,
        heap_start: VirtAddr,
        heap_end: VirtAddr,
        pages: Vec<Option<PhysAddr>>,
    ) -> Self {
        HeapTranslation {
            pid,
            heap_start,
            heap_end,
            pages,
        }
    }

    /// The victim pid this translation belongs to.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// First virtual address of the heap.
    pub fn heap_start(&self) -> VirtAddr {
        self.heap_start
    }

    /// One past the last virtual address of the heap.
    pub fn heap_end(&self) -> VirtAddr {
        self.heap_end
    }

    /// Heap length in bytes.
    pub fn heap_len(&self) -> u64 {
        self.heap_end.offset_from(self.heap_start)
    }

    /// Physical base address of each heap page, in virtual order.
    pub fn pages(&self) -> &[Option<PhysAddr>] {
        &self.pages
    }

    /// Number of pages that had a physical translation.
    pub fn present_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Fraction of heap pages that could be translated.
    pub fn completeness(&self) -> f64 {
        if self.pages.is_empty() {
            return 0.0;
        }
        self.present_pages() as f64 / self.pages.len() as f64
    }

    /// Physical address of the heap's first byte, if its page was present
    /// (the lower endpoint the paper's Figure 8 prints).
    pub fn phys_start(&self) -> Option<PhysAddr> {
        self.pages.first().copied().flatten()
    }

    /// Physical address of the heap's last byte, if its page was present
    /// (the upper endpoint the paper's Figure 8 prints).
    pub fn phys_end(&self) -> Option<PhysAddr> {
        let last_offset = (self.heap_len().saturating_sub(1)) % PAGE_SIZE;
        self.pages
            .last()
            .copied()
            .flatten()
            .map(|pa| pa + last_offset)
    }

    /// Translates an arbitrary heap virtual address using the captured pages.
    pub fn translate(&self, va: VirtAddr) -> Option<PhysAddr> {
        if va < self.heap_start || va >= self.heap_end {
            return None;
        }
        let offset = va.offset_from(self.heap_start);
        let page_index = (offset / PAGE_SIZE) as usize;
        self.pages
            .get(page_index)
            .copied()
            .flatten()
            .map(|pa| pa + offset % PAGE_SIZE)
    }
}

/// Captures the heap translation of a running victim through the debugger.
///
/// This is the paper's Step 2: read the maps file, extract the `[heap]` range,
/// then convert every heap page to a physical address via the pagemap.
///
/// # Errors
///
/// Returns [`AttackError::HeapNotFound`] if the maps file has no heap line,
/// [`AttackError::TranslationEmpty`] if no page translated, and
/// [`AttackError::Channel`] if the debugger channel denies access.
pub fn capture_heap_translation(
    debugger: &mut DebugSession,
    kernel: &Kernel,
    pid: Pid,
) -> Result<HeapTranslation, AttackError> {
    let maps = debugger.read_maps(kernel, pid)?;
    let (heap_start, heap_end) =
        parse_heap_range(&maps).ok_or(AttackError::HeapNotFound { pid })?;
    let page_count = (heap_end.offset_from(heap_start).div_ceil(PAGE_SIZE)) as usize;
    let entries = debugger.read_pagemap(kernel, pid, heap_start, page_count)?;
    let pages: Vec<Option<PhysAddr>> = entries
        .iter()
        .map(|entry| entry.frame_number().map(|frame| frame.base_address()))
        .collect();
    if pages.iter().all(|p| p.is_none()) {
        return Err(AttackError::TranslationEmpty { pid });
    }
    Ok(HeapTranslation {
        pid,
        heap_start,
        heap_end,
        pages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use petalinux_sim::{BoardConfig, IsolationPolicy, UserId};
    use vitis_ai_sim::{DpuRunner, ModelKind};

    fn board() -> (Kernel, vitis_ai_sim::LaunchedRun) {
        let mut kernel = Kernel::boot(BoardConfig::tiny_for_tests());
        let run = DpuRunner::new(ModelKind::SqueezeNet)
            .launch(&mut kernel, UserId::new(0))
            .unwrap();
        (kernel, run)
    }

    #[test]
    fn captured_translation_matches_kernel_ground_truth() {
        let (kernel, run) = board();
        let mut dbg = DebugSession::connect(UserId::new(1));
        let translation = capture_heap_translation(&mut dbg, &kernel, run.pid()).unwrap();

        let process = kernel.process(run.pid()).unwrap();
        assert_eq!(translation.pid(), run.pid());
        assert_eq!(translation.heap_start(), process.heap_base());
        assert_eq!(translation.heap_end(), process.heap_end());
        assert_eq!(translation.heap_len(), run.layout().heap_len);
        assert_eq!(translation.completeness(), 1.0);
        assert_eq!(
            translation.pages().len() as u64,
            run.layout().heap_len / PAGE_SIZE
        );

        // Every page agrees with the kernel's own translation.
        for (i, page) in translation.pages().iter().enumerate() {
            let va = translation.heap_start() + (i as u64) * PAGE_SIZE;
            let truth = process.address_space().translate(va).unwrap();
            assert_eq!(page.unwrap(), truth);
        }

        // Point translation inside and outside the heap.
        let mid = translation.heap_start() + 0x730;
        assert_eq!(
            translation.translate(mid),
            process.address_space().translate(mid)
        );
        assert!(translation.translate(translation.heap_end()).is_none());
        assert!(translation
            .translate(translation.heap_start() - 0x1000)
            .is_none());

        // Endpoints exist and are ordered under the sequential allocator.
        let start = translation.phys_start().unwrap();
        let end = translation.phys_end().unwrap();
        assert!(end > start);
    }

    #[test]
    fn capture_fails_without_heap() {
        let mut kernel = Kernel::boot(BoardConfig::tiny_for_tests());
        let pid = kernel.spawn(UserId::new(0), &["idle"]).unwrap();
        let mut dbg = DebugSession::connect(UserId::new(1));
        assert!(matches!(
            capture_heap_translation(&mut dbg, &kernel, pid),
            Err(AttackError::HeapNotFound { .. })
        ));
    }

    #[test]
    fn capture_fails_under_confined_isolation() {
        let mut kernel =
            Kernel::boot(BoardConfig::tiny_for_tests().with_isolation(IsolationPolicy::Confined));
        let run = DpuRunner::new(ModelKind::SqueezeNet)
            .launch(&mut kernel, UserId::new(0))
            .unwrap();
        let mut dbg = DebugSession::connect(UserId::new(1));
        assert!(matches!(
            capture_heap_translation(&mut dbg, &kernel, run.pid()),
            Err(AttackError::Channel(_))
        ));
    }

    #[test]
    fn from_parts_and_accessors() {
        let t = HeapTranslation::from_parts(
            Pid::new(1391),
            VirtAddr::new(0x1000),
            VirtAddr::new(0x3000),
            vec![Some(PhysAddr::new(0x10000)), None],
        );
        assert_eq!(t.present_pages(), 1);
        assert_eq!(t.completeness(), 0.5);
        assert_eq!(t.phys_start(), Some(PhysAddr::new(0x10000)));
        // Last page is absent, so the upper endpoint is unknown.
        assert_eq!(t.phys_end(), None);
        assert_eq!(
            t.translate(VirtAddr::new(0x1010)),
            Some(PhysAddr::new(0x10010))
        );
        assert_eq!(t.translate(VirtAddr::new(0x2010)), None);

        let empty = HeapTranslation::from_parts(
            Pid::new(1),
            VirtAddr::new(0),
            VirtAddr::new(0),
            Vec::new(),
        );
        assert_eq!(empty.completeness(), 0.0);
        assert_eq!(empty.heap_len(), 0);
    }
}
