//! Attack outcome and timing metrics.

use std::time::Duration;

use petalinux_sim::Pid;
use serde::{Deserialize, Serialize};
use vitis_ai_sim::{Image, ModelKind};

use crate::analysis::marker::MarkerRun;
use crate::signature::ModelMatch;

/// Wall-clock duration of each attack step (the latency breakdown reported by
/// the TAB-A experiment).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepTimings {
    /// Step 1: polling for the victim pid.
    pub poll: Duration,
    /// Step 2: reading maps/pagemap and translating addresses.
    pub translate: Duration,
    /// Step 3: scraping physical memory.
    pub scrape: Duration,
    /// Step 4: analysing the dump.
    pub analyze: Duration,
}

impl StepTimings {
    /// Total duration across all steps.
    pub fn total(&self) -> Duration {
        self.poll + self.translate + self.scrape + self.analyze
    }
}

/// Incremental recorder for [`StepTimings`].
///
/// Each pipeline stage stamps its own duration exactly once as it happens;
/// nothing is zeroed up front and patched in afterwards.  An
/// [`crate::attack::Observation`] owns the partial record (poll + translate),
/// and [`crate::attack::AttackPipeline::execute`] completes it with the
/// scrape and analyze stamps before [`StepTimingsBuilder::build`]ing the
/// final [`StepTimings`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepTimingsBuilder {
    timings: StepTimings,
}

impl StepTimingsBuilder {
    /// Starts an empty record.
    pub fn new() -> Self {
        StepTimingsBuilder::default()
    }

    /// Stamps the Step 1 (poll) duration.
    pub fn with_poll(mut self, elapsed: Duration) -> Self {
        self.timings.poll = elapsed;
        self
    }

    /// Stamps the Step 2 (translate) duration.
    pub fn with_translate(mut self, elapsed: Duration) -> Self {
        self.timings.translate = elapsed;
        self
    }

    /// Stamps the Step 3 (scrape) duration.
    pub fn with_scrape(mut self, elapsed: Duration) -> Self {
        self.timings.scrape = elapsed;
        self
    }

    /// Stamps the Step 4 (analyze) duration.
    pub fn with_analyze(mut self, elapsed: Duration) -> Self {
        self.timings.analyze = elapsed;
        self
    }

    /// Finishes the record.
    pub fn build(self) -> StepTimings {
        self.timings
    }
}

/// Everything the attack recovered from one victim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// The victim process the attack targeted.
    pub victim_pid: Pid,
    /// The model identification result (Step 4.a), if any signature matched.
    pub identified: Option<ModelMatch>,
    /// Marker runs found in the dump (corrupted-image evidence, Figure 12).
    pub marker_runs: Vec<MarkerRun>,
    /// The reconstructed input image (Step 4.b), if reconstruction succeeded.
    pub reconstructed_image: Option<Image>,
    /// The heap-relative offset used for reconstruction, and where it came
    /// from.
    pub image_offset_used: Option<OffsetSource>,
    /// Number of bytes scraped from physical memory.
    pub bytes_scraped: usize,
    /// Fraction of heap pages that were captured.
    pub dump_coverage: f64,
    /// Per-step wall-clock timings.
    pub timings: StepTimings,
}

/// Where the image offset used for reconstruction came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum OffsetSource {
    /// The offset was learned by offline profiling of the identified model.
    Profile {
        /// The heap-relative offset.
        offset: u64,
    },
    /// The offset was taken from the first marker run found in the dump
    /// (possible only when the victim used a marker image).
    Marker {
        /// The heap-relative offset.
        offset: u64,
    },
    /// The offset was inferred from entropy region classes
    /// ([`crate::analysis::reconstruct::entropy_image_offset`]) — the
    /// decay-tolerant fallback when no profile or marker run is usable.
    Entropy {
        /// The heap-relative offset.
        offset: u64,
    },
}

impl OffsetSource {
    /// The heap-relative offset, regardless of provenance.
    pub fn offset(&self) -> u64 {
        match self {
            OffsetSource::Profile { offset }
            | OffsetSource::Marker { offset }
            | OffsetSource::Entropy { offset } => *offset,
        }
    }
}

impl AttackOutcome {
    /// The identified model, if Step 4.a succeeded.
    pub fn identified_model(&self) -> Option<ModelKind> {
        self.identified.as_ref().map(|m| m.model)
    }

    /// Confidence of the identification (0.0 when nothing was identified).
    pub fn identification_confidence(&self) -> f64 {
        self.identified.as_ref().map_or(0.0, |m| m.confidence())
    }

    /// Returns `true` if an input image was reconstructed.
    pub fn has_reconstructed_image(&self) -> bool {
        self.reconstructed_image.is_some()
    }

    /// Fraction of `ground_truth`'s pixels that the reconstruction matches
    /// exactly (0.0 when no image was reconstructed).
    pub fn image_recovery_rate(&self, ground_truth: &Image) -> f64 {
        crate::analysis::image::recovery_rate(self.reconstructed_image.as_ref(), ground_truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_total() {
        let t = StepTimings {
            poll: Duration::from_millis(1),
            translate: Duration::from_millis(2),
            scrape: Duration::from_millis(3),
            analyze: Duration::from_millis(4),
        };
        assert_eq!(t.total(), Duration::from_millis(10));
        assert_eq!(StepTimings::default().total(), Duration::ZERO);
    }

    #[test]
    fn timings_builder_stamps_each_step_once() {
        let timings = StepTimingsBuilder::new()
            .with_poll(Duration::from_millis(1))
            .with_translate(Duration::from_millis(2))
            .with_scrape(Duration::from_millis(3))
            .with_analyze(Duration::from_millis(4))
            .build();
        assert_eq!(timings.total(), Duration::from_millis(10));
        // A partial record leaves unstamped steps at zero.
        let partial = StepTimingsBuilder::new()
            .with_translate(Duration::from_millis(2))
            .build();
        assert_eq!(partial.poll, Duration::ZERO);
        assert_eq!(partial.translate, Duration::from_millis(2));
    }

    #[test]
    fn offset_source_accessor() {
        assert_eq!(OffsetSource::Profile { offset: 7 }.offset(), 7);
        assert_eq!(OffsetSource::Marker { offset: 9 }.offset(), 9);
        assert_eq!(OffsetSource::Entropy { offset: 11 }.offset(), 11);
    }

    #[test]
    fn empty_outcome_scores_zero() {
        let outcome = AttackOutcome {
            victim_pid: Pid::new(1),
            identified: None,
            marker_runs: Vec::new(),
            reconstructed_image: None,
            image_offset_used: None,
            bytes_scraped: 0,
            dump_coverage: 0.0,
            timings: StepTimings::default(),
        };
        assert!(outcome.identified_model().is_none());
        assert_eq!(outcome.identification_confidence(), 0.0);
        assert!(!outcome.has_reconstructed_image());
        assert_eq!(outcome.image_recovery_rate(&Image::corrupted(4, 4)), 0.0);
    }

    #[test]
    fn populated_outcome_reports_recovery() {
        let truth = Image::corrupted(8, 8);
        let outcome = AttackOutcome {
            victim_pid: Pid::new(1391),
            identified: Some(ModelMatch {
                model: ModelKind::Resnet50Pt,
                hits: 3,
                total_patterns: 3,
                fuzzy_distance: None,
            }),
            marker_runs: vec![MarkerRun {
                offset: 64,
                len: 192,
            }],
            reconstructed_image: Some(Image::corrupted(8, 8)),
            image_offset_used: Some(OffsetSource::Profile { offset: 64 }),
            bytes_scraped: 4096,
            dump_coverage: 1.0,
            timings: StepTimings::default(),
        };
        assert_eq!(outcome.identified_model(), Some(ModelKind::Resnet50Pt));
        assert_eq!(outcome.identification_confidence(), 1.0);
        assert!(outcome.has_reconstructed_image());
        assert_eq!(outcome.image_recovery_rate(&truth), 1.0);
    }
}
