//! Golden pin for the streaming campaign surface.
//!
//! `experiments --campaign --tiny --stream` is the machine-readable face of
//! the streaming engine: one NDJSON progress line per folded cell group on
//! stdout, plus `BENCH_campaign.json` written to the working directory.
//! Both are consumed by CI, so their *schema* is a contract: field names,
//! field order and every deterministic value are pinned here byte-for-byte.
//! Only genuinely run-dependent numbers — residency snapshots, wall-clock
//! milliseconds and derived throughput — are masked to `<N>`.
//!
//! To regenerate after an intentional schema change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p msa-bench --test golden_stream
//! ```
//!
//! (`.github/workflows/ci.yml` re-checks `BENCH_campaign.json` against the
//! same committed schema file with the same masking.)

use std::path::Path;
use std::process::Command;

/// JSON keys whose values depend on wall clock or scheduling, never on the
/// science.  Everything else in the NDJSON lines and the bench file is
/// deterministic and stays pinned exactly.
const VOLATILE_KEYS: &[&str] = &[
    "resident_cells",
    "peak_resident_cells",
    "elapsed_ms",
    "wall_clock_ms",
    "cells_per_sec",
];

/// Replaces the numeric value after every occurrence of `"<key>":` with
/// `<N>`, for each volatile key.
fn mask_volatile(raw: &str) -> String {
    let mut masked = raw.to_string();
    for key in VOLATILE_KEYS {
        let pattern = format!("\"{key}\":");
        let mut out = String::new();
        let mut rest = masked.as_str();
        while let Some(pos) = rest.find(&pattern) {
            let after = pos + pattern.len();
            out.push_str(&rest[..after]);
            out.push_str("<N>");
            let tail = &rest[after..];
            let end = tail
                .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
                .unwrap_or(tail.len());
            rest = &tail[end..];
        }
        out.push_str(rest);
        masked = out;
    }
    masked
}

/// Masks the run-dependent numbers of the human summary line (`peak
/// resident cells N, throughput N cells/sec`) while keeping the
/// deterministic recovery percentage pinned.
fn mask_summary_line(line: &str) -> String {
    match line.strip_prefix("mean pixel recovery ") {
        Some(rest) => {
            let recovery = rest.split(',').next().unwrap_or("");
            format!(
                "mean pixel recovery {recovery}, peak resident cells <N>, \
                 throughput <N> cells/sec"
            )
        }
        None => line.to_string(),
    }
}

fn normalize(raw: &str) -> String {
    let mut out = String::new();
    for line in raw.lines() {
        out.push_str(&mask_summary_line(&mask_volatile(line)));
        out.push('\n');
    }
    out
}

/// Compares `normalized` against `tests/golden/<golden_name>`, regenerating
/// under `UPDATE_GOLDEN=1`.
fn assert_matches_golden(normalized: &str, golden_name: &str) {
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(golden_name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, normalized).expect("golden file written");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).expect(
        "golden file exists — regenerate with UPDATE_GOLDEN=1 cargo test -p msa-bench \
         --test golden_stream",
    );
    assert_eq!(
        normalized, golden,
        "streaming output drifted from {golden_name}; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn streaming_ndjson_and_bench_schema_are_pinned() {
    // The binary writes BENCH_campaign.json into its working directory, so
    // run it from a scratch directory instead of polluting the repo.
    let scratch = std::env::temp_dir().join(format!("msa-golden-stream-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir created");

    let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["--campaign", "--tiny", "--stream", "--jobs=2"])
        .current_dir(&scratch)
        .output()
        .expect("experiments binary runs");
    assert!(
        output.status.success(),
        "experiments exited with {:?}: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );

    // NDJSON progress stream + summary lines, volatile numbers masked.
    let stdout = String::from_utf8(output.stdout).expect("stdout is UTF-8");
    assert_matches_golden(&normalize(&stdout), "experiments_tiny_stream.txt");

    // The machine-readable bench artifact, same masking, same schema file
    // CI diffs against.
    let bench = std::fs::read_to_string(scratch.join("BENCH_campaign.json"))
        .expect("BENCH_campaign.json written next to the invocation");
    assert_matches_golden(&normalize(&bench), "BENCH_campaign.schema.json");

    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn masking_touches_only_volatile_fields() {
    let masked = mask_volatile(
        r#"{"completed":8,"resident_cells":32,"peak_resident_cells":64,"elapsed_ms":1675,"cells_per_sec":14.67,"wall_clock_ms":9}"#,
    );
    assert_eq!(
        masked,
        r#"{"completed":8,"resident_cells":<N>,"peak_resident_cells":<N>,"elapsed_ms":<N>,"cells_per_sec":<N>,"wall_clock_ms":<N>}"#
    );
    assert_eq!(
        mask_summary_line(
            "mean pixel recovery 66.7%, peak resident cells 64, throughput 15 cells/sec"
        ),
        "mean pixel recovery 66.7%, peak resident cells <N>, throughput <N> cells/sec"
    );
    // Non-volatile content is untouched.
    assert_eq!(mask_volatile(r#"{"cells":16}"#), r#"{"cells":16}"#);
}
