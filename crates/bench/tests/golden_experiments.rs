//! Golden-output pin for the experiments binary.
//!
//! PR 2 established that the campaign-backed tables are byte-identical to the
//! hand-rolled sweeps they replaced — but that guarantee was only ever checked
//! by hand.  This test pins the full `experiments --timing --defenses --tiny`
//! stdout (the CI smoke invocation) against a checked-in golden file, so any
//! change to table content, formatting or experiment math shows up as a diff.
//!
//! Wall-clock durations and the `--banks` speedup ratios are the only
//! run-dependent content; the normalizer replaces duration tokens with `<T>`
//! and speedups with `<X>`, and collapses the alignment whitespace they
//! stretch, leaving every deterministic number pinned exactly.
//!
//! To regenerate after an intentional output change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p msa-bench --test golden_experiments
//! ```

use std::path::Path;
use std::process::Command;

/// `true` for tokens like `12ns`, `504.49µs`, `1.63ms`, `2s` — the `{:?}`
/// rendering of a `std::time::Duration`.
fn is_duration_token(token: &str) -> bool {
    for suffix in ["ns", "µs", "ms", "s"] {
        if let Some(value) = token.strip_suffix(suffix) {
            if !value.is_empty() && value.parse::<f64>().is_ok() {
                return true;
            }
        }
    }
    false
}

/// `true` for speedup tokens like `3.4x`, `0.9x`, `12x` — wall-clock ratios
/// printed by the `--banks` throughput table.
fn is_speedup_token(token: &str) -> bool {
    token
        .strip_suffix('x')
        .is_some_and(|value| !value.is_empty() && value.parse::<f64>().is_ok())
}

/// Normalizes run-dependent content: duration tokens become `<T>`, speedup
/// ratios become `<X>`, column padding (which stretches with duration widths)
/// collapses to single spaces, and all-dash separator rules collapse to
/// `---`.
fn normalize(raw: &str) -> String {
    let mut out: Vec<String> = Vec::new();
    for line in raw.lines() {
        let tokens: Vec<String> = line
            .split_whitespace()
            .map(|token| {
                if !token.is_empty() && token.chars().all(|c| c == '-') {
                    "---".to_string()
                } else if is_duration_token(token) {
                    "<T>".to_string()
                } else if is_speedup_token(token) {
                    "<X>".to_string()
                } else {
                    token.to_string()
                }
            })
            .collect();
        out.push(tokens.join(" "));
    }
    let mut joined = out.join("\n");
    joined.push('\n');
    joined
}

/// Runs the experiments binary with `args`, normalizes its stdout and pins it
/// against the golden file at `tests/golden/<golden_name>`.
fn assert_matches_golden(args: &[&str], golden_name: &str) {
    let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("experiments binary runs");
    assert!(
        output.status.success(),
        "experiments exited with {:?}: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("stdout is UTF-8");
    let normalized = normalize(&stdout);

    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(golden_name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &normalized).expect("golden file written");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).expect(
        "golden file exists — regenerate with UPDATE_GOLDEN=1 cargo test -p msa-bench \
         --test golden_experiments",
    );
    assert_eq!(
        normalized,
        golden,
        "experiments {} stdout drifted from the golden file; \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1",
        args.join(" ")
    );
}

#[test]
fn tiny_timing_defenses_stdout_is_pinned() {
    assert_matches_golden(
        &["--timing", "--defenses", "--tiny"],
        "experiments_tiny_timing_defenses.txt",
    );
}

#[test]
fn tiny_remanence_stdout_is_pinned_and_jobs_independent() {
    // The remanence decay table is fully deterministic — decay advances on
    // logical ticks, never wall clock, and the decay view is a pure per-cell
    // function — so the *same* golden pins the serial and the 4-worker run.
    // Any divergence between them is a determinism regression, not a
    // formatting drift.
    for jobs in ["--jobs=1", "--jobs=4"] {
        assert_matches_golden(
            &["--remanence", "--tiny", jobs],
            "experiments_tiny_remanence.txt",
        );
    }
}

#[test]
fn tiny_reconstruct_stdout_is_pinned_and_jobs_independent() {
    // Like the remanence table, the reconstruction table is fully
    // deterministic: snapshots advance on logical ticks, fusion/repair are
    // pure functions of the decayed bytes, and paired rows share their cell
    // seed.  The same golden pins the serial and the 4-worker run.
    for jobs in ["--jobs=1", "--jobs=4"] {
        assert_matches_golden(
            &["--reconstruct", "--tiny", jobs],
            "experiments_tiny_reconstruct.txt",
        );
    }
}

#[test]
fn tiny_swap_stdout_is_pinned_and_jobs_independent() {
    // The swap and CoW sweeps are fully deterministic — swap-out happens on
    // logical pre-termination ticks, slot compression is a pure function of
    // the page bytes, and CoW retention is pure allocator accounting — so
    // the same golden pins the serial and the 4-worker run.
    for jobs in ["--jobs=1", "--jobs=4"] {
        assert_matches_golden(&["--swap", "--tiny", jobs], "experiments_tiny_swap.txt");
    }
}

#[test]
fn tiny_banks_stdout_is_pinned() {
    // The `--banks` table's deterministic content — bank counts, stripe and
    // region sizes, byte-identity verdicts and the bank-striped attacker
    // sweep — is pinned; wall-clock columns and speedups are masked.
    assert_matches_golden(&["--banks", "--tiny"], "experiments_tiny_banks.txt");
}

#[test]
fn audit_stdout_is_pinned() {
    // The `--audit` table is computed by the static analyzer, not by
    // campaigns, so it is fully deterministic and board-independent; the
    // JSON twin is pinned byte-for-byte in the analyzer crate's own golden.
    assert_matches_golden(&["--audit"], "experiments_audit.txt");
}

/// JSON keys in `BENCH_substrates.json` whose values are wall-clock
/// measurements or ratios derived from them.  Field names, field order and
/// the deterministic values (schema, board, region size) stay pinned.
const SUBSTRATES_VOLATILE_KEYS: &[&str] = &[
    "baseline_hashmap_read_ns",
    "arena_read_ns",
    "arena_view_ns",
    "baseline_hashmap_scrub_ns",
    "arena_scrub_ns",
    "speedup_arena_read",
    "speedup_arena_view",
    "speedup_arena_scrub",
];

/// Replaces the numeric value after every volatile key with `<N>`.
fn mask_substrates_volatile(raw: &str) -> String {
    let mut masked = raw.to_string();
    for key in SUBSTRATES_VOLATILE_KEYS {
        let pattern = format!("\"{key}\":");
        if let Some(pos) = masked.find(&pattern) {
            let after = pos + pattern.len();
            let tail = &masked[after..];
            let end = tail
                .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
                .unwrap_or(tail.len());
            masked = format!("{}<N>{}", &masked[..after], &tail[end..]);
        }
    }
    masked
}

#[test]
fn substrates_bench_artifact_schema_is_pinned() {
    // `--timing` writes BENCH_substrates.json into its working directory,
    // so run from a scratch directory instead of polluting the repo.
    let scratch =
        std::env::temp_dir().join(format!("msa-golden-substrates-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir created");

    let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["--timing", "--tiny"])
        .current_dir(&scratch)
        .output()
        .expect("experiments binary runs");
    assert!(
        output.status.success(),
        "experiments exited with {:?}: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );

    let bench = std::fs::read_to_string(scratch.join("BENCH_substrates.json"))
        .expect("BENCH_substrates.json written next to the invocation");
    let normalized = mask_substrates_volatile(&bench);

    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join("BENCH_substrates.schema.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &normalized).expect("golden file written");
    } else {
        let golden = std::fs::read_to_string(&golden_path).expect(
            "golden file exists — regenerate with UPDATE_GOLDEN=1 cargo test -p msa-bench \
             --test golden_experiments",
        );
        assert_eq!(
            normalized, golden,
            "BENCH_substrates.json drifted from the committed schema; \
             if the change is intentional, regenerate with UPDATE_GOLDEN=1"
        );
    }
    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn reconstruct_bench_artifact_is_pinned() {
    // Unlike the substrates artifact, every field of BENCH_reconstruct.json
    // is deterministic — recovery rates, gains and verdicts derive from
    // logical-tick decay, never wall clock — so the whole artifact is pinned
    // with no masking.
    let scratch =
        std::env::temp_dir().join(format!("msa-golden-reconstruct-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir created");

    let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["--reconstruct", "--tiny"])
        .current_dir(&scratch)
        .output()
        .expect("experiments binary runs");
    assert!(
        output.status.success(),
        "experiments exited with {:?}: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );

    let bench = std::fs::read_to_string(scratch.join("BENCH_reconstruct.json"))
        .expect("BENCH_reconstruct.json written next to the invocation");

    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join("BENCH_reconstruct.schema.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &bench).expect("golden file written");
    } else {
        let golden = std::fs::read_to_string(&golden_path).expect(
            "golden file exists — regenerate with UPDATE_GOLDEN=1 cargo test -p msa-bench \
             --test golden_experiments",
        );
        assert_eq!(
            bench, golden,
            "BENCH_reconstruct.json drifted from the committed artifact; \
             if the change is intentional, regenerate with UPDATE_GOLDEN=1"
        );
    }
    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn swap_bench_artifact_is_pinned_and_jobs_independent() {
    // Every field of BENCH_swap.json is deterministic (swap residency,
    // CoW retention and recovery all derive from logical-tick simulation),
    // so the whole artifact is pinned with no masking — and the same golden
    // must come back byte-identical at every worker count.
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join("BENCH_swap.schema.json");
    for jobs in ["--jobs=1", "--jobs=4"] {
        let scratch = std::env::temp_dir().join(format!(
            "msa-golden-swap-{}-{}",
            std::process::id(),
            jobs.trim_start_matches("--jobs=")
        ));
        std::fs::create_dir_all(&scratch).expect("scratch dir created");

        let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
            .args(["--swap", "--tiny", jobs])
            .current_dir(&scratch)
            .output()
            .expect("experiments binary runs");
        assert!(
            output.status.success(),
            "experiments exited with {:?}: {}",
            output.status,
            String::from_utf8_lossy(&output.stderr)
        );

        let bench = std::fs::read_to_string(scratch.join("BENCH_swap.json"))
            .expect("BENCH_swap.json written next to the invocation");

        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::write(&golden_path, &bench).expect("golden file written");
        } else {
            let golden = std::fs::read_to_string(&golden_path).expect(
                "golden file exists — regenerate with UPDATE_GOLDEN=1 cargo test -p msa-bench \
                 --test golden_experiments",
            );
            assert_eq!(
                bench, golden,
                "BENCH_swap.json drifted from the committed artifact ({jobs}); \
                 if the change is intentional, regenerate with UPDATE_GOLDEN=1"
            );
        }
        std::fs::remove_dir_all(&scratch).ok();
    }
}

#[test]
fn normalizer_masks_only_durations_speedups_and_rules() {
    assert!(is_duration_token("12ns"));
    assert!(is_duration_token("504.49µs"));
    assert!(is_duration_token("1.63ms"));
    assert!(is_duration_token("2s"));
    assert!(!is_duration_token("frames"));
    assert!(!is_duration_token("6.5MiB"));
    assert!(!is_duration_token("100.0%"));
    assert!(!is_duration_token("s"));
    assert!(is_speedup_token("3.4x"));
    assert!(is_speedup_token("0.9x"));
    assert!(is_speedup_token("12x"));
    assert!(!is_speedup_token("x"));
    assert!(!is_speedup_token("matrix"));
    assert!(!is_speedup_token("16x16"));
    assert_eq!(
        normalize("step   wall-clock\n----  ------\n1. poll  12.3µs  1.3x\n"),
        "step wall-clock\n--- ---\n1. poll <T> <X>\n"
    );
}
