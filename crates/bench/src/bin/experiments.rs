//! Regenerates every figure and table of the paper's evaluation as text.
//!
//! Usage:
//!
//! ```text
//! cargo run -p msa-bench --bin experiments            # everything
//! cargo run -p msa-bench --bin experiments -- --fig11 # one artifact
//! ```
//!
//! Flags: `--fig4` … `--fig12`, `--timing` (TAB-A), `--defenses` (TAB-B),
//! `--fingerprint` (TAB-C), `--aslr` (TAB-D), `--boards` (TAB-E),
//! `--multitenant` (TAB-F), `--all`.

use msa_bench::{attacker_debugger, ATTACKER_USER, VICTIM_USER};
use msa_core::attack::{AttackConfig, AttackPipeline};
use msa_core::defense::{
    evaluate_isolation, evaluate_layout_randomization, evaluate_multi_tenant,
    evaluate_sanitize_policies,
};
use msa_core::profile::Profiler;
use msa_core::report::{bytes, percent, TextTable};
use msa_core::scenario::AttackScenario;
use petalinux_sim::{BoardConfig, Kernel, Shell};
use vitis_ai_sim::{DpuRunner, Image, ModelKind};

const KNOWN_FLAGS: &[&str] = &[
    "--all",
    "--fig4",
    "--fig5",
    "--fig6",
    "--fig7",
    "--fig8",
    "--fig9",
    "--fig10",
    "--fig11",
    "--fig12",
    "--timing",
    "--defenses",
    "--fingerprint",
    "--aslr",
    "--boards",
    "--multitenant",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(unknown) = args.iter().find(|a| !KNOWN_FLAGS.contains(&a.as_str())) {
        eprintln!("error: unknown flag `{unknown}`");
        eprintln!("usage: experiments [{}]", KNOWN_FLAGS.join(" | "));
        std::process::exit(2);
    }
    let all = args.is_empty() || args.iter().any(|a| a == "--all");
    let want = |flag: &str| {
        debug_assert!(
            KNOWN_FLAGS.contains(&flag),
            "dispatch flag {flag} missing from KNOWN_FLAGS"
        );
        all || args.iter().any(|a| a == flag)
    };

    if want("--fig4") {
        fig4();
    }
    let figure_flags = [
        "--fig5", "--fig6", "--fig7", "--fig8", "--fig9", "--fig10", "--fig11", "--fig12",
        "--timing",
    ];
    if figure_flags.iter().any(|f| want(f)) {
        attack_walkthrough(&want)?;
    }
    if want("--defenses") {
        defenses()?;
    }
    if want("--fingerprint") {
        fingerprint()?;
    }
    if want("--aslr") {
        aslr()?;
    }
    if want("--boards") {
        boards()?;
    }
    if want("--multitenant") {
        multitenant()?;
    }
    Ok(())
}

fn board() -> BoardConfig {
    BoardConfig::zcu104()
}

fn fig4() {
    println!("=== FIG4: original vs corrupted input image ===");
    let original = Image::sample_photo(224, 224);
    let corrupted = Image::corrupted(224, 224);
    println!(
        "original : {original} ({} bytes)",
        original.as_bytes().len()
    );
    println!("corrupted: {corrupted}, every pixel set to 0xFFFFFF");
    let ff_fraction = corrupted.as_bytes().iter().filter(|&&b| b == 0xFF).count() as f64
        / corrupted.as_bytes().len() as f64;
    println!("corrupted 0xFF byte fraction: {}", percent(ff_fraction));
    println!(
        "pixel agreement original vs corrupted: {}\n",
        percent(original.pixel_recovery_rate(&corrupted))
    );
}

fn attack_walkthrough(want: &dyn Fn(&str) -> bool) -> Result<(), Box<dyn std::error::Error>> {
    let board = board();
    let profiles = Profiler::new(board).profile_all();
    let pipeline = AttackPipeline::new(AttackConfig::default()).with_profiles(profiles);

    let mut kernel = Kernel::boot(board);
    let shell = Shell::new(ATTACKER_USER);
    let mut debugger = attacker_debugger();

    // Background processes so the listings have the paper's shape (a kernel
    // worker thread and the attacker's own shell).
    kernel.spawn(VICTIM_USER, &["[kworker/3:0-events]"])?;
    kernel.spawn(ATTACKER_USER, &["-sh"])?;

    if want("--fig5") {
        println!("=== FIG5: ps -ef before the victim runs ===");
        println!("{}", shell.ps_ef(&kernel));
    }

    let victim = DpuRunner::new(ModelKind::Resnet50Pt)
        .with_input(Image::corrupted(224, 224))
        .launch(&mut kernel, VICTIM_USER)?;

    if want("--fig6") {
        println!("=== FIG6: ps -ef with the victim running ===");
        println!("{}", shell.ps_ef(&kernel));
    }

    let observation = pipeline.poll_and_observe(&mut debugger, &kernel)?;
    let pid = observation.pid();
    let translation = observation.translation();

    if want("--fig7") {
        println!("=== FIG7: heap range from /proc/{pid}/maps ===");
        let maps = debugger.read_maps(&kernel, pid)?;
        for line in maps.lines().filter(|l| l.contains("[heap]")) {
            println!("{line}");
        }
        println!();
    }

    if want("--fig8") {
        println!("=== FIG8: virtual-to-physical conversion of the heap bounds ===");
        println!(
            "./virtual_to_physical.out {pid} 0x{} -> {}",
            translation.heap_start(),
            translation.phys_start().expect("resident")
        );
        println!(
            "./virtual_to_physical.out {pid} 0x{} -> {}",
            translation.heap_end(),
            translation.phys_end().expect("resident")
        );
        println!();
    }

    victim.terminate(&mut kernel)?;

    if want("--fig9") {
        println!("=== FIG9: ps -ef after victim termination (pid {pid} gone) ===");
        println!("{}", shell.ps_ef(&kernel));
    }

    if want("--fig10") {
        println!("=== FIG10: devmem reads of residual physical memory ===");
        let start = translation.phys_start().expect("resident");
        for offset in [0u64, 0x730, 0x1000, 0x2000] {
            let word = debugger.read_phys_u32(&kernel, start + offset)?;
            println!("devmem {} -> {:#010x}", start + offset, word);
        }
        println!();
    }

    let outcome = pipeline.execute(&mut debugger, &kernel, &observation)?;
    let dump = pipeline.scrape_after_termination(&mut debugger, &kernel, &observation)?;

    if want("--fig11") {
        println!("=== FIG11: grep \"resnet50\" over the hexdump of the scraped heap ===");
        for line in dump.to_hexdump().grep("resnet50").into_iter().take(4) {
            println!("{line}");
        }
        println!();
    }

    if want("--fig12") {
        println!("=== FIG12: corrupted-image marker (FFFF FFFF) rows and reconstruction ===");
        if let Some(run) = outcome.marker_runs.first() {
            println!(
                "first marker run: heap offset {:#x}, {} bytes",
                run.offset, run.len
            );
            let hexdump = dump.to_hexdump();
            for row in hexdump.rows().skip(run.offset as usize / 16).take(4) {
                println!("{}", row.render());
            }
        }
        println!(
            "reconstructed image matches victim input: {}",
            percent(outcome.image_recovery_rate(&Image::corrupted(224, 224)))
        );
        println!();
    }

    if want("--timing") {
        println!("=== TAB-A: per-step attack latency (this run) ===");
        let mut table = TextTable::new(vec!["step", "wall-clock"]);
        table.add_row(vec![
            "1. poll for pid".into(),
            format!("{:?}", outcome.timings.poll),
        ]);
        table.add_row(vec![
            "2. translate heap".into(),
            format!("{:?}", outcome.timings.translate),
        ]);
        table.add_row(vec![
            "3. scrape physical memory".into(),
            format!("{:?}", outcome.timings.scrape),
        ]);
        table.add_row(vec![
            "4. analyse dump".into(),
            format!("{:?}", outcome.timings.analyze),
        ]);
        table.add_row(vec![
            "total".into(),
            format!("{:?}", outcome.timings.total()),
        ]);
        println!("{table}");
        println!(
            "bytes scraped: {}, dump coverage: {}\n",
            bytes(outcome.bytes_scraped as u64),
            percent(outcome.dump_coverage)
        );
    }
    Ok(())
}

fn defenses() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== TAB-B: sanitization policies vs the attack (victim: resnet50_pt) ===");
    let mut table = TextTable::new(vec![
        "policy",
        "model identified",
        "pixel recovery",
        "residue frames",
        "scrub cost (cycles)",
        "collateral",
    ]);
    for row in evaluate_sanitize_policies(board(), ModelKind::Resnet50Pt)? {
        table.add_row(vec![
            row.policy.to_string(),
            row.model_identified.to_string(),
            percent(row.pixel_recovery),
            row.residue_frames.to_string(),
            format!("{:.0}", row.scrub_cost_cycles),
            bytes(row.collateral_bytes),
        ]);
    }
    println!("{table}");

    println!("=== isolation-policy ablation ===");
    let mut table = TextTable::new(vec![
        "isolation",
        "attack completed",
        "model identified",
        "pixel recovery",
        "blocked at",
    ]);
    for row in evaluate_isolation(board(), ModelKind::Resnet50Pt)? {
        table.add_row(vec![
            row.isolation.to_string(),
            row.attack_completed.to_string(),
            row.model_identified.to_string(),
            percent(row.pixel_recovery),
            row.blocked_at.unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{table}");
    Ok(())
}

fn fingerprint() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== TAB-C: model identification accuracy across the zoo ===");
    let board = board();
    let profiles = Profiler::new(board).profile_all();
    let mut table = TextTable::new(vec![
        "victim model",
        "identified as",
        "correct",
        "confidence",
        "image recovered",
    ]);
    let mut correct = 0usize;
    for model in ModelKind::all() {
        let outcome = AttackScenario::new(board, model)
            .with_profiles(profiles.clone())
            .execute()?;
        if outcome.model_identification_correct() {
            correct += 1;
        }
        table.add_row(vec![
            model.to_string(),
            outcome
                .identified_model()
                .map(|m| m.to_string())
                .unwrap_or_else(|| "<none>".into()),
            outcome.model_identification_correct().to_string(),
            percent(outcome.attack().identification_confidence()),
            percent(outcome.pixel_recovery_rate()),
        ]);
    }
    println!("{table}");
    println!(
        "identification accuracy: {}/{}\n",
        correct,
        ModelKind::all().len()
    );
    Ok(())
}

fn aslr() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== TAB-D: layout randomization vs the attack ===");
    let mut table = TextTable::new(vec![
        "allocation order",
        "aslr",
        "scrape mode",
        "model identified",
        "pixel recovery",
    ]);
    for row in evaluate_layout_randomization(board(), ModelKind::Resnet50Pt)? {
        table.add_row(vec![
            row.allocation_order.to_string(),
            row.aslr.to_string(),
            row.scrape_mode.to_string(),
            row.model_identified.to_string(),
            percent(row.pixel_recovery),
        ]);
    }
    println!("{table}");
    Ok(())
}

fn boards() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== TAB-E: attack success per board preset ===");
    let mut table = TextTable::new(vec![
        "board",
        "dram window",
        "model identified",
        "pixel recovery",
        "residue frames",
    ]);
    for (name, config) in [
        ("ZCU104", BoardConfig::zcu104()),
        ("ZCU102", BoardConfig::zcu102()),
    ] {
        let outcome = AttackScenario::new(config, ModelKind::Resnet50Pt)
            .with_corrupted_input()
            .execute()?;
        table.add_row(vec![
            name.to_string(),
            bytes(config.dram().capacity()),
            outcome.model_identification_correct().to_string(),
            percent(outcome.pixel_recovery_rate()),
            outcome.residue_frames_after().to_string(),
        ]);
    }
    println!("{table}");
    Ok(())
}

fn multitenant() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== TAB-F: multi-tenant residue and sanitizer collateral ===");
    let mut table = TextTable::new(vec![
        "policy",
        "victim model identified",
        "active tenant clobbered",
        "active tenant intact",
    ]);
    for row in evaluate_multi_tenant(board(), ModelKind::SqueezeNet, ModelKind::MobileNetV2)? {
        table.add_row(vec![
            row.policy.to_string(),
            row.victim_model_identified.to_string(),
            bytes(row.active_tenant_bytes_clobbered),
            row.active_tenant_data_intact.to_string(),
        ]);
    }
    println!("{table}");
    Ok(())
}
