//! Regenerates every figure and table of the paper's evaluation as text.
//!
//! Usage:
//!
//! ```text
//! cargo run -p msa-bench --bin experiments            # everything
//! cargo run -p msa-bench --bin experiments -- --fig11 # one artifact
//! ```
//!
//! Flags: `--fig4` … `--fig12`, `--timing` (TAB-A), `--defenses` (TAB-B),
//! `--fingerprint` (TAB-C), `--aslr` (TAB-D), `--boards` (TAB-E),
//! `--multitenant` (TAB-F), `--revival` (Resurrection-style pid/frame reuse
//! per sanitize policy, two boards), `--livetraffic` (residue decay vs. live
//! churn depth), `--banks` (flat vs. bank-sharded scrub/scrape throughput
//! plus the bank-striped attacker sweep), `--remanence` (recovery vs.
//! Pentimento-style analog residue decay, per scrape mode), `--reconstruct`
//! (the decay-tolerant reconstructor vs. the exact-matching attacker at
//! matched cell seeds), `--swap` (compressed-swap and copy-on-write residue
//! vs. sanitize policy), `--campaign` (fleet-scale matrix summary), `--all`.
//!
//! Modifiers: `--tiny` runs the matrix tables on the small test board (the
//! CI smoke configuration); `--jobs=N` caps the campaign worker pool;
//! `--stream` switches `--campaign` onto the streaming engine (NDJSON
//! progress per folded cell group on stdout, plus `BENCH_campaign.json` in
//! the working directory); `--stress` streams a 1,000,000-cell matrix
//! through the synthetic executor to demonstrate bounded residency.
//!
//! Every matrix table here is executed by the `msa_core::campaign` worker
//! pool — the `evaluate_*` sweeps are campaign specs, and `--fingerprint`,
//! `--boards` and `--campaign` build their specs directly.

// Lint audit: casts here narrow counters and ratios for table/JSON
// display, and indexes walk rows produced by the same loop — no value
// feeds back into address arithmetic.
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use msa_bench::{attacker_debugger, ATTACKER_USER, VICTIM_USER};
use msa_core::attack::{AttackConfig, AttackPipeline};
use msa_core::campaign::{CampaignSpec, CampaignSummary, InputKind, StreamConfig};
use msa_core::defense::{
    evaluate_cow_retention, evaluate_isolation, evaluate_layout_randomization,
    evaluate_multi_tenant, evaluate_reconstruction, evaluate_remanence, evaluate_revival,
    evaluate_sanitize_policies, evaluate_swap,
};
use msa_core::profile::Profiler;
use msa_core::report::{bytes, json_array, percent, JsonObject, TextTable};
use msa_core::{ScrapeMode, VictimSchedule};
use petalinux_sim::{BoardConfig, IsolationPolicy, Kernel, Shell};
use vitis_ai_sim::{DpuRunner, Image, ModelKind};
use zynq_dram::{RemanenceModel, SanitizePolicy};

const KNOWN_FLAGS: &[&str] = &[
    "--all",
    "--fig4",
    "--fig5",
    "--fig6",
    "--fig7",
    "--fig8",
    "--fig9",
    "--fig10",
    "--fig11",
    "--fig12",
    "--timing",
    "--defenses",
    "--fingerprint",
    "--aslr",
    "--boards",
    "--multitenant",
    "--revival",
    "--livetraffic",
    "--banks",
    "--remanence",
    "--reconstruct",
    "--swap",
    "--audit",
    "--campaign",
    "--tiny",
    "--stream",
    "--stress",
];

/// Parsed command line: artifact flags plus the board/worker modifiers.
struct Options {
    flags: Vec<String>,
    tiny: bool,
    stream: bool,
    stress: bool,
    jobs: Option<usize>,
}

impl Options {
    fn parse(args: Vec<String>) -> Result<Options, String> {
        let mut flags = Vec::new();
        let mut tiny = false;
        let mut stream = false;
        let mut stress = false;
        let mut jobs = None;
        for arg in args {
            if let Some(n) = arg.strip_prefix("--jobs=") {
                jobs = Some(
                    n.parse::<usize>()
                        .map_err(|_| format!("invalid worker count in `{arg}`"))?
                        .max(1),
                );
            } else if arg == "--tiny" {
                tiny = true;
            } else if arg == "--stream" {
                stream = true;
            } else if arg == "--stress" {
                stress = true;
            } else if KNOWN_FLAGS.contains(&arg.as_str()) {
                flags.push(arg);
            } else {
                return Err(format!("unknown flag `{arg}`"));
            }
        }
        Ok(Options {
            flags,
            tiny,
            stream,
            stress,
            jobs,
        })
    }

    fn want(&self, flag: &str) -> bool {
        debug_assert!(
            KNOWN_FLAGS.contains(&flag),
            "dispatch flag {flag} missing from KNOWN_FLAGS"
        );
        let all = self.flags.is_empty() || self.flags.iter().any(|a| a == "--all");
        all || self.flags.iter().any(|a| a == flag)
    }

    /// The board the matrix tables run on.
    fn board(&self) -> BoardConfig {
        if self.tiny {
            BoardConfig::tiny_for_tests()
        } else {
            BoardConfig::zcu104()
        }
    }

    fn board_name(&self) -> &'static str {
        if self.tiny {
            "tiny"
        } else {
            "ZCU104"
        }
    }

    /// Applies the `--jobs` cap to a campaign spec.
    fn capped(&self, spec: CampaignSpec) -> CampaignSpec {
        match self.jobs {
            Some(jobs) => spec.with_jobs(jobs),
            None => spec,
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = match Options::parse(std::env::args().skip(1).collect()) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!(
                "usage: experiments [{} | --jobs=N]",
                KNOWN_FLAGS.join(" | ")
            );
            std::process::exit(2);
        }
    };

    if options.want("--fig4") {
        fig4();
    }
    let figure_flags = [
        "--fig5", "--fig6", "--fig7", "--fig8", "--fig9", "--fig10", "--fig11", "--fig12",
        "--timing",
    ];
    if figure_flags.iter().any(|f| options.want(f)) {
        attack_walkthrough(&options)?;
    }
    if options.want("--timing") {
        write_substrates_bench(&options)?;
    }
    if options.want("--defenses") {
        defenses(&options)?;
    }
    if options.want("--fingerprint") {
        fingerprint(&options)?;
    }
    if options.want("--aslr") {
        aslr(&options)?;
    }
    if options.want("--boards") {
        boards(&options)?;
    }
    if options.want("--multitenant") {
        multitenant(&options)?;
    }
    if options.want("--revival") {
        revival(&options)?;
    }
    if options.want("--livetraffic") {
        livetraffic(&options)?;
    }
    if options.want("--banks") {
        banks(&options)?;
    }
    if options.want("--remanence") {
        remanence(&options)?;
    }
    if options.want("--reconstruct") {
        reconstruct(&options)?;
    }
    if options.want("--swap") {
        swap(&options)?;
    }
    if options.want("--audit") {
        audit()?;
    }
    if options.want("--campaign") {
        campaign(&options)?;
    }
    Ok(())
}

/// `--audit`: the static residue-flow verdict matrix from `msa-analyzer`.
/// No campaign runs — the verdicts come from the abstract interpreter, so
/// the table is board-independent (`--tiny` and `--jobs` have no effect).
/// The machine-readable twin goes to `ANALYSIS.json` (schema
/// `msa-analyzer-v1`), golden-pinned byte-for-byte in the analyzer crate.
fn audit() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== AUDIT: static residue-flow verdicts over the shipped audit matrix ===");
    let report = msa_analyzer::AuditReport::generate();
    print!("{report_table}", report_table = report.render_table());
    let (scrubbed, bounded, leaks) = report.verdict_counts();
    println!(
        "{cells} cells: {scrubbed} scrubbed, {bounded} decay-bounded, {leaks} leak\n",
        cells = report.cells().len()
    );
    std::fs::write("ANALYSIS.json", report.to_json())?;
    eprintln!("wrote ANALYSIS.json");
    Ok(())
}

fn fig4() {
    println!("=== FIG4: original vs corrupted input image ===");
    let original = Image::sample_photo(224, 224);
    let corrupted = Image::corrupted(224, 224);
    println!(
        "original : {original} ({} bytes)",
        original.as_bytes().len()
    );
    println!("corrupted: {corrupted}, every pixel set to 0xFFFFFF");
    let ff_fraction = corrupted.as_bytes().iter().filter(|&&b| b == 0xFF).count() as f64
        / corrupted.as_bytes().len() as f64;
    println!("corrupted 0xFF byte fraction: {}", percent(ff_fraction));
    println!(
        "pixel agreement original vs corrupted: {}\n",
        percent(original.pixel_recovery_rate(&corrupted))
    );
}

fn attack_walkthrough(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let want = |flag: &str| options.want(flag);
    let board = options.board();
    let profiles = Profiler::new(board).profile_all();
    let pipeline = AttackPipeline::new(AttackConfig::default()).with_profiles(profiles);

    let mut kernel = Kernel::boot(board);
    let shell = Shell::new(ATTACKER_USER);
    let mut debugger = attacker_debugger();

    // Background processes so the listings have the paper's shape (a kernel
    // worker thread and the attacker's own shell).
    kernel.spawn(VICTIM_USER, &["[kworker/3:0-events]"])?;
    kernel.spawn(ATTACKER_USER, &["-sh"])?;

    if want("--fig5") {
        println!("=== FIG5: ps -ef before the victim runs ===");
        println!("{}", shell.ps_ef(&kernel));
    }

    let victim = DpuRunner::new(ModelKind::Resnet50Pt)
        .with_input(Image::corrupted(224, 224))
        .launch(&mut kernel, VICTIM_USER)?;

    if want("--fig6") {
        println!("=== FIG6: ps -ef with the victim running ===");
        println!("{}", shell.ps_ef(&kernel));
    }

    let observation = pipeline.poll_and_observe(&mut debugger, &kernel)?;
    let pid = observation.pid();
    let translation = observation.translation();

    if want("--fig7") {
        println!("=== FIG7: heap range from /proc/{pid}/maps ===");
        let maps = debugger.read_maps(&kernel, pid)?;
        for line in maps.lines().filter(|l| l.contains("[heap]")) {
            println!("{line}");
        }
        println!();
    }

    if want("--fig8") {
        println!("=== FIG8: virtual-to-physical conversion of the heap bounds ===");
        println!(
            "./virtual_to_physical.out {pid} 0x{} -> {}",
            translation.heap_start(),
            translation.phys_start().expect("resident")
        );
        println!(
            "./virtual_to_physical.out {pid} 0x{} -> {}",
            translation.heap_end(),
            translation.phys_end().expect("resident")
        );
        println!();
    }

    victim.terminate(&mut kernel)?;

    if want("--fig9") {
        println!("=== FIG9: ps -ef after victim termination (pid {pid} gone) ===");
        println!("{}", shell.ps_ef(&kernel));
    }

    if want("--fig10") {
        println!("=== FIG10: devmem reads of residual physical memory ===");
        let start = translation.phys_start().expect("resident");
        for offset in [0u64, 0x730, 0x1000, 0x2000] {
            let word = debugger.read_phys_u32(&kernel, start + offset)?;
            println!("devmem {} -> {:#010x}", start + offset, word);
        }
        println!();
    }

    let outcome = pipeline.execute(&mut debugger, &kernel, &observation)?;
    let dump = pipeline.scrape_after_termination(&mut debugger, &kernel, &observation)?;

    if want("--fig11") {
        println!("=== FIG11: grep \"resnet50\" over the hexdump of the scraped heap ===");
        for line in dump.to_hexdump().grep("resnet50").into_iter().take(4) {
            println!("{line}");
        }
        println!();
    }

    if want("--fig12") {
        println!("=== FIG12: corrupted-image marker (FFFF FFFF) rows and reconstruction ===");
        if let Some(run) = outcome.marker_runs.first() {
            println!(
                "first marker run: heap offset {:#x}, {} bytes",
                run.offset, run.len
            );
            let hexdump = dump.to_hexdump();
            for row in hexdump.rows().skip(run.offset as usize / 16).take(4) {
                println!("{}", row.render());
            }
        }
        println!(
            "reconstructed image matches victim input: {}",
            percent(outcome.image_recovery_rate(&Image::corrupted(224, 224)))
        );
        println!();
    }

    if want("--timing") {
        println!("=== TAB-A: per-step attack latency (this run) ===");
        let mut table = TextTable::new(vec!["step", "wall-clock"]);
        table.add_row(vec![
            "1. poll for pid".into(),
            format!("{:?}", outcome.timings.poll),
        ]);
        table.add_row(vec![
            "2. translate heap".into(),
            format!("{:?}", outcome.timings.translate),
        ]);
        table.add_row(vec![
            "3. scrape physical memory".into(),
            format!("{:?}", outcome.timings.scrape),
        ]);
        table.add_row(vec![
            "4. analyse dump".into(),
            format!("{:?}", outcome.timings.analyze),
        ]);
        table.add_row(vec![
            "total".into(),
            format!("{:?}", outcome.timings.total()),
        ]);
        println!("{table}");
        println!(
            "bytes scraped: {}, dump coverage: {}\n",
            bytes(outcome.bytes_scraped as u64),
            percent(outcome.dump_coverage)
        );
    }
    Ok(())
}

/// Rides along with `--timing`: measures the arena store's owned and
/// zero-copy 8 MiB scrape (plus the full-region scrub) against the pre-arena
/// HashMap-stripe baseline, and records the comparison in
/// `BENCH_substrates.json` (schema `msa-bench-substrates-v1`) — the
/// cross-PR perf trajectory record for the storage substrate, the companion
/// of `BENCH_campaign.json`.
///
/// The note goes to stderr: the golden-output tests pin `--timing` stdout
/// byte-for-byte, and wall-clock results belong in the JSON artifact, not
/// the table stream.
fn write_substrates_bench(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    use msa_bench::baseline::HashMapStripeStore;
    use std::time::{Duration, Instant};
    use zynq_dram::{Dram, DramConfig, OwnerTag};

    /// Region every measurement runs over (fits the tiny test window).
    const SCRAPE_LEN: u64 = 8 * 1024 * 1024;

    fn time_best_of<F: FnMut()>(runs: usize, mut f: F) -> Duration {
        let mut best = Duration::MAX;
        for _ in 0..runs {
            let started = Instant::now();
            f();
            best = best.min(started.elapsed());
        }
        best
    }

    let config = if options.tiny {
        DramConfig::tiny_for_tests()
    } else {
        DramConfig::zcu104()
    };
    let base = config.base();
    let owner = OwnerTag::new(1391);
    let mut buf = vec![0u8; SCRAPE_LEN as usize];

    // The storage scheme the arena replaced: per-bank HashMaps of boxed
    // stripes, one hash lookup per stripe on every access.
    let mut hashmap = HashMapStripeStore::new(config);
    hashmap.fill(base, SCRAPE_LEN, 0xC3);
    let baseline_read = time_best_of(5, || hashmap.read_bytes(base, &mut buf));
    let mut baseline_scrub = Duration::MAX;
    for _ in 0..3 {
        hashmap.fill(base, SCRAPE_LEN, 0xFF);
        let started = Instant::now();
        hashmap.scrub_range(base, SCRAPE_LEN);
        baseline_scrub = baseline_scrub.min(started.elapsed());
    }

    // The arena store: owned read (offset arithmetic + bulk copy per
    // stripe), zero-copy borrowed view (O(chunks) pointer pushes, no byte
    // ever copied), and the fill-over-slab-ranges scrub.
    let mut dram = Dram::new(config);
    dram.fill(base, SCRAPE_LEN, 0xC3, owner)?;
    let arena_read = time_best_of(5, || dram.read_bytes(base, &mut buf).unwrap());
    let arena_view = time_best_of(5, || {
        let view = dram
            .scrape_view(base, SCRAPE_LEN)
            .unwrap()
            .expect("perfect remanence hands out borrowed views");
        std::hint::black_box(view.len());
    });
    let mut arena_scrub = Duration::MAX;
    for _ in 0..3 {
        dram.fill(base, SCRAPE_LEN, 0xFF, owner)?;
        let started = Instant::now();
        dram.scrub_range(base, SCRAPE_LEN)?;
        arena_scrub = arena_scrub.min(started.elapsed());
    }

    let ratio = |baseline: Duration, new: Duration| {
        baseline.as_secs_f64() / new.as_secs_f64().max(f64::MIN_POSITIVE)
    };
    let json = JsonObject::new()
        .str("schema", "msa-bench-substrates-v1")
        .str("board", options.board_name())
        .u64("scrape_len_bytes", SCRAPE_LEN)
        .u64("baseline_hashmap_read_ns", baseline_read.as_nanos() as u64)
        .u64("arena_read_ns", arena_read.as_nanos() as u64)
        .u64("arena_view_ns", arena_view.as_nanos() as u64)
        .u64(
            "baseline_hashmap_scrub_ns",
            baseline_scrub.as_nanos() as u64,
        )
        .u64("arena_scrub_ns", arena_scrub.as_nanos() as u64)
        .f64("speedup_arena_read", ratio(baseline_read, arena_read))
        .f64("speedup_arena_view", ratio(baseline_read, arena_view))
        .f64("speedup_arena_scrub", ratio(baseline_scrub, arena_scrub))
        .finish();
    std::fs::write("BENCH_substrates.json", format!("{json}\n"))?;
    eprintln!("wrote BENCH_substrates.json");
    Ok(())
}

fn defenses(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    println!("=== TAB-B: sanitization policies vs the attack (victim: resnet50_pt) ===");
    let mut table = TextTable::new(vec![
        "policy",
        "model identified",
        "pixel recovery",
        "residue frames",
        "scrub cost (cycles)",
        "collateral",
    ]);
    for row in evaluate_sanitize_policies(options.board(), ModelKind::Resnet50Pt)? {
        table.add_row(vec![
            row.policy.to_string(),
            row.model_identified.to_string(),
            percent(row.pixel_recovery),
            row.residue_frames.to_string(),
            format!("{:.0}", row.scrub_cost_cycles),
            bytes(row.collateral_bytes),
        ]);
    }
    println!("{table}");

    println!("=== isolation-policy ablation ===");
    let mut table = TextTable::new(vec![
        "isolation",
        "attack completed",
        "model identified",
        "pixel recovery",
        "blocked at",
    ]);
    for row in evaluate_isolation(options.board(), ModelKind::Resnet50Pt)? {
        table.add_row(vec![
            row.isolation.to_string(),
            row.attack_completed.to_string(),
            row.model_identified.to_string(),
            percent(row.pixel_recovery),
            row.blocked_at.unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{table}");
    Ok(())
}

fn fingerprint(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    println!("=== TAB-C: model identification accuracy across the zoo ===");
    let report = options
        .capped(
            CampaignSpec::new(options.board_name(), options.board())
                .with_models(ModelKind::all().to_vec()),
        )
        .run()?;
    let mut table = TextTable::new(vec![
        "victim model",
        "identified as",
        "correct",
        "confidence",
        "image recovered",
    ]);
    for record in report.cells() {
        let metrics = record.metrics.as_ref().expect("permissive cells complete");
        table.add_row(vec![
            record.cell.model.to_string(),
            metrics
                .identified_model
                .map(|m| m.to_string())
                .unwrap_or_else(|| "<none>".into()),
            metrics.model_identified.to_string(),
            percent(metrics.identification_confidence),
            percent(metrics.pixel_recovery),
        ]);
    }
    println!("{table}");
    println!(
        "identification accuracy: {}/{}\n",
        report.identified_count(),
        report.len()
    );
    Ok(())
}

fn aslr(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    println!("=== TAB-D: layout randomization vs the attack ===");
    let mut table = TextTable::new(vec![
        "allocation order",
        "aslr",
        "scrape mode",
        "model identified",
        "pixel recovery",
    ]);
    for row in evaluate_layout_randomization(options.board(), ModelKind::Resnet50Pt)? {
        table.add_row(vec![
            row.allocation_order.to_string(),
            row.aslr.to_string(),
            row.scrape_mode.to_string(),
            row.model_identified.to_string(),
            percent(row.pixel_recovery),
        ]);
    }
    println!("{table}");
    Ok(())
}

fn boards(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    println!("=== TAB-E: attack success per board preset ===");
    let report = options
        .capped(
            CampaignSpec::new("ZCU104", BoardConfig::zcu104())
                .with_board("ZCU102", BoardConfig::zcu102())
                .with_inputs(vec![InputKind::Corrupted]),
        )
        .run()?;
    let mut table = TextTable::new(vec![
        "board",
        "dram window",
        "model identified",
        "pixel recovery",
        "residue frames",
    ]);
    for record in report.cells() {
        let metrics = record.metrics.as_ref().expect("permissive cells complete");
        table.add_row(vec![
            record.cell.board_name.clone(),
            bytes(record.cell.board.dram().capacity()),
            metrics.model_identified.to_string(),
            percent(metrics.pixel_recovery),
            metrics.residue_frames.to_string(),
        ]);
    }
    println!("{table}");
    Ok(())
}

fn multitenant(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    println!("=== TAB-F: multi-tenant residue and sanitizer collateral ===");
    let mut table = TextTable::new(vec![
        "policy",
        "victim model identified",
        "active tenant clobbered",
        "active tenant intact",
    ]);
    for row in evaluate_multi_tenant(
        options.board(),
        ModelKind::SqueezeNet,
        ModelKind::MobileNetV2,
    )? {
        table.add_row(vec![
            row.policy.to_string(),
            row.victim_model_identified.to_string(),
            bytes(row.active_tenant_bytes_clobbered),
            row.active_tenant_data_intact.to_string(),
        ]);
    }
    println!("{table}");
    Ok(())
}

/// Residue-lifetime table 1: the Resurrection-style revival window per
/// sanitize policy, on two boards (paper boards by default, two tiny
/// allocation-order variants under `--tiny` so the CI smoke stays fast).
fn revival(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    println!("=== REVIVAL: residue inherited by pid/frame reuse (victim: resnet50_pt) ===");
    let boards: Vec<(&str, BoardConfig)> = if options.tiny {
        vec![
            ("tiny", BoardConfig::tiny_for_tests()),
            (
                "tiny-fifo",
                BoardConfig::tiny_for_tests()
                    .with_allocation_order(zynq_mmu::AllocationOrder::FifoReuse),
            ),
        ]
    } else {
        vec![
            ("ZCU104", BoardConfig::zcu104()),
            ("ZCU102", BoardConfig::zcu102()),
        ]
    };
    let mut table = TextTable::new(vec![
        "board",
        "policy",
        "victim frames",
        "revived frames",
        "inherited",
        "inheritance rate",
        "lost before scrape",
        "model identified",
        "pixel recovery",
    ]);
    for (name, board) in boards {
        for row in evaluate_revival(board, ModelKind::Resnet50Pt)? {
            table.add_row(vec![
                name.to_string(),
                row.policy.to_string(),
                row.victim_frames.to_string(),
                row.revived_heap_frames.to_string(),
                row.inherited_frames.to_string(),
                percent(row.inheritance_rate),
                row.frames_lost_before_scrape.to_string(),
                row.model_identified.to_string(),
                percent(row.pixel_recovery),
            ]);
        }
    }
    println!("{table}");
    Ok(())
}

/// Residue-lifetime table 2: scrape-coverage decay under live tenant churn.
///
/// Each churn depth runs as its own single-cell campaign with the *same*
/// campaign seed, so every row plays the identical tenant-model rotation and
/// the only thing varying down the table is how much churn the scrape
/// overlaps — the controlled decay sweep.
fn livetraffic(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    println!("=== LIVE TRAFFIC: residue decay vs. churn depth (victim: resnet50_pt) ===");
    let mut table = TextTable::new(vec![
        "schedule",
        "churn events",
        "victim frames",
        "lost before scrape",
        "residue survival",
        "dump coverage",
        "model identified",
        "pixel recovery",
    ]);
    for churn_rate in [0usize, 1, 2, 4] {
        let report = options
            .capped(
                CampaignSpec::new(options.board_name(), options.board())
                    .with_inputs(vec![InputKind::Corrupted])
                    .with_schedules(vec![VictimSchedule::LiveTraffic {
                        tenants: 2,
                        churn_rate,
                    }])
                    // A rotation whose tenant sizes step up gradually, so the
                    // decay curve is visible rather than saturating on the
                    // first churn event.
                    .with_seed(41),
            )
            .run()?;
        let record = &report.cells()[0];
        let metrics = record.metrics.as_ref().expect("permissive cells complete");
        let lifetime = metrics.residue_lifetime;
        table.add_row(vec![
            record.cell.schedule.to_string(),
            lifetime.churn_events.to_string(),
            lifetime.victim_frames.to_string(),
            lifetime.frames_lost_before_scrape.to_string(),
            percent(lifetime.survival_rate()),
            percent(metrics.dump_coverage),
            metrics.model_identified.to_string(),
            percent(metrics.pixel_recovery),
        ]);
    }
    println!("{table}");
    Ok(())
}

/// The `--banks` artifact: per-bank sharding of the DRAM store.
///
/// Two tables come out.  The substrate table times the *same* scrub and
/// scrape over the same region twice — sequentially (the flat-equivalent
/// path) and fanned across `BANK_WORKERS` bank-shard workers — and reports
/// the speedup, after asserting the results are byte-identical.  The sweep
/// table runs the bank-striped attacker against the paper's single-sweep
/// attacker on the experiment board, showing identical recovery.
fn banks(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    use std::time::{Duration, Instant};
    use zynq_dram::{Dram, DramConfig, OwnerTag};

    /// Worker fan-out of every parallel measurement (fixed so the table is
    /// machine-independent everywhere except the wall-clock columns).
    const BANK_WORKERS: usize = 4;

    fn time_best_of<F: FnMut()>(runs: usize, mut f: F) -> Duration {
        let mut best = Duration::MAX;
        for _ in 0..runs {
            let started = Instant::now();
            f();
            best = best.min(started.elapsed());
        }
        best
    }

    println!("=== BANKS: flat vs. bank-sharded scrub/scrape (x{BANK_WORKERS} workers) ===");
    let boards: Vec<(&str, DramConfig, u64)> = if options.tiny {
        vec![("tiny", DramConfig::tiny_for_tests(), 8 * 1024 * 1024)]
    } else {
        vec![
            ("ZCU104", DramConfig::zcu104(), 256 * 1024 * 1024),
            ("ZCU102", DramConfig::zcu102(), 512 * 1024 * 1024),
        ]
    };

    let owner = OwnerTag::new(1391);

    let mut table = TextTable::new(vec![
        "board",
        "banks",
        "stripe",
        "region",
        "op",
        "flat (serial)",
        "sharded (parallel)",
        "speedup",
        "identical",
    ]);
    for (name, config, region) in boards {
        let base = config.base();
        let fill_target = |dram: &mut Dram| {
            dram.fill(base, region, 0xC3, owner).unwrap();
            dram.retire_owner(owner);
        };

        // Scrape: serial read vs bank-parallel scrape of the filled region.
        let mut dram = Dram::new(config);
        fill_target(&mut dram);
        let mut serial_buf = vec![0u8; region as usize];
        let scrape_serial = time_best_of(3, || dram.read_bytes(base, &mut serial_buf).unwrap());
        let mut parallel_buf = vec![0u8; region as usize];
        let scrape_parallel = time_best_of(3, || {
            dram.scrape_banks_parallel(base, &mut parallel_buf, BANK_WORKERS)
                .unwrap()
        });
        let scrape_identical = serial_buf == parallel_buf;
        drop(serial_buf);
        drop(parallel_buf);

        // Scrub: the same full-region sanitizer run, serial vs bank-parallel.
        // Each run re-fills (untimed) so every iteration scrubs dirty
        // stripes; only the scrub itself is on the clock.
        let mut serial_dram = Dram::new(config);
        let mut scrub_serial = Duration::MAX;
        for _ in 0..2 {
            fill_target(&mut serial_dram);
            let started = Instant::now();
            serial_dram.scrub_range(base, region).unwrap();
            scrub_serial = scrub_serial.min(started.elapsed());
        }
        let mut parallel_dram = Dram::new(config);
        let mut scrub_parallel = Duration::MAX;
        for _ in 0..2 {
            fill_target(&mut parallel_dram);
            let started = Instant::now();
            parallel_dram
                .scrub_banks_parallel(base, region, BANK_WORKERS)
                .unwrap();
            scrub_parallel = scrub_parallel.min(started.elapsed());
        }
        let scrub_identical = serial_dram.residue_bytes() == parallel_dram.residue_bytes()
            && serial_dram.stats().deterministic_view()
                == parallel_dram.stats().deterministic_view();

        let banks = dram.bank_count().to_string();
        let stripe = bytes(dram.stripe_bytes());
        for (op, serial, parallel, identical) in [
            ("scrape", scrape_serial, scrape_parallel, scrape_identical),
            ("scrub", scrub_serial, scrub_parallel, scrub_identical),
        ] {
            table.add_row(vec![
                name.into(),
                banks.clone(),
                stripe.clone(),
                bytes(region),
                op.into(),
                format!("{serial:?}"),
                format!("{parallel:?}"),
                format!("{:.1}x", serial.as_secs_f64() / parallel.as_secs_f64()),
                identical.to_string(),
            ]);
        }
        let touched = dram.bank_stripe_counts().iter().filter(|&&c| c > 0).count();
        println!(
            "{name}: {} stripes materialized across {touched}/{} banks",
            dram.materialized_stripes(),
            dram.bank_count()
        );
    }
    println!("{table}");

    println!("--- bank-striped attacker vs. the paper's single sweep ---");
    let mut sweep = TextTable::new(vec![
        "scrape mode",
        "model identified",
        "pixel recovery",
        "bytes scraped",
        "dump coverage",
    ]);
    for row in msa_core::defense::evaluate_bank_striping(
        options.board(),
        ModelKind::Resnet50Pt,
        BANK_WORKERS,
    )? {
        sweep.add_row(vec![
            row.scrape_mode.to_string(),
            row.model_identified.to_string(),
            percent(row.pixel_recovery),
            bytes(row.bytes_scraped as u64),
            percent(row.dump_coverage),
        ]);
    }
    println!("{sweep}");
    Ok(())
}

/// The `--remanence` artifact: recovery vs. Pentimento-style analog residue
/// decay.
///
/// Each row pair runs the same remanence model through the paper's
/// single-sweep attacker and the bank-striped parallel attacker at the same
/// cell seed; the decay view is a pure per-cell function living inside the
/// bank shards, so the pairs must agree on every science column — the
/// verdict line below the table asserts exactly that.  Decay advances on
/// logical ticks (scenario steps, churned scrape chunks), never wall clock,
/// so this whole table is deterministic and `--jobs`-independent.
fn remanence(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    /// Fan-out of the bank-striped attacker rows (matches `--banks`).
    const BANK_WORKERS: usize = 4;

    println!("=== REMANENCE: recovery vs. analog residue decay (victim: resnet50_pt) ===");
    let rows = evaluate_remanence(options.board(), ModelKind::Resnet50Pt, BANK_WORKERS)?;
    let mut table = TextTable::new(vec![
        "remanence",
        "scrape mode",
        "model identified",
        "pixel recovery",
        "decayed recovery",
        "bits flipped",
        "raw residue",
    ]);
    for row in &rows {
        table.add_row(vec![
            row.remanence.to_string(),
            row.scrape_mode.to_string(),
            row.model_identified.to_string(),
            percent(row.pixel_recovery),
            percent(row.decayed_recovery),
            row.residue_bits_flipped.to_string(),
            bytes(row.residue_bytes_raw),
        ]);
    }
    println!("{table}");
    let identical = rows.chunks(2).all(|pair| {
        pair[0].model_identified == pair[1].model_identified
            && pair[0].pixel_recovery == pair[1].pixel_recovery
            && pair[0].decayed_recovery == pair[1].decayed_recovery
            && pair[0].residue_bits_flipped == pair[1].residue_bits_flipped
            && pair[0].residue_bytes_raw == pair[1].residue_bytes_raw
    });
    println!("bank-striped decayed scrape identical to sequential: {identical}\n");
    Ok(())
}

/// The `--reconstruct` artifact: the decay-tolerant reconstructor
/// (multi-snapshot fusion, fuzzy signature identification, neighbor repair)
/// against the exact-matching single-read attacker, one row per remanence
/// point at **matched cell seeds** — each pair of columns reads the same
/// decayed residue, so the gain column is pure algorithm, no luck.
///
/// The verdict line asserts the reconstruction claim: strictly better pixel
/// recovery at every decayed point.  The machine-readable twin goes to
/// `BENCH_reconstruct.json` (schema `msa-bench-reconstruct-v1`); the note
/// goes to stderr because the golden tests pin stdout byte-for-byte.
fn reconstruct(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    /// Snapshots fused per scrape window: the attacker re-reads the window
    /// on consecutive decay ticks and ORs the reads (decay only clears
    /// bits, so fusion is sound and monotone).
    const SNAPSHOTS: usize = 3;

    println!(
        "=== RECONSTRUCT: decay-tolerant reconstruction vs exact matching (victim: resnet50_pt) ==="
    );
    let rows = evaluate_reconstruction(options.board(), ModelKind::Resnet50Pt, SNAPSHOTS)?;
    let mut table = TextTable::new(vec![
        "remanence",
        "id (exact)",
        "recovery (exact)",
        "id (reconstructed)",
        "recovery (reconstructed)",
        "gain",
        "decayed recovery",
    ]);
    for row in &rows {
        let gain = row.recovery_gain();
        table.add_row(vec![
            row.remanence.to_string(),
            row.baseline_identified.to_string(),
            percent(row.baseline_recovery),
            row.reconstructed_identified.to_string(),
            percent(row.reconstructed_recovery),
            if gain.is_finite() {
                format!("{gain:.2}x")
            } else {
                "inf".into()
            },
            percent(row.decayed_recovery),
        ]);
    }
    println!("{table}");
    let strictly_better = rows
        .iter()
        .filter(|r| r.remanence != RemanenceModel::Perfect)
        .all(|r| r.reconstructed_recovery > r.baseline_recovery);
    println!(
        "reconstruction strictly beats exact matching at every decayed point: {strictly_better}\n"
    );

    let json_rows: Vec<String> = rows
        .iter()
        .map(|row| {
            JsonObject::new()
                .str("remanence", &row.remanence.to_string())
                .bool("baseline_identified", row.baseline_identified)
                .f64("baseline_recovery", row.baseline_recovery)
                .bool("reconstructed_identified", row.reconstructed_identified)
                .f64("reconstructed_recovery", row.reconstructed_recovery)
                .f64("recovery_gain", row.recovery_gain())
                .f64("decayed_recovery", row.decayed_recovery)
                .finish()
        })
        .collect();
    let json = JsonObject::new()
        .str("schema", "msa-bench-reconstruct-v1")
        .str("board", options.board_name())
        .str("model", "resnet50_pt")
        .u64("snapshots", SNAPSHOTS as u64)
        .bool("strictly_better_when_decayed", strictly_better)
        .raw("rows", &json_array(&json_rows))
        .finish();
    std::fs::write("BENCH_reconstruct.json", format!("{json}\n"))?;
    eprintln!("wrote BENCH_reconstruct.json");
    Ok(())
}

/// The `--swap` artifact: the two residue substrates that live *beyond* the
/// DRAM frames every TAB-B sanitizer targets.
///
/// Table one puts the board under memory pressure so the kernel compresses
/// the victim's cold heap pages into swap before termination; frame-oriented
/// scrubbers leave the slots intact and the attacker decompresses them back
/// over the scrubbed dump.  Table two forks CoW children off the victim, so
/// its heap frames never return to the free list and zero-on-free has
/// nothing to zero.  The machine-readable twin goes to `BENCH_swap.json`
/// (schema `msa-bench-swap-v1`); the note goes to stderr because the golden
/// tests pin stdout byte-for-byte.
fn swap(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    /// Fraction of the victim heap swapped out before termination.
    const SWAP_PRESSURE: u8 = 100;
    /// CoW children the fork-heavy victim leaves behind.
    const COW_CHILDREN: usize = 2;

    println!(
        "=== SWAP: compressed-swap residue vs sanitize policy (victim: squeezenet, board: {}) ===",
        options.board_name()
    );
    let swap_rows = evaluate_swap(options.board(), ModelKind::SqueezeNet, SWAP_PRESSURE)?;
    let mut table = TextTable::new(vec![
        "policy",
        "scrubs swap",
        "swap resident",
        "residue frames",
        "identified",
        "recovery",
    ]);
    for row in &swap_rows {
        table.add_row(vec![
            row.policy.to_string(),
            row.scrubs_swap.to_string(),
            bytes(row.swap_resident_bytes),
            row.residue_frames.to_string(),
            row.model_identified.to_string(),
            percent(row.pixel_recovery),
        ]);
    }
    println!("{table}");
    let frame_only_leaks = swap_rows
        .iter()
        .filter(|r| !r.scrubs_swap && r.policy != SanitizePolicy::None)
        .any(|r| r.swap_resident_bytes > 0 && r.pixel_recovery > 0.0);
    let swap_aware_holds = swap_rows
        .iter()
        .filter(|r| r.scrubs_swap)
        .all(|r| r.swap_resident_bytes == 0);
    println!("frame-only scrubbing leaves swap residue readable: {frame_only_leaks}");
    println!("swap-aware policies empty the swap store: {swap_aware_holds}\n");

    println!(
        "=== SWAP: CoW-retained residue vs sanitize policy (fork-heavy victim, {COW_CHILDREN} children) ==="
    );
    let cow_rows = evaluate_cow_retention(options.board(), ModelKind::SqueezeNet, COW_CHILDREN)?;
    let mut table = TextTable::new(vec![
        "policy",
        "victim frames",
        "cow inherited",
        "identified",
        "recovery",
    ]);
    for row in &cow_rows {
        table.add_row(vec![
            row.policy.to_string(),
            row.victim_frames.to_string(),
            row.cow_inherited_frames.to_string(),
            row.model_identified.to_string(),
            percent(row.pixel_recovery),
        ]);
    }
    println!("{table}");
    let cow_survives_zero_on_free = cow_rows
        .iter()
        .filter(|r| r.policy == SanitizePolicy::ZeroOnFree)
        .all(|r| r.cow_inherited_frames > 0 && r.pixel_recovery > 0.0);
    println!("CoW shares survive zero-on-free: {cow_survives_zero_on_free}\n");

    let swap_json: Vec<String> = swap_rows
        .iter()
        .map(|row| {
            JsonObject::new()
                .str("policy", &row.policy.to_string())
                .bool("scrubs_swap", row.scrubs_swap)
                .u64("swap_resident_bytes", row.swap_resident_bytes)
                .u64("residue_frames", row.residue_frames as u64)
                .bool("model_identified", row.model_identified)
                .f64("pixel_recovery", row.pixel_recovery)
                .finish()
        })
        .collect();
    let cow_json: Vec<String> = cow_rows
        .iter()
        .map(|row| {
            JsonObject::new()
                .str("policy", &row.policy.to_string())
                .u64("victim_frames", row.victim_frames as u64)
                .u64("cow_inherited_frames", row.cow_inherited_frames as u64)
                .bool("model_identified", row.model_identified)
                .f64("pixel_recovery", row.pixel_recovery)
                .finish()
        })
        .collect();
    let json = JsonObject::new()
        .str("schema", "msa-bench-swap-v1")
        .str("board", options.board_name())
        .str("model", "squeezenet")
        .u64("swap_pressure", SWAP_PRESSURE as u64)
        .u64("cow_children", COW_CHILDREN as u64)
        .bool("frame_only_leaks_swap", frame_only_leaks)
        .bool("swap_aware_empties_swap", swap_aware_holds)
        .bool("cow_survives_zero_on_free", cow_survives_zero_on_free)
        .raw("swap_rows", &json_array(&swap_json))
        .raw("cow_rows", &json_array(&cow_json))
        .finish();
    std::fs::write("BENCH_swap.json", format!("{json}\n"))?;
    eprintln!("wrote BENCH_swap.json");
    Ok(())
}

/// The fleet-scale demonstration: a 192-cell matrix over models × inputs ×
/// sanitization × isolation × scrape modes, run on the shared worker pool
/// and summarized per axis.  Always uses the tiny board so the matrix stays
/// fast even under `--all`.
///
/// With `--stream` the same matrix runs on the streaming engine: one NDJSON
/// progress line per folded cell group on stdout, then the machine-readable
/// `BENCH_campaign.json` in the working directory.  With `--stress` a
/// 1,000,000-cell matrix is streamed through the synthetic executor instead,
/// demonstrating that peak residency stays bounded by the pool, not the
/// matrix.
fn campaign(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    if options.stress {
        return campaign_stress(options);
    }
    let spec = options.capped(
        CampaignSpec::new("tiny", BoardConfig::tiny_for_tests())
            .with_models(ModelKind::all().to_vec())
            .with_inputs(vec![InputKind::SamplePhoto, InputKind::Corrupted])
            .with_sanitize_policies(vec![
                SanitizePolicy::None,
                SanitizePolicy::SelectiveScrub,
                SanitizePolicy::Background { delay_ticks: 1000 },
            ])
            .with_isolation_policies(vec![IsolationPolicy::Permissive, IsolationPolicy::Confined])
            .with_scrape_modes(vec![ScrapeMode::ContiguousRange, ScrapeMode::PerPage])
            .with_seed(2024),
    );
    if options.stream {
        println!("=== CAMPAIGN (streaming): fleet-scale scenario matrix (tiny board) ===");
        let summary = spec.stream_with_progress(StreamConfig::default(), |progress| {
            println!("{}", progress.to_ndjson());
        })?;
        return report_stream_summary("tiny-sweep", &summary);
    }
    println!("=== CAMPAIGN: fleet-scale scenario matrix (tiny board) ===");
    let report = spec.run()?;
    let clock = report.wall_clock();
    println!(
        "{} cells on {} workers: {} completed, {} blocked, {} identified",
        report.len(),
        report.workers(),
        report.completed_count(),
        report.blocked_count(),
        report.identified_count(),
    );
    println!(
        "wall-clock: total {:?}, serial-equivalent {:?}, cell min/mean/max {:?}/{:?}/{:?}\n",
        clock.total, clock.cells_total, clock.min_cell, clock.mean_cell, clock.max_cell
    );

    for (title, groups) in [
        (
            "per sanitize policy",
            report.group_by(|r| r.cell.sanitize.to_string()),
        ),
        (
            "per isolation policy",
            report.group_by(|r| r.cell.isolation.to_string()),
        ),
        (
            "per scrape mode",
            report.group_by(|r| r.cell.scrape_mode.to_string()),
        ),
    ] {
        println!("--- {title} ---");
        let mut table = TextTable::new(vec![
            "group",
            "cells",
            "completed",
            "blocked",
            "identified",
            "mean pixel recovery",
        ]);
        for (key, stats) in groups {
            table.add_row(vec![
                key,
                stats.cells.to_string(),
                stats.completed.to_string(),
                stats.blocked.to_string(),
                stats.identified.to_string(),
                percent(stats.mean_pixel_recovery),
            ]);
        }
        println!("{table}");
    }
    Ok(())
}

/// The bounded-residency demonstration behind `--campaign --stress`: a
/// 1,000,000-cell matrix (125 fleet boards × 8 models × 2 inputs × 5
/// sanitize policies × 2 isolation policies × 2 scrape modes × 5 remanence
/// models × 5 victim schedules) streamed through the synthetic executor so
/// the run is bounded by fold throughput rather than scenario execution.
/// Only every 64th group is echoed as NDJSON to keep the log readable; the
/// full aggregate lands in `BENCH_campaign.json`.
fn campaign_stress(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    println!("=== CAMPAIGN (stress): 1,000,000-cell synthetic stream ===");
    let boards = (0..125)
        .map(|i| (format!("fleet-{i:03}"), BoardConfig::tiny_for_tests()))
        .collect();
    let spec = options.capped(
        CampaignSpec::over_boards(boards)
            .with_models(ModelKind::all().to_vec())
            .with_inputs(vec![InputKind::SamplePhoto, InputKind::Corrupted])
            .with_sanitize_policies(vec![
                SanitizePolicy::None,
                SanitizePolicy::ZeroOnFree,
                SanitizePolicy::RowClone,
                SanitizePolicy::SelectiveScrub,
                SanitizePolicy::Background { delay_ticks: 1000 },
            ])
            .with_isolation_policies(vec![IsolationPolicy::Permissive, IsolationPolicy::Confined])
            .with_scrape_modes(vec![ScrapeMode::ContiguousRange, ScrapeMode::PerPage])
            .with_remanence_models(vec![
                RemanenceModel::Perfect,
                RemanenceModel::Exponential {
                    half_life_ticks: 100,
                },
                RemanenceModel::Exponential {
                    half_life_ticks: 10_000,
                },
                RemanenceModel::BitFlip { rate_ppm: 50 },
                RemanenceModel::BitFlip { rate_ppm: 5_000 },
            ])
            .with_schedules(vec![
                VictimSchedule::Single,
                VictimSchedule::SequentialTraffic { predecessors: 2 },
                VictimSchedule::Revival {
                    successors: 1,
                    reuse_pid: true,
                },
                VictimSchedule::Revival {
                    successors: 2,
                    reuse_pid: false,
                },
                VictimSchedule::LiveTraffic {
                    tenants: 2,
                    churn_rate: 1,
                },
            ])
            .with_seed(2024),
    );
    let summary = spec.stream_with_executor(
        StreamConfig::default(),
        |cell| Ok(cell.synthetic_record()),
        |_| Ok(()),
        |progress| {
            if progress.block % 64 == 0 {
                println!("{}", progress.to_ndjson());
            }
        },
    )?;
    report_stream_summary("stress-1m-synthetic", &summary)
}

/// Prints the streaming headline and writes `BENCH_campaign.json` next to
/// the invocation, so CI can diff the machine-readable shape.
fn report_stream_summary(
    name: &str,
    summary: &CampaignSummary,
) -> Result<(), Box<dyn std::error::Error>> {
    let totals = &summary.totals;
    println!(
        "{} cells on {} workers in {} blocks (block size {}): {} completed, {} blocked, {} identified",
        summary.cells_total,
        summary.workers,
        summary.groups.len(),
        summary.block_size,
        totals.completed,
        totals.blocked,
        totals.identified,
    );
    println!(
        "mean pixel recovery {}, peak resident cells {}, throughput {:.0} cells/sec",
        percent(totals.mean_pixel_recovery),
        summary.peak_resident_cells,
        summary.cells_per_sec(),
    );
    std::fs::write(
        "BENCH_campaign.json",
        format!("{}\n", summary.bench_json(name)),
    )?;
    println!("wrote BENCH_campaign.json\n");
    Ok(())
}
