//! The pre-arena DRAM storage scheme, preserved as a benchmark baseline.
//!
//! Until the arena refactor, every bank shard stored its stripes in a
//! `HashMap<u64, Box<[u8]>>` — one row-sized boxed slice per touched
//! stripe, found by hashing the stripe index on every access.  The store
//! here reproduces exactly that data layout (without the remanence /
//! sanitizer machinery, which is identical on both sides), so the
//! `substrates` benchmarks and `BENCH_substrates.json` can keep measuring
//! the arena's speedup against the design it replaced long after the
//! production code has moved on.
//!
//! Functional behaviour matches [`zynq_dram::Dram`] byte-for-byte on the
//! read/write/fill/scrub subset — pinned by the unit test below — so any
//! throughput difference in the benchmarks is attributable to the storage
//! scheme alone.

// Lint audit: casts here narrow counters and ratios for table/JSON
// display, and indexes walk rows produced by the same loop — no value
// feeds back into address arithmetic.
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use std::collections::HashMap;

use zynq_dram::config::DdrGeometry;
use zynq_dram::{DramConfig, PhysAddr};

/// A DRAM window stored as per-bank `HashMap`s of row-sized stripe boxes —
/// the storage scheme the arena slabs replaced.
pub struct HashMapStripeStore {
    config: DramConfig,
    geometry: DdrGeometry,
    /// One map per flat bank id, keyed by the per-bank stripe ordinal.
    banks: Vec<HashMap<u64, Box<[u8]>>>,
}

impl HashMapStripeStore {
    /// An empty (all-zero) window with the layout of `config`.
    pub fn new(config: DramConfig) -> Self {
        let geometry = config.geometry();
        let banks = (0..geometry.bank_count()).map(|_| HashMap::new()).collect();
        HashMapStripeStore {
            config,
            geometry,
            banks,
        }
    }

    /// Bytes per stripe (one DRAM row).
    pub fn stripe_bytes(&self) -> u64 {
        self.geometry.row_bytes()
    }

    /// Number of stripes currently backed by an allocation.
    pub fn materialized_stripes(&self) -> usize {
        self.banks.iter().map(HashMap::len).sum()
    }

    fn assert_range(&self, addr: PhysAddr, len: u64) {
        assert!(
            self.config.contains_range(addr, len),
            "range {addr}+{len:#x} outside the DRAM window"
        );
    }

    /// Walks `[addr, addr+len)` stripe by stripe, handing each visitor the
    /// bank map, the stripe ordinal and the in-stripe byte range.
    fn for_each_stripe(
        &mut self,
        addr: PhysAddr,
        len: u64,
        mut visit: impl FnMut(&mut HashMap<u64, Box<[u8]>>, u64, usize, usize, usize),
    ) {
        let sb = self.stripe_bytes();
        let mut rel = addr.offset_from(self.config.base());
        let mut remaining = len;
        let mut consumed = 0usize;
        while remaining > 0 {
            let stripe = rel / sb;
            let start = (rel % sb) as usize;
            let take = (sb - start as u64).min(remaining) as usize;
            let bank = self.geometry.bank_of_stripe(stripe) as usize;
            let ordinal = self.geometry.ordinal_of_stripe(stripe);
            visit(&mut self.banks[bank], ordinal, start, take, consumed);
            rel += take as u64;
            remaining -= take as u64;
            consumed += take;
        }
    }

    /// Copies `data` into the window at `addr`, materializing stripes on
    /// first touch exactly as the old store did.
    pub fn write_bytes(&mut self, addr: PhysAddr, data: &[u8]) {
        self.assert_range(addr, data.len() as u64);
        let sb = self.stripe_bytes() as usize;
        self.for_each_stripe(addr, data.len() as u64, |bank, ordinal, start, take, at| {
            let stripe = bank
                .entry(ordinal)
                .or_insert_with(|| vec![0u8; sb].into_boxed_slice());
            stripe[start..start + take].copy_from_slice(&data[at..at + take]);
        });
    }

    /// Fills `[addr, addr+len)` with `value`.
    pub fn fill(&mut self, addr: PhysAddr, len: u64, value: u8) {
        self.assert_range(addr, len);
        let sb = self.stripe_bytes() as usize;
        self.for_each_stripe(addr, len, |bank, ordinal, start, take, _| {
            let stripe = bank
                .entry(ordinal)
                .or_insert_with(|| vec![0u8; sb].into_boxed_slice());
            stripe[start..start + take].fill(value);
        });
    }

    /// Zeroes every already-materialized stripe overlapping the range —
    /// the old scrub loop: one hash lookup per stripe, skip the absent.
    pub fn scrub_range(&mut self, addr: PhysAddr, len: u64) {
        self.assert_range(addr, len);
        self.for_each_stripe(addr, len, |bank, ordinal, start, take, _| {
            if let Some(stripe) = bank.get_mut(&ordinal) {
                stripe[start..start + take].fill(0);
            }
        });
    }

    /// Reads `buf.len()` bytes at `addr`; absent stripes read as zero.
    pub fn read_bytes(&self, addr: PhysAddr, buf: &mut [u8]) {
        self.assert_range(addr, buf.len() as u64);
        let sb = self.stripe_bytes();
        let mut rel = addr.offset_from(self.config.base());
        let mut at = 0usize;
        while at < buf.len() {
            let stripe = rel / sb;
            let start = (rel % sb) as usize;
            let take = (sb as usize - start).min(buf.len() - at);
            let bank = self.geometry.bank_of_stripe(stripe) as usize;
            let ordinal = self.geometry.ordinal_of_stripe(stripe);
            match self.banks[bank].get(&ordinal) {
                Some(data) => buf[at..at + take].copy_from_slice(&data[start..start + take]),
                None => buf[at..at + take].fill(0),
            }
            rel += take as u64;
            at += take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zynq_dram::{Dram, OwnerTag};

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn baseline_store_matches_the_arena_dram_byte_for_byte() {
        let config = DramConfig::tiny_for_tests();
        let mut baseline = HashMapStripeStore::new(config);
        let mut arena = Dram::new(config);
        let owner = OwnerTag::new(7);
        let base = config.base();
        let capacity = config.capacity();

        let mut rng = 0xB45E_11AEu64;
        for round in 0..200u64 {
            let offset = splitmix64(&mut rng) % (capacity - 1);
            let len = 1 + splitmix64(&mut rng) % (capacity - offset).min(64 * 1024);
            match round % 4 {
                0 | 1 => {
                    let data: Vec<u8> = (0..len).map(|_| splitmix64(&mut rng) as u8).collect();
                    baseline.write_bytes(base + offset, &data);
                    arena.write_bytes(base + offset, &data, owner).unwrap();
                }
                2 => {
                    let value = splitmix64(&mut rng) as u8;
                    baseline.fill(base + offset, len, value);
                    arena.fill(base + offset, len, value, owner).unwrap();
                }
                _ => {
                    baseline.scrub_range(base + offset, len);
                    arena.scrub_range(base + offset, len).unwrap();
                }
            }
            let probe_len = (1 + splitmix64(&mut rng) % 4096).min(capacity - offset) as usize;
            let mut a = vec![0u8; probe_len];
            let mut b = vec![0u8; probe_len];
            baseline.read_bytes(base + offset, &mut a);
            arena.read_bytes(base + offset, &mut b).unwrap();
            assert_eq!(a, b, "round {round} at +{offset:#x}");
        }
    }
}
