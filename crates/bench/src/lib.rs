//! # msa-bench — experiment harness and benchmark support
//!
//! This crate hosts two things:
//!
//! - the `experiments` binary, which regenerates every figure and table of
//!   the paper's evaluation (and the extension tables described in
//!   `DESIGN.md`) as plain text, and
//! - the Criterion benchmarks (`benches/*.rs`), one group per
//!   figure/table, measuring the cost of each attack step and of each
//!   defense.
//!
//! The helpers here are shared between the two.

pub mod baseline;

use msa_core::attack::{AttackConfig, AttackPipeline};
use msa_core::profile::{ProfileDatabase, Profiler};
use petalinux_sim::{BoardConfig, Kernel, UserId};
use vitis_ai_sim::{DpuRunner, Image, LaunchedRun, ModelKind};
use xsdb::DebugSession;

/// The victim user id used throughout the experiments.
pub const VICTIM_USER: UserId = UserId::new(0);

/// The attacker user id used throughout the experiments.
pub const ATTACKER_USER: UserId = UserId::new(1);

/// The board configuration benchmarks run on (the small test window, so each
/// iteration stays cheap); the `experiments` binary uses the full ZCU104
/// preset instead.
pub fn bench_board() -> BoardConfig {
    BoardConfig::tiny_for_tests()
}

/// Builds a profile database for the whole zoo on `board`.
pub fn profile_zoo(board: BoardConfig) -> ProfileDatabase {
    Profiler::new(board).profile_all()
}

/// Builds an attack pipeline with zoo profiles attached.
pub fn profiled_pipeline(board: BoardConfig) -> AttackPipeline {
    AttackPipeline::new(AttackConfig::default()).with_profiles(profile_zoo(board))
}

/// A board with one victim model launched (still running) and the corrupted
/// input loaded — the state in which the attacker starts observing.
pub struct VictimSetup {
    /// The booted kernel.
    pub kernel: Kernel,
    /// The still-running victim.
    pub victim: LaunchedRun,
}

/// Boots a board and launches `model` with the corrupted input.
///
/// # Panics
///
/// Panics if the launch fails (it cannot on the preset boards).
pub fn launch_victim(board: BoardConfig, model: ModelKind) -> VictimSetup {
    let mut kernel = Kernel::boot(board);
    let (w, h) = model.input_dims();
    let victim = DpuRunner::new(model)
        .with_input(Image::corrupted(w, h))
        .launch(&mut kernel, VICTIM_USER)
        .expect("victim launches on a preset board");
    VictimSetup { kernel, victim }
}

/// Connects the attacker's debugger session.
pub fn attacker_debugger() -> DebugSession {
    DebugSession::connect(ATTACKER_USER)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_consistent_state() {
        let board = bench_board();
        let setup = launch_victim(board, ModelKind::SqueezeNet);
        assert!(setup
            .kernel
            .process(setup.victim.pid())
            .unwrap()
            .is_running());
        let pipeline = profiled_pipeline(board);
        assert_eq!(pipeline.profiles().len(), ModelKind::all().len());
        assert_eq!(attacker_debugger().user(), ATTACKER_USER);
    }
}
