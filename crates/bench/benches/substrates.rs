//! Substrate micro-benchmarks: DRAM access, DDR mapping, page-table walks,
//! pagemap encoding, xmodel serialization and heap-image construction.
//!
//! These calibrate the cost of the building blocks every figure reproduction
//! rests on.

// Lint audit: casts here narrow counters and ratios for table/JSON
// display, and indexes walk rows produced by the same loop — no value
// feeds back into address arithmetic.
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use msa_bench::baseline::HashMapStripeStore;
use msa_core::analysis::marker::{marker_runs_view, CORRUPTED_MARKER};
use vitis_ai_sim::runner::heap_image;
use vitis_ai_sim::{Image, ModelKind, XModel};
use zynq_dram::{
    DdrMapping, Dram, DramConfig, FrameNumber, OwnerTag, RemanenceModel, ScrapeView, PAGE_SIZE,
};
use zynq_mmu::{
    pagemap, AddressSpace, AddressSpaceLayout, FrameAllocator, PagePermissions, PageTable,
    PagemapEntry, VirtAddr,
};

fn bench_dram(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram");
    let cfg = DramConfig::tiny_for_tests();
    let mut dram = Dram::new(cfg);
    let base = cfg.base();
    let owner = OwnerTag::new(1391);
    let page = vec![0xA5u8; PAGE_SIZE as usize];

    group.throughput(Throughput::Bytes(PAGE_SIZE));
    group.bench_function("write_page", |b| {
        b.iter(|| {
            dram.write_bytes(black_box(base), black_box(&page), owner)
                .unwrap()
        })
    });
    group.bench_function("read_page", |b| {
        let mut buf = vec![0u8; PAGE_SIZE as usize];
        b.iter(|| dram.read_bytes(black_box(base), &mut buf).unwrap())
    });
    group.throughput(Throughput::Elements(1));
    group.bench_function("read_u32_devmem_style", |b| {
        b.iter(|| black_box(dram.read_u32(base).unwrap()))
    });

    // Multi-megabyte transfers: the shape of a whole-heap scrape.  The
    // `_arena` entries run the slab store (offset arithmetic + bulk copy per
    // stripe); the `_hashmap_baseline` twins run the storage scheme it
    // replaced (one hash lookup per stripe) so the arena's speedup stays
    // measurable — `BENCH_substrates.json` records the same comparison.
    const SCRAPE_LEN: u64 = 8 * 1024 * 1024;
    let blob = vec![0xC3u8; SCRAPE_LEN as usize];
    group.sample_size(20);
    group.throughput(Throughput::Bytes(SCRAPE_LEN));
    group.bench_function("write_8mib", |b| {
        b.iter(|| {
            dram.write_bytes(black_box(base), black_box(&blob), owner)
                .unwrap()
        })
    });
    group.bench_function("scrape_read_8mib_arena", |b| {
        let mut buf = vec![0u8; SCRAPE_LEN as usize];
        b.iter(|| dram.read_bytes(black_box(base), &mut buf).unwrap())
    });
    group.bench_function("fill_8mib", |b| {
        b.iter(|| dram.fill(black_box(base), SCRAPE_LEN, 0xFF, owner).unwrap())
    });
    group.bench_function("scrub_8mib_arena", |b| {
        b.iter(|| {
            // Refill so every iteration scrubs materialized, dirty frames.
            dram.fill(base, SCRAPE_LEN, 0xFF, owner).unwrap();
            dram.scrub_range(black_box(base), SCRAPE_LEN).unwrap()
        })
    });

    // The pre-arena HashMap-stripe store on the same transfers.
    {
        let mut hashmap = HashMapStripeStore::new(cfg);
        hashmap.fill(base, SCRAPE_LEN, 0xC3);
        group.bench_function("scrape_read_8mib_hashmap_baseline", |b| {
            let mut buf = vec![0u8; SCRAPE_LEN as usize];
            b.iter(|| hashmap.read_bytes(black_box(base), &mut buf))
        });
        group.bench_function("scrub_8mib_hashmap_baseline", |b| {
            b.iter(|| {
                hashmap.fill(base, SCRAPE_LEN, 0xFF);
                hashmap.scrub_range(black_box(base), SCRAPE_LEN)
            })
        });
    }

    // The bank-parallel twins of the 8 MiB scrape and scrub: same bytes,
    // fanned across 4 bank-shard workers.  Compare against the sequential
    // entries above to see what the sharding buys on this machine.
    group.bench_function("scrape_read_8mib_arena_banked_x4", |b| {
        let mut buf = vec![0u8; SCRAPE_LEN as usize];
        b.iter(|| {
            dram.scrape_banks_parallel(black_box(base), &mut buf, 4)
                .unwrap()
        })
    });
    group.bench_function("scrub_8mib_arena_banked_x4", |b| {
        b.iter(|| {
            dram.fill(base, SCRAPE_LEN, 0xFF, owner).unwrap();
            dram.scrub_banks_parallel(black_box(base), SCRAPE_LEN, 4)
                .unwrap()
        })
    });

    // The zero-copy read path: borrowing a `ScrapeView` over the slabs costs
    // O(chunks) pointer pushes instead of O(bytes) copying, and an analysis
    // pass consumes it in place.  The `_owned` twin pays the assemble-copy
    // the view path skips — this is the pipeline-level win `--timing`
    // records in `BENCH_substrates.json`.
    group.bench_function("scrape_view_build_8mib", |b| {
        b.iter(|| {
            black_box(
                dram.scrape_view(black_box(base), SCRAPE_LEN)
                    .unwrap()
                    .expect("perfect remanence hands out views"),
            )
            .len()
        })
    });
    group.bench_function("analysis_marker_pass_8mib_owned", |b| {
        dram.fill(base, SCRAPE_LEN, 0xFF, owner).unwrap();
        let mut buf = vec![0u8; SCRAPE_LEN as usize];
        b.iter(|| {
            dram.read_bytes(black_box(base), &mut buf).unwrap();
            black_box(marker_runs_view(&ScrapeView::from_slice(&buf), CORRUPTED_MARKER, 64).len())
        })
    });
    group.bench_function("analysis_marker_pass_8mib_zero_copy", |b| {
        b.iter(|| {
            let view = dram
                .scrape_view(black_box(base), SCRAPE_LEN)
                .unwrap()
                .expect("perfect remanence hands out views");
            black_box(marker_runs_view(&view, CORRUPTED_MARKER, 64).len())
        })
    });

    // The decayed twins of the 8 MiB scrape: the same read through an active
    // remanence decay view over terminated residue — the worst case for the
    // lazy per-cell decay math.  Compare against `scrape_read_8mib` to see
    // what a non-perfect model costs, and against each other to see what the
    // bank fan-out buys back.
    {
        let mut decayed = Dram::new(cfg);
        decayed.set_remanence(RemanenceModel::Exponential { half_life_ticks: 8 });
        decayed.set_remanence_seed(0x5EED);
        decayed.fill(base, SCRAPE_LEN, 0xC3, owner).unwrap();
        decayed.retire_owner(owner);
        decayed.advance_remanence(4);
        group.bench_function("scrape_read_8mib_decayed", |b| {
            let mut buf = vec![0u8; SCRAPE_LEN as usize];
            b.iter(|| decayed.read_bytes(black_box(base), &mut buf).unwrap())
        });
        group.bench_function("scrape_read_8mib_decayed_banked_x4", |b| {
            let mut buf = vec![0u8; SCRAPE_LEN as usize];
            b.iter(|| {
                decayed
                    .scrape_banks_parallel(black_box(base), &mut buf, 4)
                    .unwrap()
            })
        });
    }

    group.bench_function("ddr_decompose_compose", |b| {
        let mapping = DdrMapping::new(cfg);
        b.iter(|| {
            let coords = mapping.decompose(base + 0x1_2345).unwrap();
            black_box(mapping.compose(coords))
        })
    });
    group.bench_function("ddr_split_at_bank_boundaries_64kib", |b| {
        let mapping = DdrMapping::new(cfg);
        b.iter(|| {
            black_box(
                mapping
                    .split_at_bank_boundaries(base + 0x1_2345, 64 * 1024)
                    .unwrap()
                    .len(),
            )
        })
    });
    group.finish();
}

fn bench_mmu(c: &mut Criterion) {
    let mut group = c.benchmark_group("mmu");

    group.bench_function("page_table_map_unmap_64_pages", |b| {
        b.iter(|| {
            let mut table = PageTable::new();
            for i in 0..64u64 {
                table
                    .map(
                        VirtAddr::new(0xaaaa_ee77_5000 + i * PAGE_SIZE).page_number(),
                        FrameNumber::new(0x61c6d + i),
                        PagePermissions::read_write(),
                    )
                    .unwrap();
            }
            for i in 0..64u64 {
                table
                    .unmap(VirtAddr::new(0xaaaa_ee77_5000 + i * PAGE_SIZE).page_number())
                    .unwrap();
            }
            black_box(table.mapped_count())
        })
    });

    group.bench_function("translate_hit", |b| {
        let mut table = PageTable::new();
        let va = VirtAddr::new(0xaaaa_ee77_5000);
        table
            .map(
                va.page_number(),
                FrameNumber::new(0x61c6d),
                PagePermissions::read_write(),
            )
            .unwrap();
        b.iter(|| black_box(table.translate(va + 0x730)))
    });

    group.bench_function("heap_grow_64_pages", |b| {
        b.iter(|| {
            let mut frames = FrameAllocator::new(DramConfig::tiny_for_tests());
            let mut space = AddressSpace::new(AddressSpaceLayout::petalinux_default());
            space.grow_heap(64 * PAGE_SIZE, &mut frames).unwrap();
            black_box(space.mapped_pages())
        })
    });

    group.bench_function("pagemap_encode_decode_256_entries", |b| {
        let entries: Vec<PagemapEntry> = (0..256u64)
            .map(|i| PagemapEntry::present(FrameNumber::new(0x61c6d + i)))
            .collect();
        b.iter(|| {
            let bytes = pagemap::encode_entries(&entries);
            black_box(pagemap::decode_entries(&bytes).len())
        })
    });

    group.finish();
}

fn bench_vitis(c: &mut Criterion) {
    let mut group = c.benchmark_group("vitis");
    group.sample_size(20);

    group.bench_function("xmodel_serialize_parse/resnet50_pt", |b| {
        let model = XModel::build(ModelKind::Resnet50Pt);
        b.iter(|| {
            let bytes = model.serialize();
            black_box(XModel::parse(&bytes).unwrap().weights().len())
        })
    });

    group.bench_function("heap_image_build/resnet50_pt", |b| {
        let input = Image::corrupted(224, 224);
        b.iter(|| black_box(heap_image(ModelKind::Resnet50Pt, &input).0.len()))
    });

    group.bench_function("inference_forward_pass/resnet50_pt", |b| {
        let input = Image::sample_photo(224, 224);
        b.iter(|| {
            black_box(vitis_ai_sim::inference::run_inference(
                ModelKind::Resnet50Pt,
                &input,
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_dram, bench_mmu, bench_vitis);
criterion_main!(benches);
