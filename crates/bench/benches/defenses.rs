//! Defense-cost benchmarks (TAB-B / TAB-F): the runtime overhead each
//! sanitization policy adds to process termination.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use msa_bench::{bench_board, VICTIM_USER};
use petalinux_sim::Kernel;
use vitis_ai_sim::{DpuRunner, Image, ModelKind};
use zynq_dram::SanitizePolicy;

fn bench_termination_under_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("termination_sanitization_cost");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);

    let mut policies: Vec<SanitizePolicy> = SanitizePolicy::all_basic().to_vec();
    policies.push(SanitizePolicy::Background { delay_ticks: 100 });

    for policy in policies {
        group.bench_function(policy.to_string(), |b| {
            b.iter(|| {
                let board = bench_board().with_sanitize_policy(policy);
                let mut kernel = Kernel::boot(board);
                let victim = DpuRunner::new(ModelKind::SqueezeNet)
                    .with_input(Image::corrupted(224, 224))
                    .launch(&mut kernel, VICTIM_USER)
                    .expect("victim launches");
                let pid = victim.pid();
                let report = kernel.terminate(pid).expect("victim terminates");
                black_box(report.bytes_scrubbed)
            })
        });
    }
    group.finish();
}

fn bench_modelled_scrub_cost(c: &mut Criterion) {
    // Reports the modelled (cycle) cost rather than wall-clock: useful to
    // regenerate the cost column of TAB-B without Criterion noise.
    let mut group = c.benchmark_group("scrub_report_only");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    group.bench_function("collect_scrub_reports", |b| {
        b.iter(|| {
            let mut costs = Vec::new();
            for policy in SanitizePolicy::all_basic() {
                let board = bench_board().with_sanitize_policy(policy);
                let mut kernel = Kernel::boot(board);
                let victim = DpuRunner::new(ModelKind::SqueezeNet)
                    .launch(&mut kernel, VICTIM_USER)
                    .expect("victim launches");
                let pid = victim.pid();
                let report = kernel.terminate(pid).expect("victim terminates");
                costs.push(report.cost_cycles);
            }
            black_box(costs)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_termination_under_policies,
    bench_modelled_scrub_cost
);
criterion_main!(benches);
