//! Step-4 benchmarks (FIG11/FIG12): model identification from strings,
//! marker scanning, hexdump rendering/grep and image reconstruction.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use msa_bench::{attacker_debugger, bench_board, launch_victim};
use msa_core::analysis::image::reconstruct_image;
use msa_core::analysis::marker::{marker_runs, CORRUPTED_MARKER};
use msa_core::analysis::strings::identify_model;
use msa_core::attack::ScrapeMode;
use msa_core::dump::MemoryDump;
use msa_core::profile::Profiler;
use msa_core::scrape::scrape_heap;
use msa_core::signature::SignatureDb;
use msa_core::translate::capture_heap_translation;
use vitis_ai_sim::ModelKind;

fn scraped_dump(model: ModelKind) -> MemoryDump {
    let mut setup = launch_victim(bench_board(), model);
    let mut debugger = attacker_debugger();
    let translation = capture_heap_translation(&mut debugger, &setup.kernel, setup.victim.pid())
        .expect("translation captured");
    let pid = setup.victim.pid();
    setup.kernel.terminate(pid).expect("victim terminates");
    scrape_heap(
        &mut debugger,
        &setup.kernel,
        &translation,
        ScrapeMode::ContiguousRange,
    )
    .expect("scrape succeeds")
}

fn bench_analysis(c: &mut Criterion) {
    let dump = scraped_dump(ModelKind::Resnet50Pt);
    let db = SignatureDb::standard();
    let profile = Profiler::new(bench_board())
        .profile_model(ModelKind::Resnet50Pt)
        .expect("profiling succeeds");

    let mut group = c.benchmark_group("analysis");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(dump.len() as u64));

    group.bench_function("identify_model_from_strings", |b| {
        b.iter(|| black_box(identify_model(&dump, &db)))
    });

    group.bench_function("marker_run_scan", |b| {
        b.iter(|| black_box(marker_runs(&dump, CORRUPTED_MARKER, 256).len()))
    });

    group.bench_function("hexdump_render", |b| {
        b.iter(|| black_box(dump.to_hexdump().render().len()))
    });

    group.bench_function("hexdump_grep_resnet50", |b| {
        let hexdump = dump.to_hexdump();
        b.iter(|| black_box(hexdump.grep("resnet50").len()))
    });

    group.bench_function("image_reconstruction_at_profiled_offset", |b| {
        b.iter(|| {
            black_box(reconstruct_image(
                &dump,
                ModelKind::Resnet50Pt,
                profile.image_offset,
            ))
        })
    });

    group.bench_function("ascii_string_extraction", |b| {
        b.iter(|| black_box(dump.ascii_strings(6).len()))
    });

    group.finish();
}

fn bench_offline_profiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_profiling");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    let profiler = Profiler::new(bench_board());
    for model in [ModelKind::SqueezeNet, ModelKind::Resnet50Pt] {
        group.bench_function(model.name(), |b| {
            b.iter(|| black_box(profiler.profile_model(model).expect("profiling succeeds")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analysis, bench_offline_profiling);
criterion_main!(benches);
