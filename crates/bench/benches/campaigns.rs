//! Campaign-engine benchmarks: what the worker pool buys.
//!
//! Measures the same scenario matrix executed serially (1 worker) and on a
//! multi-worker pool, the cost of matrix expansion itself — the scheduling
//! overhead a campaign adds on top of its cells — and the streaming engine's
//! raw fold throughput over a synthetic fleet matrix.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use msa_bench::bench_board;
use msa_core::campaign::{CampaignSpec, InputKind, StreamConfig};
use msa_core::ScrapeMode;
use vitis_ai_sim::ModelKind;
use zynq_dram::SanitizePolicy;

/// A 16-cell matrix: 2 models × 2 inputs × 2 sanitize policies × 2 scrape
/// modes on the tiny board.
fn matrix_spec() -> CampaignSpec {
    CampaignSpec::new("bench", bench_board())
        .with_models(vec![ModelKind::SqueezeNet, ModelKind::MobileNetV2])
        .with_inputs(vec![InputKind::SamplePhoto, InputKind::Corrupted])
        .with_sanitize_policies(vec![SanitizePolicy::None, SanitizePolicy::SelectiveScrub])
        .with_scrape_modes(vec![ScrapeMode::ContiguousRange, ScrapeMode::PerPage])
        .with_seed(1391)
}

fn bench_campaigns(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);

    let spec = matrix_spec();
    let cells = spec.cell_count() as u64;
    group.throughput(Throughput::Elements(cells));
    group.bench_function("matrix_16_cells/1_worker", |b| {
        b.iter(|| black_box(spec.run_with_workers(1).unwrap().completed_count()))
    });
    group.bench_function("matrix_16_cells/4_workers", |b| {
        b.iter(|| black_box(spec.run_with_workers(4).unwrap().completed_count()))
    });

    // The bank-striped scrape axis: the same 8-cell matrix with the scrape
    // fanned across 4 bank readers per cell — byte-identical results, the
    // scrape wall clock is what moves.
    let striped = CampaignSpec::new("bench", bench_board())
        .with_models(vec![ModelKind::SqueezeNet, ModelKind::MobileNetV2])
        .with_inputs(vec![InputKind::SamplePhoto, InputKind::Corrupted])
        .with_sanitize_policies(vec![SanitizePolicy::None, SanitizePolicy::SelectiveScrub])
        .with_bank_striped_scrape(4)
        .with_seed(1391);
    group.throughput(Throughput::Elements(striped.cell_count() as u64));
    group.bench_function("matrix_8_cells/bank_striped_x4", |b| {
        b.iter(|| black_box(striped.run_with_workers(1).unwrap().completed_count()))
    });

    // Streaming engine overhead, isolated from scenario cost: a synthetic
    // executor makes every cell near-free, so this measures claim/fold/
    // reorder throughput — the ceiling a million-cell fleet campaign folds
    // at.
    let fleet = CampaignSpec::over_boards(
        (0..8)
            .map(|i| (format!("fleet-{i}"), bench_board()))
            .collect(),
    )
    .with_models(ModelKind::all().to_vec())
    .with_inputs(vec![InputKind::SamplePhoto, InputKind::Corrupted])
    .with_sanitize_policies(SanitizePolicy::all_basic().to_vec())
    .with_scrape_modes(vec![ScrapeMode::ContiguousRange, ScrapeMode::PerPage])
    .with_seed(1391);
    group.throughput(Throughput::Elements(fleet.cell_count() as u64));
    for workers in [1usize, 4] {
        group.bench_function(
            format!("stream_synthetic_1280_cells/{workers}_workers"),
            |b| {
                b.iter(|| {
                    let summary = fleet
                        .stream_with_executor(
                            StreamConfig::default().with_workers(workers),
                            |cell| Ok(cell.synthetic_record()),
                            |_| Ok(()),
                            |_| {},
                        )
                        .unwrap();
                    black_box(summary.totals.completed)
                })
            },
        );
    }

    group.throughput(Throughput::Elements(1));
    group.bench_function("expand_1024_cells", |b| {
        let big = CampaignSpec::new("bench", bench_board())
            .with_models(ModelKind::all().to_vec())
            .with_inputs(vec![
                InputKind::SamplePhoto,
                InputKind::Corrupted,
                InputKind::Sentinel,
            ])
            .with_sanitize_policies(SanitizePolicy::all_basic().to_vec())
            .with_scrape_modes(vec![ScrapeMode::ContiguousRange, ScrapeMode::PerPage]);
        assert!(big.cell_count() >= 100);
        b.iter(|| black_box(big.expand().len()))
    });

    group.finish();
}

criterion_group!(benches, bench_campaigns);
criterion_main!(benches);
