//! End-to-end attack benchmarks (TAB-A, FIG5–FIG12 pipeline).
//!
//! Measures the full scenario (victim run + attack) per victim model, and the
//! observe/execute split that corresponds to the paper's "while running" vs
//! "after termination" phases.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use msa_bench::{attacker_debugger, bench_board, launch_victim, profile_zoo};
use msa_core::attack::{AttackConfig, AttackPipeline};
use msa_core::scenario::AttackScenario;
use vitis_ai_sim::ModelKind;

fn bench_full_scenario(c: &mut Criterion) {
    let board = bench_board();
    let profiles = profile_zoo(board);
    let mut group = c.benchmark_group("full_attack_scenario");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    for model in [ModelKind::SqueezeNet, ModelKind::Resnet50Pt] {
        group.bench_function(model.name(), |b| {
            b.iter(|| {
                let outcome = AttackScenario::new(board, model)
                    .with_corrupted_input()
                    .with_profiles(profiles.clone())
                    .execute()
                    .expect("attack completes");
                black_box(outcome.pixel_recovery_rate())
            })
        });
    }
    group.finish();
}

fn bench_pipeline_phases(c: &mut Criterion) {
    let board = bench_board();
    let profiles = profile_zoo(board);
    let pipeline = AttackPipeline::new(AttackConfig::default()).with_profiles(profiles);

    let mut group = c.benchmark_group("pipeline_phases");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);

    // Phase 1+2: poll and translate, against a running victim.
    group.bench_function("observe_running_victim", |b| {
        let setup = launch_victim(board, ModelKind::Resnet50Pt);
        let mut debugger = attacker_debugger();
        b.iter(|| {
            let observation = pipeline
                .poll_and_observe(&mut debugger, &setup.kernel)
                .expect("victim observed");
            black_box(observation.translation().present_pages())
        })
    });

    // Phase 3+4: scrape and analyse, against a terminated victim.
    group.bench_function("scrape_and_analyze_terminated_victim", |b| {
        let mut setup = launch_victim(board, ModelKind::Resnet50Pt);
        let mut debugger = attacker_debugger();
        let observation = pipeline
            .poll_and_observe(&mut debugger, &setup.kernel)
            .expect("victim observed");
        let pid = setup.victim.pid();
        setup.kernel.terminate(pid).expect("victim terminates");
        b.iter(|| {
            let outcome = pipeline
                .execute(&mut debugger, &setup.kernel, &observation)
                .expect("attack completes");
            black_box(outcome.bytes_scraped)
        })
    });

    // Victim-side cost, for scale: running the model to completion.
    group.bench_function("victim_inference_run", |b| {
        b.iter(|| {
            let mut setup = launch_victim(board, ModelKind::SqueezeNet);
            let pid = setup.victim.pid();
            setup.kernel.terminate(pid).expect("victim terminates");
            black_box(pid)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_full_scenario, bench_pipeline_phases);
criterion_main!(benches);
