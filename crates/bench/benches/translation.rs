//! Step-2 benchmarks (FIG7/FIG8): maps parsing and virtual-to-physical
//! translation through the debugger channel.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use msa_bench::{attacker_debugger, bench_board, launch_victim};
use msa_core::translate::capture_heap_translation;
use petalinux_sim::procfs;
use vitis_ai_sim::ModelKind;

fn bench_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("translation");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(20);

    for model in [
        ModelKind::SqueezeNet,
        ModelKind::Resnet50Pt,
        ModelKind::Vgg16,
    ] {
        let setup = launch_victim(bench_board(), model);
        let pid = setup.victim.pid();

        group.bench_function(format!("capture_heap_translation/{}", model.name()), |b| {
            let mut debugger = attacker_debugger();
            b.iter(|| {
                let translation = capture_heap_translation(&mut debugger, &setup.kernel, pid)
                    .expect("translation captured");
                black_box(translation.present_pages())
            })
        });

        group.bench_function(format!("maps_render_and_parse/{}", model.name()), |b| {
            let process = setup.kernel.process(pid).expect("victim exists");
            b.iter(|| {
                let maps = procfs::maps_file(process);
                black_box(procfs::parse_heap_range(&maps))
            })
        });

        group.bench_function(format!("point_translate/{}", model.name()), |b| {
            let mut debugger = attacker_debugger();
            let heap = setup
                .kernel
                .process(pid)
                .expect("victim exists")
                .heap_base();
            b.iter(|| {
                black_box(
                    debugger
                        .translate(&setup.kernel, pid, heap + 0x730)
                        .expect("translation allowed"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_translation);
criterion_main!(benches);
