//! Step-3 benchmarks (FIG10): scraping the terminated victim's heap from
//! physical memory, comparing the paper's contiguous-range read with the
//! per-page strategy.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use msa_bench::{attacker_debugger, bench_board, launch_victim};
use msa_core::attack::ScrapeMode;
use msa_core::scrape::scrape_heap;
use msa_core::translate::capture_heap_translation;
use vitis_ai_sim::ModelKind;

fn bench_scraping(c: &mut Criterion) {
    let mut group = c.benchmark_group("scraping");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(20);

    for model in [ModelKind::SqueezeNet, ModelKind::Resnet50Pt] {
        let mut setup = launch_victim(bench_board(), model);
        let mut debugger = attacker_debugger();
        let translation =
            capture_heap_translation(&mut debugger, &setup.kernel, setup.victim.pid())
                .expect("translation captured");
        let pid = setup.victim.pid();
        setup.kernel.terminate(pid).expect("victim terminates");
        group.throughput(Throughput::Bytes(translation.heap_len()));

        for mode in [ScrapeMode::ContiguousRange, ScrapeMode::PerPage] {
            group.bench_function(format!("{mode}/{}", model.name()), |b| {
                b.iter(|| {
                    let dump = scrape_heap(&mut debugger, &setup.kernel, &translation, mode)
                        .expect("scrape succeeds");
                    black_box(dump.len())
                })
            });
        }

        group.bench_function(format!("single_devmem_word/{}", model.name()), |b| {
            let addr = translation.phys_start().expect("resident");
            b.iter(|| {
                black_box(
                    debugger
                        .read_phys_u32(&setup.kernel, addr)
                        .expect("readable"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scraping);
criterion_main!(benches);
