//! Per-process address spaces: page table + VMAs + heap break.

// Lint audit: indexes and slice bounds here are established by the
// surrounding length checks / loop invariants before use.
#![allow(clippy::indexing_slicing)]

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use zynq_dram::{FrameNumber, PhysAddr, PAGE_SIZE};

use crate::addr::VirtAddr;
use crate::error::MmuError;
use crate::frame::FrameAllocator;
use crate::layout::AddressSpaceLayout;
use crate::page_table::{PagePermissions, PageTable};
use crate::pagemap::PagemapEntry;

/// The role a virtual memory area plays in the process image.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum VmaKind {
    /// Program text (the executable).
    Text,
    /// The brk-managed heap (`[heap]` in `/proc/<pid>/maps`).
    Heap,
    /// The main thread stack (`[stack]`).
    Stack,
    /// A file-backed or anonymous mmap region with a display label
    /// (e.g. a shared library path or `/dev/dri/renderD128`).
    Mapped {
        /// The pathname column shown in the maps file.
        label: String,
    },
}

impl VmaKind {
    /// The pathname column `/proc/<pid>/maps` shows for this region.
    pub fn maps_label(&self) -> &str {
        match self {
            VmaKind::Text => "/usr/bin/app",
            VmaKind::Heap => "[heap]",
            VmaKind::Stack => "[stack]",
            VmaKind::Mapped { label } => label,
        }
    }
}

/// One virtual memory area of a process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vma {
    /// First address of the region.
    pub start: VirtAddr,
    /// One past the last address of the region.
    pub end: VirtAddr,
    /// Page permissions of the region.
    pub perms: PagePermissions,
    /// What the region is used for.
    pub kind: VmaKind,
}

impl Vma {
    /// Length of the region in bytes.
    pub fn len(&self) -> u64 {
        self.end.offset_from(self.start)
    }

    /// Returns `true` if the region is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns `true` if `addr` falls inside the region.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Returns `true` if the region overlaps `[start, start + len)`.
    pub fn overlaps(&self, start: VirtAddr, len: u64) -> bool {
        let end = start + len;
        self.start < end && start < self.end
    }
}

/// A process's address space: layout, page table, VMAs and heap break.
///
/// The address space does not own the physical frames — it records them so
/// the kernel can free (and possibly sanitize) them at process termination.
///
/// # Example
///
/// ```
/// use zynq_dram::DramConfig;
/// use zynq_mmu::{AddressSpace, AddressSpaceLayout, FrameAllocator};
///
/// # fn main() -> Result<(), zynq_mmu::MmuError> {
/// let mut frames = FrameAllocator::new(DramConfig::tiny_for_tests());
/// let mut space = AddressSpace::new(AddressSpaceLayout::petalinux_default());
/// space.grow_heap(3 * 4096, &mut frames)?;
/// assert_eq!(space.heap_vma().expect("heap exists").len(), 3 * 4096);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    layout: AddressSpaceLayout,
    page_table: PageTable,
    vmas: Vec<Vma>,
    brk: VirtAddr,
    owned_frames: Vec<FrameNumber>,
}

impl AddressSpace {
    /// Creates an empty address space with the given layout.
    pub fn new(layout: AddressSpaceLayout) -> Self {
        AddressSpace {
            layout,
            page_table: PageTable::new(),
            vmas: Vec::new(),
            brk: layout.heap_base(),
            owned_frames: Vec::new(),
        }
    }

    /// The layout this space was created with.
    pub fn layout(&self) -> &AddressSpaceLayout {
        &self.layout
    }

    /// The current heap break (one past the last heap byte).
    pub fn brk(&self) -> VirtAddr {
        self.brk
    }

    /// All VMAs, sorted by start address.
    pub fn vmas(&self) -> &[Vma] {
        &self.vmas
    }

    /// The heap VMA, if the heap has been grown at least once.
    pub fn heap_vma(&self) -> Option<&Vma> {
        self.vmas.iter().find(|v| v.kind == VmaKind::Heap)
    }

    /// Physical frames backing this address space, in allocation order.
    pub fn owned_frames(&self) -> &[FrameNumber] {
        &self.owned_frames
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.page_table.mapped_count()
    }

    /// Translates a virtual address to its physical address, if mapped.
    pub fn translate(&self, va: VirtAddr) -> Option<PhysAddr> {
        self.page_table.translate(va)
    }

    /// Produces the `/proc/<pid>/pagemap` entries for `count` consecutive
    /// pages starting at the page containing `start`.
    pub fn pagemap_entries(&self, start: VirtAddr, count: usize) -> Vec<PagemapEntry> {
        let mut page = start.page_number();
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let entry = match self.page_table.translate_page(page) {
                Some(frame) => PagemapEntry::present(frame),
                None => PagemapEntry::absent(),
            };
            entries.push(entry);
            page = page.next();
        }
        entries
    }

    fn sort_vmas(&mut self) {
        self.vmas.sort_by_key(|v| v.start);
    }

    /// Grows the heap by `bytes` (rounded up to whole pages), allocating and
    /// mapping fresh frames.
    ///
    /// Returns the new break.
    ///
    /// # Errors
    ///
    /// Returns [`MmuError::OutOfFrames`] if the allocator is exhausted; in
    /// that case the heap is left unchanged.
    pub fn grow_heap(
        &mut self,
        bytes: u64,
        allocator: &mut FrameAllocator,
    ) -> Result<VirtAddr, MmuError> {
        if bytes == 0 {
            return Ok(self.brk);
        }
        let old_brk = self.brk;
        let new_brk = (old_brk + bytes).align_up();
        let first_new_page = old_brk.align_up();
        let page_count = (new_brk.offset_from(first_new_page) / PAGE_SIZE) as usize;

        let frames = allocator.allocate_many(page_count)?;
        let mut page = first_new_page.page_number();
        for frame in &frames {
            self.page_table
                .map(page, *frame, PagePermissions::read_write())
                .expect("heap pages are mapped exactly once");
            page = page.next();
        }
        self.owned_frames.extend_from_slice(&frames);
        self.brk = new_brk;

        let heap_base = self.layout.heap_base();
        match self.vmas.iter_mut().find(|v| v.kind == VmaKind::Heap) {
            Some(vma) => vma.end = new_brk,
            None => {
                self.vmas.push(Vma {
                    start: heap_base,
                    end: new_brk,
                    perms: PagePermissions::read_write(),
                    kind: VmaKind::Heap,
                });
                self.sort_vmas();
            }
        }
        Ok(new_brk)
    }

    /// Maps a fixed region (text, stack, or an mmap area) of `len` bytes at
    /// `start`, backed by freshly allocated frames.
    ///
    /// # Errors
    ///
    /// Returns [`MmuError::Unaligned`] if `start` is not page aligned,
    /// [`MmuError::RegionOverlap`] if the region overlaps an existing VMA and
    /// [`MmuError::OutOfFrames`] if the allocator is exhausted.
    pub fn map_region(
        &mut self,
        start: VirtAddr,
        len: u64,
        perms: PagePermissions,
        kind: VmaKind,
        allocator: &mut FrameAllocator,
    ) -> Result<(), MmuError> {
        if !start.is_aligned() {
            return Err(MmuError::Unaligned { addr: start });
        }
        let len = VirtAddr::new(len).align_up().as_u64();
        if self.vmas.iter().any(|v| v.overlaps(start, len)) {
            return Err(MmuError::RegionOverlap { start, len });
        }
        let page_count = (len / PAGE_SIZE) as usize;
        let frames = allocator.allocate_many(page_count)?;
        let mut page = start.page_number();
        for frame in &frames {
            self.page_table
                .map(page, *frame, perms)
                .expect("region pages are mapped exactly once");
            page = page.next();
        }
        self.owned_frames.extend_from_slice(&frames);
        self.vmas.push(Vma {
            start,
            end: start + len,
            perms,
            kind,
        });
        self.sort_vmas();
        Ok(())
    }

    /// Tears down the address space: unmaps every page and returns the backing
    /// frames to the allocator.
    ///
    /// Returns the frames that were freed, in the order they were allocated —
    /// the kernel passes this list to the sanitization policy.
    pub fn release_all(&mut self, allocator: &mut FrameAllocator) -> Vec<FrameNumber> {
        self.release_all_except(allocator, &BTreeSet::new()).0
    }

    /// Tears down the address space like [`AddressSpace::release_all`], but
    /// frames present in `shared` are **not** returned to the allocator — a
    /// live copy-on-write peer still maps them, and freeing (or scrubbing)
    /// them here would rip pages out from under that peer.
    ///
    /// Returns `(freed, retained)`: the frames returned to the allocator and
    /// the shared frames left allocated, each in allocation order.
    pub fn release_all_except(
        &mut self,
        allocator: &mut FrameAllocator,
        shared: &BTreeSet<FrameNumber>,
    ) -> (Vec<FrameNumber>, Vec<FrameNumber>) {
        for (page, _) in self.page_table.mappings() {
            self.page_table
                .unmap(page)
                .expect("mapping enumerated above");
        }
        let mut freed = Vec::new();
        let mut retained = Vec::new();
        for frame in std::mem::take(&mut self.owned_frames) {
            if shared.contains(&frame) {
                retained.push(frame);
            } else {
                allocator.free(frame);
                freed.push(frame);
            }
        }
        self.vmas.clear();
        self.brk = self.layout.heap_base();
        (freed, retained)
    }

    /// Replaces the frame backing the page containing `va` with `new_frame`,
    /// keeping read-write permissions — this services a copy-on-write fault
    /// after the kernel has copied the shared frame's bytes into a private
    /// one.
    ///
    /// `new_frame` takes the displaced frame's slot in the owned set (so
    /// allocation order — and hence scrape order — is preserved); the
    /// displaced frame is returned so the caller can drop its share count.
    ///
    /// # Errors
    ///
    /// Returns [`MmuError::NotMapped`] if `va` is not mapped.
    pub fn remap_page(
        &mut self,
        va: VirtAddr,
        new_frame: FrameNumber,
    ) -> Result<FrameNumber, MmuError> {
        let page = va.page_number();
        let old = self.page_table.unmap(page)?;
        self.page_table
            .map(page, new_frame, PagePermissions::read_write())
            .expect("page was mapped above");
        match self.owned_frames.iter().position(|f| *f == old) {
            Some(pos) => self.owned_frames[pos] = new_frame,
            None => self.owned_frames.push(new_frame),
        }
        Ok(old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zynq_dram::DramConfig;

    fn setup() -> (AddressSpace, FrameAllocator) {
        (
            AddressSpace::new(AddressSpaceLayout::petalinux_default()),
            FrameAllocator::new(DramConfig::tiny_for_tests()),
        )
    }

    #[test]
    fn new_space_is_empty() {
        let (space, _) = setup();
        assert_eq!(space.mapped_pages(), 0);
        assert!(space.vmas().is_empty());
        assert!(space.heap_vma().is_none());
        assert_eq!(space.brk(), space.layout().heap_base());
        assert!(space.owned_frames().is_empty());
    }

    #[test]
    fn grow_heap_maps_pages_and_updates_vma() {
        let (mut space, mut frames) = setup();
        let brk = space.grow_heap(PAGE_SIZE * 2 + 100, &mut frames).unwrap();
        assert_eq!(brk, space.layout().heap_base() + 3 * PAGE_SIZE);
        assert_eq!(space.mapped_pages(), 3);
        let heap = space.heap_vma().unwrap();
        assert_eq!(heap.start, space.layout().heap_base());
        assert_eq!(heap.end, brk);
        assert_eq!(heap.kind.maps_label(), "[heap]");
        // Growing again extends the same VMA.
        let brk2 = space.grow_heap(PAGE_SIZE, &mut frames).unwrap();
        assert_eq!(space.heap_vma().unwrap().end, brk2);
        assert_eq!(space.vmas().len(), 1);
        assert_eq!(space.owned_frames().len(), 4);
    }

    #[test]
    fn grow_heap_zero_bytes_is_noop() {
        let (mut space, mut frames) = setup();
        let brk = space.grow_heap(0, &mut frames).unwrap();
        assert_eq!(brk, space.layout().heap_base());
        assert_eq!(space.mapped_pages(), 0);
    }

    #[test]
    fn heap_translation_points_into_allocated_frames() {
        let (mut space, mut frames) = setup();
        space.grow_heap(2 * PAGE_SIZE, &mut frames).unwrap();
        let va = space.layout().heap_base() + PAGE_SIZE + 0x123;
        let pa = space.translate(va).unwrap();
        assert_eq!(pa.page_offset(), 0x123);
        assert!(space.owned_frames().contains(&pa.frame_number()));
        assert!(space.translate(va + 4 * PAGE_SIZE).is_none());
    }

    #[test]
    fn pagemap_entries_reflect_mapping_state() {
        let (mut space, mut frames) = setup();
        space.grow_heap(2 * PAGE_SIZE, &mut frames).unwrap();
        let entries = space.pagemap_entries(space.layout().heap_base(), 4);
        assert_eq!(entries.len(), 4);
        assert!(entries[0].is_present());
        assert!(entries[1].is_present());
        assert!(!entries[2].is_present());
        assert!(!entries[3].is_present());
        assert_eq!(entries[0].frame_number().unwrap(), space.owned_frames()[0]);
    }

    #[test]
    fn map_region_validates_arguments() {
        let (mut space, mut frames) = setup();
        let base = space.layout().mmap_base();
        assert!(matches!(
            space.map_region(
                base + 1,
                PAGE_SIZE,
                PagePermissions::read_write(),
                VmaKind::Stack,
                &mut frames
            ),
            Err(MmuError::Unaligned { .. })
        ));
        space
            .map_region(
                base,
                2 * PAGE_SIZE,
                PagePermissions::read_write(),
                VmaKind::Mapped {
                    label: "/dev/dri/renderD128".to_string(),
                },
                &mut frames,
            )
            .unwrap();
        // Overlapping region rejected.
        assert!(matches!(
            space.map_region(
                base + PAGE_SIZE,
                PAGE_SIZE,
                PagePermissions::read_write(),
                VmaKind::Stack,
                &mut frames
            ),
            Err(MmuError::RegionOverlap { .. })
        ));
        assert_eq!(space.vmas().len(), 1);
        assert_eq!(space.vmas()[0].kind.maps_label(), "/dev/dri/renderD128");
    }

    #[test]
    fn vmas_are_sorted_by_start() {
        let (mut space, mut frames) = setup();
        space
            .map_region(
                space.layout().mmap_base(),
                PAGE_SIZE,
                PagePermissions::read_only(),
                VmaKind::Mapped {
                    label: "libvart.so".to_string(),
                },
                &mut frames,
            )
            .unwrap();
        space
            .map_region(
                space.layout().text_base(),
                PAGE_SIZE,
                PagePermissions::read_execute(),
                VmaKind::Text,
                &mut frames,
            )
            .unwrap();
        space.grow_heap(PAGE_SIZE, &mut frames).unwrap();
        let starts: Vec<_> = space.vmas().iter().map(|v| v.start).collect();
        let mut sorted = starts.clone();
        sorted.sort();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn release_all_frees_every_frame() {
        let (mut space, mut frames) = setup();
        space.grow_heap(3 * PAGE_SIZE, &mut frames).unwrap();
        space
            .map_region(
                space.layout().text_base(),
                PAGE_SIZE,
                PagePermissions::read_execute(),
                VmaKind::Text,
                &mut frames,
            )
            .unwrap();
        let allocated_before = frames.allocated_count();
        assert_eq!(allocated_before, 4);
        let freed = space.release_all(&mut frames);
        assert_eq!(freed.len(), 4);
        assert_eq!(frames.allocated_count(), 0);
        assert_eq!(space.mapped_pages(), 0);
        assert!(space.vmas().is_empty());
        assert_eq!(space.brk(), space.layout().heap_base());
    }

    #[test]
    fn release_all_except_retains_shared_frames() {
        let (mut space, mut frames) = setup();
        space.grow_heap(3 * PAGE_SIZE, &mut frames).unwrap();
        let shared: BTreeSet<FrameNumber> = space.owned_frames()[..2].iter().copied().collect();
        let (freed, retained) = space.release_all_except(&mut frames, &shared);
        assert_eq!(freed.len(), 1);
        assert_eq!(retained.len(), 2);
        assert!(retained.iter().all(|f| shared.contains(f)));
        // Retained frames stay allocated — a CoW peer still maps them.
        assert_eq!(frames.allocated_count(), 2);
        for frame in &retained {
            assert!(frames.is_allocated(*frame));
        }
        assert_eq!(space.mapped_pages(), 0);
        assert!(space.owned_frames().is_empty());
    }

    #[test]
    fn remap_page_swaps_the_backing_frame_in_place() {
        let (mut space, mut frames) = setup();
        space.grow_heap(2 * PAGE_SIZE, &mut frames).unwrap();
        let va = space.layout().heap_base() + PAGE_SIZE + 0x40;
        let old_frame = space.translate(va).unwrap().frame_number();
        let old_pos = space
            .owned_frames()
            .iter()
            .position(|f| *f == old_frame)
            .unwrap();
        let private = frames.allocate().unwrap();
        let displaced = space.remap_page(va, private).unwrap();
        assert_eq!(displaced, old_frame);
        assert_eq!(space.translate(va).unwrap().frame_number(), private);
        // The private copy takes the displaced frame's allocation-order slot.
        assert_eq!(space.owned_frames()[old_pos], private);
        assert!(!space.owned_frames().contains(&old_frame));
        // Unmapped addresses still fault.
        assert!(matches!(
            space.remap_page(va + 16 * PAGE_SIZE, private),
            Err(MmuError::NotMapped { .. })
        ));
    }

    #[test]
    fn vma_geometry_helpers() {
        let vma = Vma {
            start: VirtAddr::new(0x1000),
            end: VirtAddr::new(0x3000),
            perms: PagePermissions::read_write(),
            kind: VmaKind::Heap,
        };
        assert_eq!(vma.len(), 0x2000);
        assert!(!vma.is_empty());
        assert!(vma.contains(VirtAddr::new(0x1000)));
        assert!(vma.contains(VirtAddr::new(0x2fff)));
        assert!(!vma.contains(VirtAddr::new(0x3000)));
        assert!(vma.overlaps(VirtAddr::new(0x2000), 0x2000));
        assert!(!vma.overlaps(VirtAddr::new(0x3000), 0x1000));
        let empty = Vma {
            start: VirtAddr::new(0x1000),
            end: VirtAddr::new(0x1000),
            perms: PagePermissions::read_write(),
            kind: VmaKind::Stack,
        };
        assert!(empty.is_empty());
    }

    #[test]
    fn out_of_frames_propagates_and_leaves_heap_unchanged() {
        let mut space = AddressSpace::new(AddressSpaceLayout::petalinux_default());
        let mut frames = FrameAllocator::new(DramConfig::tiny_for_tests());
        let total = frames.config().frame_count();
        let brk_before = space.brk();
        assert!(matches!(
            space.grow_heap((total + 1) * PAGE_SIZE, &mut frames),
            Err(MmuError::OutOfFrames)
        ));
        assert_eq!(space.brk(), brk_before);
        assert_eq!(frames.allocated_count(), 0);
    }
}
