//! Error type for MMU operations.

use std::error::Error;
use std::fmt;

use crate::addr::VirtAddr;

/// Errors returned by page-table, frame-allocator and address-space
/// operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MmuError {
    /// The physical frame allocator has no free frames left.
    OutOfFrames,
    /// The virtual page is already mapped.
    AlreadyMapped {
        /// Base address of the offending page.
        page: VirtAddr,
    },
    /// The virtual page is not mapped.
    NotMapped {
        /// Base address of the offending page.
        page: VirtAddr,
    },
    /// An address or size argument was not page aligned where required.
    Unaligned {
        /// The offending address.
        addr: VirtAddr,
    },
    /// A requested region overlaps an existing VMA.
    RegionOverlap {
        /// Start of the requested region.
        start: VirtAddr,
        /// Length of the requested region in bytes.
        len: u64,
    },
    /// Heap shrinking below its base (or another invalid brk request).
    InvalidBrk {
        /// The requested new break.
        requested: VirtAddr,
    },
}

impl fmt::Display for MmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MmuError::OutOfFrames => write!(f, "no free physical frames remain"),
            MmuError::AlreadyMapped { page } => {
                write!(f, "virtual page {page:x} is already mapped")
            }
            MmuError::NotMapped { page } => write!(f, "virtual page {page:x} is not mapped"),
            MmuError::Unaligned { addr } => write!(f, "address {addr:x} is not page aligned"),
            MmuError::RegionOverlap { start, len } => {
                write!(f, "region {start:x}+{len:#x} overlaps an existing mapping")
            }
            MmuError::InvalidBrk { requested } => {
                write!(f, "invalid heap break request {requested:x}")
            }
        }
    }
}

impl Error for MmuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_specific() {
        assert!(MmuError::OutOfFrames.to_string().contains("no free"));
        assert!(MmuError::AlreadyMapped {
            page: VirtAddr::new(0x1000)
        }
        .to_string()
        .contains("already mapped"));
        assert!(MmuError::NotMapped {
            page: VirtAddr::new(0x1000)
        }
        .to_string()
        .contains("not mapped"));
        assert!(MmuError::Unaligned {
            addr: VirtAddr::new(0x1001)
        }
        .to_string()
        .contains("not page aligned"));
        assert!(MmuError::RegionOverlap {
            start: VirtAddr::new(0),
            len: 4096
        }
        .to_string()
        .contains("overlaps"));
        assert!(MmuError::InvalidBrk {
            requested: VirtAddr::new(0)
        }
        .to_string()
        .contains("invalid heap break"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MmuError>();
    }
}
