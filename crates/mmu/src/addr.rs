//! Virtual address and page-number newtypes.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};
use zynq_dram::PAGE_SIZE;

/// A virtual address in a process's address space.
///
/// Printed in the bare-hex style `/proc/<pid>/maps` uses
/// (e.g. `aaaaee775000`).
///
/// # Example
///
/// ```
/// use zynq_mmu::VirtAddr;
///
/// let va = VirtAddr::new(0xaaaa_ee77_5000);
/// assert_eq!(format!("{va}"), "aaaaee775000");
/// assert_eq!(va.page_offset(), 0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates a virtual address from a raw value.
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// Returns the raw address value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the virtual page containing this address.
    pub const fn page_number(self) -> PageNumber {
        PageNumber(self.0 / PAGE_SIZE)
    }

    /// Returns the offset of this address within its page.
    pub const fn page_offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }

    /// Rounds down to the containing page boundary.
    pub const fn align_down(self) -> VirtAddr {
        VirtAddr(self.0 - self.0 % PAGE_SIZE)
    }

    /// Rounds up to the next page boundary (identity if aligned).
    pub const fn align_up(self) -> VirtAddr {
        let rem = self.0 % PAGE_SIZE;
        if rem == 0 {
            self
        } else {
            VirtAddr(self.0 + (PAGE_SIZE - rem))
        }
    }

    /// Returns `true` if the address is page-aligned.
    pub const fn is_aligned(self) -> bool {
        self.0.is_multiple_of(PAGE_SIZE)
    }

    /// Byte distance from `other` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn offset_from(self, other: VirtAddr) -> u64 {
        self.0
            .checked_sub(other.0)
            .expect("offset_from: other is above self")
    }

    /// Checked addition of a byte offset.
    pub fn checked_add(self, offset: u64) -> Option<VirtAddr> {
        self.0.checked_add(offset).map(VirtAddr)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}", self.0)
    }
}

impl fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        VirtAddr(raw)
    }
}

impl From<VirtAddr> for u64 {
    fn from(va: VirtAddr) -> Self {
        va.0
    }
}

impl Add<u64> for VirtAddr {
    type Output = VirtAddr;

    fn add(self, rhs: u64) -> VirtAddr {
        VirtAddr(self.0 + rhs)
    }
}

impl AddAssign<u64> for VirtAddr {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<u64> for VirtAddr {
    type Output = VirtAddr;

    fn sub(self, rhs: u64) -> VirtAddr {
        VirtAddr(self.0 - rhs)
    }
}

/// A virtual page number (virtual address divided by the page size).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PageNumber(u64);

impl PageNumber {
    /// Creates a page number from a raw value.
    pub const fn new(raw: u64) -> Self {
        PageNumber(raw)
    }

    /// Returns the raw page number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the first address of the page.
    pub const fn base_address(self) -> VirtAddr {
        VirtAddr(self.0 * PAGE_SIZE)
    }

    /// Returns the page immediately after this one.
    pub const fn next(self) -> PageNumber {
        PageNumber(self.0 + 1)
    }

    /// Index into the level-`level` page table for this page
    /// (level 0 is the root; 9 bits per level, ARMv8 4 KiB granule).
    pub const fn table_index(self, level: usize) -> usize {
        let shift = 9 * (3 - level);
        ((self.0 >> shift) & 0x1ff) as usize
    }
}

impl fmt::Display for PageNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn:{:#x}", self.0)
    }
}

impl From<u64> for PageNumber {
    fn from(raw: u64) -> Self {
        PageNumber(raw)
    }
}

impl From<PageNumber> for u64 {
    fn from(p: PageNumber) -> Self {
        p.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_maps_file_style() {
        assert_eq!(VirtAddr::new(0xaaaa_ee77_5000).to_string(), "aaaaee775000");
        assert_eq!(format!("{:x}", VirtAddr::new(0xff)), "ff");
    }

    #[test]
    fn page_decomposition_roundtrip() {
        let va = VirtAddr::new(0xaaaa_ee77_5123);
        assert_eq!(va.page_offset(), 0x123);
        assert_eq!(va.page_number().base_address() + va.page_offset(), va);
        assert_eq!(va.align_down().page_offset(), 0);
        assert_eq!(va.align_up(), VirtAddr::new(0xaaaa_ee77_6000));
        assert!(va.align_down().is_aligned());
    }

    #[test]
    fn arithmetic() {
        let va = VirtAddr::new(0x1000);
        assert_eq!((va + 0x20).offset_from(va), 0x20);
        assert_eq!(va + 0x20 - 0x20, va);
        assert_eq!(VirtAddr::from(3u64).as_u64(), 3);
        assert_eq!(u64::from(VirtAddr::new(9)), 9);
        assert!(VirtAddr::new(u64::MAX).checked_add(1).is_none());
        let mut v = va;
        v += 4;
        assert_eq!(v.as_u64(), 0x1004);
    }

    #[test]
    #[should_panic(expected = "offset_from")]
    fn offset_from_panics_backwards() {
        let _ = VirtAddr::new(0).offset_from(VirtAddr::new(1));
    }

    #[test]
    fn table_indices_cover_all_levels() {
        // Construct a page number with distinct 9-bit groups.
        let raw = (1u64 << 27) | (2 << 18) | (3 << 9) | 4;
        let page = PageNumber::new(raw);
        assert_eq!(page.table_index(0), 1);
        assert_eq!(page.table_index(1), 2);
        assert_eq!(page.table_index(2), 3);
        assert_eq!(page.table_index(3), 4);
    }

    #[test]
    fn page_number_helpers() {
        let p = PageNumber::new(10);
        assert_eq!(p.base_address(), VirtAddr::new(10 * PAGE_SIZE));
        assert_eq!(p.next().as_u64(), 11);
        assert_eq!(p.to_string(), "vpn:0xa");
        assert_eq!(u64::from(PageNumber::from(6u64)), 6);
    }
}
