//! Physical frame allocation.
//!
//! The allocator's *reuse order* is security-relevant: the paper's offline
//! profiling works because PetaLinux hands out physical frames in a
//! deterministic order, so the physical layout of a model's heap is the same
//! in the attacker's profiling run and in the victim's run.
//! [`AllocationOrder::Randomized`] models the layout-randomization defense the
//! paper's conclusion calls for.

// Lint audit: narrowing casts here operate on values already clamped
// to their target range by the surrounding arithmetic.
#![allow(clippy::cast_possible_truncation)]

use std::collections::{HashSet, VecDeque};

use serde::{Deserialize, Serialize};
use zynq_dram::{DramConfig, FrameNumber};

use crate::error::MmuError;

/// Policy controlling the order in which physical frames are handed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum AllocationOrder {
    /// Fresh frames are allocated sequentially and freed frames are reused
    /// most-recently-freed first (deterministic; PetaLinux-like, vulnerable
    /// to offline profiling).
    #[default]
    Sequential,
    /// Fresh frames sequential, freed frames reused oldest first.
    FifoReuse,
    /// Frames are handed out in a pseudo-random order derived from `seed`
    /// (the physical-layout-randomization defense).
    Randomized {
        /// Seed of the deterministic shuffle.
        seed: u64,
    },
}

impl std::fmt::Display for AllocationOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocationOrder::Sequential => write!(f, "sequential"),
            AllocationOrder::FifoReuse => write!(f, "fifo-reuse"),
            AllocationOrder::Randomized { seed } => write!(f, "randomized(seed={seed})"),
        }
    }
}

/// The kernel's physical frame allocator over the user DRAM window.
///
/// # Example
///
/// ```
/// use zynq_dram::DramConfig;
/// use zynq_mmu::FrameAllocator;
///
/// # fn main() -> Result<(), zynq_mmu::MmuError> {
/// let mut alloc = FrameAllocator::new(DramConfig::tiny_for_tests());
/// let a = alloc.allocate()?;
/// let b = alloc.allocate()?;
/// assert_ne!(a, b);
/// alloc.free(a);
/// // Sequential policy reuses the most recently freed frame first.
/// assert_eq!(alloc.allocate()?, a);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    config: DramConfig,
    order: AllocationOrder,
    /// Next never-allocated frame index (relative to the window start), used
    /// by the sequential policies.
    next_fresh: u64,
    /// Pre-shuffled fresh frames, used by the randomized policy.
    shuffled_fresh: Vec<u64>,
    free_list: VecDeque<FrameNumber>,
    allocated: HashSet<FrameNumber>,
    rng_state: u64,
    peak_allocated: usize,
}

impl FrameAllocator {
    /// Creates an allocator over the full DRAM window with the default
    /// (sequential, deterministic) policy.
    pub fn new(config: DramConfig) -> Self {
        FrameAllocator::with_order(config, AllocationOrder::Sequential)
    }

    /// Creates an allocator with an explicit allocation-order policy.
    pub fn with_order(config: DramConfig, order: AllocationOrder) -> Self {
        let mut alloc = FrameAllocator {
            config,
            order,
            next_fresh: 0,
            shuffled_fresh: Vec::new(),
            free_list: VecDeque::new(),
            allocated: HashSet::new(),
            rng_state: 0,
            peak_allocated: 0,
        };
        if let AllocationOrder::Randomized { seed } = order {
            alloc.rng_state = seed ^ 0x9e37_79b9_7f4a_7c15;
            if alloc.rng_state == 0 {
                alloc.rng_state = 1;
            }
            let count = config.frame_count();
            let mut fresh: Vec<u64> = (0..count).collect();
            // Fisher–Yates with a xorshift generator; deterministic per seed.
            for i in (1..fresh.len()).rev() {
                let j = (alloc.next_random() % (i as u64 + 1)) as usize;
                fresh.swap(i, j);
            }
            // Pop from the back, so reverse to keep "first" at the end.
            fresh.reverse();
            alloc.shuffled_fresh = fresh;
        }
        alloc
    }

    fn next_random(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// The DRAM configuration this allocator serves.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// The allocation-order policy in effect.
    pub fn order(&self) -> AllocationOrder {
        self.order
    }

    /// Number of frames currently allocated.
    pub fn allocated_count(&self) -> usize {
        self.allocated.len()
    }

    /// Highest number of simultaneously allocated frames observed.
    pub fn peak_allocated(&self) -> usize {
        self.peak_allocated
    }

    /// Number of frames still available.
    pub fn free_count(&self) -> u64 {
        let fresh_left = match self.order {
            AllocationOrder::Randomized { .. } => self.shuffled_fresh.len() as u64,
            _ => self.config.frame_count() - self.next_fresh,
        };
        fresh_left + self.free_list.len() as u64
    }

    /// Returns `true` if `frame` is currently allocated.
    pub fn is_allocated(&self, frame: FrameNumber) -> bool {
        self.allocated.contains(&frame)
    }

    /// Iterates over the frames currently on the free (reuse) list, oldest
    /// freed first.
    ///
    /// The reuse order is the security-relevant contract revival-style
    /// attacks exploit: under [`AllocationOrder::Sequential`] the *last*
    /// frame of this iterator is handed out next, under
    /// [`AllocationOrder::FifoReuse`] the *first*.
    pub fn free_list_frames(&self) -> impl Iterator<Item = FrameNumber> + '_ {
        self.free_list.iter().copied()
    }

    fn frame_at(&self, relative: u64) -> FrameNumber {
        FrameNumber::new(self.config.first_frame().as_u64() + relative)
    }

    /// Allocates one physical frame.
    ///
    /// # Errors
    ///
    /// Returns [`MmuError::OutOfFrames`] when the window is exhausted.
    pub fn allocate(&mut self) -> Result<FrameNumber, MmuError> {
        let frame = match self.order {
            AllocationOrder::Sequential => {
                if let Some(frame) = self.free_list.pop_back() {
                    frame
                } else {
                    self.take_fresh()?
                }
            }
            AllocationOrder::FifoReuse => {
                if let Some(frame) = self.free_list.pop_front() {
                    frame
                } else {
                    self.take_fresh()?
                }
            }
            AllocationOrder::Randomized { .. } => {
                let total = self.free_list.len() + self.shuffled_fresh.len();
                if total == 0 {
                    return Err(MmuError::OutOfFrames);
                }
                let pick = (self.next_random() % total as u64) as usize;
                if pick < self.free_list.len() {
                    self.free_list.remove(pick).expect("index in range")
                } else {
                    let rel = self.shuffled_fresh.pop().expect("non-empty");
                    self.frame_at(rel)
                }
            }
        };
        self.allocated.insert(frame);
        self.peak_allocated = self.peak_allocated.max(self.allocated.len());
        Ok(frame)
    }

    fn take_fresh(&mut self) -> Result<FrameNumber, MmuError> {
        if self.next_fresh >= self.config.frame_count() {
            return Err(MmuError::OutOfFrames);
        }
        let frame = self.frame_at(self.next_fresh);
        self.next_fresh += 1;
        Ok(frame)
    }

    /// Allocates `count` frames.
    ///
    /// # Errors
    ///
    /// Returns [`MmuError::OutOfFrames`] if fewer than `count` frames remain;
    /// in that case no frames are leaked (all partial allocations are freed).
    pub fn allocate_many(&mut self, count: usize) -> Result<Vec<FrameNumber>, MmuError> {
        let mut frames = Vec::with_capacity(count);
        for _ in 0..count {
            match self.allocate() {
                Ok(f) => frames.push(f),
                Err(e) => {
                    for f in frames {
                        self.free(f);
                    }
                    return Err(e);
                }
            }
        }
        Ok(frames)
    }

    /// Returns a frame to the allocator.
    ///
    /// # Panics
    ///
    /// Panics if the frame was not currently allocated (double free).
    pub fn free(&mut self, frame: FrameNumber) {
        assert!(
            self.allocated.remove(&frame),
            "double free of physical frame {frame}"
        );
        self.free_list.push_back(frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn allocator(order: AllocationOrder) -> FrameAllocator {
        FrameAllocator::with_order(DramConfig::tiny_for_tests(), order)
    }

    #[test]
    fn sequential_allocates_in_order_and_reuses_lifo() {
        let mut a = allocator(AllocationOrder::Sequential);
        let f0 = a.allocate().unwrap();
        let f1 = a.allocate().unwrap();
        let f2 = a.allocate().unwrap();
        assert_eq!(f1.as_u64(), f0.as_u64() + 1);
        assert_eq!(f2.as_u64(), f1.as_u64() + 1);
        a.free(f0);
        a.free(f1);
        // LIFO: most recently freed first.
        assert_eq!(a.allocate().unwrap(), f1);
        assert_eq!(a.allocate().unwrap(), f0);
    }

    #[test]
    fn fifo_reuse_returns_oldest_freed_first() {
        let mut a = allocator(AllocationOrder::FifoReuse);
        let f0 = a.allocate().unwrap();
        let f1 = a.allocate().unwrap();
        a.free(f0);
        a.free(f1);
        assert_eq!(a.allocate().unwrap(), f0);
        assert_eq!(a.allocate().unwrap(), f1);
    }

    #[test]
    fn deterministic_reuse_gives_identical_layout_across_runs() {
        // This is the property the paper's offline profiling relies on: two
        // identical allocation traces produce identical physical layouts.
        let run = || {
            let mut a = allocator(AllocationOrder::Sequential);
            let first: Vec<_> = (0..8).map(|_| a.allocate().unwrap()).collect();
            for f in &first {
                a.free(*f);
            }
            (0..8).map(|_| a.allocate().unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn randomized_layouts_differ_across_seeds_but_are_reproducible() {
        let layout = |seed| {
            let mut a = allocator(AllocationOrder::Randomized { seed });
            (0..16).map(|_| a.allocate().unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(layout(7), layout(7));
        assert_ne!(layout(7), layout(8));
        // And differs from the deterministic layout.
        let mut seq = allocator(AllocationOrder::Sequential);
        let seq_layout: Vec<_> = (0..16).map(|_| seq.allocate().unwrap()).collect();
        assert_ne!(layout(7), seq_layout);
    }

    #[test]
    fn exhaustion_returns_out_of_frames() {
        let mut a = allocator(AllocationOrder::Sequential);
        let total = a.config().frame_count();
        for _ in 0..total {
            a.allocate().unwrap();
        }
        assert!(matches!(a.allocate(), Err(MmuError::OutOfFrames)));
        assert_eq!(a.free_count(), 0);
        assert_eq!(a.allocated_count() as u64, total);
    }

    #[test]
    fn allocate_many_rolls_back_on_failure() {
        let cfg = DramConfig::tiny_for_tests();
        let total = cfg.frame_count() as usize;
        let mut a = FrameAllocator::new(cfg);
        assert!(a.allocate_many(total + 1).is_err());
        // Nothing leaked.
        assert_eq!(a.allocated_count(), 0);
        let frames = a.allocate_many(total).unwrap();
        assert_eq!(frames.len(), total);
    }

    #[test]
    fn counters_track_allocation_state() {
        let mut a = allocator(AllocationOrder::Sequential);
        assert_eq!(a.allocated_count(), 0);
        let f = a.allocate().unwrap();
        assert!(a.is_allocated(f));
        assert_eq!(a.peak_allocated(), 1);
        a.free(f);
        assert!(!a.is_allocated(f));
        assert_eq!(a.peak_allocated(), 1);
        assert_eq!(a.order(), AllocationOrder::Sequential);
        assert_eq!(AllocationOrder::default(), AllocationOrder::Sequential);
        assert_eq!(
            AllocationOrder::Randomized { seed: 3 }.to_string(),
            "randomized(seed=3)"
        );
    }

    #[test]
    fn free_list_exposes_reuse_order() {
        // The revival attack path depends on exactly this contract: a
        // terminated process's frames sit on the free list in free order, and
        // the policy determines which end is reused first.
        for order in [AllocationOrder::Sequential, AllocationOrder::FifoReuse] {
            let mut a = allocator(order);
            let f0 = a.allocate().unwrap();
            let f1 = a.allocate().unwrap();
            let f2 = a.allocate().unwrap();
            a.free(f0);
            a.free(f2);
            a.free(f1);
            let listed: Vec<_> = a.free_list_frames().collect();
            assert_eq!(listed, vec![f0, f2, f1], "oldest freed first ({order})");
            let expected_next = match order {
                AllocationOrder::Sequential => f1, // LIFO: most recently freed
                _ => f0,                           // FIFO: oldest freed
            };
            assert_eq!(a.allocate().unwrap(), expected_next);
        }
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = allocator(AllocationOrder::Sequential);
        let f = a.allocate().unwrap();
        a.free(f);
        a.free(f);
    }

    #[test]
    fn randomized_exhaustion_and_reuse() {
        let mut a = allocator(AllocationOrder::Randomized { seed: 1 });
        let total = a.config().frame_count() as usize;
        let frames = a.allocate_many(total).unwrap();
        assert!(matches!(a.allocate(), Err(MmuError::OutOfFrames)));
        for f in frames {
            a.free(f);
        }
        assert_eq!(a.free_count(), total as u64);
        assert!(a.allocate().is_ok());
    }

    proptest! {
        #[test]
        fn prop_no_frame_is_handed_out_twice(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
            let mut a = allocator(AllocationOrder::Sequential);
            let mut live = Vec::new();
            for op in ops {
                if op || live.is_empty() {
                    if let Ok(f) = a.allocate() {
                        prop_assert!(!live.contains(&f), "frame {f} double-allocated");
                        live.push(f);
                    }
                } else {
                    let f = live.pop().unwrap();
                    a.free(f);
                }
            }
        }

        #[test]
        fn prop_all_orders_respect_window_bounds(seed in any::<u64>()) {
            for order in [AllocationOrder::Sequential, AllocationOrder::FifoReuse, AllocationOrder::Randomized { seed }] {
                let mut a = allocator(order);
                for _ in 0..32 {
                    let f = a.allocate().unwrap();
                    prop_assert!(a.config().contains_frame(f));
                }
            }
        }
    }
}
