//! The Linux `/proc/<pid>/pagemap` entry format.
//!
//! The paper's attack converts virtual to physical addresses by reading the
//! victim's `pagemap` file from the debugger.  Each 64-bit little-endian entry
//! describes one virtual page:
//!
//! ```text
//! bit  63     page present
//! bit  62     page swapped
//! bit  61     page is a file-mapped page or shared anonymous page
//! bit  56     page exclusively mapped
//! bit  55     PTE is soft-dirty
//! bits 54-0   page frame number (PFN) when present
//! ```
//!
//! [`PagemapEntry`] encodes and decodes that format bit-exactly, so the
//! attacker-side translator in `msa-core` parses the same representation the
//! real attack parses.

// Lint audit: indexes and slice bounds here are established by the
// surrounding length checks / loop invariants before use.
#![allow(clippy::indexing_slicing)]

use serde::{Deserialize, Serialize};
use zynq_dram::FrameNumber;

const PRESENT_BIT: u64 = 1 << 63;
const SWAPPED_BIT: u64 = 1 << 62;
const FILE_SHARED_BIT: u64 = 1 << 61;
const EXCLUSIVE_BIT: u64 = 1 << 56;
const SOFT_DIRTY_BIT: u64 = 1 << 55;
const PFN_MASK: u64 = (1 << 55) - 1;

/// One 64-bit `/proc/<pid>/pagemap` entry.
///
/// # Example
///
/// ```
/// use zynq_dram::FrameNumber;
/// use zynq_mmu::PagemapEntry;
///
/// let entry = PagemapEntry::present(FrameNumber::new(0x61c6d));
/// let raw = entry.to_raw();
/// let back = PagemapEntry::from_raw(raw);
/// assert!(back.is_present());
/// assert_eq!(back.frame_number(), Some(FrameNumber::new(0x61c6d)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PagemapEntry {
    raw: u64,
}

impl PagemapEntry {
    /// An entry describing an unmapped (not present) page.
    pub const fn absent() -> Self {
        PagemapEntry { raw: 0 }
    }

    /// An entry describing a present page backed by `frame`, exclusively
    /// mapped (the common case for heap pages).
    pub fn present(frame: FrameNumber) -> Self {
        PagemapEntry {
            raw: PRESENT_BIT | EXCLUSIVE_BIT | (frame.as_u64() & PFN_MASK),
        }
    }

    /// Reconstructs an entry from its raw 64-bit representation.
    pub const fn from_raw(raw: u64) -> Self {
        PagemapEntry { raw }
    }

    /// Returns the raw 64-bit representation (what the `pagemap` file holds).
    pub const fn to_raw(self) -> u64 {
        self.raw
    }

    /// Returns the little-endian byte representation as stored in the file.
    pub const fn to_le_bytes(self) -> [u8; 8] {
        self.raw.to_le_bytes()
    }

    /// Parses an entry from its little-endian byte representation.
    pub const fn from_le_bytes(bytes: [u8; 8]) -> Self {
        PagemapEntry {
            raw: u64::from_le_bytes(bytes),
        }
    }

    /// `true` if the page is present in physical memory.
    pub const fn is_present(self) -> bool {
        self.raw & PRESENT_BIT != 0
    }

    /// `true` if the page has been swapped out.
    pub const fn is_swapped(self) -> bool {
        self.raw & SWAPPED_BIT != 0
    }

    /// `true` if the page is file-backed or shared.
    pub const fn is_file_or_shared(self) -> bool {
        self.raw & FILE_SHARED_BIT != 0
    }

    /// `true` if the page is exclusively mapped.
    pub const fn is_exclusive(self) -> bool {
        self.raw & EXCLUSIVE_BIT != 0
    }

    /// `true` if the PTE is soft-dirty.
    pub const fn is_soft_dirty(self) -> bool {
        self.raw & SOFT_DIRTY_BIT != 0
    }

    /// Returns the physical frame number if the page is present.
    pub fn frame_number(self) -> Option<FrameNumber> {
        if self.is_present() {
            Some(FrameNumber::new(self.raw & PFN_MASK))
        } else {
            None
        }
    }

    /// Marks the entry soft-dirty (used by tests exercising flag round-trips).
    pub const fn with_soft_dirty(self) -> Self {
        PagemapEntry {
            raw: self.raw | SOFT_DIRTY_BIT,
        }
    }

    /// Marks the entry as file-backed/shared.
    pub const fn with_file_or_shared(self) -> Self {
        PagemapEntry {
            raw: self.raw | FILE_SHARED_BIT,
        }
    }
}

/// Serializes a slice of entries to the binary layout of a `pagemap` file
/// region (consecutive little-endian 64-bit words).
pub fn encode_entries(entries: &[PagemapEntry]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(entries.len() * 8);
    for entry in entries {
        bytes.extend_from_slice(&entry.to_le_bytes());
    }
    bytes
}

/// Parses the binary contents of a `pagemap` region back into entries.
///
/// Trailing bytes that do not form a whole entry are ignored, matching the
/// behaviour of a short read.
pub fn decode_entries(bytes: &[u8]) -> Vec<PagemapEntry> {
    bytes
        .chunks_exact(8)
        .map(|chunk| {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            PagemapEntry::from_le_bytes(buf)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn present_entry_roundtrip() {
        let entry = PagemapEntry::present(FrameNumber::new(0x61c6d));
        assert!(entry.is_present());
        assert!(entry.is_exclusive());
        assert!(!entry.is_swapped());
        assert!(!entry.is_soft_dirty());
        assert!(!entry.is_file_or_shared());
        assert_eq!(entry.frame_number(), Some(FrameNumber::new(0x61c6d)));
        assert_eq!(PagemapEntry::from_raw(entry.to_raw()), entry);
    }

    #[test]
    fn absent_entry_has_no_frame() {
        let entry = PagemapEntry::absent();
        assert!(!entry.is_present());
        assert!(entry.frame_number().is_none());
        assert_eq!(entry.to_raw(), 0);
        assert_eq!(PagemapEntry::default(), entry);
    }

    #[test]
    fn flag_builders_set_expected_bits() {
        let entry = PagemapEntry::present(FrameNumber::new(1))
            .with_soft_dirty()
            .with_file_or_shared();
        assert!(entry.is_soft_dirty());
        assert!(entry.is_file_or_shared());
        assert_eq!(entry.frame_number(), Some(FrameNumber::new(1)));
    }

    #[test]
    fn byte_encoding_is_little_endian() {
        let entry = PagemapEntry::present(FrameNumber::new(0x0102_0304));
        let bytes = entry.to_le_bytes();
        assert_eq!(bytes[0], 0x04);
        assert_eq!(bytes[1], 0x03);
        assert_eq!(PagemapEntry::from_le_bytes(bytes), entry);
    }

    #[test]
    fn encode_decode_region_roundtrip() {
        let entries = vec![
            PagemapEntry::absent(),
            PagemapEntry::present(FrameNumber::new(7)),
            PagemapEntry::present(FrameNumber::new(0x61c6d)).with_soft_dirty(),
        ];
        let bytes = encode_entries(&entries);
        assert_eq!(bytes.len(), 24);
        assert_eq!(decode_entries(&bytes), entries);
    }

    #[test]
    fn decode_ignores_trailing_partial_entry() {
        let mut bytes = encode_entries(&[PagemapEntry::present(FrameNumber::new(3))]);
        bytes.extend_from_slice(&[0xAA, 0xBB, 0xCC]);
        let decoded = decode_entries(&bytes);
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].frame_number(), Some(FrameNumber::new(3)));
    }

    proptest! {
        #[test]
        fn prop_raw_roundtrip(raw in any::<u64>()) {
            let entry = PagemapEntry::from_raw(raw);
            prop_assert_eq!(entry.to_raw(), raw);
            prop_assert_eq!(PagemapEntry::from_le_bytes(entry.to_le_bytes()), entry);
        }

        #[test]
        fn prop_present_preserves_pfn(pfn in 0u64..(1 << 55)) {
            let entry = PagemapEntry::present(FrameNumber::new(pfn));
            prop_assert_eq!(entry.frame_number(), Some(FrameNumber::new(pfn)));
        }

        #[test]
        fn prop_encode_decode_roundtrip(pfns in proptest::collection::vec(0u64..(1 << 55), 0..64)) {
            let entries: Vec<PagemapEntry> = pfns.iter().map(|p| PagemapEntry::present(FrameNumber::new(*p))).collect();
            prop_assert_eq!(decode_entries(&encode_entries(&entries)), entries);
        }
    }
}
