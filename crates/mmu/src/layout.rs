//! Address-space layout selection (heap/stack/mmap bases, optional ASLR).
//!
//! The paper points out that PetaLinux applies no randomization to the layout
//! of a process, which is why the heap appears at the same virtual base
//! (`0xaaaaee775000` in the paper's Figure 7) in every run and why profiled
//! offsets transfer from the attacker's run to the victim's run.
//! [`AslrMode::Virtual`] models turning virtual-address randomization on.

use serde::{Deserialize, Serialize};
use zynq_dram::PAGE_SIZE;

use crate::addr::VirtAddr;

/// Whether and how virtual base addresses are randomized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum AslrMode {
    /// No randomization (PetaLinux default; every run uses identical bases).
    #[default]
    Disabled,
    /// Randomize heap/stack/mmap bases with a deterministic per-boot seed.
    Virtual {
        /// Seed of the per-boot randomization.
        seed: u64,
    },
}

impl std::fmt::Display for AslrMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AslrMode::Disabled => write!(f, "aslr-off"),
            AslrMode::Virtual { seed } => write!(f, "aslr-virtual(seed={seed})"),
        }
    }
}

/// Base addresses of the canonical regions of a process's address space.
///
/// # Example
///
/// ```
/// use zynq_mmu::AddressSpaceLayout;
///
/// let layout = AddressSpaceLayout::petalinux_default();
/// // The paper's Figure 7 heap base.
/// assert_eq!(layout.heap_base().as_u64(), 0xaaaa_ee77_5000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AddressSpaceLayout {
    text_base: VirtAddr,
    heap_base: VirtAddr,
    mmap_base: VirtAddr,
    stack_top: VirtAddr,
    aslr: AslrMode,
}

impl AddressSpaceLayout {
    /// The fixed layout PetaLinux gives every aarch64 process, with the bases
    /// the paper observes (heap at `0xaaaaee775000`, shared mappings around
    /// `0xffffb13b5000`).
    pub fn petalinux_default() -> Self {
        AddressSpaceLayout {
            text_base: VirtAddr::new(0xaaaa_c896_0000),
            heap_base: VirtAddr::new(0xaaaa_ee77_5000),
            mmap_base: VirtAddr::new(0xffff_b13b_5000),
            stack_top: VirtAddr::new(0xffff_fff0_0000),
            aslr: AslrMode::Disabled,
        }
    }

    /// A layout with virtual-address randomization applied on top of the
    /// default bases.
    ///
    /// Randomization shifts each base upward by a page-aligned amount of up to
    /// 1 GiB (heap/mmap) or 16 MiB (stack), mirroring Linux's entropy budget.
    pub fn with_aslr(seed: u64) -> Self {
        let default = AddressSpaceLayout::petalinux_default();
        let mut state = seed ^ 0xd1b5_4a32_d192_ed03;
        if state == 0 {
            state = 1;
        }
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let page_shift = |limit_pages: u64, value: u64| (value % limit_pages) * PAGE_SIZE;
        AddressSpaceLayout {
            text_base: default.text_base + page_shift(1 << 10, next()),
            heap_base: default.heap_base + page_shift(1 << 18, next()),
            mmap_base: default.mmap_base + page_shift(1 << 18, next()),
            stack_top: default.stack_top + page_shift(1 << 12, next()),
            aslr: AslrMode::Virtual { seed },
        }
    }

    /// Constructs a layout from a mode: [`AslrMode::Disabled`] gives the
    /// deterministic PetaLinux layout, [`AslrMode::Virtual`] the randomized
    /// one.
    pub fn from_mode(mode: AslrMode) -> Self {
        match mode {
            AslrMode::Disabled => AddressSpaceLayout::petalinux_default(),
            AslrMode::Virtual { seed } => AddressSpaceLayout::with_aslr(seed),
        }
    }

    /// Base of the program text region.
    pub fn text_base(&self) -> VirtAddr {
        self.text_base
    }

    /// Base (lowest address) of the heap.
    pub fn heap_base(&self) -> VirtAddr {
        self.heap_base
    }

    /// Base of the mmap/shared-library region.
    pub fn mmap_base(&self) -> VirtAddr {
        self.mmap_base
    }

    /// Highest address of the stack.
    pub fn stack_top(&self) -> VirtAddr {
        self.stack_top
    }

    /// The randomization mode this layout was built with.
    pub fn aslr(&self) -> AslrMode {
        self.aslr
    }
}

impl Default for AddressSpaceLayout {
    fn default() -> Self {
        AddressSpaceLayout::petalinux_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_layout_matches_paper_heap_base() {
        let layout = AddressSpaceLayout::petalinux_default();
        assert_eq!(layout.heap_base(), VirtAddr::new(0xaaaa_ee77_5000));
        assert!(layout.text_base() < layout.heap_base());
        assert!(layout.heap_base() < layout.mmap_base());
        assert!(layout.mmap_base() < layout.stack_top());
        assert_eq!(layout.aslr(), AslrMode::Disabled);
        assert_eq!(AddressSpaceLayout::default(), layout);
    }

    #[test]
    fn aslr_layouts_are_reproducible_per_seed_and_differ_across_seeds() {
        let a = AddressSpaceLayout::with_aslr(1);
        let b = AddressSpaceLayout::with_aslr(1);
        let c = AddressSpaceLayout::with_aslr(2);
        assert_eq!(a, b);
        assert_ne!(a.heap_base(), c.heap_base());
        assert_ne!(
            a.heap_base(),
            AddressSpaceLayout::petalinux_default().heap_base()
        );
        assert!(matches!(a.aslr(), AslrMode::Virtual { seed: 1 }));
    }

    #[test]
    fn aslr_bases_stay_page_aligned_and_ordered() {
        for seed in 0..32 {
            let layout = AddressSpaceLayout::with_aslr(seed);
            assert!(layout.heap_base().is_aligned());
            assert!(layout.mmap_base().is_aligned());
            assert!(layout.stack_top().is_aligned());
            assert!(layout.text_base() < layout.heap_base());
        }
    }

    #[test]
    fn from_mode_dispatches() {
        assert_eq!(
            AddressSpaceLayout::from_mode(AslrMode::Disabled),
            AddressSpaceLayout::petalinux_default()
        );
        assert_eq!(
            AddressSpaceLayout::from_mode(AslrMode::Virtual { seed: 9 }),
            AddressSpaceLayout::with_aslr(9)
        );
        assert_eq!(AslrMode::default(), AslrMode::Disabled);
        assert_eq!(AslrMode::Disabled.to_string(), "aslr-off");
        assert_eq!(
            AslrMode::Virtual { seed: 4 }.to_string(),
            "aslr-virtual(seed=4)"
        );
    }
}
