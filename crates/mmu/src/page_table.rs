//! A 4-level, 4 KiB-granule page table (ARMv8 / Linux style).
//!
//! The table maps virtual pages to physical frames.  The walker is a plain
//! software radix tree — the simulation does not store translation tables in
//! simulated DRAM — but the *information content* matches what Linux exposes
//! through `/proc/<pid>/pagemap`, which is all the attack consumes.

// Lint audit: indexes and slice bounds here are established by the
// surrounding length checks / loop invariants before use.
#![allow(clippy::indexing_slicing)]

use serde::{Deserialize, Serialize};
use zynq_dram::{FrameNumber, PhysAddr};

use crate::addr::{PageNumber, VirtAddr};
use crate::error::MmuError;

const ENTRIES_PER_TABLE: usize = 512;
const LEAF_LEVEL: usize = 3;

/// Access permissions of a mapped page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PagePermissions {
    /// Page may be read.
    pub read: bool,
    /// Page may be written.
    pub write: bool,
    /// Page may be executed.
    pub execute: bool,
}

impl PagePermissions {
    /// Read/write data permissions (`rw-`), the permissions of heap pages.
    pub const fn read_write() -> Self {
        PagePermissions {
            read: true,
            write: true,
            execute: false,
        }
    }

    /// Read-only permissions (`r--`).
    pub const fn read_only() -> Self {
        PagePermissions {
            read: true,
            write: false,
            execute: false,
        }
    }

    /// Read/execute permissions (`r-x`), the permissions of text pages.
    pub const fn read_execute() -> Self {
        PagePermissions {
            read: true,
            write: false,
            execute: true,
        }
    }

    /// Renders the permission triple the way `/proc/<pid>/maps` does
    /// (e.g. `rw-`), without the shared/private column.
    pub fn to_maps_string(self) -> String {
        format!(
            "{}{}{}",
            if self.read { 'r' } else { '-' },
            if self.write { 'w' } else { '-' },
            if self.execute { 'x' } else { '-' },
        )
    }
}

impl Default for PagePermissions {
    fn default() -> Self {
        PagePermissions::read_write()
    }
}

#[derive(Debug, Clone)]
struct Leaf {
    frame: FrameNumber,
    perms: PagePermissions,
}

#[derive(Debug, Clone)]
enum Node {
    Table(Box<Table>),
    Leaf(Leaf),
}

#[derive(Debug, Clone)]
struct Table {
    entries: Vec<Option<Node>>,
}

impl Table {
    fn new() -> Self {
        Table {
            entries: (0..ENTRIES_PER_TABLE).map(|_| None).collect(),
        }
    }
}

/// A per-process page table mapping virtual pages to physical frames.
///
/// # Example
///
/// ```
/// use zynq_dram::FrameNumber;
/// use zynq_mmu::{PagePermissions, PageTable, VirtAddr};
///
/// # fn main() -> Result<(), zynq_mmu::MmuError> {
/// let mut table = PageTable::new();
/// let va = VirtAddr::new(0xaaaa_ee77_5000);
/// table.map(va.page_number(), FrameNumber::new(0x61c6d), PagePermissions::read_write())?;
/// let pa = table.translate(va + 0x730).expect("mapped");
/// assert_eq!(pa.as_u64(), 0x61c6d730);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    root: Table,
    mapped: usize,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        PageTable {
            root: Table::new(),
            mapped: 0,
        }
    }

    /// Number of pages currently mapped.
    pub fn mapped_count(&self) -> usize {
        self.mapped
    }

    /// Maps a virtual page to a physical frame.
    ///
    /// # Errors
    ///
    /// Returns [`MmuError::AlreadyMapped`] if the page already has a mapping.
    pub fn map(
        &mut self,
        page: PageNumber,
        frame: FrameNumber,
        perms: PagePermissions,
    ) -> Result<(), MmuError> {
        let mut table = &mut self.root;
        for level in 0..LEAF_LEVEL {
            let idx = page.table_index(level);
            let slot = &mut table.entries[idx];
            match slot {
                Some(Node::Table(_)) => {}
                Some(Node::Leaf(_)) => unreachable!("leaf node above leaf level"),
                None => *slot = Some(Node::Table(Box::new(Table::new()))),
            }
            table = match slot {
                Some(Node::Table(t)) => t,
                _ => unreachable!(),
            };
        }
        let idx = page.table_index(LEAF_LEVEL);
        let slot = &mut table.entries[idx];
        if slot.is_some() {
            return Err(MmuError::AlreadyMapped {
                page: page.base_address(),
            });
        }
        *slot = Some(Node::Leaf(Leaf { frame, perms }));
        self.mapped += 1;
        Ok(())
    }

    /// Removes the mapping of a virtual page, returning the frame it pointed
    /// to.
    ///
    /// # Errors
    ///
    /// Returns [`MmuError::NotMapped`] if the page is not mapped.
    pub fn unmap(&mut self, page: PageNumber) -> Result<FrameNumber, MmuError> {
        let not_mapped = MmuError::NotMapped {
            page: page.base_address(),
        };
        let mut table = &mut self.root;
        for level in 0..LEAF_LEVEL {
            let idx = page.table_index(level);
            table = match &mut table.entries[idx] {
                Some(Node::Table(t)) => t,
                _ => return Err(not_mapped),
            };
        }
        let idx = page.table_index(LEAF_LEVEL);
        match table.entries[idx].take() {
            Some(Node::Leaf(leaf)) => {
                self.mapped -= 1;
                Ok(leaf.frame)
            }
            Some(other) => {
                table.entries[idx] = Some(other);
                Err(not_mapped)
            }
            None => Err(not_mapped),
        }
    }

    fn leaf(&self, page: PageNumber) -> Option<&Leaf> {
        let mut table = &self.root;
        for level in 0..LEAF_LEVEL {
            let idx = page.table_index(level);
            table = match table.entries[idx].as_ref()? {
                Node::Table(t) => t,
                Node::Leaf(_) => return None,
            };
        }
        match table.entries[page.table_index(LEAF_LEVEL)].as_ref()? {
            Node::Leaf(leaf) => Some(leaf),
            Node::Table(_) => None,
        }
    }

    /// Returns the frame a virtual page maps to, if mapped.
    pub fn translate_page(&self, page: PageNumber) -> Option<FrameNumber> {
        self.leaf(page).map(|l| l.frame)
    }

    /// Returns the permissions of a mapped page.
    pub fn permissions(&self, page: PageNumber) -> Option<PagePermissions> {
        self.leaf(page).map(|l| l.perms)
    }

    /// Translates a virtual address to a physical address, if its page is
    /// mapped.
    pub fn translate(&self, va: VirtAddr) -> Option<PhysAddr> {
        self.translate_page(va.page_number())
            .map(|frame| frame.base_address() + va.page_offset())
    }

    /// Collects every `(page, frame)` mapping, sorted by page number.
    pub fn mappings(&self) -> Vec<(PageNumber, FrameNumber)> {
        fn walk(table: &Table, prefix: u64, out: &mut Vec<(PageNumber, FrameNumber)>) {
            for (idx, slot) in table.entries.iter().enumerate() {
                let Some(node) = slot else { continue };
                let next_prefix = (prefix << 9) | idx as u64;
                match node {
                    Node::Table(t) => walk(t, next_prefix, out),
                    Node::Leaf(leaf) => out.push((PageNumber::new(next_prefix), leaf.frame)),
                }
            }
        }
        let mut out = Vec::with_capacity(self.mapped);
        walk(&self.root, 0, &mut out);
        out.sort_by_key(|(page, _)| *page);
        out
    }
}

impl Default for PageTable {
    fn default() -> Self {
        PageTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn map_translate_unmap_cycle() {
        let mut pt = PageTable::new();
        let va = VirtAddr::new(0xaaaa_ee77_5000);
        let frame = FrameNumber::new(0x61c6d);
        pt.map(va.page_number(), frame, PagePermissions::read_write())
            .unwrap();
        assert_eq!(pt.mapped_count(), 1);
        assert_eq!(pt.translate(va + 0x730).unwrap().as_u64(), 0x61c6d730);
        assert_eq!(pt.translate_page(va.page_number()), Some(frame));
        assert_eq!(
            pt.permissions(va.page_number()),
            Some(PagePermissions::read_write())
        );
        assert_eq!(pt.unmap(va.page_number()).unwrap(), frame);
        assert_eq!(pt.mapped_count(), 0);
        assert!(pt.translate(va).is_none());
    }

    #[test]
    fn double_map_is_rejected() {
        let mut pt = PageTable::new();
        let page = VirtAddr::new(0x1000).page_number();
        pt.map(page, FrameNumber::new(1), PagePermissions::default())
            .unwrap();
        assert!(matches!(
            pt.map(page, FrameNumber::new(2), PagePermissions::default()),
            Err(MmuError::AlreadyMapped { .. })
        ));
    }

    #[test]
    fn unmap_unmapped_is_rejected() {
        let mut pt = PageTable::new();
        assert!(matches!(
            pt.unmap(VirtAddr::new(0x1000).page_number()),
            Err(MmuError::NotMapped { .. })
        ));
        // A sibling mapping does not make an unmapped page mapped.
        pt.map(
            VirtAddr::new(0x1000).page_number(),
            FrameNumber::new(1),
            PagePermissions::default(),
        )
        .unwrap();
        assert!(pt.unmap(VirtAddr::new(0x2000).page_number()).is_err());
    }

    #[test]
    fn translation_of_unmapped_address_is_none() {
        let pt = PageTable::new();
        assert!(pt.translate(VirtAddr::new(0xdead_beef)).is_none());
        assert!(pt
            .permissions(VirtAddr::new(0x1000).page_number())
            .is_none());
    }

    #[test]
    fn mappings_are_sorted_and_complete() {
        let mut pt = PageTable::new();
        let pages = [0xaaaa_ee77_7000u64, 0xaaaa_ee77_5000, 0xffff_b13b_5000];
        for (i, raw) in pages.iter().enumerate() {
            pt.map(
                VirtAddr::new(*raw).page_number(),
                FrameNumber::new(i as u64 + 10),
                PagePermissions::read_write(),
            )
            .unwrap();
        }
        let maps = pt.mappings();
        assert_eq!(maps.len(), 3);
        assert!(maps.windows(2).all(|w| w[0].0 < w[1].0));
        // The reconstructed page numbers match the original addresses.
        let reconstructed: Vec<u64> = maps
            .iter()
            .map(|(p, _)| p.base_address().as_u64())
            .collect();
        let mut expected: Vec<u64> = pages.to_vec();
        expected.sort_unstable();
        assert_eq!(reconstructed, expected);
    }

    #[test]
    fn permissions_render_like_maps_file() {
        assert_eq!(PagePermissions::read_write().to_maps_string(), "rw-");
        assert_eq!(PagePermissions::read_only().to_maps_string(), "r--");
        assert_eq!(PagePermissions::read_execute().to_maps_string(), "r-x");
        assert_eq!(PagePermissions::default(), PagePermissions::read_write());
    }

    #[test]
    fn default_table_is_empty() {
        assert_eq!(PageTable::default().mapped_count(), 0);
        assert!(PageTable::default().mappings().is_empty());
    }

    proptest! {
        #[test]
        fn prop_map_then_translate_is_consistent(
            raw_pages in proptest::collection::btree_set(0u64..(1 << 30), 1..50)
        ) {
            let mut pt = PageTable::new();
            let pages: Vec<PageNumber> = raw_pages.iter().map(|r| PageNumber::new(*r)).collect();
            for (i, page) in pages.iter().enumerate() {
                pt.map(*page, FrameNumber::new(i as u64), PagePermissions::default()).unwrap();
            }
            prop_assert_eq!(pt.mapped_count(), pages.len());
            for (i, page) in pages.iter().enumerate() {
                prop_assert_eq!(pt.translate_page(*page), Some(FrameNumber::new(i as u64)));
            }
            prop_assert_eq!(pt.mappings().len(), pages.len());
            // Unmap everything and verify emptiness.
            for page in &pages {
                pt.unmap(*page).unwrap();
            }
            prop_assert_eq!(pt.mapped_count(), 0);
        }

        #[test]
        fn prop_translate_preserves_page_offset(raw in 0u64..(1 << 40), frame in 0u64..(1 << 30)) {
            let mut pt = PageTable::new();
            let va = VirtAddr::new(raw);
            pt.map(va.page_number(), FrameNumber::new(frame), PagePermissions::default()).unwrap();
            let pa = pt.translate(va).unwrap();
            prop_assert_eq!(pa.page_offset(), va.page_offset());
            prop_assert_eq!(pa.frame_number().as_u64(), frame);
        }
    }
}
