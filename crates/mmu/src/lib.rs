//! # zynq-mmu — virtual memory substrate for the MSA reproduction
//!
//! Models the pieces of the Cortex-A53 / Linux virtual memory system that the
//! memory scraping attack interacts with:
//!
//! - [`VirtAddr`] / [`addr::PageNumber`] — virtual addresses and pages,
//! - [`PageTable`] — an ARMv8-style 4-level, 4 KiB-granule page table with
//!   map / unmap / translate,
//! - [`FrameAllocator`] — the kernel's physical frame allocator, with a
//!   configurable allocation-order policy (deterministic reuse is what makes
//!   the paper's offline profiling transfer to the victim; randomized order is
//!   the corresponding defense),
//! - [`pagemap`] — the Linux `/proc/<pid>/pagemap` 64-bit entry format the
//!   attacker parses to convert virtual to physical addresses,
//! - [`AddressSpace`] — a process's page table, VMAs and heap break,
//! - [`AddressSpaceLayout`] — heap/stack/mmap base selection with optional
//!   ASLR.
//!
//! # Example
//!
//! ```
//! use zynq_dram::DramConfig;
//! use zynq_mmu::{AddressSpace, AddressSpaceLayout, FrameAllocator, VirtAddr};
//!
//! # fn main() -> Result<(), zynq_mmu::MmuError> {
//! let mut frames = FrameAllocator::new(DramConfig::tiny_for_tests());
//! let layout = AddressSpaceLayout::petalinux_default();
//! let mut space = AddressSpace::new(layout);
//!
//! // Grow the heap by one page and translate an address inside it.
//! let heap_top = space.grow_heap(4096, &mut frames)?;
//! let va = space.layout().heap_base();
//! let pa = space.translate(va).expect("heap page is mapped");
//! assert!(heap_top > va);
//! assert_eq!(pa.page_offset(), 0);
//! # Ok(())
//! # }
//! ```

pub mod addr;
pub mod error;
pub mod frame;
pub mod layout;
pub mod page_table;
pub mod pagemap;
pub mod space;

pub use addr::{PageNumber, VirtAddr};
pub use error::MmuError;
pub use frame::{AllocationOrder, FrameAllocator};
pub use layout::{AddressSpaceLayout, AslrMode};
pub use page_table::{PagePermissions, PageTable};
pub use pagemap::PagemapEntry;
pub use space::{AddressSpace, Vma, VmaKind};
