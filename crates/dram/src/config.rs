//! DRAM geometry and address-window configuration.
//!
//! The ZCU104 exposes its processing-system DDR4 to software through two
//! windows: the low 2 GiB window starting at `0x0000_0000` and (on boards
//! with more memory or with the PL DDR) a high window.  The paper's
//! `devmem` reads land around `0x6_1c6d_0000`, i.e. inside a high window, so
//! the default configuration places a 2 GiB window at `0x6_0000_0000` in
//! addition to the low window — frames handed to user processes are drawn
//! from the high window, matching the addresses the paper reports.

use serde::{Deserialize, Serialize};

use crate::addr::{FrameNumber, PhysAddr, PAGE_SIZE};

/// Geometry of one DDR device/channel used for address interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DdrGeometry {
    /// log2 of the number of byte columns per row.
    pub column_bits: u32,
    /// log2 of the number of banks per bank group.
    pub bank_bits: u32,
    /// log2 of the number of bank groups.
    pub bank_group_bits: u32,
    /// log2 of the number of rows per bank.
    pub row_bits: u32,
    /// log2 of the number of ranks.
    pub rank_bits: u32,
}

impl DdrGeometry {
    /// DDR4 geometry matching the ZCU104's 2 GiB SODIMM
    /// (1 rank, 4 bank groups, 4 banks/group, 2^15 rows, 1 KiB columns... the
    /// exact part is not security-relevant; what matters is that rows and
    /// banks are much larger than a 4 KiB frame).
    pub const fn ddr4_2gib() -> Self {
        DdrGeometry {
            column_bits: 10,
            bank_bits: 2,
            bank_group_bits: 2,
            row_bits: 16,
            rank_bits: 1,
        }
    }

    /// Total number of addressable bytes described by this geometry.
    pub const fn capacity(&self) -> u64 {
        1u64 << (self.column_bits
            + self.bank_bits
            + self.bank_group_bits
            + self.row_bits
            + self.rank_bits)
    }

    /// Bytes per DRAM row (the unit RowClone-style bulk initialization works on).
    pub const fn row_bytes(&self) -> u64 {
        1u64 << self.column_bits
    }

    /// Bytes per bank (the unit RowReset-style initialization works on).
    pub const fn bank_bytes(&self) -> u64 {
        1u64 << (self.column_bits + self.row_bits)
    }

    /// Number of distinct banks (ranks × bank groups × banks per group).
    pub const fn bank_count(&self) -> u64 {
        1u64 << (self.bank_bits + self.bank_group_bits + self.rank_bits)
    }

    /// The flat bank id (rank, bank group, bank — the
    /// [`DdrCoordinates::bank_id`](crate::DdrCoordinates::bank_id) packing)
    /// holding a given global bank stripe (window offset / [`row_bytes`]).
    ///
    /// This is the single definition of the stripe → bank routing; the
    /// mapping layer and the sharded store both delegate here.  A total
    /// function — out-of-geometry stripe indices wrap via the bit masks.
    ///
    /// [`row_bytes`]: DdrGeometry::row_bytes
    pub const fn bank_of_stripe(&self, stripe: u64) -> u64 {
        let bank_group = stripe & ((1 << self.bank_group_bits) - 1);
        let bank = (stripe >> self.bank_group_bits) & ((1 << self.bank_bits) - 1);
        let rank = (stripe >> (self.bank_group_bits + self.bank_bits + self.row_bits))
            & ((1 << self.rank_bits) - 1);
        (rank << (self.bank_group_bits + self.bank_bits)) | (bank_group << self.bank_bits) | bank
    }

    /// The position of `stripe` within its bank: the row index, extended by
    /// the window-wrap overflow (window offsets past one full geometry reuse
    /// the bank bits and continue at the next `2^row_bits` block).
    ///
    /// Together with [`bank_of_stripe`](DdrGeometry::bank_of_stripe) this
    /// forms a bijection — `(bank id, ordinal)` identifies a stripe uniquely,
    /// inverted by [`stripe_of_ordinal`](DdrGeometry::stripe_of_ordinal) —
    /// and for a fixed bank the stripe index is *strictly increasing* in the
    /// ordinal, so the stripes of any contiguous window range occupy one
    /// contiguous ordinal interval per bank.  The arena-backed store keys its
    /// per-bank slabs by this ordinal, which is what turns stripe addressing
    /// into pure offset arithmetic.
    pub const fn ordinal_of_stripe(&self, stripe: u64) -> u64 {
        let bb = self.bank_group_bits + self.bank_bits;
        let row = (stripe >> bb) & ((1 << self.row_bits) - 1);
        let overflow = stripe >> (bb + self.row_bits + self.rank_bits);
        row | (overflow << self.row_bits)
    }

    /// Inverse of the `(bank_of_stripe, ordinal_of_stripe)` pair: rebuilds
    /// the global stripe index from a flat bank id and a per-bank ordinal.
    pub const fn stripe_of_ordinal(&self, bank_id: u64, ordinal: u64) -> u64 {
        let bb = self.bank_group_bits + self.bank_bits;
        let bank_group = (bank_id >> self.bank_bits) & ((1 << self.bank_group_bits) - 1);
        let bank = bank_id & ((1 << self.bank_bits) - 1);
        let rank = bank_id >> (self.bank_group_bits + self.bank_bits);
        let row = ordinal & ((1 << self.row_bits) - 1);
        let overflow = ordinal >> self.row_bits;
        bank_group
            | (bank << self.bank_group_bits)
            | (row << bb)
            | (rank << (bb + self.row_bits))
            | (overflow << (bb + self.row_bits + self.rank_bits))
    }
}

impl Default for DdrGeometry {
    fn default() -> Self {
        DdrGeometry::ddr4_2gib()
    }
}

/// Which board preset a configuration was derived from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum BoardModel {
    /// Zynq UltraScale+ MPSoC ZCU104 (the paper's primary target).
    Zcu104,
    /// Zynq UltraScale+ MPSoC ZCU102 (the paper's generalizability target).
    Zcu102,
    /// A custom, user-supplied configuration.
    Custom,
}

impl std::fmt::Display for BoardModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoardModel::Zcu104 => write!(f, "ZCU104"),
            BoardModel::Zcu102 => write!(f, "ZCU102"),
            BoardModel::Custom => write!(f, "custom"),
        }
    }
}

/// Configuration of the simulated local DRAM: where the user-visible window
/// starts, how large it is, and the DDR geometry behind it.
///
/// # Example
///
/// ```
/// use zynq_dram::DramConfig;
///
/// let cfg = DramConfig::zcu104();
/// assert_eq!(cfg.base().as_u64(), 0x6_0000_0000);
/// assert!(cfg.contains(cfg.base()));
/// assert!(!cfg.contains(cfg.end()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    board: BoardModel,
    base: PhysAddr,
    capacity: u64,
    geometry: DdrGeometry,
}

impl DramConfig {
    /// Configuration of the ZCU104's user-frame DDR window: 2 GiB starting at
    /// `0x6_0000_0000`, which is the window the paper's physical addresses
    /// (`0x61c6d730`…) fall into.
    pub fn zcu104() -> Self {
        DramConfig {
            board: BoardModel::Zcu104,
            base: PhysAddr::new(0x6_0000_0000),
            capacity: 2 * 1024 * 1024 * 1024,
            geometry: DdrGeometry::ddr4_2gib(),
        }
    }

    /// Configuration of the ZCU102 (4 GiB window at the same high base).
    pub fn zcu102() -> Self {
        DramConfig {
            board: BoardModel::Zcu102,
            base: PhysAddr::new(0x6_0000_0000),
            capacity: 4 * 1024 * 1024 * 1024,
            geometry: DdrGeometry {
                row_bits: 17,
                ..DdrGeometry::ddr4_2gib()
            },
        }
    }

    /// Creates a custom configuration.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not page aligned, or `capacity` is zero or not a
    /// multiple of the page size.
    pub fn custom(base: PhysAddr, capacity: u64, geometry: DdrGeometry) -> Self {
        assert!(base.is_aligned(), "DRAM base must be page aligned");
        assert!(capacity > 0, "DRAM capacity must be non-zero");
        assert_eq!(
            capacity % PAGE_SIZE,
            0,
            "DRAM capacity must be page-multiple"
        );
        DramConfig {
            board: BoardModel::Custom,
            base,
            capacity,
            geometry,
        }
    }

    /// A small window useful for fast tests (16 MiB).
    pub fn tiny_for_tests() -> Self {
        DramConfig::custom(
            PhysAddr::new(0x6_0000_0000),
            16 * 1024 * 1024,
            DdrGeometry::ddr4_2gib(),
        )
    }

    /// The board preset this configuration corresponds to.
    pub fn board(&self) -> BoardModel {
        self.board
    }

    /// First physical address of the window.
    pub fn base(&self) -> PhysAddr {
        self.base
    }

    /// Size of the window in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// One-past-the-end physical address of the window.
    pub fn end(&self) -> PhysAddr {
        self.base + self.capacity
    }

    /// DDR geometry used for bank/row mapping.
    pub fn geometry(&self) -> DdrGeometry {
        self.geometry
    }

    /// Number of page frames in the window.
    pub fn frame_count(&self) -> u64 {
        self.capacity / PAGE_SIZE
    }

    /// First frame of the window.
    pub fn first_frame(&self) -> FrameNumber {
        self.base.frame_number()
    }

    /// Returns `true` if `addr` lies inside the window.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Returns `true` if the `len`-byte access starting at `addr` lies fully
    /// inside the window.
    pub fn contains_range(&self, addr: PhysAddr, len: u64) -> bool {
        if len == 0 {
            return self.contains(addr) || addr == self.end();
        }
        match addr.checked_add(len - 1) {
            Some(last) => self.contains(addr) && self.contains(last),
            None => false,
        }
    }

    /// Returns `true` if `frame` lies inside the window.
    pub fn contains_frame(&self, frame: FrameNumber) -> bool {
        self.contains(frame.base_address())
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::zcu104()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zcu104_window_covers_paper_addresses() {
        let cfg = DramConfig::zcu104();
        // The paper's devmem reads: 0x61c6d730 is printed truncated, the full
        // heap range ends at 0x61ec5e220 which only makes sense in a >32-bit
        // window; both fall in the configured high window when offset by the
        // 0x6_0000_0000 base.
        assert!(cfg.contains(PhysAddr::new(0x6_1c6d_0730)));
        assert!(cfg.contains(PhysAddr::new(0x6_1ec5_e220)));
        assert_eq!(cfg.board(), BoardModel::Zcu104);
        assert_eq!(cfg.board().to_string(), "ZCU104");
    }

    #[test]
    fn zcu102_is_larger_than_zcu104() {
        assert!(DramConfig::zcu102().capacity() > DramConfig::zcu104().capacity());
        assert_eq!(DramConfig::zcu102().board(), BoardModel::Zcu102);
    }

    #[test]
    fn geometry_capacity_matches_bit_widths() {
        let g = DdrGeometry::ddr4_2gib();
        assert_eq!(g.capacity(), 2 * 1024 * 1024 * 1024);
        assert_eq!(g.row_bytes(), 1024);
        assert_eq!(g.bank_bytes(), 1024 * 65536);
    }

    #[test]
    fn stripe_ordinal_is_a_bijection_per_bank() {
        let geometries = [
            DdrGeometry::ddr4_2gib(),
            // The differential-harness shapes: ranked small rows, stripe ==
            // page, stripe > page, and the tiny wrap-around geometry.
            DdrGeometry {
                column_bits: 8,
                bank_bits: 2,
                bank_group_bits: 2,
                row_bits: 9,
                rank_bits: 1,
            },
            DdrGeometry {
                column_bits: 12,
                bank_bits: 1,
                bank_group_bits: 1,
                row_bits: 8,
                rank_bits: 0,
            },
            DdrGeometry {
                column_bits: 13,
                bank_bits: 2,
                bank_group_bits: 1,
                row_bits: 6,
                rank_bits: 0,
            },
            DdrGeometry {
                column_bits: 6,
                bank_bits: 1,
                bank_group_bits: 1,
                row_bits: 4,
                rank_bits: 0,
            },
        ];
        for g in geometries {
            // Every stripe round-trips through its (bank, ordinal) pair —
            // deliberately past one full geometry so the overflow (window
            // wrap) bits are exercised.
            for stripe in 0..8192u64 {
                let bank = g.bank_of_stripe(stripe);
                let ordinal = g.ordinal_of_stripe(stripe);
                assert!(bank < g.bank_count());
                assert_eq!(g.stripe_of_ordinal(bank, ordinal), stripe);
            }
            // Per bank, ordinals enumerate that bank's stripes in strictly
            // increasing stripe order (the arena's contiguity guarantee).
            for bank in 0..g.bank_count() {
                let mut previous = None;
                for ordinal in 0..512u64 {
                    let stripe = g.stripe_of_ordinal(bank, ordinal);
                    assert_eq!(g.bank_of_stripe(stripe), bank);
                    assert_eq!(g.ordinal_of_stripe(stripe), ordinal);
                    if let Some(p) = previous {
                        assert!(stripe > p, "stripe index must grow with the ordinal");
                    }
                    previous = Some(stripe);
                }
            }
        }
    }

    #[test]
    fn contains_range_edges() {
        let cfg = DramConfig::tiny_for_tests();
        let base = cfg.base();
        assert!(cfg.contains_range(base, cfg.capacity()));
        assert!(!cfg.contains_range(base, cfg.capacity() + 1));
        assert!(cfg.contains_range(cfg.end() - 4, 4));
        assert!(!cfg.contains_range(cfg.end() - 3, 4));
        assert!(cfg.contains_range(cfg.end(), 0));
        assert!(!cfg.contains_range(PhysAddr::new(u64::MAX), 4));
    }

    #[test]
    fn frame_accessors() {
        let cfg = DramConfig::tiny_for_tests();
        assert_eq!(cfg.frame_count(), 16 * 1024 * 1024 / PAGE_SIZE);
        assert!(cfg.contains_frame(cfg.first_frame()));
        assert_eq!(cfg.first_frame().base_address(), cfg.base());
    }

    #[test]
    #[should_panic(expected = "page aligned")]
    fn custom_rejects_unaligned_base() {
        let _ = DramConfig::custom(PhysAddr::new(123), PAGE_SIZE, DdrGeometry::default());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn custom_rejects_zero_capacity() {
        let _ = DramConfig::custom(PhysAddr::new(0), 0, DdrGeometry::default());
    }

    #[test]
    fn default_is_zcu104() {
        assert_eq!(DramConfig::default(), DramConfig::zcu104());
        assert_eq!(DdrGeometry::default(), DdrGeometry::ddr4_2gib());
    }
}
